#include "dist/alias_sampler.h"

#include <vector>

namespace fasthist {

StatusOr<AliasSampler> AliasSampler::Create(const Distribution& p) {
  const std::vector<double>& pmf = p.pmf();
  const size_t n = pmf.size();
  if (n == 0) return Status::Invalid("AliasSampler: empty distribution");

  AliasSampler sampler;
  sampler.prob_.assign(n, 0.0);
  sampler.alias_.assign(n, 0);

  // Vose's stable two-worklist construction over scaled masses n * p_i.
  std::vector<double> scaled(n);
  std::vector<size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = pmf[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    sampler.prob_[s] = scaled[s];
    sampler.alias_[s] = static_cast<int64_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to rounding.
  for (size_t i : large) sampler.prob_[i] = 1.0;
  for (size_t i : small) sampler.prob_[i] = 1.0;

  return sampler;
}

std::vector<int64_t> AliasSampler::SampleMany(size_t m, Rng* rng) const {
  std::vector<int64_t> samples(m);
  for (size_t i = 0; i < m; ++i) samples[i] = Sample(rng);
  return samples;
}

}  // namespace fasthist
