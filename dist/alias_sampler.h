#ifndef FASTHIST_DIST_ALIAS_SAMPLER_H_
#define FASTHIST_DIST_ALIAS_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "dist/empirical.h"
#include "util/random.h"
#include "util/status.h"

namespace fasthist {

// Walker/Vose alias method: O(n) preprocessing, O(1) per sample.  This is
// the sampling oracle behind every learning experiment — drawing m samples
// costs O(n + m) regardless of the distribution's shape.
class AliasSampler {
 public:
  static StatusOr<AliasSampler> Create(const Distribution& p);

  int64_t domain_size() const { return static_cast<int64_t>(prob_.size()); }

  int64_t Sample(Rng* rng) const {
    const int64_t column = rng->UniformInt(domain_size());
    return rng->UniformDouble() < prob_[static_cast<size_t>(column)]
               ? column
               : alias_[static_cast<size_t>(column)];
  }

  std::vector<int64_t> SampleMany(size_t m, Rng* rng) const;

 private:
  std::vector<double> prob_;   // acceptance probability per column
  std::vector<int64_t> alias_;  // fallback outcome per column
};

}  // namespace fasthist

#endif  // FASTHIST_DIST_ALIAS_SAMPLER_H_
