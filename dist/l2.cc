#include "dist/l2.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace fasthist {
namespace {

double At(const std::vector<double>& v, size_t i) {
  return i < v.size() ? v[i] : 0.0;
}

}  // namespace

double L2DistanceSquared(const std::vector<double>& a,
                         const std::vector<double>& b) {
  const size_t n = std::max(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = At(a, i) - At(b, i);
    total += d * d;
  }
  return total;
}

double L2DistanceSquared(const SparseFunction& a,
                         const std::vector<double>& b) {
  // Sum (a_i - b_i)^2 = sum b_i^2 + sum over support of
  // ((v - b_i)^2 - b_i^2); only the support needs individual visits.
  double total = 0.0;
  for (double x : b) total += x * x;
  const std::vector<int64_t>& indices = a.indices();
  const std::vector<double>& values = a.values();
  for (size_t s = 0; s < indices.size(); ++s) {
    const double bi = At(b, static_cast<size_t>(indices[s]));
    const double v = values[s];
    total += (v - bi) * (v - bi) - bi * bi;
  }
  // Support beyond b's length contributed (v - 0)^2 via the loop above.
  return total;
}

double L2DistanceSquared(const Histogram& h, const std::vector<double>& b) {
  double total = 0.0;
  size_t x = 0;
  for (const HistogramPiece& piece : h.pieces()) {
    for (; x < static_cast<size_t>(piece.interval.end); ++x) {
      const double d = piece.value - At(b, x);
      total += d * d;
    }
  }
  for (; x < b.size(); ++x) total += b[x] * b[x];
  return total;
}

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  const size_t n = std::max(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += std::abs(At(a, i) - At(b, i));
  return total;
}

double L1Distance(const Histogram& h, const std::vector<double>& b) {
  double total = 0.0;
  size_t x = 0;
  for (const HistogramPiece& piece : h.pieces()) {
    for (; x < static_cast<size_t>(piece.interval.end); ++x) {
      total += std::abs(piece.value - At(b, x));
    }
  }
  for (; x < b.size(); ++x) total += std::abs(b[x]);
  return total;
}

}  // namespace fasthist
