#include "dist/sparse_function.h"

#include <algorithm>

namespace fasthist {

SparseFunction SparseFunction::FromDense(const std::vector<double>& dense) {
  SparseFunction f;
  f.domain_size_ = static_cast<int64_t>(dense.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) {
      f.indices_.push_back(static_cast<int64_t>(i));
      f.values_.push_back(dense[i]);
    }
  }
  return f;
}

StatusOr<SparseFunction> SparseFunction::FromPairs(
    int64_t domain_size, std::vector<std::pair<int64_t, double>> pairs) {
  if (domain_size <= 0) {
    return Status::Invalid("SparseFunction: domain_size must be positive");
  }
  std::sort(pairs.begin(), pairs.end());
  SparseFunction f;
  f.domain_size_ = domain_size;
  for (size_t i = 0; i < pairs.size(); ++i) {
    const int64_t index = pairs[i].first;
    if (index < 0 || index >= domain_size) {
      return Status::Invalid("SparseFunction: index out of domain");
    }
    if (i > 0 && index == pairs[i - 1].first) {
      return Status::Invalid("SparseFunction: duplicate index");
    }
    if (pairs[i].second != 0.0) {
      f.indices_.push_back(index);
      f.values_.push_back(pairs[i].second);
    }
  }
  return f;
}

double SparseFunction::ValueAt(int64_t x) const {
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), x);
  if (it == indices_.end() || *it != x) return 0.0;
  return values_[static_cast<size_t>(it - indices_.begin())];
}

double SparseFunction::TotalMass() const {
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum;
}

double SparseFunction::SumSquares() const {
  double sum = 0.0;
  for (double v : values_) sum += v * v;
  return sum;
}

std::vector<double> SparseFunction::ToDense() const {
  std::vector<double> dense(static_cast<size_t>(domain_size_), 0.0);
  for (size_t i = 0; i < indices_.size(); ++i) {
    dense[static_cast<size_t>(indices_[i])] = values_[i];
  }
  return dense;
}

}  // namespace fasthist
