#ifndef FASTHIST_DIST_SPARSE_FUNCTION_H_
#define FASTHIST_DIST_SPARSE_FUNCTION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fasthist {

// Half-open integer interval [begin, end) over the domain [n].
struct Interval {
  int64_t begin = 0;
  int64_t end = 0;

  int64_t length() const { return end - begin; }
  bool Contains(int64_t x) const { return begin <= x && x < end; }
};

// A real-valued function over the discrete domain {0, ..., n-1}, stored as
// its support (sorted indices with non-zero values).  This is the common
// input type of the merging algorithms: empirical distributions built from m
// samples have support <= m, which is what makes the paper's construction
// sample-linear rather than domain-linear.  Dense signals round-trip through
// FromDense/ToDense losslessly.
class SparseFunction {
 public:
  SparseFunction() = default;

  // Keeps exactly the non-zero entries of `dense`.
  static SparseFunction FromDense(const std::vector<double>& dense);

  // `pairs` are (index, value); indices must be unique and inside the
  // domain.  Zero values are dropped.
  static StatusOr<SparseFunction> FromPairs(
      int64_t domain_size, std::vector<std::pair<int64_t, double>> pairs);

  int64_t domain_size() const { return domain_size_; }
  size_t support_size() const { return indices_.size(); }
  const std::vector<int64_t>& indices() const { return indices_; }
  const std::vector<double>& values() const { return values_; }

  // O(log support) point query.
  double ValueAt(int64_t x) const;

  double TotalMass() const;
  double SumSquares() const;

  std::vector<double> ToDense() const;

 private:
  int64_t domain_size_ = 0;
  std::vector<int64_t> indices_;  // sorted ascending
  std::vector<double> values_;    // aligned with indices_
};

}  // namespace fasthist

#endif  // FASTHIST_DIST_SPARSE_FUNCTION_H_
