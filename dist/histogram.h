#ifndef FASTHIST_DIST_HISTOGRAM_H_
#define FASTHIST_DIST_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "dist/sparse_function.h"
#include "util/status.h"

namespace fasthist {

struct HistogramPiece {
  Interval interval;
  double value = 0.0;
};

// A piecewise-constant function over {0, ..., n-1}: contiguous pieces
// covering the whole domain, each carrying one flat value.  This is the
// output type of every histogram construction in the library (merging, the
// exact DP, the classic equi-* baselines, streaming snapshots).
class Histogram {
 public:
  Histogram() = default;

  // Pieces must be non-empty, contiguous, start at 0 and end at
  // `domain_size`.
  static StatusOr<Histogram> Create(int64_t domain_size,
                                    std::vector<HistogramPiece> pieces);

  int64_t domain_size() const { return domain_size_; }
  int64_t num_pieces() const { return static_cast<int64_t>(pieces_.size()); }
  const std::vector<HistogramPiece>& pieces() const { return pieces_; }

  // O(log pieces) point query.
  double ValueAt(int64_t x) const;

  double TotalMass() const;

  // Sum over the whole domain of (h(x) - q(x))^2, in O(pieces + support).
  double L2DistanceSquaredTo(const SparseFunction& q) const;

  std::vector<double> ToDense() const;

 private:
  int64_t domain_size_ = 0;
  std::vector<HistogramPiece> pieces_;
};

}  // namespace fasthist

#endif  // FASTHIST_DIST_HISTOGRAM_H_
