#include "dist/histogram.h"

#include <algorithm>

namespace fasthist {

StatusOr<Histogram> Histogram::Create(int64_t domain_size,
                                      std::vector<HistogramPiece> pieces) {
  if (domain_size <= 0) {
    return Status::Invalid("Histogram: domain_size must be positive");
  }
  if (pieces.empty()) {
    return Status::Invalid("Histogram: needs at least one piece");
  }
  int64_t expected_begin = 0;
  for (const HistogramPiece& piece : pieces) {
    if (piece.interval.begin != expected_begin ||
        piece.interval.length() <= 0) {
      return Status::Invalid("Histogram: pieces must be contiguous");
    }
    expected_begin = piece.interval.end;
  }
  if (expected_begin != domain_size) {
    return Status::Invalid("Histogram: pieces must cover the domain");
  }
  Histogram h;
  h.domain_size_ = domain_size;
  h.pieces_ = std::move(pieces);
  return h;
}

double Histogram::ValueAt(int64_t x) const {
  const auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), x,
      [](int64_t value, const HistogramPiece& piece) {
        return value < piece.interval.begin;
      });
  if (it == pieces_.begin()) return 0.0;
  const HistogramPiece& piece = *(it - 1);
  return piece.interval.Contains(x) ? piece.value : 0.0;
}

double Histogram::TotalMass() const {
  double mass = 0.0;
  for (const HistogramPiece& piece : pieces_) {
    mass += piece.value * static_cast<double>(piece.interval.length());
  }
  return mass;
}

double Histogram::L2DistanceSquaredTo(const SparseFunction& q) const {
  const std::vector<int64_t>& indices = q.indices();
  const std::vector<double>& values = q.values();
  double total = 0.0;
  size_t s = 0;
  for (const HistogramPiece& piece : pieces_) {
    const double c = piece.value;
    int64_t support_count = 0;
    while (s < indices.size() && indices[s] < piece.interval.end) {
      const double v = values[s];
      total += (v - c) * (v - c);
      ++support_count;
      ++s;
    }
    // Domain points in the piece where q is zero contribute c^2 each.
    total += c * c *
             static_cast<double>(piece.interval.length() - support_count);
  }
  return total;
}

std::vector<double> Histogram::ToDense() const {
  std::vector<double> dense(static_cast<size_t>(domain_size_), 0.0);
  for (const HistogramPiece& piece : pieces_) {
    for (int64_t x = piece.interval.begin; x < piece.interval.end; ++x) {
      dense[static_cast<size_t>(x)] = piece.value;
    }
  }
  return dense;
}

}  // namespace fasthist
