#include "dist/empirical.h"

#include <algorithm>
#include <cmath>

namespace fasthist {

StatusOr<Distribution> Distribution::FromWeights(
    const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::Invalid("Distribution: empty weight vector");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::Invalid("Distribution: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    return Status::Invalid("Distribution: weights sum to zero");
  }
  Distribution p;
  p.pmf_.resize(weights.size());
  for (size_t i = 0; i < weights.size(); ++i) p.pmf_[i] = weights[i] / total;
  return p;
}

double Distribution::L2DistanceTo(const Histogram& h) const {
  double total = 0.0;
  size_t x = 0;
  for (const HistogramPiece& piece : h.pieces()) {
    const size_t end = std::min(static_cast<size_t>(piece.interval.end),
                                pmf_.size());
    for (; x < end; ++x) {
      const double d = pmf_[x] - piece.value;
      total += d * d;
    }
  }
  // Any domain tail not covered by the histogram counts at full mass.
  for (; x < pmf_.size(); ++x) total += pmf_[x] * pmf_[x];
  return std::sqrt(total);
}

double Distribution::L2DistanceTo(const std::vector<double>& q) const {
  const size_t n = std::max(pmf_.size(), q.size());
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double a = i < pmf_.size() ? pmf_[i] : 0.0;
    const double b = i < q.size() ? q[i] : 0.0;
    total += (a - b) * (a - b);
  }
  return std::sqrt(total);
}

StatusOr<Distribution> NormalizeToDistribution(
    const std::vector<double>& data) {
  std::vector<double> clamped(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    clamped[i] = data[i] > 0.0 ? data[i] : 0.0;
  }
  return Distribution::FromWeights(clamped);
}

StatusOr<SparseFunction> EmpiricalDistribution(int64_t domain_size,
                                               Span<const int64_t> samples) {
  if (domain_size <= 0) {
    return Status::Invalid("EmpiricalDistribution: domain must be positive");
  }
  if (samples.empty()) {
    return Status::Invalid("EmpiricalDistribution: no samples");
  }
  std::vector<int64_t> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.front() < 0 || sorted.back() >= domain_size) {
    return Status::Invalid("EmpiricalDistribution: sample out of domain");
  }
  const double unit = 1.0 / static_cast<double>(sorted.size());
  std::vector<std::pair<int64_t, double>> pairs;
  for (size_t i = 0; i < sorted.size();) {
    size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    pairs.emplace_back(sorted[i], unit * static_cast<double>(j - i));
    i = j;
  }
  return SparseFunction::FromPairs(domain_size, std::move(pairs));
}

StatusOr<int64_t> RequiredSampleSize(double eps, double fail_prob) {
  if (!(eps > 0.0) || !(fail_prob > 0.0) || fail_prob >= 1.0) {
    return Status::Invalid(
        "RequiredSampleSize: need eps > 0 and fail_prob in (0, 1)");
  }
  // E||p_hat - p||_2^2 <= 1/m, and ||p_hat - p||_2 concentrates within
  // sqrt(2 ln(1/delta) / m) of its mean (McDiarmid with 2/m-bounded
  // differences), so m = ceil((1 + sqrt(2 ln(1/delta)))^2 / eps^2) suffices.
  const double root = 1.0 + std::sqrt(2.0 * std::log(1.0 / fail_prob));
  const double m = std::ceil(root * root / (eps * eps));
  if (!(m < 9.0e18)) {  // would overflow int64_t (or be NaN)
    return Status::Invalid("RequiredSampleSize: eps too small, m overflows");
  }
  return static_cast<int64_t>(m);
}

}  // namespace fasthist
