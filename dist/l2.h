#ifndef FASTHIST_DIST_L2_H_
#define FASTHIST_DIST_L2_H_

#include <vector>

#include "dist/histogram.h"
#include "dist/sparse_function.h"

namespace fasthist {

// L1/L2 distances between densities (dense vectors), sparse functions and
// histograms.  Mismatched lengths are handled by treating missing entries as
// zero, so the empirical distribution of few samples can be compared against
// a full-domain pmf directly.

double L2DistanceSquared(const std::vector<double>& a,
                         const std::vector<double>& b);
double L2DistanceSquared(const SparseFunction& a, const std::vector<double>& b);
double L2DistanceSquared(const Histogram& h, const std::vector<double>& b);

double L1Distance(const std::vector<double>& a, const std::vector<double>& b);
double L1Distance(const Histogram& h, const std::vector<double>& b);

}  // namespace fasthist

#endif  // FASTHIST_DIST_L2_H_
