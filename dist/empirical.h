#ifndef FASTHIST_DIST_EMPIRICAL_H_
#define FASTHIST_DIST_EMPIRICAL_H_

#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "dist/sparse_function.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// A probability distribution over {0, ..., n-1} (dense pmf summing to 1).
class Distribution {
 public:
  // `weights` must be non-negative with positive total; they are normalized.
  static StatusOr<Distribution> FromWeights(const std::vector<double>& weights);

  const std::vector<double>& pmf() const { return pmf_; }
  int64_t domain_size() const { return static_cast<int64_t>(pmf_.size()); }

  // ||p - h||_2 (not squared), evaluated over the whole domain.
  double L2DistanceTo(const Histogram& h) const;
  // ||p - q||_2 against another dense function of the same size.
  double L2DistanceTo(const std::vector<double>& q) const;

 private:
  std::vector<double> pmf_;
};

// Clamps negative entries of `data` to zero and normalizes the rest into a
// probability distribution.  (The paper's learning experiments turn the raw
// hist/poly/dow series into distributions this way before sampling.)
StatusOr<Distribution> NormalizeToDistribution(const std::vector<double>& data);

// The empirical distribution \hat p_m of `samples` over [domain_size]: mass
// count(x)/m at each observed x.  Support size is at most m, so downstream
// merging runs in sample-linear time.  Samples must lie in the domain.
// Takes a pointer+length view (std::vector arguments convert implicitly),
// so callers can point at a slice of any buffer without copying.
StatusOr<SparseFunction> EmpiricalDistribution(int64_t domain_size,
                                               Span<const int64_t> samples);

// Theorem 3.2 sample-size schedule: the number of samples m that guarantees
// ||\hat p_m - p||_2 <= eps with probability >= 1 - fail_prob, independent
// of the domain size (E||\hat p_m - p||_2^2 <= 1/m plus McDiarmid).
StatusOr<int64_t> RequiredSampleSize(double eps, double fail_prob);

}  // namespace fasthist

#endif  // FASTHIST_DIST_EMPIRICAL_H_
