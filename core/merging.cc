#include "core/merging.h"

#include <algorithm>
#include <vector>

#include "core/internal/merge_engine.h"

namespace fasthist {

StatusOr<MergingResult> ConstructHistogram(const SparseFunction& q, int64_t k,
                                           const MergingOptions& options) {
  return internal::RunMergingRounds(q.domain_size(),
                                    internal::AtomsFromSparse(q), k, options,
                                    internal::SelectionStrategy::kSort);
}

StatusOr<Histogram> MergeHistograms(const Histogram& h1, double weight1,
                                    const Histogram& h2, double weight2,
                                    int64_t k,
                                    const MergingOptions& options) {
  if (h1.domain_size() != h2.domain_size()) {
    return Status::Invalid("MergeHistograms: domain mismatch");
  }
  if (weight1 < 0.0 || weight2 < 0.0 || weight1 + weight2 <= 0.0) {
    return Status::Invalid("MergeHistograms: weights must be non-negative "
                           "with a positive total");
  }
  const double w1 = weight1 / (weight1 + weight2);
  const double w2 = weight2 / (weight1 + weight2);

  // Atoms of the boundary union: the combined function w1*h1 + w2*h2 is
  // flat on each union segment, so its sufficient statistics are exact and
  // the merge runs on p1 + p2 atoms, independent of the domain size.
  std::vector<internal::MergeAtom> atoms;
  atoms.reserve(
      static_cast<size_t>(h1.num_pieces() + h2.num_pieces()));
  size_t i1 = 0, i2 = 0;
  int64_t cursor = 0;
  while (cursor < h1.domain_size()) {
    const HistogramPiece& p1 = h1.pieces()[i1];
    const HistogramPiece& p2 = h2.pieces()[i2];
    const int64_t end = std::min(p1.interval.end, p2.interval.end);
    const double value = w1 * p1.value + w2 * p2.value;
    const double length = static_cast<double>(end - cursor);
    atoms.push_back({cursor, end, value * length, value * value * length});
    cursor = end;
    if (p1.interval.end == end) ++i1;
    if (p2.interval.end == end) ++i2;
  }

  // The selection path: identical output to kSort (the engine's strict
  // total order) at linear per-round cost — this is a serving primitive.
  auto merged = internal::RunMergingRounds(
      h1.domain_size(), std::move(atoms), k, options,
      internal::SelectionStrategy::kSelect);
  if (!merged.ok()) return merged.status();
  return std::move(merged->histogram);
}

}  // namespace fasthist
