#include "core/streaming.h"

#include <algorithm>
#include <utility>

#include "core/fast_merging.h"
#include "core/streaming_ladder.h"
#include "dist/empirical.h"

namespace fasthist {

// The streaming_ladder Storage adapter over the builder's own slot vector.
// Load copies the resident summary (the hooks are storage-agnostic, and the
// plane-backed stores must materialize by value anyway); the copies are
// noise next to the MergeHistograms calls they feed.
struct StreamingHistogramBuilder::VectorLadder {
  std::vector<LadderSlot>* slots;

  int levels() const { return static_cast<int>(slots->size()); }
  int64_t count(int level) const {
    return (*slots)[static_cast<size_t>(level)].count;
  }
  StatusOr<Histogram> Load(int level) const {
    return (*slots)[static_cast<size_t>(level)].summary;
  }
  Status Store(int level, Histogram histogram, int64_t count) {
    LadderSlot& slot = (*slots)[static_cast<size_t>(level)];
    slot.summary = std::move(histogram);
    slot.count = count;
    return Status::Ok();
  }
  void Clear(int level) { (*slots)[static_cast<size_t>(level)] = LadderSlot{}; }
  Status PushLevel() {
    slots->emplace_back();
    return Status::Ok();
  }
};

StatusOr<StreamingHistogramBuilder> StreamingHistogramBuilder::Create(
    int64_t domain_size, int64_t k, size_t buffer_capacity,
    const MergingOptions& options) {
  if (domain_size <= 0) {
    return Status::Invalid("StreamingHistogramBuilder: domain must be positive");
  }
  if (k < 1) {
    return Status::Invalid("StreamingHistogramBuilder: k must be >= 1");
  }
  if (buffer_capacity == 0) {
    return Status::Invalid("StreamingHistogramBuilder: buffer must be >= 1");
  }
  return StreamingHistogramBuilder(domain_size, k, buffer_capacity, options);
}

Status StreamingHistogramBuilder::Add(int64_t sample) {
  if (sample < 0 || sample >= domain_size_) {
    return Status::Invalid("StreamingHistogramBuilder: sample out of domain");
  }
  buffer_.push_back(sample);
  if (buffer_.size() >= buffer_capacity_) return Flush();
  return Status::Ok();
}

Status StreamingHistogramBuilder::AddMany(Span<const int64_t> samples) {
  size_t i = 0;
  while (i < samples.size()) {
    const size_t space = buffer_capacity_ - buffer_.size();
    const size_t take = std::min(space, samples.size() - i);
    // Validate the chunk first, then append it in one bulk insert.  On an
    // out-of-domain sample the valid prefix is still appended — exactly the
    // state an Add loop would have left behind when it hit the bad sample.
    size_t valid = 0;
    while (valid < take) {
      const int64_t sample = samples[i + valid];
      if (sample < 0 || sample >= domain_size_) break;
      ++valid;
    }
    buffer_.insert(buffer_.end(), samples.begin() + static_cast<ptrdiff_t>(i),
                   samples.begin() + static_cast<ptrdiff_t>(i + valid));
    if (valid < take) {
      return Status::Invalid("StreamingHistogramBuilder: sample out of domain");
    }
    i += take;
    if (buffer_.size() >= buffer_capacity_) {
      if (Status s = Flush(); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

StatusOr<Histogram> StreamingHistogramBuilder::FoldBufferIntoSummary(
    const Histogram* summary, int64_t summarized_count,
    Span<const int64_t> buffer, int64_t domain_size, int64_t k,
    const MergingOptions& options) {
  auto empirical = EmpiricalDistribution(domain_size, buffer);
  if (!empirical.ok()) return empirical.status();
  auto batch = ConstructHistogramFast(*empirical, k, options);
  if (!batch.ok()) return batch.status();
  if (summary == nullptr || summarized_count == 0) {
    return std::move(batch->histogram);
  }
  return MergeHistograms(*summary, static_cast<double>(summarized_count),
                         batch->histogram, static_cast<double>(buffer.size()),
                         k, options);
}

int StreamingHistogramBuilder::ladder_depth() const {
  // The const_cast is sound: Depth/Slots/Fold only call the adapter's const
  // operations (levels/count/Load).
  VectorLadder view{const_cast<std::vector<LadderSlot>*>(&ladder_)};
  return streaming_ladder::Depth(view);
}

int StreamingHistogramBuilder::ladder_slots() const {
  VectorLadder view{const_cast<std::vector<LadderSlot>*>(&ladder_)};
  return streaming_ladder::Slots(view);
}

int StreamingHistogramBuilder::error_levels() const {
  return streaming_ladder::ErrorLevels(ladder_depth(), ladder_slots(),
                                       !buffer_.empty());
}

StatusOr<Histogram> StreamingHistogramBuilder::CommittedSummary() const {
  if (summarized_count_ == 0) {
    return Status::Invalid(
        "StreamingHistogramBuilder: no committed summary yet");
  }
  // Fold occupied slots oldest first: the highest level holds the earliest
  // buffers, so a highest-to-lowest chain keeps stream order left to right
  // (streaming_ladder::Fold's contract).
  VectorLadder view{const_cast<std::vector<LadderSlot>*>(&ladder_)};
  return streaming_ladder::Fold(view, k_, options_);
}

StatusOr<Histogram> StreamingHistogramBuilder::FoldedView() const {
  if (summarized_count_ == 0 && buffer_.empty()) {
    return Histogram::Create(
        domain_size_,
        {{{0, domain_size_}, 1.0 / static_cast<double>(domain_size_)}});
  }
  if (summarized_count_ == 0) {
    return FoldBufferIntoSummary(nullptr, 0, buffer_, domain_size_, k_,
                                 options_);
  }
  auto committed = CommittedSummary();
  if (!committed.ok()) return committed.status();
  if (buffer_.empty()) return committed;
  return FoldBufferIntoSummary(&*committed, summarized_count_, buffer_,
                               domain_size_, k_, options_);
}

void StreamingHistogramBuilder::Reset() {
  buffer_.clear();  // keeps the reserved capacity
  // Vacate every level in place: the slot vector (and the pieces each
  // retired summary held) stays allocated for the next occupant.
  for (LadderSlot& slot : ladder_) slot.count = 0;
  summarized_count_ = 0;
  generation_ = 0;
}

Status StreamingHistogramBuilder::Flush() {
  if (buffer_.empty()) return Status::Ok();
  // Condense the buffer to a level-0 summary, then carry it upward through
  // the shared dyadic-commit hook (core/streaming_ladder.h).
  auto condensed = FoldBufferIntoSummary(nullptr, 0, buffer_, domain_size_,
                                         k_, options_);
  if (!condensed.ok()) return condensed.status();
  VectorLadder view{&ladder_};
  if (Status s = streaming_ladder::Commit(
          view, std::move(condensed).value(),
          static_cast<int64_t>(buffer_.size()), k_, options_);
      !s.ok()) {
    return s;
  }
  summarized_count_ += static_cast<int64_t>(buffer_.size());
  buffer_.clear();
  ++generation_;
  return Status::Ok();
}

StatusOr<Histogram> StreamingHistogramBuilder::Snapshot() {
  // Compute the Peek-chain value first, then commit the flush: the dyadic
  // carry merges associate differently from the read-side fold, so folding
  // a freshly committed ladder would not be bit-identical to Peek().
  auto view = FoldedView();
  if (!view.ok()) return view.status();
  if (Status s = Flush(); !s.ok()) return s;
  return view;
}

StatusOr<Histogram> StreamingHistogramBuilder::Peek() const {
  return FoldedView();
}

}  // namespace fasthist
