#include "core/streaming.h"

#include <algorithm>
#include <utility>

#include "core/fast_merging.h"
#include "dist/empirical.h"

namespace fasthist {

StatusOr<StreamingHistogramBuilder> StreamingHistogramBuilder::Create(
    int64_t domain_size, int64_t k, size_t buffer_capacity,
    const MergingOptions& options) {
  if (domain_size <= 0) {
    return Status::Invalid("StreamingHistogramBuilder: domain must be positive");
  }
  if (k < 1) {
    return Status::Invalid("StreamingHistogramBuilder: k must be >= 1");
  }
  if (buffer_capacity == 0) {
    return Status::Invalid("StreamingHistogramBuilder: buffer must be >= 1");
  }
  return StreamingHistogramBuilder(domain_size, k, buffer_capacity, options);
}

Status StreamingHistogramBuilder::Add(int64_t sample) {
  if (sample < 0 || sample >= domain_size_) {
    return Status::Invalid("StreamingHistogramBuilder: sample out of domain");
  }
  buffer_.push_back(sample);
  if (buffer_.size() >= buffer_capacity_) return Flush();
  return Status::Ok();
}

Status StreamingHistogramBuilder::AddMany(Span<const int64_t> samples) {
  size_t i = 0;
  while (i < samples.size()) {
    const size_t space = buffer_capacity_ - buffer_.size();
    const size_t take = std::min(space, samples.size() - i);
    // Validate the chunk first, then append it in one bulk insert.  On an
    // out-of-domain sample the valid prefix is still appended — exactly the
    // state an Add loop would have left behind when it hit the bad sample.
    size_t valid = 0;
    while (valid < take) {
      const int64_t sample = samples[i + valid];
      if (sample < 0 || sample >= domain_size_) break;
      ++valid;
    }
    buffer_.insert(buffer_.end(), samples.begin() + static_cast<ptrdiff_t>(i),
                   samples.begin() + static_cast<ptrdiff_t>(i + valid));
    if (valid < take) {
      return Status::Invalid("StreamingHistogramBuilder: sample out of domain");
    }
    i += take;
    if (buffer_.size() >= buffer_capacity_) {
      if (Status s = Flush(); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

StatusOr<Histogram> StreamingHistogramBuilder::FoldBufferIntoSummary(
    const Histogram* summary, int64_t summarized_count,
    Span<const int64_t> buffer, int64_t domain_size, int64_t k,
    const MergingOptions& options) {
  auto empirical = EmpiricalDistribution(domain_size, buffer);
  if (!empirical.ok()) return empirical.status();
  auto batch = ConstructHistogramFast(*empirical, k, options);
  if (!batch.ok()) return batch.status();
  if (summary == nullptr || summarized_count == 0) {
    return std::move(batch->histogram);
  }
  return MergeHistograms(*summary, static_cast<double>(summarized_count),
                         batch->histogram, static_cast<double>(buffer.size()),
                         k, options);
}

StatusOr<Histogram> StreamingHistogramBuilder::FoldedSummary(
    Span<const int64_t> buffer) const {
  return FoldBufferIntoSummary(summarized_count_ > 0 ? &summary_ : nullptr,
                               summarized_count_, buffer, domain_size_, k_,
                               options_);
}

Status StreamingHistogramBuilder::Flush() {
  if (buffer_.empty()) return Status::Ok();
  auto folded = FoldedSummary(buffer_);
  if (!folded.ok()) return folded.status();
  summary_ = std::move(folded).value();
  summarized_count_ += static_cast<int64_t>(buffer_.size());
  buffer_.clear();
  ++generation_;
  return Status::Ok();
}

StatusOr<Histogram> StreamingHistogramBuilder::Snapshot() {
  if (Status s = Flush(); !s.ok()) return s;
  if (summarized_count_ == 0) {
    return Histogram::Create(
        domain_size_,
        {{{0, domain_size_}, 1.0 / static_cast<double>(domain_size_)}});
  }
  return summary_;
}

StatusOr<Histogram> StreamingHistogramBuilder::Peek() const {
  if (!buffer_.empty()) return FoldedSummary(buffer_);
  if (summarized_count_ == 0) {
    return Histogram::Create(
        domain_size_,
        {{{0, domain_size_}, 1.0 / static_cast<double>(domain_size_)}});
  }
  return summary_;
}

}  // namespace fasthist
