#include "core/streaming.h"

#include <utility>

#include "core/fast_merging.h"
#include "dist/empirical.h"

namespace fasthist {

StatusOr<StreamingHistogramBuilder> StreamingHistogramBuilder::Create(
    int64_t domain_size, int64_t k, size_t buffer_capacity,
    const MergingOptions& options) {
  if (domain_size <= 0) {
    return Status::Invalid("StreamingHistogramBuilder: domain must be positive");
  }
  if (k < 1) {
    return Status::Invalid("StreamingHistogramBuilder: k must be >= 1");
  }
  if (buffer_capacity == 0) {
    return Status::Invalid("StreamingHistogramBuilder: buffer must be >= 1");
  }
  return StreamingHistogramBuilder(domain_size, k, buffer_capacity, options);
}

Status StreamingHistogramBuilder::Add(int64_t sample) {
  if (sample < 0 || sample >= domain_size_) {
    return Status::Invalid("StreamingHistogramBuilder: sample out of domain");
  }
  buffer_.push_back(sample);
  if (buffer_.size() >= buffer_capacity_) return Flush();
  return Status::Ok();
}

Status StreamingHistogramBuilder::AddMany(
    const std::vector<int64_t>& samples) {
  for (int64_t sample : samples) {
    if (Status s = Add(sample); !s.ok()) return s;
  }
  return Status::Ok();
}

Status StreamingHistogramBuilder::Flush() {
  if (buffer_.empty()) return Status::Ok();

  auto empirical = EmpiricalDistribution(domain_size_, buffer_);
  if (!empirical.ok()) return empirical.status();
  auto batch = ConstructHistogramFast(*empirical, k_, options_);
  if (!batch.ok()) return batch.status();

  const int64_t batch_count = static_cast<int64_t>(buffer_.size());
  if (summarized_count_ == 0) {
    summary_ = std::move(batch->histogram);
  } else {
    auto merged = MergeHistograms(
        summary_, static_cast<double>(summarized_count_), batch->histogram,
        static_cast<double>(batch_count), k_, options_);
    if (!merged.ok()) return merged.status();
    summary_ = std::move(merged).value();
  }
  summarized_count_ += batch_count;
  buffer_.clear();
  return Status::Ok();
}

StatusOr<Histogram> StreamingHistogramBuilder::Snapshot() {
  if (Status s = Flush(); !s.ok()) return s;
  if (summarized_count_ == 0) {
    return Histogram::Create(
        domain_size_,
        {{{0, domain_size_}, 1.0 / static_cast<double>(domain_size_)}});
  }
  return summary_;
}

}  // namespace fasthist
