#include "core/streaming.h"

#include <algorithm>
#include <utility>

#include "core/fast_merging.h"
#include "dist/empirical.h"

namespace fasthist {

StatusOr<StreamingHistogramBuilder> StreamingHistogramBuilder::Create(
    int64_t domain_size, int64_t k, size_t buffer_capacity,
    const MergingOptions& options) {
  if (domain_size <= 0) {
    return Status::Invalid("StreamingHistogramBuilder: domain must be positive");
  }
  if (k < 1) {
    return Status::Invalid("StreamingHistogramBuilder: k must be >= 1");
  }
  if (buffer_capacity == 0) {
    return Status::Invalid("StreamingHistogramBuilder: buffer must be >= 1");
  }
  return StreamingHistogramBuilder(domain_size, k, buffer_capacity, options);
}

Status StreamingHistogramBuilder::Add(int64_t sample) {
  if (sample < 0 || sample >= domain_size_) {
    return Status::Invalid("StreamingHistogramBuilder: sample out of domain");
  }
  buffer_.push_back(sample);
  if (buffer_.size() >= buffer_capacity_) return Flush();
  return Status::Ok();
}

Status StreamingHistogramBuilder::AddMany(Span<const int64_t> samples) {
  size_t i = 0;
  while (i < samples.size()) {
    const size_t space = buffer_capacity_ - buffer_.size();
    const size_t take = std::min(space, samples.size() - i);
    // Validate the chunk first, then append it in one bulk insert.  On an
    // out-of-domain sample the valid prefix is still appended — exactly the
    // state an Add loop would have left behind when it hit the bad sample.
    size_t valid = 0;
    while (valid < take) {
      const int64_t sample = samples[i + valid];
      if (sample < 0 || sample >= domain_size_) break;
      ++valid;
    }
    buffer_.insert(buffer_.end(), samples.begin() + static_cast<ptrdiff_t>(i),
                   samples.begin() + static_cast<ptrdiff_t>(i + valid));
    if (valid < take) {
      return Status::Invalid("StreamingHistogramBuilder: sample out of domain");
    }
    i += take;
    if (buffer_.size() >= buffer_capacity_) {
      if (Status s = Flush(); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

StatusOr<Histogram> StreamingHistogramBuilder::FoldBufferIntoSummary(
    const Histogram* summary, int64_t summarized_count,
    Span<const int64_t> buffer, int64_t domain_size, int64_t k,
    const MergingOptions& options) {
  auto empirical = EmpiricalDistribution(domain_size, buffer);
  if (!empirical.ok()) return empirical.status();
  auto batch = ConstructHistogramFast(*empirical, k, options);
  if (!batch.ok()) return batch.status();
  if (summary == nullptr || summarized_count == 0) {
    return std::move(batch->histogram);
  }
  return MergeHistograms(*summary, static_cast<double>(summarized_count),
                         batch->histogram, static_cast<double>(buffer.size()),
                         k, options);
}

int StreamingHistogramBuilder::ladder_depth() const {
  for (size_t level = ladder_.size(); level > 0; --level) {
    if (ladder_[level - 1].count > 0) return static_cast<int>(level);
  }
  return 0;
}

int StreamingHistogramBuilder::ladder_slots() const {
  int slots = 0;
  for (const LadderSlot& slot : ladder_) {
    if (slot.count > 0) ++slots;
  }
  return slots;
}

int StreamingHistogramBuilder::error_levels() const {
  const int sources = ladder_slots() + (buffer_.empty() ? 0 : 1);
  if (sources == 0) return 0;
  // Deepest chain feeding the read fold: the ladder's commit-side depth, or
  // the single condense the buffered remainder costs.  Chaining more than
  // one source is one read-side fold pass — one additional level.
  const int deepest = std::max(ladder_depth(), buffer_.empty() ? 0 : 1);
  return deepest + (sources > 1 ? 1 : 0);
}

StatusOr<Histogram> StreamingHistogramBuilder::CommittedSummary() const {
  if (summarized_count_ == 0) {
    return Status::Invalid(
        "StreamingHistogramBuilder: no committed summary yet");
  }
  // Fold occupied slots oldest first: the highest level holds the earliest
  // buffers, so a highest-to-lowest chain keeps stream order left to right.
  const Histogram* acc = nullptr;
  int64_t acc_count = 0;
  Histogram folded;
  for (size_t level = ladder_.size(); level > 0; --level) {
    const LadderSlot& slot = ladder_[level - 1];
    if (slot.count == 0) continue;
    if (acc == nullptr) {
      acc = &slot.summary;
      acc_count = slot.count;
      continue;
    }
    auto merged = MergeHistograms(*acc, static_cast<double>(acc_count),
                                  slot.summary,
                                  static_cast<double>(slot.count), k_,
                                  options_);
    if (!merged.ok()) return merged.status();
    folded = std::move(merged).value();
    acc = &folded;
    acc_count += slot.count;
  }
  if (acc != &folded) folded = *acc;
  return folded;
}

StatusOr<Histogram> StreamingHistogramBuilder::FoldedView() const {
  if (summarized_count_ == 0 && buffer_.empty()) {
    return Histogram::Create(
        domain_size_,
        {{{0, domain_size_}, 1.0 / static_cast<double>(domain_size_)}});
  }
  if (summarized_count_ == 0) {
    return FoldBufferIntoSummary(nullptr, 0, buffer_, domain_size_, k_,
                                 options_);
  }
  auto committed = CommittedSummary();
  if (!committed.ok()) return committed.status();
  if (buffer_.empty()) return committed;
  return FoldBufferIntoSummary(&*committed, summarized_count_, buffer_,
                               domain_size_, k_, options_);
}

Status StreamingHistogramBuilder::Flush() {
  if (buffer_.empty()) return Status::Ok();
  // Condense the buffer to a level-0 summary, then carry it upward like
  // binary addition: while the target level is occupied, merge the resident
  // (older, so left operand) summary with the carry and vacate the slot.
  auto condensed = FoldBufferIntoSummary(nullptr, 0, buffer_, domain_size_,
                                         k_, options_);
  if (!condensed.ok()) return condensed.status();
  Histogram carry = std::move(condensed).value();
  int64_t carry_count = static_cast<int64_t>(buffer_.size());
  size_t level = 0;
  while (level < ladder_.size() && ladder_[level].count > 0) {
    LadderSlot& slot = ladder_[level];
    auto merged = MergeHistograms(slot.summary,
                                  static_cast<double>(slot.count), carry,
                                  static_cast<double>(carry_count), k_,
                                  options_);
    if (!merged.ok()) return merged.status();
    carry = std::move(merged).value();
    carry_count += slot.count;
    slot = LadderSlot{};
    ++level;
  }
  if (level == ladder_.size()) ladder_.emplace_back();
  ladder_[level].summary = std::move(carry);
  ladder_[level].count = carry_count;
  summarized_count_ += static_cast<int64_t>(buffer_.size());
  buffer_.clear();
  ++generation_;
  return Status::Ok();
}

StatusOr<Histogram> StreamingHistogramBuilder::Snapshot() {
  // Compute the Peek-chain value first, then commit the flush: the dyadic
  // carry merges associate differently from the read-side fold, so folding
  // a freshly committed ladder would not be bit-identical to Peek().
  auto view = FoldedView();
  if (!view.ok()) return view.status();
  if (Status s = Flush(); !s.ok()) return s;
  return view;
}

StatusOr<Histogram> StreamingHistogramBuilder::Peek() const {
  return FoldedView();
}

}  // namespace fasthist
