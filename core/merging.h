#ifndef FASTHIST_CORE_MERGING_H_
#define FASTHIST_CORE_MERGING_H_

#include <cstdint>

#include "dist/histogram.h"
#include "dist/sparse_function.h"
#include "poly/poly_merging.h"
#include "util/status.h"

namespace fasthist {

struct MergingResult {
  Histogram histogram;
  double err_squared = 0.0;
  long long num_rounds = 0;
};

// Algorithm 1 of the paper: iterative pair merging.  Starting from the
// partition with breakpoints at every support point of q, each round pairs
// adjacent intervals, keeps the m = max(k, floor(k*(1+1/delta))) pairs with
// the largest merged error split, and merges the rest; the rounds stop once
// at most 2*gamma*m+1 intervals survive (see MergingOptions).  Each piece carries the best constant (the mean
// of q on the piece, zeros included), and err_squared sums the per-piece
// squared residuals.  Time O(s log s) for support size s (the per-round
// sort dominates); see ConstructHistogramFast for the selection-based
// sample-linear variant with identical output.
StatusOr<MergingResult> ConstructHistogram(
    const SparseFunction& q, int64_t k,
    const MergingOptions& options = MergingOptions());

// Mergeability (Lemma 4.2): re-approximates the weighted combination
// weight1*h1 + weight2*h2 (weights are relative and normalized internally)
// by a fresh ~2k+1-piece histogram, by running the merging algorithm over
// the boundary-union pieces.  h1 and h2 must share a domain.  This is the
// primitive behind the streaming builder and any distributed merge tree.
// `options` carries the usual delta/gamma knobs plus num_threads for the
// engine's data-parallel candidate pass (output is thread-count invariant).
StatusOr<Histogram> MergeHistograms(const Histogram& h1, double weight1,
                                    const Histogram& h2, double weight2,
                                    int64_t k,
                                    const MergingOptions& options =
                                        MergingOptions());

}  // namespace fasthist

#endif  // FASTHIST_CORE_MERGING_H_
