#include "core/hierarchical.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/parallel.h"

namespace fasthist {

double HierarchicalHistogram::IntervalError(int64_t begin, int64_t end) const {
  end = std::min(end, domain_size_);
  if (end - begin < 2) return 0.0;
  const double sum = prefix_sum_[static_cast<size_t>(end)] -
                     prefix_sum_[static_cast<size_t>(begin)];
  const double sumsq = prefix_sumsq_[static_cast<size_t>(end)] -
                       prefix_sumsq_[static_cast<size_t>(begin)];
  return std::max(0.0, sumsq - sum * sum / static_cast<double>(end - begin));
}

double HierarchicalHistogram::IntervalMean(int64_t begin, int64_t end) const {
  end = std::min(end, domain_size_);
  if (end <= begin) return 0.0;
  const double sum = prefix_sum_[static_cast<size_t>(end)] -
                     prefix_sum_[static_cast<size_t>(begin)];
  return sum / static_cast<double>(end - begin);
}

StatusOr<HierarchicalHistogram> HierarchicalHistogram::Build(
    const SparseFunction& q, int num_threads) {
  if (q.domain_size() <= 0) {
    return Status::Invalid("HierarchicalHistogram: empty domain");
  }
  if (num_threads < 1) {
    return Status::Invalid("HierarchicalHistogram: num_threads must be >= 1");
  }
  HierarchicalHistogram h;
  h.domain_size_ = q.domain_size();
  h.padded_size_ = 1;
  h.num_levels_ = 1;
  while (h.padded_size_ < h.domain_size_) {
    h.padded_size_ <<= 1;
    ++h.num_levels_;
  }

  const size_t n = static_cast<size_t>(h.domain_size_);
  h.prefix_sum_.assign(n + 1, 0.0);
  h.prefix_sumsq_.assign(n + 1, 0.0);
  {
    const std::vector<double> dense = q.ToDense();
    for (size_t i = 0; i < n; ++i) {
      h.prefix_sum_[i + 1] = h.prefix_sum_[i] + dense[i];
      h.prefix_sumsq_[i + 1] = h.prefix_sumsq_[i] + dense[i] * dense[i];
    }
  }

  // Per-level error of the uniform dyadic partition (intervals clipped to
  // the real domain).  The work is geometric in the level — level 0 alone
  // is half of it — so parallelizing across levels cannot balance; instead
  // every level is cut into fixed-size blocks of intervals (uniform cost,
  // so contiguous static chunks balance across threads) whose partial sums
  // are accumulated in block order.  The block decomposition depends only
  // on the domain, never on num_threads, so level_err_ is identical for
  // every thread count — and bit-identical to the plain serial sum whenever
  // a level fits in one block (every test-sized domain does).
  constexpr int64_t kLevelBlock = 4096;  // intervals per partial-sum block
  struct Block {
    int64_t level = 0;
    int64_t first = 0;  // index of the block's first interval in the level
  };
  std::vector<Block> blocks;
  std::vector<int64_t> level_first_block(
      static_cast<size_t>(h.num_levels_) + 1, 0);
  for (int64_t level = 0; level < h.num_levels_; ++level) {
    const int64_t width = int64_t{1} << level;
    const int64_t num_intervals = (h.domain_size_ + width - 1) / width;
    level_first_block[static_cast<size_t>(level)] =
        static_cast<int64_t>(blocks.size());
    for (int64_t first = 0; first < num_intervals; first += kLevelBlock) {
      blocks.push_back({level, first});
    }
  }
  level_first_block[static_cast<size_t>(h.num_levels_)] =
      static_cast<int64_t>(blocks.size());

  std::vector<double> partials(blocks.size(), 0.0);
  // Clamped to the hardware like every pool call site: oversubscribing a
  // small container would only add context switching (util/parallel.h).
  const int effective_threads = EffectiveParallelism(num_threads);
  ThreadPool* pool =
      effective_threads > 1 ? &ThreadPool::Shared(effective_threads) : nullptr;
  ParallelFor(pool, 0, static_cast<int64_t>(blocks.size()), 1,
              [&](int64_t block_begin, int64_t block_end) {
                for (int64_t b = block_begin; b < block_end; ++b) {
                  const Block& block = blocks[static_cast<size_t>(b)];
                  const int64_t width = int64_t{1} << block.level;
                  const int64_t last = std::min(
                      block.first + kLevelBlock,
                      (h.domain_size_ + width - 1) / width);
                  double err_squared = 0.0;
                  for (int64_t j = block.first; j < last; ++j) {
                    err_squared +=
                        h.IntervalError(j * width, (j + 1) * width);
                  }
                  partials[static_cast<size_t>(b)] = err_squared;
                }
              });

  h.level_err_.resize(static_cast<size_t>(h.num_levels_));
  for (int64_t level = 0; level < h.num_levels_; ++level) {
    double err_squared = 0.0;
    for (int64_t b = level_first_block[static_cast<size_t>(level)];
         b < level_first_block[static_cast<size_t>(level) + 1]; ++b) {
      err_squared += partials[static_cast<size_t>(b)];
    }
    h.level_err_[static_cast<size_t>(level)] = std::sqrt(err_squared);
  }
  return h;
}

std::vector<HierarchicalHistogram::ParetoPoint>
HierarchicalHistogram::ParetoCurve() const {
  std::vector<ParetoPoint> curve;
  curve.reserve(static_cast<size_t>(num_levels_));
  for (int level = 0; level < num_levels_; ++level) {
    const int64_t width = int64_t{1} << level;
    curve.push_back({level, (domain_size_ + width - 1) / width,
                     level_err_[static_cast<size_t>(level)]});
  }
  return curve;
}

StatusOr<HierarchicalHistogram::Selection> HierarchicalHistogram::SelectForK(
    int64_t k) const {
  if (k < 1) return Status::Invalid("SelectForK: k must be >= 1");

  struct Leaf {
    int64_t begin;
    int64_t width;  // dyadic width (may overhang the domain; error clips)
    double err_squared;
  };
  const auto smaller_error = [](const Leaf& a, const Leaf& b) {
    return a.err_squared < b.err_squared;
  };
  std::priority_queue<Leaf, std::vector<Leaf>, decltype(smaller_error)> heap(
      smaller_error);
  heap.push({0, padded_size_, IntervalError(0, padded_size_)});

  const int64_t target = std::min(8 * k, domain_size_);
  std::vector<Leaf> done;
  while (!heap.empty() &&
         static_cast<int64_t>(heap.size() + done.size()) < target) {
    const Leaf top = heap.top();
    if (top.err_squared <= 0.0) break;  // already exact everywhere
    heap.pop();
    const int64_t half = top.width / 2;
    for (const int64_t begin : {top.begin, top.begin + half}) {
      if (begin >= domain_size_) continue;  // fully in the padding
      Leaf child{begin, half, IntervalError(begin, begin + half)};
      if (half == 1) {
        done.push_back(child);  // cannot split further
      } else {
        heap.push(child);
      }
    }
  }
  while (!heap.empty()) {
    done.push_back(heap.top());
    heap.pop();
  }

  std::sort(done.begin(), done.end(),
            [](const Leaf& a, const Leaf& b) { return a.begin < b.begin; });
  Selection selection;
  std::vector<HistogramPiece> pieces;
  pieces.reserve(done.size());
  for (const Leaf& leaf : done) {
    const int64_t end = std::min(leaf.begin + leaf.width, domain_size_);
    pieces.push_back({{leaf.begin, end}, IntervalMean(leaf.begin, end)});
    selection.error_estimate += leaf.err_squared;
  }
  selection.error_estimate = std::sqrt(selection.error_estimate);
  selection.num_pieces = static_cast<int64_t>(pieces.size());
  auto histogram = Histogram::Create(domain_size_, std::move(pieces));
  if (!histogram.ok()) return histogram.status();
  selection.histogram = std::move(histogram).value();
  return selection;
}

}  // namespace fasthist
