#ifndef FASTHIST_CORE_HIERARCHICAL_H_
#define FASTHIST_CORE_HIERARCHICAL_H_

#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "dist/sparse_function.h"
#include "util/status.h"

namespace fasthist {

// Theorem 2.2 / Algorithm 2: the multi-scale (dyadic) histogram.  One build
// precomputes prefix statistics over the padded power-of-two domain; every
// dyadic interval's best-constant error is then O(1), so a single O(n) pass
// serves *all* piece budgets k simultaneously — via the per-level Pareto
// curve or the adaptive SelectForK refinement.
class HierarchicalHistogram {
 public:
  struct ParetoPoint {
    int level = 0;          // 0 = singletons, num_levels()-1 = root
    int64_t num_pieces = 0;
    double err = 0.0;       // l2 error of the level's uniform partition
  };

  struct Selection {
    int64_t num_pieces = 0;
    double error_estimate = 0.0;  // l2 error of the selected partition
    Histogram histogram;
  };

  // The per-level error pass is data-parallel over fixed-size blocks of
  // intervals (4096 per block) whose partial sums are combined in block
  // order — a decomposition that depends only on the domain, so level_err_
  // is identical for every num_threads.  Note the within-level summation is
  // block-associated even at num_threads = 1: on levels wider than one
  // block it can differ from a plain serial sum in the last float bits.
  // Threads come from the shared util/parallel pool; 1 means fully serial
  // execution.
  static StatusOr<HierarchicalHistogram> Build(const SparseFunction& q,
                                               int num_threads = 1);

  int num_levels() const { return num_levels_; }

  // (level, pieces, error) per dyadic level, finest first.
  std::vector<ParetoPoint> ParetoCurve() const;

  // Adaptive refinement for a target budget k: starting from the root,
  // repeatedly split the dyadic leaf with the largest error until 8k pieces
  // (or exhaustion).  Theorem 2.2's regime: pieces <= 8k with error within
  // a small constant of opt_k.
  StatusOr<Selection> SelectForK(int64_t k) const;

 private:
  double IntervalError(int64_t begin, int64_t end) const;  // clipped to n
  double IntervalMean(int64_t begin, int64_t end) const;

  int64_t domain_size_ = 0;
  int64_t padded_size_ = 0;  // next power of two >= domain_size_
  int num_levels_ = 0;
  std::vector<double> prefix_sum_;    // over [0, domain], size domain+1
  std::vector<double> prefix_sumsq_;
  std::vector<double> level_err_;     // indexed by level
};

}  // namespace fasthist

#endif  // FASTHIST_CORE_HIERARCHICAL_H_
