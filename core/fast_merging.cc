#include "core/fast_merging.h"

#include "core/internal/merge_engine.h"

namespace fasthist {

StatusOr<MergingResult> ConstructHistogramFast(const SparseFunction& q,
                                               int64_t k,
                                               const MergingOptions& options) {
  return internal::RunMergingRounds(q.domain_size(),
                                    internal::AtomsFromSparse(q), k, options,
                                    internal::SelectionStrategy::kSelect);
}

}  // namespace fasthist
