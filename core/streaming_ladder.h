#ifndef FASTHIST_CORE_STREAMING_LADDER_H_
#define FASTHIST_CORE_STREAMING_LADDER_H_

#include <algorithm>
#include <cstdint>
#include <utility>

#include "core/merging.h"
#include "dist/histogram.h"
#include "util/status.h"

namespace fasthist {
namespace streaming_ladder {

// The dyadic condensation ladder's commit and fold steps, extracted from
// StreamingHistogramBuilder so that any storage able to hold "one summary
// per level" runs the *same* computation: the builder's private vector of
// slots, and the summary store's SoA plane slices where thousands of keyed
// ladders share one slab (store/archetype_pool.h).  Both therefore produce
// bit-identical summaries from the same sample subsequence — the contract
// the keyed store's property tests pin down.
//
// Storage concept (duck-typed):
//   int   levels() const;            // ladder size, including vacant slots
//   int64_t count(int level) const;  // samples condensed at level; 0=vacant
//   StatusOr<Histogram> Load(int level) const;    // valid when count > 0
//   Status Store(int level, Histogram h, int64_t count);  // occupy slot
//   void  Clear(int level);          // vacate slot
//   Status PushLevel();              // append one vacant level at the top
//
// Level L, when occupied, holds the condensation of exactly 2^L consecutive
// buffers, and the occupied slots after F flushes are the binary digits of
// F — see the ladder narrative in core/streaming.h.

// Commits one freshly condensed buffer summary (`carry`, covering
// `carry_count` samples) into the ladder, carrying upward like binary
// addition: while the target level is occupied, the resident (older, so
// left operand) summary is merged with the carry and the slot is vacated.
// The merge sequence — operand order, weights, knobs — is exactly what
// StreamingHistogramBuilder::Flush has always run, so two ladders fed the
// same condensed buffers stay bit-identical regardless of who owns the
// slots.
template <typename Storage>
Status Commit(Storage& ladder, Histogram carry, int64_t carry_count,
              int64_t k, const MergingOptions& options) {
  int level = 0;
  while (level < ladder.levels() && ladder.count(level) > 0) {
    auto resident = ladder.Load(level);
    if (!resident.ok()) return resident.status();
    auto merged = MergeHistograms(
        *resident, static_cast<double>(ladder.count(level)), carry,
        static_cast<double>(carry_count), k, options);
    if (!merged.ok()) return merged.status();
    carry = std::move(merged).value();
    carry_count += ladder.count(level);
    ladder.Clear(level);
    ++level;
  }
  if (level == ladder.levels()) {
    if (Status s = ladder.PushLevel(); !s.ok()) return s;
  }
  return ladder.Store(level, std::move(carry), carry_count);
}

// Folds the occupied slots to a single histogram, oldest (highest level)
// first so stream order chains left to right.  This is the committed-prefix
// half of the read-side fold (StreamingHistogramBuilder::CommittedSummary);
// callers with buffered samples chain them in afterwards with
// StreamingHistogramBuilder::FoldBufferIntoSummary.  Invalid on an empty
// ladder.
template <typename Storage>
StatusOr<Histogram> Fold(const Storage& ladder, int64_t k,
                         const MergingOptions& options) {
  bool have = false;
  Histogram acc;
  int64_t acc_count = 0;
  for (int level = ladder.levels(); level-- > 0;) {
    const int64_t level_count = ladder.count(level);
    if (level_count == 0) continue;
    auto loaded = ladder.Load(level);
    if (!loaded.ok()) return loaded.status();
    if (!have) {
      acc = std::move(loaded).value();
      acc_count = level_count;
      have = true;
      continue;
    }
    auto merged =
        MergeHistograms(acc, static_cast<double>(acc_count), *loaded,
                        static_cast<double>(level_count), k, options);
    if (!merged.ok()) return merged.status();
    acc = std::move(merged).value();
    acc_count += level_count;
  }
  if (!have) return Status::Invalid("streaming_ladder::Fold: empty ladder");
  return acc;
}

// 1 + the highest occupied level (0 when nothing is committed): the deepest
// commit-side merge chain any sample has passed through, counting its
// initial condense.  After F flushes this is floor(log2 F) + 1.
template <typename Storage>
int Depth(const Storage& ladder) {
  for (int level = ladder.levels(); level-- > 0;) {
    if (ladder.count(level) > 0) return level + 1;
  }
  return 0;
}

// Occupied slots (the popcount of the flush counter): how many live
// summaries the read-side fold has to chain together.
template <typename Storage>
int Slots(const Storage& ladder) {
  int slots = 0;
  for (int level = 0; level < ladder.levels(); ++level) {
    if (ladder.count(level) > 0) ++slots;
  }
  return slots;
}

// Error levels of the summary the read-side fold returns right now, from
// the ladder accounting plus whether unsummarized samples sit buffered:
// 0 with no samples at all, otherwise the deepest per-source chain plus 1
// when the fold has more than one source to chain.  Shared convention with
// MergeTreeResult::error_levels, so budgets compose additively.
inline int ErrorLevels(int depth, int slots, bool buffered) {
  const int sources = slots + (buffered ? 1 : 0);
  if (sources == 0) return 0;
  const int deepest = std::max(depth, buffered ? 1 : 0);
  return deepest + (sources > 1 ? 1 : 0);
}

}  // namespace streaming_ladder
}  // namespace fasthist

#endif  // FASTHIST_CORE_STREAMING_LADDER_H_
