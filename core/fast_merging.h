#ifndef FASTHIST_CORE_FAST_MERGING_H_
#define FASTHIST_CORE_FAST_MERGING_H_

#include <cstdint>

#include "core/merging.h"
#include "dist/sparse_function.h"
#include "poly/poly_merging.h"
#include "util/status.h"

namespace fasthist {

// Theorem 3.4: the sample-linear variant of Algorithm 1.  Each round finds
// the m pairs with the largest merged error with a linear-time selection
// (std::nth_element) instead of a full sort; since round sizes decay
// geometrically (s -> ceil(s/2) + m), total work is O(s) in the support
// size s instead of O(s log s).
//
// Contract: because the selection uses the same strict (error, index) order
// as the sorting variant, the selected pair sets — and therefore the output
// partition, values, err_squared and num_rounds — are identical to
// ConstructHistogram on every input.  The test suite asserts this.
StatusOr<MergingResult> ConstructHistogramFast(
    const SparseFunction& q, int64_t k,
    const MergingOptions& options = MergingOptions());

}  // namespace fasthist

#endif  // FASTHIST_CORE_FAST_MERGING_H_
