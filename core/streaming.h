#ifndef FASTHIST_CORE_STREAMING_H_
#define FASTHIST_CORE_STREAMING_H_

#include <cstdint>
#include <vector>

#include "core/merging.h"
#include "dist/histogram.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// Mergeable streaming summary (Section 4 / Lemma 4.2): samples are buffered
// up to `buffer_capacity`; each full buffer is condensed into a ~2k+1-piece
// histogram of its empirical distribution and committed into a **dyadic
// condensation ladder** — a vector of level slots where slot L, when
// occupied, holds the summary of exactly 2^L consecutive buffers.  A freshly
// condensed buffer enters at level 0 and carries upward like binary
// addition: while the target level is occupied, the resident summary is
// merged with the carry (equal sample counts, so the weighted merge is
// balanced) and the slot is vacated.  After F flushes the occupied slots are
// the binary digits of F, so any single sample's summary participates in at
// most ceil(log2 F) committed merges plus the O(1) read-side fold — the
// sqrt(1+delta)-per-level bound of the mergeability lemma degrades
// logarithmically with stream length instead of linearly (the pre-ladder
// builder folded every buffer into one running summary, one merge level per
// flush).  Memory is O(buffer + k log F) and the exported summary
// approximates the empirical distribution of everything ingested so far.
class StreamingHistogramBuilder {
 public:
  // `options` (delta/gamma/num_threads) is applied to every internal
  // condense and merge, so a multi-threaded ingest path just sets
  // options.num_threads — summaries are bit-identical either way.
  static StatusOr<StreamingHistogramBuilder> Create(
      int64_t domain_size, int64_t k, size_t buffer_capacity,
      const MergingOptions& options = MergingOptions());

  // Copyable (tests snapshot builder state by value) and movable: pools
  // that recycle builders — or hand them between stripes — can move-assign
  // into an existing slot without reallocating the destination's buffers.
  StreamingHistogramBuilder(const StreamingHistogramBuilder&) = default;
  StreamingHistogramBuilder& operator=(const StreamingHistogramBuilder&) =
      default;
  StreamingHistogramBuilder(StreamingHistogramBuilder&&) = default;
  StreamingHistogramBuilder& operator=(StreamingHistogramBuilder&&) = default;

  // Reuse without reallocation: drops every ingested sample (buffer, ladder
  // occupancy, counters, generation) but keeps the buffer's reserved
  // capacity and the ladder's level slots, so recycling a warm builder
  // skips the construction allocations a fresh Create would pay again.
  // After Reset() the builder is observationally identical to a freshly
  // created one with the same arguments (asserted by streaming_test;
  // perf_smoke_test pins the warm-reuse allocation count).
  void Reset();

  // Samples must lie in [0, domain_size).
  Status Add(int64_t sample);

  // Bulk ingest: appends whole chunks into the buffer (one memcpy-sized
  // insert per chunk instead of a push_back per sample) and condenses once
  // per full buffer.  The flush boundaries are the same as the Add loop's,
  // so the resulting summary — and the builder state, including after a
  // mid-batch out-of-domain error — is bit-identical to calling Add per
  // sample.  Takes a pointer+length view (std::vector arguments convert
  // implicitly), so callers can ingest slices of arbitrary buffers —
  // network frames, mmapped columns — without copying into a vector first.
  Status AddMany(Span<const int64_t> samples);

  // Returns the current summary as a (mass ~1) histogram over the domain
  // and then flushes the buffer into the ladder.  With no samples ingested
  // yet, returns the uniform distribution.  The builder remains usable
  // afterwards.  The returned histogram is computed with the same read-side
  // fold as Peek() *before* the flush commits, so Snapshot() on a copy of a
  // builder is bit-identical to Peek() on the original — the dyadic commit
  // reassociates future merges but never changes what this call returns.
  StatusOr<Histogram> Snapshot();

  // Const snapshot: folds the live ladder slots (oldest/highest level first)
  // and then the condensed buffered samples, without mutating any builder
  // state, so a reader can export the current summary without forcing a
  // flush (ShardIngestor::ExportSnapshot is the serving caller).  Peek
  // never mutates, but it is not synchronized — callers must serialize it
  // against concurrent writers (Add/AddMany/Snapshot).
  StatusOr<Histogram> Peek() const;

  int64_t num_samples() const {
    return summarized_count_ + static_cast<int64_t>(buffer_.size());
  }

  // --- Generation hooks for concurrent wrappers ---------------------------
  //
  // The builder itself is single-writer and unsynchronized; these hooks are
  // what service/striped_ingestor.h's seqlock protocol is built from.  The
  // generation counts committed condenses (buffer -> ladder commits), so a
  // wrapper can tag everything it republishes for concurrent readers with
  // the generation it was derived from, bracket the builder's mutation
  // window with an odd/even epoch, and detect "a condense happened while I
  // was reading" as a generation change.

  // Committed condenses so far; bumped exactly once per buffer commit
  // (Flush with a non-empty buffer), never by Peek.
  uint64_t generation() const { return generation_; }

  // Samples sitting in the not-yet-condensed buffer.
  size_t buffered() const { return buffer_.size(); }

  size_t buffer_capacity() const { return buffer_capacity_; }
  int64_t summarized_count() const { return summarized_count_; }
  const MergingOptions& options() const { return options_; }

  // --- Error-level accounting (Lemma 4.2) ---------------------------------
  //
  // One "level" is one lossy step: a buffer condense, a committed carry
  // merge, or the read-side fold pass that chains the live slots (and the
  // buffered remainder) left to right — the same convention as
  // MergeTreeResult::error_levels and StripedShardIngestor's
  // kReconcileErrorLevels, so budgets compose additively across layers.

  // 1 + the highest occupied ladder level (0 when nothing is committed):
  // the deepest commit-side chain any sample has passed through, counting
  // its initial condense.  After F flushes this is floor(log2 F) + 1.
  int ladder_depth() const;

  // Occupied ladder slots (the popcount of the flush counter): how many
  // live summaries the read-side fold has to chain together.
  int ladder_slots() const;

  // Error levels of the summary Peek()/Snapshot() returns right now:
  // 0 with no samples at all, otherwise the deepest per-source chain
  // (max(ladder_depth, 1-if-buffered)) plus 1 when the read fold has more
  // than one source to chain.  After F = n/b flushes with an empty buffer
  // this is at most ceil(log2 F) + 2, and it never exceeds that while
  // samples sit buffered.
  int error_levels() const;

  // The committed ladder folded to a single histogram (valid only when
  // summarized_count() > 0): live slots chained oldest (highest level)
  // first, with no buffered remainder mixed in.  This is the exact prefix
  // of the Peek() fold, so a wrapper that republishes it and later folds a
  // buffer copy in with FoldBufferIntoSummary reproduces Peek()
  // bit-identically (the striped ingestor's export path).
  StatusOr<Histogram> CommittedSummary() const;

  // The condense+fold step the read path is built from, exposed so wrappers
  // can run the exact same computation on state they manage themselves
  // (e.g. a seqlock-consistent copy read off another thread's stripe):
  // condenses `buffer` (non-empty, in-domain) to a ~2k+1-piece histogram
  // and, when `summary` is non-null, folds it in with weights
  // (summarized_count : buffer.size()).  Pure: no builder involved,
  // bit-identical to what Peek()/Snapshot() produce from the same
  // (CommittedSummary, summarized_count, buffer) state.
  static StatusOr<Histogram> FoldBufferIntoSummary(
      const Histogram* summary, int64_t summarized_count,
      Span<const int64_t> buffer, int64_t domain_size, int64_t k,
      const MergingOptions& options);

 private:
  // One ladder slot: `count == 0` means vacant, otherwise `summary` holds
  // the condensation of `count` samples (2^level buffers' worth).
  struct LadderSlot {
    Histogram summary;
    int64_t count = 0;
  };

  // Adapter exposing `ladder_` to the shared commit/fold hooks in
  // core/streaming_ladder.h (the same hooks the keyed summary store runs
  // over its SoA plane slices, which is what keeps a store slot
  // bit-identical to a standalone builder).  Defined in streaming.cc.
  struct VectorLadder;

  StreamingHistogramBuilder(int64_t domain_size, int64_t k,
                            size_t buffer_capacity,
                            const MergingOptions& options)
      : domain_size_(domain_size),
        k_(k),
        buffer_capacity_(buffer_capacity),
        options_(options) {
    buffer_.reserve(buffer_capacity_);
  }

  Status Flush();

  // The Peek() computation: fold the live ladder slots highest level first,
  // then chain the condensed buffer in.  Snapshot() returns this value
  // computed *before* its Flush commits, which is what keeps Peek() ==
  // Snapshot() bit-identical, and the striped ingestor's exports
  // bit-identical to a per-stripe serial replay.
  StatusOr<Histogram> FoldedView() const;

  int64_t domain_size_;
  int64_t k_;
  size_t buffer_capacity_;
  MergingOptions options_;
  std::vector<int64_t> buffer_;
  std::vector<LadderSlot> ladder_;  // index = level; slot L covers 2^L buffers
  int64_t summarized_count_ = 0;    // samples already committed to the ladder
  uint64_t generation_ = 0;         // committed condenses (see generation())
};

}  // namespace fasthist

#endif  // FASTHIST_CORE_STREAMING_H_
