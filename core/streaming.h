#ifndef FASTHIST_CORE_STREAMING_H_
#define FASTHIST_CORE_STREAMING_H_

#include <cstdint>
#include <vector>

#include "core/merging.h"
#include "dist/histogram.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// Mergeable streaming summary (Section 4 / Lemma 4.2): samples are buffered
// up to `buffer_capacity`; each full buffer is condensed into a ~2k+1-piece
// histogram of its empirical distribution and folded into the running
// summary with a weighted MergeHistograms.  Memory is O(buffer + k)
// regardless of the stream length, and the summary approximates the
// empirical distribution of everything ingested so far.
class StreamingHistogramBuilder {
 public:
  // `options` (delta/gamma/num_threads) is applied to every internal
  // condense and merge, so a multi-threaded ingest path just sets
  // options.num_threads — summaries are bit-identical either way.
  static StatusOr<StreamingHistogramBuilder> Create(
      int64_t domain_size, int64_t k, size_t buffer_capacity,
      const MergingOptions& options = MergingOptions());

  // Samples must lie in [0, domain_size).
  Status Add(int64_t sample);

  // Bulk ingest: appends whole chunks into the buffer (one memcpy-sized
  // insert per chunk instead of a push_back per sample) and condenses once
  // per full buffer.  The flush boundaries are the same as the Add loop's,
  // so the resulting summary — and the builder state, including after a
  // mid-batch out-of-domain error — is bit-identical to calling Add per
  // sample.  Takes a pointer+length view (std::vector arguments convert
  // implicitly), so callers can ingest slices of arbitrary buffers —
  // network frames, mmapped columns — without copying into a vector first.
  Status AddMany(Span<const int64_t> samples);

  // Flushes the buffer and returns the current summary as a (mass ~1)
  // histogram over the domain.  With no samples ingested yet, returns the
  // uniform distribution.  The builder remains usable afterwards.
  StatusOr<Histogram> Snapshot();

  // Const snapshot: condenses a copy of the buffered samples and folds it
  // into the running summary without mutating any builder state, so a
  // reader can export the current summary without forcing a flush (the
  // ROADMAP "snapshot-without-flush" item; ShardIngestor::ExportSnapshot
  // is the serving caller).  The returned histogram is bit-identical to
  // what Snapshot() would return at this point.  Peek never mutates, but
  // it is not synchronized — callers must serialize it against concurrent
  // writers (Add/AddMany/Snapshot).
  StatusOr<Histogram> Peek() const;

  int64_t num_samples() const {
    return summarized_count_ + static_cast<int64_t>(buffer_.size());
  }

  // --- Generation hooks for concurrent wrappers ---------------------------
  //
  // The builder itself is single-writer and unsynchronized; these hooks are
  // what service/striped_ingestor.h's seqlock protocol is built from.  The
  // generation counts committed condenses (buffer -> summary folds), so a
  // wrapper can tag everything it republishes for concurrent readers with
  // the generation it was derived from, bracket the builder's mutation
  // window with an odd/even epoch, and detect "a condense happened while I
  // was reading" as a generation change.  It is also the summary's error-
  // level count (Lemma 4.2: one lossy condensation per committed fold).

  // Committed condenses so far; bumped exactly once per buffer fold
  // (Flush with a non-empty buffer), never by Peek.
  uint64_t generation() const { return generation_; }

  // Samples sitting in the not-yet-condensed buffer.
  size_t buffered() const { return buffer_.size(); }

  size_t buffer_capacity() const { return buffer_capacity_; }
  int64_t summarized_count() const { return summarized_count_; }
  const MergingOptions& options() const { return options_; }

  // The committed summary (valid iff summarized_count() > 0): what the
  // condensed stream folds to, with no buffered remainder mixed in.  A
  // wrapper republishes a copy of this after each condense.
  const Histogram& summary() const { return summary_; }

  // The single condense+fold step every summary in this class comes from,
  // exposed so wrappers can run the exact same computation on state they
  // manage themselves (e.g. a seqlock-consistent copy read off another
  // thread's stripe): condenses `buffer` (non-empty, in-domain) to a
  // ~2k+1-piece histogram and, when `summary` is non-null, folds it in
  // with weights (summarized_count : buffer.size()).  Pure: no builder
  // involved, bit-identical to what Peek()/Snapshot() produce from the
  // same (summary, summarized_count, buffer) state.
  static StatusOr<Histogram> FoldBufferIntoSummary(
      const Histogram* summary, int64_t summarized_count,
      Span<const int64_t> buffer, int64_t domain_size, int64_t k,
      const MergingOptions& options);

 private:
  StreamingHistogramBuilder(int64_t domain_size, int64_t k,
                            size_t buffer_capacity,
                            const MergingOptions& options)
      : domain_size_(domain_size),
        k_(k),
        buffer_capacity_(buffer_capacity),
        options_(options) {
    buffer_.reserve(buffer_capacity_);
  }

  Status Flush();

  // The summary that results from folding `buffer` (non-empty) into the
  // current (summary_, summarized_count_) state, with no mutation.  Flush
  // commits the result; Peek returns and discards it — sharing the exact
  // computation (FoldBufferIntoSummary) is what keeps Peek() == Snapshot()
  // bit-identical, and the striped ingestor's exports bit-identical to a
  // per-stripe serial replay.
  StatusOr<Histogram> FoldedSummary(Span<const int64_t> buffer) const;

  int64_t domain_size_;
  int64_t k_;
  size_t buffer_capacity_;
  MergingOptions options_;
  std::vector<int64_t> buffer_;
  Histogram summary_;             // valid iff summarized_count_ > 0
  int64_t summarized_count_ = 0;  // samples already folded into summary_
  uint64_t generation_ = 0;       // committed condenses (see generation())
};

}  // namespace fasthist

#endif  // FASTHIST_CORE_STREAMING_H_
