#include "core/internal/merge_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <utility>

#include "poly/fit_poly.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace fasthist {
namespace internal {

EngineCounters& EngineCountersForTesting() {
  // Thread-local so concurrent constructions (merge-tree groups running on
  // pool workers) never race; tests reset and read on one thread.
  thread_local EngineCounters counters;
  return counters;
}

void ResetEngineCountersForTesting() {
  EngineCountersForTesting() = EngineCounters();
}

namespace {

// Chunk-size floors for the data-parallel passes: histogram merges are a
// few flops each, so chunks must be large to amortize dispatch; poly refits
// scan their support, so much smaller chunks already pay off; the selection
// mark pass is a byte-wide scan and needs the largest chunks of all.
// ParallelFor's scheduling rule (util/parallel.h) guarantees at least one
// full grain of work per task and stays serial below two grains.
constexpr int64_t kHistogramGrain = 8192;
constexpr int64_t kPolyGrain = 64;
constexpr int64_t kSelectGrain = 32768;
// Below this keep count the selection threshold comes from a single
// sequential top-k heap scan instead of copy + nth_element (see
// SelectThreshold): with the paper's settings keep ~ k, which is tiny
// against millions of pairs, and the heap scan touches the error plane
// exactly once.
constexpr size_t kHeapSelectCutoff = 2048;
// Interior chunk boundaries are rounded down to a cache line's worth of
// elements, so adjacent chunks never write the same line at a seam.
constexpr int64_t kDoubleAlign = 8;   // 8 doubles = 64 bytes
constexpr int64_t kByteAlign = 64;    // keep_split is a char plane

// Clamp bound applied before double -> int64 casts of the keep/stop
// schedule.  k * (1 + 1/delta) overflows int64 for huge k and tiny delta,
// and casting an out-of-range double is UB; 2^62 is exactly representable,
// castable, and far beyond any real partition size, so clamping there
// preserves the "keep everything" semantics without the UB.
constexpr double kScheduleClamp = 4611686018427387904.0;  // 2^62

int64_t PairsKeptPerRound(int64_t k, const MergingOptions& options) {
  const double raw = static_cast<double>(k) * (1.0 + 1.0 / options.delta);
  return std::max(k, static_cast<int64_t>(std::min(raw, kScheduleClamp)));
}

// gamma stops the rounds early (Corollary 3.1): at most ~2*gamma*keep+1
// pieces survive, in exchange for fewer rounds over the large partitions.
// The inner product is clamped like the keep count (gamma is unbounded).
int64_t StopThreshold(int64_t keep, const MergingOptions& options) {
  const double inner = options.gamma * static_cast<double>(keep);
  return 2 * static_cast<int64_t>(std::min(inner, kScheduleClamp / 2.0)) + 1;
}

Status ValidateRoundArgs(int64_t domain_size, int64_t k,
                         const MergingOptions& options) {
  if (domain_size <= 0) {
    return Status::Invalid("merging: domain must be positive");
  }
  if (k < 1) return Status::Invalid("merging: k must be >= 1");
  if (!(options.delta > 0.0)) {
    return Status::Invalid("merging: delta must be positive");
  }
  if (!(options.gamma >= 1.0)) {
    return Status::Invalid("merging: gamma must be >= 1");
  }
  if (options.num_threads < 1) {
    return Status::Invalid("merging: num_threads must be >= 1");
  }
  return Status::Ok();
}

// The oversubscription guard of the adaptive schedule: a request for more
// threads than the machine has cores used to put 8 workers on 1 core and
// run 10x *slower* than serial (the committed BENCH_merge.json trajectory
// caught this at n=64M).  Requests are clamped to the hardware before a
// pool is chosen, and a clamp to 1 means no pool at all — the fully serial
// path.  Output is unaffected: the engine is bit-identical at any thread
// count by construction.
ThreadPool* PoolFor(const MergingOptions& options) {
  const int effective = EffectiveParallelism(options.num_threads);
  return effective > 1 ? &ThreadPool::Shared(effective) : nullptr;
}

// ---------------------------------------------------------------------------
// Structure-of-arrays stores.  RunRounds (below) is generic over a store
// that owns the current partition as parallel planes plus the candidate and
// next-generation buffers.  Every buffer persists across rounds — a round
// only resize()s within capacity reserved up front, so the steady state
// allocates nothing (the perf-smoke ctest and bench_micro ride on this).
// A store supplies
//   size_t size();                       current number of atoms
//   void EvaluatePairs(n, pool, err);    statistics + error of the n
//                                        adjacent pairs into the candidate
//                                        planes (the cold start: only the
//                                        first round needs a stand-alone
//                                        evaluation pass)
//   void CommitAndEvaluate(keep_split, n, pool, err);
//                                        THE fused round kernel: build the
//                                        next generation (kept pairs stay
//                                        split, the rest become their
//                                        candidate, an odd tail survives)
//                                        and, while those planes are hot,
//                                        produce the *next* round's
//                                        candidate statistics and errors —
//                                        one streaming pass instead of a
//                                        commit sweep plus an evaluate
//                                        sweep.  `err` carries the current
//                                        candidate errors in and the next
//                                        generation's out.
//   void Commit(keep_split, n, err);     the last round's commit, when no
//                                        further evaluation is needed
// and the loop owns everything the guarantee proof depends on: pairing, the
// strict (error desc, index asc) total order, the keep/stop schedule, and
// the round recursion s -> ceil(s/2) + keep (strictly decreasing while
// s > stop >= 2*keep + 1, so termination is structural).
//
// Threading: the fused kernel self-schedules.  It plans chunks of pairs
// (ChunkBoundary/ChunkCount, so the plan is a pure function of the sizes),
// counts kept pairs per chunk to derive each chunk's output offset, writes
// the next generation and in-chunk candidates data-parallel, and finishes
// the few candidates that straddle chunk seams (plus the odd tail's pair)
// serially.  Every atom and candidate value is produced by the same
// single-rounded double operations whichever path computes it, so serial,
// fused-serial, fused-parallel, and the SIMD cold start are bit-identical.
// ---------------------------------------------------------------------------

// Histogram store: closed-form sufficient statistics, O(1) per merge.  The
// partition planes are len[]/sum[]/sumsq[] — interval *lengths*, not
// endpoints: atoms always tile the domain contiguously, so endpoints are
// recovered by a prefix sum at Finish and the round loop streams three
// planes instead of five.  (Lengths are exact in a double up to 2^53 —
// far beyond any real domain, and the same limit the residual formula
// already had.)  The cold start is the streaming kernel trio PairwiseSum
// (sum, sumsq, len) + ResidualError (util/simd.h); the fused kernel
// produces the identical values scalar while committing.
class HistogramStore {
 public:
  explicit HistogramStore(const std::vector<MergeAtom>& atoms) {
    const size_t n = atoms.size();
    origin_ = n > 0 ? atoms[0].begin : 0;
    len_.resize(n);
    sum_.resize(n);
    sumsq_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      len_[i] = static_cast<double>(atoms[i].end - atoms[i].begin);
      sum_[i] = atoms[i].sum;
      sumsq_[i] = atoms[i].sumsq;
    }
    cand_len_.reserve(n / 2);
    cand_sum_.reserve(n / 2);
    cand_sumsq_.reserve(n / 2);
    next_len_.reserve(n);
    next_sum_.reserve(n);
    next_sumsq_.reserve(n);
  }

  size_t size() const { return len_.size(); }

  void EvaluatePairs(size_t num_pairs, ThreadPool* pool,
                     std::vector<double>& err) {
    ++EngineCountersForTesting().evaluate_passes;
    cand_len_.resize(num_pairs);
    cand_sum_.resize(num_pairs);
    cand_sumsq_.resize(num_pairs);
    err.resize(num_pairs);
    err_out_ = err.data();
    ParallelFor(
        pool, 0, static_cast<int64_t>(num_pairs), kHistogramGrain,
        [this](int64_t chunk_begin, int64_t chunk_end) {
          const size_t lo = static_cast<size_t>(chunk_begin);
          const size_t count = static_cast<size_t>(chunk_end - chunk_begin);
          simd::PairwiseSum(sum_.data() + 2 * lo, count,
                            cand_sum_.data() + lo);
          simd::PairwiseSum(sumsq_.data() + 2 * lo, count,
                            cand_sumsq_.data() + lo);
          simd::PairwiseSum(len_.data() + 2 * lo, count,
                            cand_len_.data() + lo);
          simd::ResidualError(cand_sum_.data() + lo, cand_sumsq_.data() + lo,
                              cand_len_.data() + lo, count, err_out_ + lo);
        },
        kDoubleAlign);
  }

  void CommitAndEvaluate(const std::vector<char>& keep_split,
                         size_t num_pairs, ThreadPool* pool,
                         std::vector<double>& err) {
    ++EngineCountersForTesting().fused_passes;
    const int64_t chunks =
        pool == nullptr
            ? 1
            : ChunkCount(static_cast<int64_t>(num_pairs), kHistogramGrain,
                         pool->num_threads());
    if (chunks <= 1) {
      CommitAndEvaluateSerial(keep_split, num_pairs, err);
    } else {
      CommitAndEvaluateParallel(keep_split, num_pairs, pool, chunks, err);
    }
  }

  void Commit(const std::vector<char>& keep_split, size_t num_pairs,
              const std::vector<double>& /*candidate_err*/) {
    ++EngineCountersForTesting().commit_passes;
    next_len_.clear();
    next_sum_.clear();
    next_sumsq_.clear();
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        for (const size_t i : {2 * p, 2 * p + 1}) {
          next_len_.push_back(len_[i]);
          next_sum_.push_back(sum_[i]);
          next_sumsq_.push_back(sumsq_[i]);
        }
      } else {
        next_len_.push_back(cand_len_[p]);
        next_sum_.push_back(cand_sum_[p]);
        next_sumsq_.push_back(cand_sumsq_[p]);
      }
    }
    if (size() % 2 == 1) {
      next_len_.push_back(len_.back());
      next_sum_.push_back(sum_.back());
      next_sumsq_.push_back(sumsq_.back());
    }
    len_.swap(next_len_);
    sum_.swap(next_sum_);
    sumsq_.swap(next_sumsq_);
  }

  // Flat-value histogram of the surviving partition and its summed error.
  // Endpoints come back from the length plane by an exact integer prefix
  // sum from the first atom's origin.
  StatusOr<MergingResult> Finish(int64_t domain_size,
                                 long long num_rounds) const {
    MergingResult result;
    result.num_rounds = num_rounds;
    result.err_squared = 0.0;
    std::vector<HistogramPiece> pieces;
    pieces.reserve(size());
    int64_t cursor = origin_;
    for (size_t i = 0; i < size(); ++i) {
      const double length = len_[i];
      const int64_t end = cursor + static_cast<int64_t>(length);
      pieces.push_back({{cursor, end}, sum_[i] / length});
      const double residual = sumsq_[i] - sum_[i] * sum_[i] / length;
      result.err_squared += residual > 0.0 ? residual : 0.0;
      cursor = end;
    }
    auto histogram = Histogram::Create(domain_size, std::move(pieces));
    if (!histogram.ok()) return histogram.status();
    result.histogram = std::move(histogram).value();
    return result;
  }

 private:
  // One fused streaming sweep: commit pair p's outcome, and as soon as an
  // adjacent output pair (2i, 2i+1) is complete, produce its candidate
  // statistics and error while both atoms are still in registers/L1.
  // Candidate writes land at index i, and by the output recursion
  // o <= 2p + 2 every write index is <= p with equality only for a kept
  // pair (whose candidate slot is dead) — so the candidate planes and the
  // error vector are safely reused in place.
  void CommitAndEvaluateSerial(const std::vector<char>& keep_split,
                               size_t num_pairs, std::vector<double>& err) {
    next_len_.clear();
    next_sum_.clear();
    next_sumsq_.clear();
    size_t ci = 0;  // next candidate index to produce
    const auto emit_ready = [&] {
      const size_t ready = next_len_.size() / 2;
      for (; ci < ready; ++ci) {
        EvaluateCandidate(ci, cand_len_.data(), cand_sum_.data(),
                          cand_sumsq_.data(), err.data());
      }
    };
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        for (const size_t i : {2 * p, 2 * p + 1}) {
          next_len_.push_back(len_[i]);
          next_sum_.push_back(sum_[i]);
          next_sumsq_.push_back(sumsq_[i]);
        }
      } else {
        next_len_.push_back(cand_len_[p]);
        next_sum_.push_back(cand_sum_[p]);
        next_sumsq_.push_back(cand_sumsq_[p]);
      }
      emit_ready();
    }
    if (size() % 2 == 1) {
      next_len_.push_back(len_.back());
      next_sum_.push_back(sum_.back());
      next_sumsq_.push_back(sumsq_.back());
      emit_ready();
    }
    FinishFusedRound(ci, err);
    cand_len_.resize(ci);
    cand_sum_.resize(ci);
    cand_sumsq_.resize(ci);
  }

  // The data-parallel fused sweep.  Chunk output offsets are derived from
  // per-chunk kept counts (pair p's output offset is p + kept-before-p), so
  // every chunk writes its slice of the next generation by index; each
  // chunk then evaluates the candidates wholly inside its output slice, and
  // the at-most-one candidate per seam (odd offset) plus the tail's pair
  // are finished serially after the barrier.  Candidate writes go to
  // double-buffered planes here: unlike the serial sweep, a chunk's
  // candidate indices can overlap an earlier chunk's still-unread pair
  // slots.
  void CommitAndEvaluateParallel(const std::vector<char>& keep_split,
                                 size_t num_pairs, ThreadPool* pool,
                                 int64_t chunks, std::vector<double>& err) {
    const size_t n = size();
    chunk_bounds_.resize(static_cast<size_t>(chunks) + 1);
    chunk_out_.resize(static_cast<size_t>(chunks) + 1);
    for (int64_t c = 0; c <= chunks; ++c) {
      chunk_bounds_[static_cast<size_t>(c)] = ChunkBoundary(
          0, static_cast<int64_t>(num_pairs), chunks, c, kDoubleAlign);
    }
    keep_in_ = keep_split.data();
    pool->ParallelFor(0, chunks, 1, [this](int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        size_t kept = 0;
        for (int64_t p = chunk_bounds_[static_cast<size_t>(c)];
             p < chunk_bounds_[static_cast<size_t>(c) + 1]; ++p) {
          kept += keep_in_[p] != 0;
        }
        chunk_out_[static_cast<size_t>(c) + 1] = kept;  // prefix below
      }
    });
    chunk_out_[0] = 0;
    for (int64_t c = 0; c < chunks; ++c) {
      chunk_out_[static_cast<size_t>(c) + 1] +=
          chunk_out_[static_cast<size_t>(c)] +
          static_cast<size_t>(chunk_bounds_[static_cast<size_t>(c) + 1] -
                              chunk_bounds_[static_cast<size_t>(c)]);
    }
    const size_t from_pairs = chunk_out_[static_cast<size_t>(chunks)];
    const size_t next_size = from_pairs + (n & 1);
    const size_t next_num_pairs = next_size / 2;
    next_len_.resize(next_size);
    next_sum_.resize(next_size);
    next_sumsq_.resize(next_size);
    pcand_len_.resize(next_num_pairs);
    pcand_sum_.resize(next_num_pairs);
    pcand_sumsq_.resize(next_num_pairs);
    if (n & 1) {  // odd tail, written before the dispatch so a tail-closing
                  // candidate (fixed up below) reads committed data
      next_len_[next_size - 1] = len_.back();
      next_sum_[next_size - 1] = sum_.back();
      next_sumsq_[next_size - 1] = sumsq_.back();
    }
    err.resize(next_num_pairs);  // disjoint writes only; nothing reads err
    err_out_ = err.data();
    pool->ParallelFor(0, chunks, 1, [this](int64_t cb, int64_t ce) {
      for (int64_t c = cb; c < ce; ++c) {
        const size_t out_end = chunk_out_[static_cast<size_t>(c) + 1];
        size_t o = chunk_out_[static_cast<size_t>(c)];
        for (int64_t p = chunk_bounds_[static_cast<size_t>(c)];
             p < chunk_bounds_[static_cast<size_t>(c) + 1]; ++p) {
          if (keep_in_[p]) {
            for (const size_t i :
                 {2 * static_cast<size_t>(p), 2 * static_cast<size_t>(p) + 1}) {
              next_len_[o] = len_[i];
              next_sum_[o] = sum_[i];
              next_sumsq_[o] = sumsq_[i];
              ++o;
            }
          } else {
            next_len_[o] = cand_len_[static_cast<size_t>(p)];
            next_sum_[o] = cand_sum_[static_cast<size_t>(p)];
            next_sumsq_[o] = cand_sumsq_[static_cast<size_t>(p)];
            ++o;
          }
        }
        for (size_t i = (chunk_out_[static_cast<size_t>(c)] + 1) / 2;
             2 * i + 1 < out_end; ++i) {
          EvaluateCandidate(i, pcand_len_.data(), pcand_sum_.data(),
                            pcand_sumsq_.data(), err_out_);
        }
      }
    });
    // Seam and tail candidates: the pair straddling each odd chunk-output
    // boundary, and the last pair when it closes over the odd tail.
    for (int64_t c = 1; c < chunks; ++c) {
      const size_t off = chunk_out_[static_cast<size_t>(c)];
      if (off & 1) {
        EvaluateCandidate((off - 1) / 2, pcand_len_.data(),
                          pcand_sum_.data(), pcand_sumsq_.data(), err_out_);
      }
    }
    if (2 * next_num_pairs > from_pairs) {
      EvaluateCandidate(next_num_pairs - 1, pcand_len_.data(),
                        pcand_sum_.data(), pcand_sumsq_.data(), err_out_);
    }
    FinishFusedRound(next_num_pairs, err);
    cand_len_.swap(pcand_len_);
    cand_sum_.swap(pcand_sum_);
    cand_sumsq_.swap(pcand_sumsq_);
  }

  // Candidate i of the *next* generation, from the just-committed planes.
  // Scalar, but operation-for-operation identical to the PairwiseSum +
  // ResidualError kernel pair the cold start uses — that is what keeps the
  // fused rounds bit-identical to a kernel sweep.
  void EvaluateCandidate(size_t i, double* out_len, double* out_sum,
                         double* out_sumsq, double* out_err) const {
    const double l = next_len_[2 * i] + next_len_[2 * i + 1];
    const double s = next_sum_[2 * i] + next_sum_[2 * i + 1];
    const double ss = next_sumsq_[2 * i] + next_sumsq_[2 * i + 1];
    out_len[i] = l;
    out_sum[i] = s;
    out_sumsq[i] = ss;
    const double r = ss - s * s / l;
    out_err[i] = r > 0.0 ? r : 0.0;
  }

  void FinishFusedRound(size_t next_num_pairs, std::vector<double>& err) {
    err.resize(next_num_pairs);
    len_.swap(next_len_);
    sum_.swap(next_sum_);
    sumsq_.swap(next_sumsq_);
  }

  int64_t origin_ = 0;
  // Current partition planes (lengths as exact integral doubles).
  std::vector<double> len_, sum_, sumsq_;
  // Candidate planes (merged statistics of pair p).
  std::vector<double> cand_len_, cand_sum_, cand_sumsq_;
  // Next-generation double buffers (swapped in by the fused pass / Commit).
  std::vector<double> next_len_, next_sum_, next_sumsq_;
  // Parallel-only candidate double buffers + the chunk plan (grown lazily:
  // the serial path — including every 1-core run — never touches them).
  std::vector<double> pcand_len_, pcand_sum_, pcand_sumsq_;
  std::vector<int64_t> chunk_bounds_;
  std::vector<size_t> chunk_out_;
  // Raw views stashed for the <=16-byte [this] lambda captures (libstdc++'s
  // std::function small-buffer limit, which keeps the serial-dispatch path
  // allocation-free).
  const char* keep_in_ = nullptr;
  double* err_out_ = nullptr;
};

// Piecewise-polynomial store: merging refits the degree-d least-squares
// projection on the union interval (coefficients are not additive across a
// boundary, so unlike the histogram moments the merged fit is recomputed
// from q's support — O(support-in-interval * degree) per merge, which keeps
// the whole construction sample-near-linear).  Coefficients live in a flat
// plane of stride degree+1, zero-padded past each interval's effective
// degree; bases are length-keyed cache entries shared by pointer.  The
// fused round here is two-phase when threaded: interval/basis/error planes
// and the per-length basis pre-warm are serial (GramBasisCache mutates on
// first use of a length), then the expensive part — coefficient plane
// copies and candidate refits — runs data-parallel.
class PolyStore {
 public:
  PolyStore(const SparseFunction& q, GramBasisCache* cache, int degree)
      : q_(&q), cache_(cache), stride_(static_cast<size_t>(degree) + 1) {}

  // Fits the support partition of q.  The refits are data-parallel; bases
  // are fetched (and so built) serially first, because GramBasisCache
  // mutates on first use of a length.
  void InitFromSupportPartition(ThreadPool* pool) {
    const std::vector<Interval> initial = SupportPartition(*q_);
    const size_t n = initial.size();
    begin_.resize(n);
    end_.resize(n);
    err_.resize(n);
    basis_.resize(n);
    coeff_.resize(n * stride_);
    for (size_t i = 0; i < n; ++i) {
      begin_[i] = initial[i].begin;
      end_[i] = initial[i].end;
      basis_[i] = &cache_->For(initial[i].length());
    }
    ParallelFor(pool, 0, static_cast<int64_t>(n), kPolyGrain,
                [this](int64_t chunk_begin, int64_t chunk_end) {
                  std::vector<double> scratch;
                  for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                    err_[i] = Refit(begin_[i], end_[i], *basis_[i],
                                    &coeff_[static_cast<size_t>(i) * stride_],
                                    scratch);
                  }
                });
    cand_coeff_.reserve((n / 2) * stride_);
    cand_basis_.reserve(n / 2);
    span_scratch_.reserve(n / 2);
    next_begin_.reserve(n);
    next_end_.reserve(n);
    next_err_.reserve(n);
    next_basis_.reserve(n);
    next_coeff_.reserve(n * stride_);
  }

  size_t size() const { return begin_.size(); }

  void EvaluatePairs(size_t num_pairs, ThreadPool* pool,
                     std::vector<double>& err) {
    ++EngineCountersForTesting().evaluate_passes;
    err.resize(num_pairs);
    cand_coeff_.resize(num_pairs * stride_);
    cand_basis_.resize(num_pairs);
    span_scratch_.resize(num_pairs);
    // Serial pre-warm: the merged spans come from one streaming kernel
    // sweep, then every merged length gets a cache entry, so the parallel
    // refits below only read the cache (std::map nodes are stable,
    // concurrent reads are safe).
    simd::PairwiseSpan(begin_.data(), end_.data(), num_pairs,
                       span_scratch_.data());
    for (size_t p = 0; p < num_pairs; ++p) {
      cand_basis_[p] = &cache_->For(static_cast<int64_t>(span_scratch_[p]));
    }
    err_out_ = err.data();
    ParallelFor(pool, 0, static_cast<int64_t>(num_pairs), kPolyGrain,
                [this](int64_t chunk_begin, int64_t chunk_end) {
                  std::vector<double> scratch;
                  for (int64_t p = chunk_begin; p < chunk_end; ++p) {
                    err_out_[p] =
                        Refit(begin_[2 * p], end_[2 * p + 1], *cand_basis_[p],
                              &cand_coeff_[static_cast<size_t>(p) * stride_],
                              scratch);
                  }
                });
  }

  void CommitAndEvaluate(const std::vector<char>& keep_split,
                         size_t num_pairs, ThreadPool* pool,
                         std::vector<double>& err) {
    ++EngineCountersForTesting().fused_passes;
    const int64_t chunks =
        pool == nullptr
            ? 1
            : ChunkCount(static_cast<int64_t>(num_pairs), kPolyGrain,
                         pool->num_threads());
    if (chunks <= 1) {
      CommitAndEvaluateSerial(keep_split, num_pairs, err);
    } else {
      CommitAndEvaluateParallel(keep_split, num_pairs, pool, chunks, err);
    }
  }

  void Commit(const std::vector<char>& keep_split, size_t num_pairs,
              const std::vector<double>& candidate_err) {
    ++EngineCountersForTesting().commit_passes;
    next_begin_.clear();
    next_end_.clear();
    next_err_.clear();
    next_basis_.clear();
    next_coeff_.clear();
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        AppendAtom(2 * p);
        AppendAtom(2 * p + 1);
      } else {
        AppendMerged(p, candidate_err[p]);
      }
    }
    if (size() % 2 == 1) AppendAtom(size() - 1);
    SwapInNextGeneration();
  }

  // Piecewise polynomial of the surviving partition and its summed error.
  StatusOr<PiecewisePolyResult> Finish(long long num_rounds) const {
    PiecewisePolyResult result;
    result.num_rounds = num_rounds;
    result.err_squared = 0.0;
    std::vector<PolyFit> fits(size());
    for (size_t i = 0; i < size(); ++i) {
      PolyFit& fit = fits[i];
      fit.interval = {begin_[i], end_[i]};
      fit.basis = *basis_[i];
      const auto first =
          coeff_.begin() + static_cast<ptrdiff_t>(i * stride_);
      fit.coefficients.assign(first, first + basis_[i]->degree() + 1);
      fit.err_squared = err_[i];
      result.err_squared += err_[i];
    }
    auto function =
        PiecewisePolynomial::Create(q_->domain_size(), std::move(fits));
    if (!function.ok()) return function.status();
    result.function = std::move(function).value();
    return result;
  }

 private:
  // The serial fused sweep: commit pair p, and refit each output pair's
  // candidate as soon as both atoms exist.  Candidate writes land at index
  // i <= p (equality only for kept pairs, whose candidate slot is dead), so
  // the candidate planes and error vector are reused in place; the basis
  // cache is safely mutated because everything here is one thread.
  void CommitAndEvaluateSerial(const std::vector<char>& keep_split,
                               size_t num_pairs, std::vector<double>& err) {
    next_begin_.clear();
    next_end_.clear();
    next_err_.clear();
    next_basis_.clear();
    next_coeff_.clear();
    size_t ci = 0;
    const auto emit_ready = [&] {
      const size_t ready = next_begin_.size() / 2;
      for (; ci < ready; ++ci) {
        const int64_t b = next_begin_[2 * ci];
        const int64_t e = next_end_[2 * ci + 1];
        const GramBasis& basis = cache_->For(e - b);
        cand_basis_[ci] = &basis;
        err[ci] = Refit(b, e, basis, &cand_coeff_[ci * stride_], scratch_);
      }
    };
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        AppendAtom(2 * p);
        AppendAtom(2 * p + 1);
      } else {
        AppendMerged(p, err[p]);
      }
      emit_ready();
    }
    if (size() % 2 == 1) {
      AppendAtom(size() - 1);
      emit_ready();
    }
    err.resize(ci);
    cand_basis_.resize(ci);
    cand_coeff_.resize(ci * stride_);
    SwapInNextGeneration();
  }

  // The threaded fused round.  Phase A (serial, cheap): interval, error and
  // basis planes of the next generation, chunk output offsets recorded at
  // each pair-chunk boundary, and the candidate basis pre-warm (the cache
  // mutates, so this cannot be parallel).  Phase B (parallel, the expensive
  // part): coefficient-plane copies by output index and candidate refits
  // wholly inside each chunk's output slice — refit coefficients go to a
  // double-buffered plane because candidate indices can overlap earlier
  // chunks' still-unread slots.  Phase C: seam/tail candidates, serial.
  void CommitAndEvaluateParallel(const std::vector<char>& keep_split,
                                 size_t num_pairs, ThreadPool* pool,
                                 int64_t chunks, std::vector<double>& err) {
    chunk_bounds_.resize(static_cast<size_t>(chunks) + 1);
    chunk_out_.resize(static_cast<size_t>(chunks) + 1);
    for (int64_t c = 0; c <= chunks; ++c) {
      chunk_bounds_[static_cast<size_t>(c)] =
          ChunkBoundary(0, static_cast<int64_t>(num_pairs), chunks, c, 1);
    }
    next_begin_.clear();
    next_end_.clear();
    next_err_.clear();
    next_basis_.clear();
    int64_t next_chunk = 0;
    for (size_t p = 0; p < num_pairs; ++p) {
      while (next_chunk <= chunks &&
             chunk_bounds_[static_cast<size_t>(next_chunk)] ==
                 static_cast<int64_t>(p)) {
        chunk_out_[static_cast<size_t>(next_chunk++)] = next_begin_.size();
      }
      if (keep_split[p]) {
        AppendAtomPlanes(2 * p);
        AppendAtomPlanes(2 * p + 1);
      } else {
        next_begin_.push_back(begin_[2 * p]);
        next_end_.push_back(end_[2 * p + 1]);
        next_err_.push_back(err[p]);
        next_basis_.push_back(cand_basis_[p]);
      }
    }
    while (next_chunk <= chunks) {
      chunk_out_[static_cast<size_t>(next_chunk++)] = next_begin_.size();
    }
    const size_t from_pairs = next_begin_.size();
    if (size() % 2 == 1) AppendAtomPlanes(size() - 1);
    const size_t next_size = next_begin_.size();
    const size_t next_num_pairs = next_size / 2;
    pcand_basis_.resize(next_num_pairs);
    for (size_t i = 0; i < next_num_pairs; ++i) {  // serial cache pre-warm
      pcand_basis_[i] =
          &cache_->For(next_end_[2 * i + 1] - next_begin_[2 * i]);
    }
    next_coeff_.resize(next_size * stride_);
    pcand_coeff_.resize(next_num_pairs * stride_);
    err.resize(next_num_pairs);  // disjoint writes; phase A consumed err
    err_out_ = err.data();
    keep_in_ = keep_split.data();
    pool->ParallelFor(0, chunks, 1, [this](int64_t cb, int64_t ce) {
      std::vector<double> scratch;
      for (int64_t c = cb; c < ce; ++c) {
        const size_t out_end = chunk_out_[static_cast<size_t>(c) + 1];
        size_t o = chunk_out_[static_cast<size_t>(c)];
        for (int64_t p = chunk_bounds_[static_cast<size_t>(c)];
             p < chunk_bounds_[static_cast<size_t>(c) + 1]; ++p) {
          if (keep_in_[p]) {
            CopyCoeff(&coeff_[2 * static_cast<size_t>(p) * stride_], o, 2);
            o += 2;
          } else {
            CopyCoeff(&cand_coeff_[static_cast<size_t>(p) * stride_], o, 1);
            o += 1;
          }
        }
        for (size_t i = (chunk_out_[static_cast<size_t>(c)] + 1) / 2;
             2 * i + 1 < out_end; ++i) {
          RefitCandidate(i, scratch);
        }
      }
    });
    if (size() % 2 == 1) {  // tail coefficient copy
      CopyCoeff(&coeff_[(size() - 1) * stride_], next_size - 1, 1);
    }
    for (int64_t c = 1; c < chunks; ++c) {  // seam candidates
      const size_t off = chunk_out_[static_cast<size_t>(c)];
      if (off & 1) RefitCandidate((off - 1) / 2, scratch_);
    }
    if (2 * next_num_pairs > from_pairs) {  // tail-closing candidate
      RefitCandidate(next_num_pairs - 1, scratch_);
    }
    cand_basis_.swap(pcand_basis_);
    cand_coeff_.swap(pcand_coeff_);
    SwapInNextGeneration();
  }

  void RefitCandidate(size_t i, std::vector<double>& scratch) {
    err_out_[i] = Refit(next_begin_[2 * i], next_end_[2 * i + 1],
                        *pcand_basis_[i], &pcand_coeff_[i * stride_], scratch);
  }

  void CopyCoeff(const double* src, size_t out_index, size_t atoms) {
    std::copy(src, src + atoms * stride_,
              next_coeff_.begin() + static_cast<ptrdiff_t>(out_index * stride_));
  }

  void AppendAtomPlanes(size_t i) {
    next_begin_.push_back(begin_[i]);
    next_end_.push_back(end_[i]);
    next_err_.push_back(err_[i]);
    next_basis_.push_back(basis_[i]);
  }

  void AppendAtom(size_t i) {
    AppendAtomPlanes(i);
    next_coeff_.insert(
        next_coeff_.end(),
        coeff_.begin() + static_cast<ptrdiff_t>(i * stride_),
        coeff_.begin() + static_cast<ptrdiff_t>((i + 1) * stride_));
  }

  void AppendMerged(size_t p, double merged_err) {
    next_begin_.push_back(begin_[2 * p]);
    next_end_.push_back(end_[2 * p + 1]);
    next_err_.push_back(merged_err);
    next_basis_.push_back(cand_basis_[p]);
    next_coeff_.insert(next_coeff_.end(),
                       cand_coeff_.begin() +
                           static_cast<ptrdiff_t>(p * stride_),
                       cand_coeff_.begin() +
                           static_cast<ptrdiff_t>((p + 1) * stride_));
  }

  void SwapInNextGeneration() {
    begin_.swap(next_begin_);
    end_.swap(next_end_);
    err_.swap(next_err_);
    basis_.swap(next_basis_);
    coeff_.swap(next_coeff_);
  }

  // ProjectOntoBasis (poly/fit_poly.h) on the planes — the exact same
  // inner loop FitPolyWithBasis and the DP baseline use, so the engine can
  // never drift from them numerically.  The slots past the basis's
  // effective degree are zeroed here so plane copies never carry stale
  // values.
  double Refit(int64_t begin, int64_t end, const GramBasis& basis,
               double* coeff, std::vector<double>& scratch) const {
    for (size_t j = static_cast<size_t>(basis.degree()) + 1; j < stride_;
         ++j) {
      coeff[j] = 0.0;
    }
    return ProjectOntoBasis(*q_, {begin, end}, basis, coeff, &scratch);
  }

  const SparseFunction* q_;
  GramBasisCache* cache_;
  size_t stride_;  // degree + 1 coefficient slots per atom

  // Current partition planes.
  std::vector<int64_t> begin_, end_;
  std::vector<double> err_;
  std::vector<const GramBasis*> basis_;
  std::vector<double> coeff_;  // size() * stride_
  // Candidate planes.
  std::vector<double> cand_coeff_;
  std::vector<const GramBasis*> cand_basis_;
  std::vector<double> span_scratch_;
  // Next-generation double buffers.
  std::vector<int64_t> next_begin_, next_end_;
  std::vector<double> next_err_;
  std::vector<const GramBasis*> next_basis_;
  std::vector<double> next_coeff_;
  // Parallel-only candidate double buffers + chunk plan (grown lazily).
  std::vector<double> pcand_coeff_;
  std::vector<const GramBasis*> pcand_basis_;
  std::vector<int64_t> chunk_bounds_;
  std::vector<size_t> chunk_out_;
  std::vector<double> scratch_;
  // Raw views for the [this]-only lambda captures (see HistogramStore).
  const char* keep_in_ = nullptr;
  double* err_out_ = nullptr;
};

}  // namespace

int64_t MaxSurvivingPieces(int64_t k, const MergingOptions& options) {
  return StopThreshold(PairsKeptPerRound(k, options), options);
}

// Algorithm 1's round skeleton, generic over the SoA store (see the block
// comment above the stores).  Both selection strategies rank under the same
// strict (error desc, index asc) total order, so they pick identical pair
// sets and the engine's two speeds are bit-for-bit interchangeable for any
// store — as are its serial and threaded modes, because pair evaluation
// writes disjoint slots and selection only reads the finished error plane.
namespace {

// Round-persistent scratch of the threshold-select mark pass: the chunk
// plan and per-chunk tie accounting, plus raw views and the threshold so
// the dispatch lambdas can capture a single reference (within
// std::function's small-buffer limit — no per-round closure allocation).
struct ThresholdMarkScratch {
  std::vector<int64_t> bounds;
  std::vector<size_t> above, ties, ties_before;
  const double* err = nullptr;
  char* marks = nullptr;
  double threshold = 0.0;
  size_t tie_quota = 0;
};

// Marks the top `num_keep` pairs under the strict (error desc, index asc)
// total order.  kSort is the reference formulation: sort an index
// permutation and mark the prefix.  kSelect is value-based: a top-k heap
// scan (or nth_element on a scratch copy) of the error plane finds the
// num_keep-th largest error, then a sequential mark pass keeps everything
// strictly above the threshold plus the first (num_keep - #above)
// threshold ties in index order — the same set the sorted prefix contains,
// without ever chasing an index indirection.  The mark pass is
// data-parallel when a pool is available: per-chunk above/tie counts, a
// serial prefix over the (few) chunks, then disjoint marking with each
// chunk's global tie rank in hand.
void MarkKeepSplit(SelectionStrategy strategy,
                   const std::vector<double>& candidate_err, size_t num_pairs,
                   size_t num_keep, ThreadPool* pool,
                   std::vector<size_t>& order, std::vector<double>& scratch,
                   ThresholdMarkScratch& mark, std::vector<char>& keep_split) {
  keep_split.resize(num_pairs);
  if (num_keep >= num_pairs) {
    std::fill(keep_split.begin(), keep_split.end(), 1);
    return;
  }
  if (strategy == SelectionStrategy::kSort) {
    std::fill(keep_split.begin(), keep_split.end(), 0);
    order.resize(num_pairs);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidate_err[a] != candidate_err[b]) {
        return candidate_err[a] > candidate_err[b];
      }
      return a < b;
    });
    for (size_t i = 0; i < num_keep; ++i) keep_split[order[i]] = 1;
    return;
  }

  // kSelect: threshold select on the error values themselves — the
  // num_keep-th largest error (duplicates counted), never an index.
  double threshold;
  if (num_keep <= kHeapSelectCutoff) {
    // One sequential pass: a min-heap of the num_keep largest values seen
    // (only strictly-greater values displace the root, which is exactly
    // the k-th-largest-with-duplicates semantics nth_element gives).
    scratch.assign(candidate_err.begin(),
                   candidate_err.begin() + static_cast<ptrdiff_t>(num_keep));
    std::make_heap(scratch.begin(), scratch.end(), std::greater<double>());
    for (size_t p = num_keep; p < num_pairs; ++p) {
      if (candidate_err[p] > scratch.front()) {
        std::pop_heap(scratch.begin(), scratch.end(), std::greater<double>());
        scratch.back() = candidate_err[p];
        std::push_heap(scratch.begin(), scratch.end(), std::greater<double>());
      }
    }
    threshold = scratch.front();
  } else {
    scratch.assign(candidate_err.begin(),
                   candidate_err.begin() + static_cast<ptrdiff_t>(num_pairs));
    std::nth_element(scratch.begin(),
                     scratch.begin() + static_cast<ptrdiff_t>(num_keep - 1),
                     scratch.end(), std::greater<double>());
    threshold = scratch[num_keep - 1];
  }

  const int64_t chunks =
      pool == nullptr ? 1
                      : ChunkCount(static_cast<int64_t>(num_pairs),
                                   kSelectGrain, pool->num_threads());
  if (chunks <= 1) {
    size_t above = 0;
    for (size_t p = 0; p < num_pairs; ++p) above += candidate_err[p] > threshold;
    size_t tie_quota = num_keep - above;  // >= 1: the threshold itself ties
    for (size_t p = 0; p < num_pairs; ++p) {  // every slot written: no
                                              // zero-fill sweep needed
      char mark_p = 0;
      if (candidate_err[p] > threshold) {
        mark_p = 1;
      } else if (candidate_err[p] == threshold && tie_quota > 0) {
        mark_p = 1;
        --tie_quota;
      }
      keep_split[p] = mark_p;
    }
    return;
  }

  mark.bounds.resize(static_cast<size_t>(chunks) + 1);
  for (int64_t c = 0; c <= chunks; ++c) {
    mark.bounds[static_cast<size_t>(c)] = ChunkBoundary(
        0, static_cast<int64_t>(num_pairs), chunks, c, kByteAlign);
  }
  mark.above.assign(static_cast<size_t>(chunks), 0);
  mark.ties.assign(static_cast<size_t>(chunks), 0);
  mark.ties_before.assign(static_cast<size_t>(chunks), 0);
  mark.err = candidate_err.data();
  mark.marks = keep_split.data();
  mark.threshold = threshold;
  pool->ParallelFor(0, chunks, 1, [&mark](int64_t cb, int64_t ce) {
    for (int64_t c = cb; c < ce; ++c) {
      size_t a = 0, t = 0;
      for (int64_t p = mark.bounds[static_cast<size_t>(c)];
           p < mark.bounds[static_cast<size_t>(c) + 1]; ++p) {
        a += mark.err[p] > mark.threshold;
        t += mark.err[p] == mark.threshold;
      }
      mark.above[static_cast<size_t>(c)] = a;
      mark.ties[static_cast<size_t>(c)] = t;
    }
  });
  size_t total_above = 0;
  size_t tie_cursor = 0;
  for (int64_t c = 0; c < chunks; ++c) {
    total_above += mark.above[static_cast<size_t>(c)];
    mark.ties_before[static_cast<size_t>(c)] = tie_cursor;
    tie_cursor += mark.ties[static_cast<size_t>(c)];
  }
  mark.tie_quota = num_keep - total_above;
  pool->ParallelFor(0, chunks, 1, [&mark](int64_t cb, int64_t ce) {
    for (int64_t c = cb; c < ce; ++c) {
      size_t tie_rank = mark.ties_before[static_cast<size_t>(c)];
      for (int64_t p = mark.bounds[static_cast<size_t>(c)];
           p < mark.bounds[static_cast<size_t>(c) + 1]; ++p) {
        char mark_p = 0;  // every slot written: no zero-fill sweep needed
        if (mark.err[p] > mark.threshold) {
          mark_p = 1;
        } else if (mark.err[p] == mark.threshold) {
          if (tie_rank < mark.tie_quota) mark_p = 1;
          ++tie_rank;
        }
        mark.marks[p] = mark_p;
      }
    }
  });
}

template <typename Store>
long long RunRounds(Store& store, int64_t k, const MergingOptions& options,
                    SelectionStrategy strategy, ThreadPool* pool) {
  const int64_t keep = PairsKeptPerRound(k, options);
  const int64_t stop = StopThreshold(keep, options);
  long long num_rounds = 0;
  if (static_cast<int64_t>(store.size()) <= stop) return num_rounds;

  // Round-persistent scratch: sized once, then only resized downward as the
  // partition shrinks (capacity is never released mid-run).
  std::vector<double> candidate_err;
  std::vector<size_t> order;      // kSort ranking permutation
  std::vector<double> scratch;    // kSelect threshold scratch
  ThresholdMarkScratch mark;      // kSelect parallel mark-pass scratch
  std::vector<char> keep_split;
  candidate_err.reserve(store.size() / 2);
  keep_split.reserve(store.size() / 2);
  if (strategy == SelectionStrategy::kSort) {
    order.reserve(store.size() / 2);
  } else {
    scratch.reserve(store.size() / 2);
  }

  // The fused round pipeline: one stand-alone evaluation primes the
  // candidate planes, then every round selects on the finished error plane
  // and commits fused with the next round's evaluation — so each round
  // past the first sweeps the planes exactly once.  The last commit (known
  // in advance from the output-size recursion next = pairs + kept + tail)
  // skips the dead evaluation.
  size_t num_pairs = store.size() / 2;
  store.EvaluatePairs(num_pairs, pool, candidate_err);
  while (true) {
    const size_t num_keep =
        std::min(static_cast<size_t>(keep), num_pairs);
    MarkKeepSplit(strategy, candidate_err, num_pairs, num_keep, pool, order,
                  scratch, mark, keep_split);
    ++num_rounds;
    ++EngineCountersForTesting().rounds;
    const size_t next_size = num_pairs + num_keep + (store.size() & 1);
    if (static_cast<int64_t>(next_size) <= stop) {
      store.Commit(keep_split, num_pairs, candidate_err);
      break;
    }
    store.CommitAndEvaluate(keep_split, num_pairs, pool, candidate_err);
    num_pairs = next_size / 2;
  }
  return num_rounds;
}

}  // namespace

std::vector<Interval> SupportPartition(const SparseFunction& q) {
  const std::vector<int64_t>& support = q.indices();
  std::vector<Interval> intervals;
  intervals.reserve(2 * support.size() + 1);
  int64_t cursor = 0;
  for (int64_t s : support) {
    if (s > cursor) intervals.push_back({cursor, s});
    intervals.push_back({s, s + 1});
    cursor = s + 1;
  }
  if (cursor < q.domain_size()) {
    intervals.push_back({cursor, q.domain_size()});
  }
  if (intervals.empty()) intervals.push_back({0, q.domain_size()});
  return intervals;
}

std::vector<MergeAtom> AtomsFromSparse(const SparseFunction& q) {
  const std::vector<int64_t>& indices = q.indices();
  const std::vector<double>& values = q.values();
  const std::vector<Interval> intervals = SupportPartition(q);
  std::vector<MergeAtom> atoms;
  atoms.reserve(intervals.size());
  size_t s = 0;  // the singleton intervals align with the support in order
  for (const Interval& interval : intervals) {
    if (s < indices.size() && interval.begin == indices[s]) {
      const double v = values[s];
      atoms.push_back({interval.begin, interval.end, v, v * v});
      ++s;
    } else {
      atoms.push_back({interval.begin, interval.end, 0.0, 0.0});
    }
  }
  return atoms;
}

StatusOr<MergingResult> RunMergingRounds(int64_t domain_size,
                                         std::vector<MergeAtom> atoms,
                                         int64_t k,
                                         const MergingOptions& options,
                                         SelectionStrategy strategy) {
  if (Status s = ValidateRoundArgs(domain_size, k, options); !s.ok()) return s;
  // The histogram store tracks interval lengths as exact integral doubles
  // (endpoints come back by prefix sum at Finish), which is exact only up
  // to 2^53 — reject the astronomical domains beyond it explicitly instead
  // of letting piece boundaries drift.
  if (domain_size > (int64_t{1} << 53)) {
    return Status::Invalid(
        "merging: domain above 2^53 not supported (interval lengths are "
        "tracked as exact doubles)");
  }

  HistogramStore store(atoms);
  const long long num_rounds =
      RunRounds(store, k, options, strategy, PoolFor(options));
  return store.Finish(domain_size, num_rounds);
}

StatusOr<PiecewisePolyResult> RunPolyMergingRounds(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options, SelectionStrategy strategy) {
  if (Status s = ValidateRoundArgs(q.domain_size(), k, options); !s.ok()) {
    return s;
  }
  if (degree < 0) {
    return Status::Invalid("poly merging: degree must be >= 0");
  }
  // The candidate basis pre-warm keys the per-length cache through a
  // double-valued span plane (simd::PairwiseSpan), exact only up to 2^53 —
  // the same explicit limit as the histogram path's length planes.
  if (q.domain_size() > (int64_t{1} << 53)) {
    return Status::Invalid(
        "poly merging: domain above 2^53 not supported (merged spans are "
        "tracked as exact doubles)");
  }

  ThreadPool* pool = PoolFor(options);
  GramBasisCache cache(degree);
  PolyStore store(q, &cache, degree);
  store.InitFromSupportPartition(pool);
  const long long num_rounds = RunRounds(store, k, options, strategy, pool);
  return store.Finish(num_rounds);
}

}  // namespace internal
}  // namespace fasthist
