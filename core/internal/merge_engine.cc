#include "core/internal/merge_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "poly/fit_poly.h"
#include "util/parallel.h"
#include "util/simd.h"

namespace fasthist {
namespace internal {
namespace {

// Chunk-size floors for the data-parallel candidate pass: histogram merges
// are a few flops each, so chunks must be large to amortize dispatch; poly
// refits scan their support, so much smaller chunks already pay off.
constexpr int64_t kHistogramGrain = 2048;
constexpr int64_t kPolyGrain = 64;

// Clamp bound applied before double -> int64 casts of the keep/stop
// schedule.  k * (1 + 1/delta) overflows int64 for huge k and tiny delta,
// and casting an out-of-range double is UB; 2^62 is exactly representable,
// castable, and far beyond any real partition size, so clamping there
// preserves the "keep everything" semantics without the UB.
constexpr double kScheduleClamp = 4611686018427387904.0;  // 2^62

int64_t PairsKeptPerRound(int64_t k, const MergingOptions& options) {
  const double raw = static_cast<double>(k) * (1.0 + 1.0 / options.delta);
  return std::max(k, static_cast<int64_t>(std::min(raw, kScheduleClamp)));
}

// gamma stops the rounds early (Corollary 3.1): at most ~2*gamma*keep+1
// pieces survive, in exchange for fewer rounds over the large partitions.
// The inner product is clamped like the keep count (gamma is unbounded).
int64_t StopThreshold(int64_t keep, const MergingOptions& options) {
  const double inner = options.gamma * static_cast<double>(keep);
  return 2 * static_cast<int64_t>(std::min(inner, kScheduleClamp / 2.0)) + 1;
}

Status ValidateRoundArgs(int64_t domain_size, int64_t k,
                         const MergingOptions& options) {
  if (domain_size <= 0) {
    return Status::Invalid("merging: domain must be positive");
  }
  if (k < 1) return Status::Invalid("merging: k must be >= 1");
  if (!(options.delta > 0.0)) {
    return Status::Invalid("merging: delta must be positive");
  }
  if (!(options.gamma >= 1.0)) {
    return Status::Invalid("merging: gamma must be >= 1");
  }
  if (options.num_threads < 1) {
    return Status::Invalid("merging: num_threads must be >= 1");
  }
  return Status::Ok();
}

ThreadPool* PoolFor(const MergingOptions& options) {
  return options.num_threads > 1 ? &ThreadPool::Shared(options.num_threads)
                                 : nullptr;
}

// ---------------------------------------------------------------------------
// Structure-of-arrays stores.  RunRounds (below) is generic over a store
// that owns the current partition as parallel planes plus the candidate and
// next-generation buffers.  Every buffer persists across rounds — a round
// only resize()s within capacity reserved up front, so the steady state
// allocates nothing (bench_micro's allocation sanity check rides on this).
// A store supplies
//   size_t size();                       current number of atoms
//   void EvaluatePairs(n, pool, err);    statistics + error of the n
//                                        adjacent pairs into the candidate
//                                        planes; data-parallel with
//                                        disjoint per-pair writes, so any
//                                        thread count is bit-identical
//   void Commit(keep_split, n, err);     next generation: kept pairs stay
//                                        split, the rest become their
//                                        candidate (with error err[p]), an
//                                        odd tail survives
// and the loop owns everything the guarantee proof depends on: pairing, the
// strict (error desc, index asc) total order, the keep/stop schedule, and
// the round recursion s -> ceil(s/2) + keep (strictly decreasing while
// s > stop >= 2*keep + 1, so termination is structural).
// ---------------------------------------------------------------------------

// Histogram store: closed-form sufficient statistics, O(1) per merge.  The
// candidate pass is the streaming kernel pair — PairwiseSum over the sum
// and sumsq planes, ResidualError over the merged moments (util/simd.h).
class HistogramStore {
 public:
  explicit HistogramStore(const std::vector<MergeAtom>& atoms) {
    const size_t n = atoms.size();
    begin_.resize(n);
    end_.resize(n);
    sum_.resize(n);
    sumsq_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      begin_[i] = atoms[i].begin;
      end_[i] = atoms[i].end;
      sum_[i] = atoms[i].sum;
      sumsq_[i] = atoms[i].sumsq;
    }
    cand_sum_.reserve(n / 2);
    cand_sumsq_.reserve(n / 2);
    cand_len_.reserve(n / 2);
    next_begin_.reserve(n);
    next_end_.reserve(n);
    next_sum_.reserve(n);
    next_sumsq_.reserve(n);
  }

  size_t size() const { return begin_.size(); }

  void EvaluatePairs(size_t num_pairs, ThreadPool* pool,
                     std::vector<double>& err) {
    cand_sum_.resize(num_pairs);
    cand_sumsq_.resize(num_pairs);
    cand_len_.resize(num_pairs);
    err.resize(num_pairs);
    ParallelFor(
        pool, 0, static_cast<int64_t>(num_pairs), kHistogramGrain,
        [&](int64_t chunk_begin, int64_t chunk_end) {
          const size_t lo = static_cast<size_t>(chunk_begin);
          const size_t count = static_cast<size_t>(chunk_end - chunk_begin);
          simd::PairwiseSum(sum_.data() + 2 * lo, count,
                            cand_sum_.data() + lo);
          simd::PairwiseSum(sumsq_.data() + 2 * lo, count,
                            cand_sumsq_.data() + lo);
          for (size_t p = lo; p < lo + count; ++p) {
            cand_len_[p] =
                static_cast<double>(end_[2 * p + 1] - begin_[2 * p]);
          }
          simd::ResidualError(cand_sum_.data() + lo, cand_sumsq_.data() + lo,
                              cand_len_.data() + lo, count, err.data() + lo);
        });
  }

  void Commit(const std::vector<char>& keep_split, size_t num_pairs,
              const std::vector<double>& /*candidate_err*/) {
    next_begin_.clear();
    next_end_.clear();
    next_sum_.clear();
    next_sumsq_.clear();
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        for (const size_t i : {2 * p, 2 * p + 1}) {
          next_begin_.push_back(begin_[i]);
          next_end_.push_back(end_[i]);
          next_sum_.push_back(sum_[i]);
          next_sumsq_.push_back(sumsq_[i]);
        }
      } else {
        next_begin_.push_back(begin_[2 * p]);
        next_end_.push_back(end_[2 * p + 1]);
        next_sum_.push_back(cand_sum_[p]);
        next_sumsq_.push_back(cand_sumsq_[p]);
      }
    }
    if (size() % 2 == 1) {
      next_begin_.push_back(begin_.back());
      next_end_.push_back(end_.back());
      next_sum_.push_back(sum_.back());
      next_sumsq_.push_back(sumsq_.back());
    }
    begin_.swap(next_begin_);
    end_.swap(next_end_);
    sum_.swap(next_sum_);
    sumsq_.swap(next_sumsq_);
  }

  // Flat-value histogram of the surviving partition and its summed error.
  StatusOr<MergingResult> Finish(int64_t domain_size,
                                 long long num_rounds) const {
    MergingResult result;
    result.num_rounds = num_rounds;
    result.err_squared = 0.0;
    std::vector<HistogramPiece> pieces;
    pieces.reserve(size());
    for (size_t i = 0; i < size(); ++i) {
      const double length = static_cast<double>(end_[i] - begin_[i]);
      pieces.push_back({{begin_[i], end_[i]}, sum_[i] / length});
      const double residual = sumsq_[i] - sum_[i] * sum_[i] / length;
      result.err_squared += residual > 0.0 ? residual : 0.0;
    }
    auto histogram = Histogram::Create(domain_size, std::move(pieces));
    if (!histogram.ok()) return histogram.status();
    result.histogram = std::move(histogram).value();
    return result;
  }

 private:
  // Current partition planes.
  std::vector<int64_t> begin_, end_;
  std::vector<double> sum_, sumsq_;
  // Candidate planes (merged statistics of pair p).
  std::vector<double> cand_sum_, cand_sumsq_, cand_len_;
  // Next-generation double buffers (swapped in by Commit).
  std::vector<int64_t> next_begin_, next_end_;
  std::vector<double> next_sum_, next_sumsq_;
};

// Piecewise-polynomial store: merging refits the degree-d least-squares
// projection on the union interval (coefficients are not additive across a
// boundary, so unlike the histogram moments the merged fit is recomputed
// from q's support — O(support-in-interval * degree) per merge, which keeps
// the whole construction sample-near-linear).  Coefficients live in a flat
// plane of stride degree+1, zero-padded past each interval's effective
// degree; bases are length-keyed cache entries shared by pointer.
class PolyStore {
 public:
  PolyStore(const SparseFunction& q, GramBasisCache* cache, int degree)
      : q_(&q), cache_(cache), stride_(static_cast<size_t>(degree) + 1) {}

  // Fits the support partition of q.  The refits are data-parallel; bases
  // are fetched (and so built) serially first, because GramBasisCache
  // mutates on first use of a length.
  void InitFromSupportPartition(ThreadPool* pool) {
    const std::vector<Interval> initial = SupportPartition(*q_);
    const size_t n = initial.size();
    begin_.resize(n);
    end_.resize(n);
    err_.resize(n);
    basis_.resize(n);
    coeff_.resize(n * stride_);
    for (size_t i = 0; i < n; ++i) {
      begin_[i] = initial[i].begin;
      end_[i] = initial[i].end;
      basis_[i] = &cache_->For(initial[i].length());
    }
    ParallelFor(pool, 0, static_cast<int64_t>(n), kPolyGrain,
                [&](int64_t chunk_begin, int64_t chunk_end) {
                  std::vector<double> scratch;
                  for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                    err_[i] = Refit(begin_[i], end_[i], *basis_[i],
                                    &coeff_[static_cast<size_t>(i) * stride_],
                                    scratch);
                  }
                });
    cand_coeff_.reserve((n / 2) * stride_);
    cand_basis_.reserve(n / 2);
    next_begin_.reserve(n);
    next_end_.reserve(n);
    next_err_.reserve(n);
    next_basis_.reserve(n);
    next_coeff_.reserve(n * stride_);
  }

  size_t size() const { return begin_.size(); }

  void EvaluatePairs(size_t num_pairs, ThreadPool* pool,
                     std::vector<double>& err) {
    err.resize(num_pairs);
    cand_coeff_.resize(num_pairs * stride_);
    cand_basis_.resize(num_pairs);
    // Serial pre-warm: after this loop every merged length has a cache
    // entry, so the parallel refits below only read the cache (std::map
    // nodes are stable, concurrent reads are safe).
    for (size_t p = 0; p < num_pairs; ++p) {
      cand_basis_[p] = &cache_->For(end_[2 * p + 1] - begin_[2 * p]);
    }
    ParallelFor(pool, 0, static_cast<int64_t>(num_pairs), kPolyGrain,
                [&](int64_t chunk_begin, int64_t chunk_end) {
                  std::vector<double> scratch;
                  for (int64_t p = chunk_begin; p < chunk_end; ++p) {
                    err[p] = Refit(begin_[2 * p], end_[2 * p + 1],
                                   *cand_basis_[p],
                                   &cand_coeff_[static_cast<size_t>(p) *
                                                stride_],
                                   scratch);
                  }
                });
  }

  void Commit(const std::vector<char>& keep_split, size_t num_pairs,
              const std::vector<double>& candidate_err) {
    next_begin_.clear();
    next_end_.clear();
    next_err_.clear();
    next_basis_.clear();
    next_coeff_.clear();
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        AppendAtom(2 * p);
        AppendAtom(2 * p + 1);
      } else {
        next_begin_.push_back(begin_[2 * p]);
        next_end_.push_back(end_[2 * p + 1]);
        next_err_.push_back(candidate_err[p]);
        next_basis_.push_back(cand_basis_[p]);
        next_coeff_.insert(next_coeff_.end(),
                           cand_coeff_.begin() +
                               static_cast<ptrdiff_t>(p * stride_),
                           cand_coeff_.begin() +
                               static_cast<ptrdiff_t>((p + 1) * stride_));
      }
    }
    if (size() % 2 == 1) AppendAtom(size() - 1);
    begin_.swap(next_begin_);
    end_.swap(next_end_);
    err_.swap(next_err_);
    basis_.swap(next_basis_);
    coeff_.swap(next_coeff_);
  }

  // Piecewise polynomial of the surviving partition and its summed error.
  StatusOr<PiecewisePolyResult> Finish(long long num_rounds) const {
    PiecewisePolyResult result;
    result.num_rounds = num_rounds;
    result.err_squared = 0.0;
    std::vector<PolyFit> fits(size());
    for (size_t i = 0; i < size(); ++i) {
      PolyFit& fit = fits[i];
      fit.interval = {begin_[i], end_[i]};
      fit.basis = *basis_[i];
      const auto first =
          coeff_.begin() + static_cast<ptrdiff_t>(i * stride_);
      fit.coefficients.assign(first, first + basis_[i]->degree() + 1);
      fit.err_squared = err_[i];
      result.err_squared += err_[i];
    }
    auto function =
        PiecewisePolynomial::Create(q_->domain_size(), std::move(fits));
    if (!function.ok()) return function.status();
    result.function = std::move(function).value();
    return result;
  }

 private:
  void AppendAtom(size_t i) {
    next_begin_.push_back(begin_[i]);
    next_end_.push_back(end_[i]);
    next_err_.push_back(err_[i]);
    next_basis_.push_back(basis_[i]);
    next_coeff_.insert(
        next_coeff_.end(),
        coeff_.begin() + static_cast<ptrdiff_t>(i * stride_),
        coeff_.begin() + static_cast<ptrdiff_t>((i + 1) * stride_));
  }

  // ProjectOntoBasis (poly/fit_poly.h) on the planes — the exact same
  // inner loop FitPolyWithBasis and the DP baseline use, so the engine can
  // never drift from them numerically.  The slots past the basis's
  // effective degree are zeroed here so plane copies never carry stale
  // values.
  double Refit(int64_t begin, int64_t end, const GramBasis& basis,
               double* coeff, std::vector<double>& scratch) const {
    for (size_t j = static_cast<size_t>(basis.degree()) + 1; j < stride_;
         ++j) {
      coeff[j] = 0.0;
    }
    return ProjectOntoBasis(*q_, {begin, end}, basis, coeff, &scratch);
  }

  const SparseFunction* q_;
  GramBasisCache* cache_;
  size_t stride_;  // degree + 1 coefficient slots per atom

  // Current partition planes.
  std::vector<int64_t> begin_, end_;
  std::vector<double> err_;
  std::vector<const GramBasis*> basis_;
  std::vector<double> coeff_;  // size() * stride_
  // Candidate planes.
  std::vector<double> cand_coeff_;
  std::vector<const GramBasis*> cand_basis_;
  // Next-generation double buffers.
  std::vector<int64_t> next_begin_, next_end_;
  std::vector<double> next_err_;
  std::vector<const GramBasis*> next_basis_;
  std::vector<double> next_coeff_;
};

}  // namespace

// Algorithm 1's round skeleton, generic over the SoA store (see the block
// comment above the stores).  Both selection strategies rank under the same
// strict (error desc, index asc) total order, so they pick identical pair
// sets and the engine's two speeds are bit-for-bit interchangeable for any
// store — as are its serial and threaded modes, because pair evaluation
// writes disjoint slots and selection only reads the finished error plane.
namespace {

template <typename Store>
long long RunRounds(Store& store, int64_t k, const MergingOptions& options,
                    SelectionStrategy strategy, ThreadPool* pool) {
  const int64_t keep = PairsKeptPerRound(k, options);
  const int64_t stop = StopThreshold(keep, options);
  long long num_rounds = 0;

  // Round-persistent scratch: sized once, then only resized downward as the
  // partition shrinks (capacity is never released mid-run).
  std::vector<double> candidate_err;
  std::vector<size_t> order;
  std::vector<char> keep_split;
  candidate_err.reserve(store.size() / 2);
  order.reserve(store.size() / 2);
  keep_split.reserve(store.size() / 2);

  while (static_cast<int64_t>(store.size()) > stop) {
    const size_t num_pairs = store.size() / 2;
    store.EvaluatePairs(num_pairs, pool, candidate_err);

    // Rank pairs under the strict total order (error desc, index asc) and
    // mark the top `keep` to stay split.
    const size_t num_keep = std::min(static_cast<size_t>(keep), num_pairs);
    order.resize(num_pairs);
    std::iota(order.begin(), order.end(), size_t{0});
    const auto larger_error = [&](size_t a, size_t b) {
      if (candidate_err[a] != candidate_err[b]) {
        return candidate_err[a] > candidate_err[b];
      }
      return a < b;
    };
    switch (strategy) {
      case SelectionStrategy::kSort:
        std::sort(order.begin(), order.end(), larger_error);
        break;
      case SelectionStrategy::kSelect:
        if (num_keep < num_pairs) {
          std::nth_element(order.begin(),
                           order.begin() + static_cast<ptrdiff_t>(num_keep),
                           order.end(), larger_error);
        }
        break;
    }
    keep_split.assign(num_pairs, 0);
    for (size_t i = 0; i < num_keep; ++i) keep_split[order[i]] = 1;

    store.Commit(keep_split, num_pairs, candidate_err);
    ++num_rounds;
  }
  return num_rounds;
}

}  // namespace

std::vector<Interval> SupportPartition(const SparseFunction& q) {
  const std::vector<int64_t>& support = q.indices();
  std::vector<Interval> intervals;
  intervals.reserve(2 * support.size() + 1);
  int64_t cursor = 0;
  for (int64_t s : support) {
    if (s > cursor) intervals.push_back({cursor, s});
    intervals.push_back({s, s + 1});
    cursor = s + 1;
  }
  if (cursor < q.domain_size()) {
    intervals.push_back({cursor, q.domain_size()});
  }
  if (intervals.empty()) intervals.push_back({0, q.domain_size()});
  return intervals;
}

std::vector<MergeAtom> AtomsFromSparse(const SparseFunction& q) {
  const std::vector<int64_t>& indices = q.indices();
  const std::vector<double>& values = q.values();
  const std::vector<Interval> intervals = SupportPartition(q);
  std::vector<MergeAtom> atoms;
  atoms.reserve(intervals.size());
  size_t s = 0;  // the singleton intervals align with the support in order
  for (const Interval& interval : intervals) {
    if (s < indices.size() && interval.begin == indices[s]) {
      const double v = values[s];
      atoms.push_back({interval.begin, interval.end, v, v * v});
      ++s;
    } else {
      atoms.push_back({interval.begin, interval.end, 0.0, 0.0});
    }
  }
  return atoms;
}

StatusOr<MergingResult> RunMergingRounds(int64_t domain_size,
                                         std::vector<MergeAtom> atoms,
                                         int64_t k,
                                         const MergingOptions& options,
                                         SelectionStrategy strategy) {
  if (Status s = ValidateRoundArgs(domain_size, k, options); !s.ok()) return s;

  HistogramStore store(atoms);
  const long long num_rounds =
      RunRounds(store, k, options, strategy, PoolFor(options));
  return store.Finish(domain_size, num_rounds);
}

StatusOr<PiecewisePolyResult> RunPolyMergingRounds(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options, SelectionStrategy strategy) {
  if (Status s = ValidateRoundArgs(q.domain_size(), k, options); !s.ok()) {
    return s;
  }
  if (degree < 0) {
    return Status::Invalid("poly merging: degree must be >= 0");
  }

  ThreadPool* pool = PoolFor(options);
  GramBasisCache cache(degree);
  PolyStore store(q, &cache, degree);
  store.InitFromSupportPartition(pool);
  const long long num_rounds = RunRounds(store, k, options, strategy, pool);
  return store.Finish(num_rounds);
}

}  // namespace internal
}  // namespace fasthist
