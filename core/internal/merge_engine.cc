#include "core/internal/merge_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fasthist {
namespace internal {
namespace {

double AtomError(const MergeAtom& atom) {
  const double length = static_cast<double>(atom.end - atom.begin);
  return std::max(0.0, atom.sumsq - atom.sum * atom.sum / length);
}

MergeAtom Combine(const MergeAtom& a, const MergeAtom& b) {
  return MergeAtom{a.begin, b.end, a.sum + b.sum, a.sumsq + b.sumsq};
}

int64_t PairsKeptPerRound(int64_t k, const MergingOptions& options) {
  const double raw = static_cast<double>(k) * (1.0 + 1.0 / options.delta);
  return std::max(k, static_cast<int64_t>(raw));
}

}  // namespace

std::vector<MergeAtom> AtomsFromSparse(const SparseFunction& q) {
  const std::vector<int64_t>& indices = q.indices();
  const std::vector<double>& values = q.values();
  std::vector<MergeAtom> atoms;
  atoms.reserve(2 * indices.size() + 1);
  int64_t cursor = 0;
  for (size_t s = 0; s < indices.size(); ++s) {
    const int64_t i = indices[s];
    if (i > cursor) atoms.push_back({cursor, i, 0.0, 0.0});
    atoms.push_back({i, i + 1, values[s], values[s] * values[s]});
    cursor = i + 1;
  }
  if (cursor < q.domain_size()) {
    atoms.push_back({cursor, q.domain_size(), 0.0, 0.0});
  }
  if (atoms.empty()) atoms.push_back({0, q.domain_size(), 0.0, 0.0});
  return atoms;
}

StatusOr<MergingResult> RunMergingRounds(int64_t domain_size,
                                         std::vector<MergeAtom> atoms,
                                         int64_t k,
                                         const MergingOptions& options,
                                         SelectionStrategy strategy) {
  if (domain_size <= 0) {
    return Status::Invalid("merging: domain must be positive");
  }
  if (k < 1) return Status::Invalid("merging: k must be >= 1");
  if (!(options.delta > 0.0)) {
    return Status::Invalid("merging: delta must be positive");
  }
  if (!(options.gamma >= 1.0)) {
    return Status::Invalid("merging: gamma must be >= 1");
  }

  const int64_t keep = PairsKeptPerRound(k, options);
  // gamma stops the rounds early (Corollary 3.1): at most ~2*gamma*keep+1
  // pieces survive, in exchange for fewer rounds over the large partitions.
  const int64_t stop =
      2 * static_cast<int64_t>(options.gamma * static_cast<double>(keep)) + 1;
  MergingResult result;

  std::vector<MergeAtom> candidates;
  std::vector<double> candidate_err;
  std::vector<size_t> order;
  std::vector<bool> keep_split;

  // Round recursion s -> ceil(s/2) + keep: strictly decreasing while
  // s > stop >= 2*keep + 1, so termination is structural.
  while (static_cast<int64_t>(atoms.size()) > stop) {
    const size_t num_pairs = atoms.size() / 2;
    candidates.resize(num_pairs);
    candidate_err.resize(num_pairs);
    for (size_t p = 0; p < num_pairs; ++p) {
      candidates[p] = Combine(atoms[2 * p], atoms[2 * p + 1]);
      candidate_err[p] = AtomError(candidates[p]);
    }

    // Rank pairs under the strict total order (error desc, index asc) and
    // mark the top `keep` to stay split.
    const size_t num_keep = std::min(static_cast<size_t>(keep), num_pairs);
    order.resize(num_pairs);
    std::iota(order.begin(), order.end(), size_t{0});
    const auto larger_error = [&](size_t a, size_t b) {
      if (candidate_err[a] != candidate_err[b]) {
        return candidate_err[a] > candidate_err[b];
      }
      return a < b;
    };
    switch (strategy) {
      case SelectionStrategy::kSort:
        std::sort(order.begin(), order.end(), larger_error);
        break;
      case SelectionStrategy::kSelect:
        if (num_keep < num_pairs) {
          std::nth_element(order.begin(),
                           order.begin() + static_cast<ptrdiff_t>(num_keep),
                           order.end(), larger_error);
        }
        break;
    }
    keep_split.assign(num_pairs, false);
    for (size_t i = 0; i < num_keep; ++i) keep_split[order[i]] = true;

    std::vector<MergeAtom> next;
    next.reserve(num_pairs + num_keep + 1);
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        next.push_back(atoms[2 * p]);
        next.push_back(atoms[2 * p + 1]);
      } else {
        next.push_back(candidates[p]);
      }
    }
    if (atoms.size() % 2 == 1) next.push_back(atoms.back());
    atoms.swap(next);
    ++result.num_rounds;
  }

  std::vector<HistogramPiece> pieces;
  pieces.reserve(atoms.size());
  result.err_squared = 0.0;
  for (const MergeAtom& atom : atoms) {
    const double length = static_cast<double>(atom.end - atom.begin);
    pieces.push_back({{atom.begin, atom.end}, atom.sum / length});
    result.err_squared += AtomError(atom);
  }
  auto histogram = Histogram::Create(domain_size, std::move(pieces));
  if (!histogram.ok()) return histogram.status();
  result.histogram = std::move(histogram).value();
  return result;
}

}  // namespace internal
}  // namespace fasthist
