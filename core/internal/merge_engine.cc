#include "core/internal/merge_engine.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "poly/fit_poly.h"

namespace fasthist {
namespace internal {
namespace {

double AtomError(const MergeAtom& atom) {
  const double length = static_cast<double>(atom.end - atom.begin);
  return std::max(0.0, atom.sumsq - atom.sum * atom.sum / length);
}

int64_t PairsKeptPerRound(int64_t k, const MergingOptions& options) {
  const double raw = static_cast<double>(k) * (1.0 + 1.0 / options.delta);
  return std::max(k, static_cast<int64_t>(raw));
}

Status ValidateRoundArgs(int64_t domain_size, int64_t k,
                         const MergingOptions& options) {
  if (domain_size <= 0) {
    return Status::Invalid("merging: domain must be positive");
  }
  if (k < 1) return Status::Invalid("merging: k must be >= 1");
  if (!(options.delta > 0.0)) {
    return Status::Invalid("merging: delta must be positive");
  }
  if (!(options.gamma >= 1.0)) {
    return Status::Invalid("merging: gamma must be >= 1");
  }
  return Status::Ok();
}

// Algorithm 1's round skeleton, generic over the atom policy.  A policy
// supplies
//   using Atom = ...;                          the partition element
//   Atom MergePair(const Atom&, const Atom&);  statistics of the union
//   double ErrorOf(const Atom&);               squared error of an atom
// and the loop owns everything the guarantee proof depends on: pairing,
// the strict (error desc, index asc) total order, the keep/stop schedule
// derived from delta and gamma, and the round recursion
// s -> ceil(s/2) + keep (strictly decreasing while s > stop >= 2*keep + 1,
// so termination is structural).  Both selection strategies rank under the
// same total order, so they pick identical pair sets and the engine's two
// speeds are bit-for-bit interchangeable for any policy.
template <typename Policy>
long long RunRounds(Policy& policy, std::vector<typename Policy::Atom>& atoms,
                    int64_t k, const MergingOptions& options,
                    SelectionStrategy strategy) {
  const int64_t keep = PairsKeptPerRound(k, options);
  // gamma stops the rounds early (Corollary 3.1): at most ~2*gamma*keep+1
  // pieces survive, in exchange for fewer rounds over the large partitions.
  const int64_t stop =
      2 * static_cast<int64_t>(options.gamma * static_cast<double>(keep)) + 1;
  long long num_rounds = 0;

  std::vector<typename Policy::Atom> candidates;
  std::vector<double> candidate_err;
  std::vector<size_t> order;
  std::vector<bool> keep_split;

  while (static_cast<int64_t>(atoms.size()) > stop) {
    const size_t num_pairs = atoms.size() / 2;
    candidates.clear();
    candidates.reserve(num_pairs);
    candidate_err.resize(num_pairs);
    for (size_t p = 0; p < num_pairs; ++p) {
      candidates.push_back(policy.MergePair(atoms[2 * p], atoms[2 * p + 1]));
      candidate_err[p] = policy.ErrorOf(candidates[p]);
    }

    // Rank pairs under the strict total order (error desc, index asc) and
    // mark the top `keep` to stay split.
    const size_t num_keep = std::min(static_cast<size_t>(keep), num_pairs);
    order.resize(num_pairs);
    std::iota(order.begin(), order.end(), size_t{0});
    const auto larger_error = [&](size_t a, size_t b) {
      if (candidate_err[a] != candidate_err[b]) {
        return candidate_err[a] > candidate_err[b];
      }
      return a < b;
    };
    switch (strategy) {
      case SelectionStrategy::kSort:
        std::sort(order.begin(), order.end(), larger_error);
        break;
      case SelectionStrategy::kSelect:
        if (num_keep < num_pairs) {
          std::nth_element(order.begin(),
                           order.begin() + static_cast<ptrdiff_t>(num_keep),
                           order.end(), larger_error);
        }
        break;
    }
    keep_split.assign(num_pairs, false);
    for (size_t i = 0; i < num_keep; ++i) keep_split[order[i]] = true;

    std::vector<typename Policy::Atom> next;
    next.reserve(num_pairs + num_keep + 1);
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        next.push_back(std::move(atoms[2 * p]));
        next.push_back(std::move(atoms[2 * p + 1]));
      } else {
        next.push_back(std::move(candidates[p]));
      }
    }
    if (atoms.size() % 2 == 1) next.push_back(std::move(atoms.back()));
    atoms.swap(next);
    ++num_rounds;
  }
  return num_rounds;
}

// Histogram policy: closed-form sufficient statistics, O(1) per merge.
struct HistogramPolicy {
  using Atom = MergeAtom;
  Atom MergePair(const Atom& a, const Atom& b) const {
    return Atom{a.begin, b.end, a.sum + b.sum, a.sumsq + b.sumsq};
  }
  double ErrorOf(const Atom& atom) const { return AtomError(atom); }
};

// Piecewise-polynomial policy: merging refits the degree-d least-squares
// projection on the union interval (coefficients are not additive across a
// boundary, so unlike the histogram moments the merged fit must be
// recomputed from q's support — O(support-in-interval * degree) per merge,
// which keeps the whole construction sample-near-linear).
struct PolyPolicy {
  using Atom = PolyFit;
  const SparseFunction* q;
  GramBasisCache* cache;

  Atom MergePair(const Atom& a, const Atom& b) const {
    const Interval merged{a.interval.begin, b.interval.end};
    // Infallible: the union of two in-domain atoms is in-domain and the
    // cached basis matches its length by construction.
    return FitPolyWithBasis(*q, merged, cache->For(merged.length())).value();
  }
  double ErrorOf(const Atom& fit) const { return fit.err_squared; }
};

}  // namespace

std::vector<Interval> SupportPartition(const SparseFunction& q) {
  const std::vector<int64_t>& support = q.indices();
  std::vector<Interval> intervals;
  intervals.reserve(2 * support.size() + 1);
  int64_t cursor = 0;
  for (int64_t s : support) {
    if (s > cursor) intervals.push_back({cursor, s});
    intervals.push_back({s, s + 1});
    cursor = s + 1;
  }
  if (cursor < q.domain_size()) {
    intervals.push_back({cursor, q.domain_size()});
  }
  if (intervals.empty()) intervals.push_back({0, q.domain_size()});
  return intervals;
}

std::vector<MergeAtom> AtomsFromSparse(const SparseFunction& q) {
  const std::vector<int64_t>& indices = q.indices();
  const std::vector<double>& values = q.values();
  const std::vector<Interval> intervals = SupportPartition(q);
  std::vector<MergeAtom> atoms;
  atoms.reserve(intervals.size());
  size_t s = 0;  // the singleton intervals align with the support in order
  for (const Interval& interval : intervals) {
    if (s < indices.size() && interval.begin == indices[s]) {
      const double v = values[s];
      atoms.push_back({interval.begin, interval.end, v, v * v});
      ++s;
    } else {
      atoms.push_back({interval.begin, interval.end, 0.0, 0.0});
    }
  }
  return atoms;
}

StatusOr<MergingResult> RunMergingRounds(int64_t domain_size,
                                         std::vector<MergeAtom> atoms,
                                         int64_t k,
                                         const MergingOptions& options,
                                         SelectionStrategy strategy) {
  if (Status s = ValidateRoundArgs(domain_size, k, options); !s.ok()) return s;

  HistogramPolicy policy;
  MergingResult result;
  result.num_rounds = RunRounds(policy, atoms, k, options, strategy);

  std::vector<HistogramPiece> pieces;
  pieces.reserve(atoms.size());
  result.err_squared = 0.0;
  for (const MergeAtom& atom : atoms) {
    const double length = static_cast<double>(atom.end - atom.begin);
    pieces.push_back({{atom.begin, atom.end}, atom.sum / length});
    result.err_squared += AtomError(atom);
  }
  auto histogram = Histogram::Create(domain_size, std::move(pieces));
  if (!histogram.ok()) return histogram.status();
  result.histogram = std::move(histogram).value();
  return result;
}

StatusOr<PiecewisePolyResult> RunPolyMergingRounds(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options, SelectionStrategy strategy) {
  if (Status s = ValidateRoundArgs(q.domain_size(), k, options); !s.ok()) {
    return s;
  }
  if (degree < 0) {
    return Status::Invalid("poly merging: degree must be >= 0");
  }

  GramBasisCache cache(degree);
  std::vector<PolyFit> fits;
  {
    const std::vector<Interval> initial = SupportPartition(q);
    fits.reserve(initial.size());
    for (const Interval& interval : initial) {
      fits.push_back(
          FitPolyWithBasis(q, interval, cache.For(interval.length())).value());
    }
  }

  PolyPolicy policy{&q, &cache};
  PiecewisePolyResult result;
  result.num_rounds = RunRounds(policy, fits, k, options, strategy);

  result.err_squared = 0.0;
  for (const PolyFit& fit : fits) result.err_squared += fit.err_squared;
  auto function = PiecewisePolynomial::Create(q.domain_size(), std::move(fits));
  if (!function.ok()) return function.status();
  result.function = std::move(function).value();
  return result;
}

}  // namespace internal
}  // namespace fasthist
