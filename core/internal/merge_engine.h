#ifndef FASTHIST_CORE_INTERNAL_MERGE_ENGINE_H_
#define FASTHIST_CORE_INTERNAL_MERGE_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/merging.h"
#include "dist/sparse_function.h"
#include "poly/poly_merging.h"
#include "util/status.h"

namespace fasthist {
namespace internal {

// An interval of the current partition together with the sufficient
// statistics of q on it: with L = end - begin, S = sum, SS = sumsq, the best
// flat value is S/L and the squared residual is SS - S^2/L.
struct MergeAtom {
  int64_t begin = 0;
  int64_t end = 0;
  double sum = 0.0;
  double sumsq = 0.0;
};

// How each round finds the m pairs with the largest merged error.  kSort is
// the textbook O(s log s) formulation; kSelect uses nth_element (the
// Theorem 3.4 trick) for O(s) per round and — thanks to the strict
// (error, index) tie-break order — selects exactly the same pair set, so
// the two strategies produce identical outputs.
enum class SelectionStrategy { kSort, kSelect };

// The round loop itself (RunRounds in merge_engine.cc) is generic over a
// policy-owned structure-of-arrays store: the histogram store keeps
// len[]/sum[]/sumsq[] planes and merges statistics with streaming SIMD
// kernels (util/simd.h), the piecewise-polynomial store keeps interval and
// coefficient planes and refits a Gram-basis least-squares projection per
// merged pair.  Each round past the first is one fused streaming pass
// (CommitAndEvaluate): committing round r's survivors produces round
// r+1's candidate statistics and errors while the planes are still hot, so
// a round reads and writes every plane exactly once.  Candidate and
// next-generation buffers persist across rounds (no per-round allocation),
// and the fused pass is data-parallel over MergingOptions::num_threads
// (util/parallel.h, clamped to the hardware by EffectiveParallelism) with
// bit-identical output at any thread count.  Both entry points below share
// the selection strategies, the (error, index) total order, the delta/gamma
// round schedule, and the termination argument — which is what makes the
// sqrt(1 + delta) guarantee a single proof and the engine a single
// SIMD/threading target.

// Test-only visibility into the engine's pass structure (thread-local, so
// concurrent constructions — e.g. merge-tree groups on pool workers —
// never race).  A "plane pass" is one sweep over the partition planes:
// evaluate_passes counts stand-alone EvaluatePairs sweeps (the cold start),
// fused_passes counts CommitAndEvaluate sweeps (commit + next-round
// evaluate in one), commit_passes counts final-round Commit sweeps.  The
// fused engine's invariant, asserted by tests/perf_smoke_test.cc, is
// evaluate_passes + fused_passes + commit_passes == rounds + 1.
struct EngineCounters {
  long long evaluate_passes = 0;
  long long fused_passes = 0;
  long long commit_passes = 0;
  long long rounds = 0;
};
EngineCounters& EngineCountersForTesting();
void ResetEngineCountersForTesting();

// Upper bound on the piece count any engine construction or merge can
// produce with these knobs: the round loop only terminates once at most
// 2*gamma*m + 1 intervals survive (m = max(k, floor(k*(1 + 1/delta))),
// both products clamped exactly like the engine's internal schedule), and
// a partition that starts at or below that threshold is returned as-is —
// so every output satisfies pieces <= min(this bound, domain_size).
// Callers that pre-size fixed-capacity buffers for engine outputs (the
// striped ingestor's lock-free summary planes) size them with this.
int64_t MaxSurvivingPieces(int64_t k, const MergingOptions& options);

// Initial sample-linear partition of q: alternating zero-run atoms and
// singleton support atoms covering [0, domain).
std::vector<MergeAtom> AtomsFromSparse(const SparseFunction& q);

// The interval skeleton of AtomsFromSparse, shared with the polynomial
// path (whose atoms carry fitted coefficients instead of moments).
std::vector<Interval> SupportPartition(const SparseFunction& q);

// Runs the merging rounds over `atoms` (which must tile [0, domain_size))
// and returns the flat-value histogram of the surviving partition.
StatusOr<MergingResult> RunMergingRounds(int64_t domain_size,
                                         std::vector<MergeAtom> atoms,
                                         int64_t k,
                                         const MergingOptions& options,
                                         SelectionStrategy strategy);

// Runs the same rounds over PolyFit atoms with the degree-`degree`
// least-squares projection as the merge oracle, starting from the support
// partition of q.  Backs ConstructPiecewisePolynomial (kSort) and
// ConstructPiecewisePolynomialFast (kSelect) in poly/poly_merging.h.
StatusOr<PiecewisePolyResult> RunPolyMergingRounds(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options, SelectionStrategy strategy);

}  // namespace internal
}  // namespace fasthist

#endif  // FASTHIST_CORE_INTERNAL_MERGE_ENGINE_H_
