#include "net/ingest_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "util/clock.h"

namespace fasthist {
namespace {

Status SetNonBlockingFd(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Invalid("net: cannot set O_NONBLOCK");
  }
  return Status::Ok();
}

// Backoff before re-arming the listener after a persistent accept failure
// (EMFILE and kin): long enough that fd exhaustion cannot spin a core,
// short enough that recovery is prompt once fds free up.
constexpr uint64_t kAcceptRearmDelayNanos = 100ull * 1000 * 1000;

}  // namespace

// Per-connection state, owned by the loop thread.  The queue is the
// backpressure boundary: bounded by hard_watermark plus one decoded batch,
// flushed to the store on size or deadline.
struct IngestServer::Connection {
  explicit Connection(int fd_in, uint64_t max_payload)
      : fd(fd_in), parser(max_payload) {}

  int fd;
  FrameParser parser;
  std::vector<KeyedSample> queue;
  uint64_t first_enqueue_ns = 0;
  uint64_t flush_timer_id = 0;  // 0 = no deadline timer pending
  std::vector<uint8_t> out;     // unwritten reply bytes
  size_t out_pos = 0;
  bool dropping = false;  // error replied; close once `out` drains
};

IngestServer::IngestServer(IngestServerOptions options)
    : options_(std::move(options)) {}

IngestServer::~IngestServer() {
  (void)Shutdown();
  if (listen_fd_ >= 0) close(listen_fd_);
}

StatusOr<std::unique_ptr<IngestServer>> IngestServer::Create(
    const IngestServerOptions& options) {
  if (options.soft_watermark == 0 ||
      options.soft_watermark >= options.hard_watermark) {
    return Status::Invalid(
        "IngestServer: watermarks must satisfy 0 < soft < hard");
  }
  if (options.flush_batch == 0) {
    return Status::Invalid("IngestServer: flush_batch must be positive");
  }
  if (options.max_frame_payload < 24) {
    return Status::Invalid("IngestServer: max_frame_payload too small");
  }
  if (options.max_connections < 1) {
    return Status::Invalid("IngestServer: max_connections must be positive");
  }
  if (options.max_reply_backlog <
      options.max_frame_payload + kFrameHeaderBytes) {
    return Status::Invalid(
        "IngestServer: max_reply_backlog must fit one max-size frame");
  }
  std::unique_ptr<IngestServer> server(new IngestServer(options));

  auto store = SummaryStore::Create(options.archetype);
  if (!store.ok()) return store.status();
  server->store_ =
      std::make_unique<SummaryStore>(std::move(store).value());

  auto ingest_latency = LatencyRecorder::Create();
  if (!ingest_latency.ok()) return ingest_latency.status();
  server->ingest_latency_ =
      std::make_unique<LatencyRecorder>(std::move(ingest_latency).value());
  auto query_latency = LatencyRecorder::Create();
  if (!query_latency.ok()) return query_latency.status();
  server->query_latency_ =
      std::make_unique<LatencyRecorder>(std::move(query_latency).value());

  auto loop = EventLoop::Create();
  if (!loop.ok()) return loop.status();
  server->loop_ = std::move(loop).value();

  if (Status s = server->Bind(); !s.ok()) return s;
  return server;
}

Status IngestServer::Bind() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Invalid("IngestServer: socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return Status::Invalid("IngestServer: bad bind address " +
                           options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::Invalid("IngestServer: bind() failed: " +
                           std::string(strerror(errno)));
  }
  if (listen(listen_fd_, 128) != 0) {
    return Status::Invalid("IngestServer: listen() failed");
  }
  if (Status s = SetNonBlockingFd(listen_fd_); !s.ok()) return s;

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) != 0) {
    return Status::Invalid("IngestServer: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Status IngestServer::Start() {
  if (started_) return Status::Invalid("IngestServer: already started");
  // Registered before the thread exists, so no cross-thread Watch: once
  // Run() begins, all loop-state mutation happens via loop callbacks.
  if (Status s = loop_->Watch(listen_fd_, /*want_read=*/true,
                              /*want_write=*/false,
                              [this](EventLoop::IoEvent) {
                                OnListenerReadable();
                              });
      !s.ok()) {
    return s;
  }
  started_ = true;
  loop_thread_ = std::thread([this] { loop_->Run(); });
  return Status::Ok();
}

Status IngestServer::Shutdown() {
  if (!started_ || stopped_) return Status::Ok();
  stopped_ = true;
  loop_->Post([this] { GracefulStop(); });
  loop_thread_.join();
  return Status::Ok();
}

void IngestServer::GracefulStop() {
  if (accept_rearm_timer_id_ != 0) {
    loop_->Cancel(accept_rearm_timer_id_);
    accept_rearm_timer_id_ = 0;
  }
  if (listen_fd_ >= 0) {
    loop_->Unwatch(listen_fd_);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Drain: every connection's queued samples are flushed (partial deadline
  // batches included) before the loop dies — CloseConnection flushes.
  std::vector<int> fds;
  fds.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  for (const int fd : fds) CloseConnection(fd);
  loop_->Quit();
}

ServerStats IngestServer::stats() const { return BuildStats(); }

ServerStats IngestServer::BuildStats() const {
  ServerStats stats = counters_;
  // The single-loop server is the one-partition degenerate case of the
  // sharded stats shape: num_loops = 1 with a lone partition entry
  // mirroring the global counters, so dashboards read both servers the
  // same way.
  stats.num_loops = 1;
  PartitionStats partition;
  partition.partition = 0;
  for (const auto& [fd, conn] : connections_) {
    (void)fd;
    partition.queue_depth += conn->queue.size();
  }
  partition.max_queue_depth = counters_.max_queue_depth;
  partition.samples_accepted = counters_.samples_accepted;
  partition.samples_shed = counters_.samples_shed;
  partition.flushes_size = counters_.flushes_size;
  partition.flushes_deadline = counters_.flushes_deadline;
  stats.partitions.push_back(partition);
  if (auto s = ingest_latency_->Stats(); s.ok()) {
    stats.ingest_p50_us = s->p50_us;
    stats.ingest_p99_us = s->p99_us;
    stats.ingest_p995_us = s->p995_us;
    stats.ingest_count = s->count;
  }
  if (auto s = query_latency_->Stats(); s.ok()) {
    stats.query_p50_us = s->p50_us;
    stats.query_p99_us = s->p99_us;
    stats.query_p995_us = s->p995_us;
    stats.query_count = s->count;
  }
  return stats;
}

void IngestServer::OnListenerReadable() {
  // Accept until EAGAIN (level-triggered poll would re-fire anyway, but
  // draining here saves wakeups under an accept burst).
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // backlog drained
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // Persistent failure (EMFILE/ENFILE fd exhaustion and kin): the
      // pending connection stays queued in the kernel backlog, so a
      // level-triggered poll would refire immediately and the loop would
      // spin accept() hot on one core.  Back off instead.
      PauseAccepting();
      return;
    }
    if (connections_.size() >=
        static_cast<size_t>(options_.max_connections)) {
      close(fd);
      ++counters_.connections_dropped;
      continue;
    }
    if (!SetNonBlockingFd(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.emplace(
        fd, std::make_unique<Connection>(fd, options_.max_frame_payload));
    ++counters_.connections_accepted;
    (void)loop_->Watch(fd, /*want_read=*/true, /*want_write=*/false,
                       [this, fd](EventLoop::IoEvent event) {
                         OnConnectionIo(fd, event);
                       });
  }
}

void IngestServer::PauseAccepting() {
  if (accept_rearm_timer_id_ != 0) return;
  loop_->Unwatch(listen_fd_);
  accept_rearm_timer_id_ =
      loop_->ScheduleAt(MonotonicNanos() + kAcceptRearmDelayNanos, [this] {
        accept_rearm_timer_id_ = 0;
        if (listen_fd_ < 0) return;  // GracefulStop closed the listener
        (void)loop_->Watch(listen_fd_, /*want_read=*/true,
                           /*want_write=*/false, [this](EventLoop::IoEvent) {
                             OnListenerReadable();
                           });
      });
}

void IngestServer::OnConnectionIo(int fd, EventLoop::IoEvent event) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (event.error) {
    CloseConnection(fd);
    return;
  }
  if (event.writable) {
    if (!PumpWrites(conn)) return;  // drained+closed, or a write error
  }
  if (event.readable) OnConnectionReadable(conn);
}

void IngestServer::OnConnectionReadable(Connection& conn) {
  const int fd = conn.fd;
  uint8_t buffer[65536];
  for (;;) {
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConnection(fd);
      return;
    }
    if (n == 0) {
      // Orderly EOF: the peer is done sending; its queued samples were
      // accepted and ACKed, so they flush into the store before teardown.
      CloseConnection(fd);
      return;
    }
    conn.parser.Consume(Span<const uint8_t>(buffer, static_cast<size_t>(n)));
    Frame frame;
    for (;;) {
      const FrameParser::Result result = conn.parser.Next(&frame);
      if (result == FrameParser::Result::kNeedMore) break;
      if (result == FrameParser::Result::kMalformed) {
        DropConnection(conn, ErrorCode::kMalformed, "malformed frame header");
        return;
      }
      HandleFrame(conn, frame);
      // The handler may have dropped or closed the connection; re-resolve
      // before touching it again.
      auto it = connections_.find(fd);
      if (it == connections_.end() || it->second->dropping) return;
    }
    if (static_cast<size_t>(n) < sizeof(buffer)) break;  // socket drained
  }
}

void IngestServer::HandleFrame(Connection& conn, const Frame& frame) {
  ++counters_.frames_received;
  const uint64_t start_ns = MonotonicNanos();
  switch (frame.type) {
    case FrameType::kIngest:
      HandleIngest(conn, frame, start_ns);
      return;
    case FrameType::kSnapshotPull:
      HandleSnapshotPull(conn, frame, start_ns);
      return;
    case FrameType::kQuantileQuery:
      HandleQuantileQuery(conn, frame, start_ns);
      return;
    case FrameType::kStats:
      HandleStats(conn, start_ns);
      return;
    default:
      // Reply-direction types arriving as requests are a protocol
      // violation, handled like any other malformed input.
      DropConnection(conn, ErrorCode::kMalformed,
                     "unexpected frame type for a request");
      return;
  }
}

void IngestServer::HandleIngest(Connection& conn, const Frame& frame,
                                uint64_t start_ns) {
  auto samples = DecodeIngestPayload(frame.payload);
  if (!samples.ok()) {
    DropConnection(conn, ErrorCode::kMalformed, samples.status().message());
    return;
  }
  const int64_t domain = options_.archetype.domain_size;
  for (const KeyedSample& sample : *samples) {
    if (sample.value < 0 || sample.value >= domain) {
      DropConnection(conn, ErrorCode::kMalformed,
                     "sample value outside the server's domain");
      return;
    }
  }
  const uint64_t offered = samples->size();
  counters_.samples_offered += offered;
  const size_t depth = conn.queue.size();

  if (depth >= options_.hard_watermark) {
    // Hard tier: refuse outright.  The client keeps the samples and the
    // decision; server memory stays bounded.
    ++counters_.batches_rejected;
    RejectedInfo info;
    info.queue_depth = depth;
    info.hard_watermark = options_.hard_watermark;
    const std::vector<uint8_t> payload = EncodeRejectedInfo(info);
    (void)SendFrame(conn, FrameType::kRejected, payload);
    ingest_latency_->Record(MonotonicNanos() - start_ns);
    return;
  }

  // Soft tier: degrade to sampling with a depth-escalated stride (header
  // comment in ingest_server.h documents the formula and why it is
  // deterministic).
  uint32_t keep_shift = 0;
  if (depth > options_.soft_watermark) {
    const size_t span = options_.hard_watermark - options_.soft_watermark;
    const size_t excess = depth - options_.soft_watermark;
    keep_shift = 1 + static_cast<uint32_t>((3 * excess) / span);
    if (keep_shift > 4) keep_shift = 4;
  }
  const uint64_t stride = uint64_t{1} << keep_shift;

  const bool was_empty = conn.queue.empty();
  uint64_t kept = 0;
  for (uint64_t i = 0; i < offered; i += stride) {
    conn.queue.push_back((*samples)[static_cast<size_t>(i)]);
    ++kept;
  }
  counters_.samples_accepted += kept;
  counters_.samples_shed += offered - kept;
  ++counters_.batches_ingested;
  counters_.max_queue_depth =
      std::max(counters_.max_queue_depth,
               static_cast<uint64_t>(conn.queue.size()));

  if (was_empty && kept > 0) {
    conn.first_enqueue_ns = start_ns;
    ScheduleDeadlineFlush(conn);
  }

  IngestAck ack;
  ack.accepted = kept;
  ack.shed = offered - kept;
  ack.keep_shift = keep_shift;
  const std::vector<uint8_t> payload = EncodeIngestAck(ack);
  if (!SendFrame(conn, FrameType::kIngestAck, payload)) {
    // The peer reset mid-reply (or stopped reading past the backlog cap)
    // and the connection is gone; its accepted samples were flushed by
    // CloseConnection.  `conn` is dangling from here on.
    ingest_latency_->Record(MonotonicNanos() - start_ns);
    return;
  }

  if (conn.queue.size() >= options_.flush_batch) {
    ++counters_.flushes_size;
    FlushQueue(conn);
  }
  ingest_latency_->Record(MonotonicNanos() - start_ns);
}

void IngestServer::HandleSnapshotPull(Connection& conn, const Frame& frame,
                                      uint64_t start_ns) {
  auto key = DecodeKeyPayload(frame.payload);
  if (!key.ok()) {
    DropConnection(conn, ErrorCode::kMalformed, key.status().message());
    return;
  }
  // A snapshot reflects everything accepted so far, not everything flushed
  // so far: pull drains every connection's queue first (fd order, the same
  // deterministic order GracefulStop uses).
  for (auto& [fd, other] : connections_) {
    (void)fd;
    FlushQueue(*other);
  }
  if (!store_->Contains(*key)) {
    SendError(conn, ErrorCode::kUnknownKey, "no such key");
    query_latency_->Record(MonotonicNanos() - start_ns);
    return;
  }
  auto snapshot = store_->ExportKeyedSnapshot(*key, options_.shard_id);
  if (!snapshot.ok()) {
    SendError(conn, ErrorCode::kInternal, snapshot.status().message());
    query_latency_->Record(MonotonicNanos() - start_ns);
    return;
  }
  const std::vector<uint8_t> envelope = EncodeShardSnapshot(*snapshot);
  (void)SendFrame(conn, FrameType::kSnapshotPush, envelope);
  query_latency_->Record(MonotonicNanos() - start_ns);
}

void IngestServer::HandleQuantileQuery(Connection& conn, const Frame& frame,
                                       uint64_t start_ns) {
  auto query = DecodeQuantileQuery(frame.payload);
  if (!query.ok()) {
    DropConnection(conn, ErrorCode::kMalformed, query.status().message());
    return;
  }
  // Same freshness contract as a snapshot pull: the answer covers every
  // accepted sample, including ones still sitting in connection queues.
  for (auto& [fd, other] : connections_) {
    (void)fd;
    FlushQueue(*other);
  }
  if (!store_->Contains(query->key)) {
    SendError(conn, ErrorCode::kUnknownKey, "no such key");
    query_latency_->Record(MonotonicNanos() - start_ns);
    return;
  }
  auto aggregator = store_->QueryAggregator(query->key);
  if (!aggregator.ok()) {
    // The key exists, so the only Create-time rejection is zero samples.
    SendError(conn, ErrorCode::kEmptyKey, aggregator.status().message());
    query_latency_->Record(MonotonicNanos() - start_ns);
    return;
  }
  const double q = std::min(1.0, std::max(0.0, query->q));
  QuantileReply reply;
  reply.value = aggregator->Quantile(q);
  reply.error_budget = aggregator->error_budget();
  if (auto count = store_->NumSamples(query->key); count.ok()) {
    reply.num_samples = *count;
  }
  const std::vector<uint8_t> payload = EncodeQuantileReply(reply);
  (void)SendFrame(conn, FrameType::kQuantileReply, payload);
  query_latency_->Record(MonotonicNanos() - start_ns);
}

void IngestServer::HandleStats(Connection& conn, uint64_t start_ns) {
  (void)start_ns;  // stats probes are not recorded into either op class
  const std::vector<uint8_t> payload = EncodeServerStats(BuildStats());
  (void)SendFrame(conn, FrameType::kStatsReply, payload);
}

void IngestServer::FlushQueue(Connection& conn) {
  if (conn.flush_timer_id != 0) {
    loop_->Cancel(conn.flush_timer_id);
    conn.flush_timer_id = 0;
  }
  if (conn.queue.empty()) return;
  // Cannot fail in steady state: values were domain-validated at ingest and
  // every key lives in archetype 0.  A failure here is a server bug, worth
  // a loud log but not a crash mid-serve.
  if (Status s = store_->AddBatch(conn.queue); !s.ok()) {
    std::fprintf(stderr, "IngestServer: AddBatch failed: %s\n",
                 s.message().c_str());
  }
  conn.queue.clear();
  conn.first_enqueue_ns = 0;
}

void IngestServer::ScheduleDeadlineFlush(Connection& conn) {
  const int fd = conn.fd;
  const uint64_t deadline =
      conn.first_enqueue_ns + options_.flush_deadline_us * 1000;
  conn.flush_timer_id = loop_->ScheduleAt(deadline, [this, fd] {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    Connection& timed = *it->second;
    timed.flush_timer_id = 0;
    if (!timed.queue.empty()) {
      ++counters_.flushes_deadline;
      FlushQueue(timed);
    }
  });
}

bool IngestServer::SendFrame(Connection& conn, FrameType type,
                             Span<const uint8_t> payload) {
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  const int fd = conn.fd;
  if (!PumpWrites(conn)) return false;
  // Write-side bound, the mirror of the ingest watermarks: a peer that
  // sends requests but never reads replies cannot grow `out` without
  // limit.  Its accepted samples still flush — CloseConnection drains.
  if (conn.out.size() - conn.out_pos > options_.max_reply_backlog) {
    ++counters_.connections_dropped;
    CloseConnection(fd);
    return false;
  }
  return true;
}

bool IngestServer::SendError(Connection& conn, ErrorCode code,
                             const std::string& message) {
  ErrorReply error;
  error.code = code;
  error.message = message;
  const std::vector<uint8_t> payload = EncodeErrorReply(error);
  return SendFrame(conn, FrameType::kError, payload);
}

bool IngestServer::PumpWrites(Connection& conn) {
  const int fd = conn.fd;
  while (conn.out_pos < conn.out.size()) {
    // MSG_NOSIGNAL: a reset peer must surface as EPIPE on this connection,
    // not as a process-killing SIGPIPE.
    const ssize_t n = send(fd, conn.out.data() + conn.out_pos,
                           conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Kernel buffer full: wait for POLLOUT (reads stay on unless this
      // connection is already condemned).
      (void)loop_->SetInterest(fd, /*want_read=*/!conn.dropping,
                               /*want_write=*/true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(fd);  // EPIPE/ECONNRESET: the peer is gone
    return false;
  }
  conn.out.clear();
  conn.out_pos = 0;
  if (conn.dropping) {
    CloseConnection(fd);
    return false;
  }
  (void)loop_->SetInterest(fd, /*want_read=*/true, /*want_write=*/false);
  return true;
}

void IngestServer::DropConnection(Connection& conn, ErrorCode code,
                                  const std::string& message) {
  if (conn.dropping) return;
  ++counters_.connections_dropped;
  // Accepted-and-ACKed samples are committed state: flush before teardown,
  // exactly like an orderly EOF.
  FlushQueue(conn);
  conn.dropping = true;  // set first: PumpWrites closes once `out` drains
  (void)SendError(conn, code, message);
}

void IngestServer::CloseConnection(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = *it->second;
  if (conn.flush_timer_id != 0) loop_->Cancel(conn.flush_timer_id);
  FlushQueue(conn);
  loop_->Unwatch(fd);
  close(fd);
  connections_.erase(it);
}

}  // namespace fasthist
