#ifndef FASTHIST_NET_INGEST_SERVER_H_
#define FASTHIST_NET_INGEST_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/latency_recorder.h"
#include "store/archetype_pool.h"
#include "store/summary_store.h"
#include "util/status.h"

namespace fasthist {

struct IngestServerOptions {
  // Loopback by default: the bench and tests drive the server over
  // 127.0.0.1, and a histogram service has no business on 0.0.0.0 unless
  // deliberately deployed there.
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; IngestServer::port() reports it

  // The keyed store every accepted sample lands in (archetype 0).
  ArchetypeConfig archetype;
  // Identity stamped on snapshots this server exports.
  uint64_t shard_id = 0;

  // Batch flush triggers: a connection's queue is flushed to
  // SummaryStore::AddBatch when it holds >= flush_batch samples (size
  // trigger) or when its oldest enqueued sample turns flush_deadline_us old
  // (deadline trigger) — whichever fires first.
  size_t flush_batch = 4096;
  uint64_t flush_deadline_us = 2000;

  // Two-tier overload policy, per connection, in queued samples:
  //   depth <= soft_watermark          accept everything
  //   soft < depth < hard_watermark    degrade to sampling (see below)
  //   depth >= hard_watermark          reply kRejected, drop the batch
  // The hard watermark is the bounded-queue guarantee: a connection never
  // queues more than hard_watermark + one decoded batch of samples, so
  // server memory is bounded by connections * (hard_watermark + batch)
  // no matter how fast clients push.
  size_t soft_watermark = 16384;
  size_t hard_watermark = 65536;

  // Frame payload cap (bounds per-connection decode buffering) and the
  // accept limit.
  uint64_t max_frame_payload = kDefaultMaxFramePayload;
  int max_connections = 256;

  // Write-side bound, the mirror of the ingest watermarks: a peer that
  // sends requests but never reads replies (a kSnapshotPull request is 24
  // bytes; its reply can be a ~1 MB envelope) would otherwise grow the
  // connection's reply buffer without limit.  Once the unwritten backlog
  // exceeds this many bytes the connection is dropped (its accepted
  // samples still flush — they were ACKed).  Must fit at least one
  // max-size frame, or every oversized reply would tear its connection
  // down.
  size_t max_reply_backlog = size_t{4} << 20;
};

// The socket front-end (ROADMAP item 2): a TCP server speaking the framed
// protocol of net/frame.h, feeding accepted KeyedSample batches into a
// SummaryStore through bounded per-connection queues, and answering
// snapshot pulls (wire v2/v3 envelopes), quantile queries, and stats
// probes.  Single-threaded by construction: everything — sockets, queues,
// the store, the latency recorders — lives on the event-loop thread, so
// there is not one lock on the request path.  Start() spawns that thread;
// Shutdown() drains it gracefully.
//
// Load shedding (the soft tier) is degrade-to-sampling by deterministic
// systematic thinning: at queue depth d in (soft, hard), a batch is kept
// only at indices i with i % (1 << s) == 0, where the stride shift
//
//   s = 1 + floor(3 * (d - soft) / (hard - soft)),  clamped to [1, 4]
//
// escalates with depth (keep 1/2 down to 1/16).  Uniform thinning
// preserves the sample *distribution* (quantile estimates stay unbiased),
// and the ACK records (accepted, shed, keep_shift) so the client holds the
// exact weight correction — and, because the kept index set is a
// deterministic function of the recorded stride, the accepted subsequence
// is exactly reconstructible: "server summaries are bit-identical to an
// offline replay of the accepted samples" is a testable contract even
// through an overload (net_test and the --net-grid overload cell check it).
//
// Self-measurement: every ingest and query request is timed (frame
// dispatch to reply queued) into LatencyRecorders built on this library's
// own streaming histograms, and a kStats frame answers with the server's
// own P50/P99/P99.5 — the service measures itself with the very summaries
// it serves.
class IngestServer {
 public:
  // Binds and listens (so port() is live immediately) but does not serve
  // until Start().
  static StatusOr<std::unique_ptr<IngestServer>> Create(
      const IngestServerOptions& options);

  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  uint16_t port() const { return port_; }

  // Spawns the event-loop thread and begins accepting connections.
  Status Start();

  // Graceful shutdown: stops accepting, flushes every connection's queued
  // samples into the store (partial deadline batches included), closes the
  // sockets, stops the loop, and joins the thread.  After Shutdown the
  // final store state is exactly "all accepted samples, flushed in
  // connection order" — the bit-identical-replay regression test's anchor.
  // Idempotent; also runs from the destructor if the caller forgot.
  Status Shutdown();

  // Post-shutdown inspection (the loop thread owns these while serving; a
  // live server answers through kSnapshotPull / kStats frames instead —
  // that self-serving path is the one the bench exercises).
  const SummaryStore& store() const { return *store_; }
  ServerStats stats() const;

 private:
  struct Connection;

  explicit IngestServer(IngestServerOptions options);

  Status Bind();
  // Everything below runs on the loop thread.
  void OnListenerReadable();
  void OnConnectionIo(int fd, EventLoop::IoEvent event);
  void OnConnectionReadable(Connection& conn);
  void HandleFrame(Connection& conn, const Frame& frame);
  void HandleIngest(Connection& conn, const Frame& frame, uint64_t start_ns);
  void HandleSnapshotPull(Connection& conn, const Frame& frame,
                          uint64_t start_ns);
  void HandleQuantileQuery(Connection& conn, const Frame& frame,
                           uint64_t start_ns);
  void HandleStats(Connection& conn, uint64_t start_ns);
  ServerStats BuildStats() const;

  // Flushes `conn`'s queue into the store (cancelling any deadline timer).
  void FlushQueue(Connection& conn);
  void ScheduleDeadlineFlush(Connection& conn);
  // Queues the encoded frame on the connection and pumps the socket.  The
  // send path can tear the connection down — a write error (peer reset) or
  // a reply backlog past max_reply_backlog both CloseConnection — so these
  // return whether `conn` is still alive; on false the reference is
  // dangling and the caller must not touch it again.
  bool SendFrame(Connection& conn, FrameType type,
                 Span<const uint8_t> payload);
  bool SendError(Connection& conn, ErrorCode code, const std::string& message);
  bool PumpWrites(Connection& conn);
  // Accept hit a persistent error (fd exhaustion): unwatch the listener so
  // level-triggered poll cannot hot-spin on it, and re-arm via a timer.
  void PauseAccepting();
  // Protocol-violation teardown: best-effort error reply, then close once
  // the write buffer drains (queued samples are flushed first — they were
  // accepted and ACKed, so they are part of the server's committed state).
  void DropConnection(Connection& conn, ErrorCode code,
                      const std::string& message);
  void CloseConnection(int fd);
  void GracefulStop();

  IngestServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t accept_rearm_timer_id_ = 0;  // 0 = accepting normally

  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  bool started_ = false;
  bool stopped_ = false;

  // Loop-thread state.
  std::unique_ptr<SummaryStore> store_;
  std::map<int, std::unique_ptr<Connection>> connections_;  // key: fd
  std::unique_ptr<LatencyRecorder> ingest_latency_;
  std::unique_ptr<LatencyRecorder> query_latency_;
  ServerStats counters_;  // latency fields filled on demand by BuildStats
};

}  // namespace fasthist

#endif  // FASTHIST_NET_INGEST_SERVER_H_
