#ifndef FASTHIST_NET_LATENCY_RECORDER_H_
#define FASTHIST_NET_LATENCY_RECORDER_H_

#include <cstdint>
#include <vector>

#include "core/streaming.h"
#include "service/merge_tree.h"
#include "util/clock.h"
#include "util/status.h"

namespace fasthist {

// Self-measurement as dogfood: the net/ layer times every request path into
// one of these, and each one is nothing but a StreamingHistogramBuilder
// over a latency domain plus an Aggregator::Quantile readout — the exact
// pipeline the service sells to its users, turned on itself (the PHAST
// harness measures per-op P50/P99/P99.5 the same way, with a hand-rolled
// histogram; ours is the paper's mergeable summary, so recorder state could
// even be merged across servers through the merge tree).
//
// Resolution: samples are recorded in 100 ns ticks over a domain of 2^25
// ticks (~3.36 s); anything slower clamps to the top tick.  Readouts are
// microseconds.  Memory is the builder's O(buffer + k log flushes), a few
// KB — cheap enough for one recorder per op class per server.
class LatencyRecorder {
 public:
  // `k` is the summary's pieces knob (P50/P99/P99.5 need decent tail
  // resolution, so the default is roomier than ingest summaries use);
  // `buffer_capacity` trades per-Record cost against condense frequency.
  static StatusOr<LatencyRecorder> Create(int64_t k = 64,
                                          size_t buffer_capacity = 256);

  // Records one operation's duration.  Never fails: out-of-range values
  // clamp into the domain (a 4-second outlier still lands in the top
  // bucket and drags the tail quantiles up, it just loses resolution).
  void Record(uint64_t nanos);

  int64_t count() const { return builder_.num_samples(); }

  // The P50/P99/P99.5 of everything recorded so far, served by
  // Aggregator::Quantile over the builder's Peek fold.  Const and
  // flush-free, like every export in this codebase.  With no samples
  // recorded, returns an all-zero LatencyStats (count == 0) rather than an
  // error — a stats probe against an idle server is not a fault.
  StatusOr<LatencyStats> Stats() const;

  // The recorder as a mergeable shard: its current summary packaged for
  // ReduceSummaries (weight = samples recorded, error_levels from the
  // builder's own ladder accounting).  This is what lets N per-loop
  // recorders in the sharded server fold into one fleet-wide latency
  // distribution with accounted error — the header's "recorder state could
  // even be merged" promise, cashed in.
  StatusOr<ShardSummary> ExportSummary() const;

  // Folds per-loop recorder summaries (ExportSummary outputs) into one
  // LatencyStats.  Zero-weight parts drop out; if nothing remains the
  // result is the all-zero stats an idle recorder reports.  The merge runs
  // through the deterministic tree, so the reply is a pure function of the
  // per-loop states.
  static StatusOr<LatencyStats> MergedStats(std::vector<ShardSummary> parts);

  static constexpr int64_t kTicksPerMicro = 10;  // 100 ns ticks
  static constexpr int64_t kDomainTicks = int64_t{1} << 25;

 private:
  explicit LatencyRecorder(StreamingHistogramBuilder builder);

  StreamingHistogramBuilder builder_;
};

}  // namespace fasthist

#endif  // FASTHIST_NET_LATENCY_RECORDER_H_
