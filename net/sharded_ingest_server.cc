#include "net/sharded_ingest_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <future>
#include <utility>

#include "util/clock.h"

namespace fasthist {
namespace {

Status SetNonBlockingFd(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Invalid("net: cannot set O_NONBLOCK");
  }
  return Status::Ok();
}

// Same accept-failure backoff as the single-loop server.
constexpr uint64_t kAcceptRearmDelayNanos = 100ull * 1000 * 1000;

// The single-loop server's depth-escalated stride, reused per partition.
uint32_t KeepShiftForDepth(uint64_t depth, size_t soft, size_t hard) {
  if (depth <= soft) return 0;
  const uint64_t span = hard - soft;
  const uint64_t excess = depth - soft;
  uint32_t shift = 1 + static_cast<uint32_t>((3 * excess) / span);
  return shift > 4 ? 4 : shift;
}

}  // namespace

// Per-connection state, owned by exactly one worker loop.  Unlike the
// single-loop server there is no sample queue here: accepted slices go
// straight into the owner partitions' hand-off rings at ingest time, so a
// connection's teardown never has samples to rescue.  `id` disambiguates
// fd reuse: replies built on another loop come back as (fd, id) and are
// dropped if either no longer matches.
struct ShardedIngestServer::Connection {
  Connection(int fd_in, uint64_t id_in, uint64_t max_payload)
      : fd(fd_in), id(id_in), parser(max_payload) {}

  int fd;
  uint64_t id;
  FrameParser parser;
  std::vector<uint8_t> out;  // unwritten reply bytes
  size_t out_pos = 0;
  bool dropping = false;  // error replied; close once `out` drains
};

// One worker = one event loop = one key-hash partition.  Everything above
// the "cross-thread surfaces" line is touched only from this worker's loop
// thread; the surfaces below are the exact places other loops reach in —
// the SPSC rings (one per producer loop), the drain-arming bit, and the
// relaxed counter atomics the shed policy and stats read.
struct ShardedIngestServer::Worker {
  uint32_t index = 0;
  std::unique_ptr<EventLoop> loop;
  std::thread thread;

  // Loop-local: connections this worker serves.
  std::map<int, std::unique_ptr<Connection>> connections;
  uint64_t next_conn_id = 1;
  std::vector<std::vector<KeyedSample>> scratch;  // batch partition buckets

  // Loop-local: this worker's partition of the store.
  std::vector<KeyedSample> pending;  // drained from rings, not yet flushed
  uint64_t first_enqueue_ns = 0;
  uint64_t flush_timer_id = 0;  // 0 = no deadline timer pending
  uint64_t flushes_size = 0;
  uint64_t flushes_deadline = 0;

  ServerStats counters;  // frames/batches/connections seen by this loop
  std::unique_ptr<LatencyRecorder> ingest_latency;
  std::unique_ptr<LatencyRecorder> query_latency;

  // Cross-thread surfaces.
  std::vector<std::unique_ptr<SpscRing<std::vector<KeyedSample>>>> rings;
  std::atomic<bool> drain_armed{false};
  // Samples accepted into rings/pending but not yet flushed to the store —
  // the depth the per-partition watermarks judge.
  std::atomic<uint64_t> depth{0};
  std::atomic<uint64_t> max_depth{0};
  std::atomic<uint64_t> acc_accepted{0};
  std::atomic<uint64_t> acc_shed{0};
  std::atomic<uint64_t> acc_rejected{0};
};

// Scatter-gather state for one kStats request: every loop fills its own
// slot (no two writers share one), the last decrement posts the finalize
// back to the requesting connection's loop.
struct ShardedIngestServer::StatsGather {
  explicit StatsGather(size_t n)
      : remaining(static_cast<uint32_t>(n)), parts(n) {}

  struct Part {
    ServerStats counters;      // the loop's local counters
    PartitionStats partition;  // its partition's depth/shed accounting
    ShardSummary ingest;       // recorder exports; weight 0 when idle
    ShardSummary query;
  };

  std::atomic<uint32_t> remaining;
  std::vector<Part> parts;
  Worker* requester = nullptr;
  int fd = -1;
  uint64_t conn_id = 0;
};

ShardedIngestServer::ShardedIngestServer(ShardedIngestServerOptions options)
    : options_(std::move(options)) {}

ShardedIngestServer::~ShardedIngestServer() {
  (void)Shutdown();
  if (listen_fd_ >= 0) close(listen_fd_);
}

StatusOr<std::unique_ptr<ShardedIngestServer>> ShardedIngestServer::Create(
    const ShardedIngestServerOptions& options) {
  const IngestServerOptions& base = options.base;
  if (base.soft_watermark == 0 ||
      base.soft_watermark >= base.hard_watermark) {
    return Status::Invalid(
        "ShardedIngestServer: watermarks must satisfy 0 < soft < hard");
  }
  if (base.flush_batch == 0) {
    return Status::Invalid("ShardedIngestServer: flush_batch must be positive");
  }
  if (base.max_frame_payload < 24) {
    return Status::Invalid("ShardedIngestServer: max_frame_payload too small");
  }
  if (base.max_connections < 1) {
    return Status::Invalid(
        "ShardedIngestServer: max_connections must be positive");
  }
  if (base.max_reply_backlog < base.max_frame_payload + kFrameHeaderBytes) {
    return Status::Invalid(
        "ShardedIngestServer: max_reply_backlog must fit one max-size frame");
  }
  if (options.num_loops < 1 || options.num_loops > 256 ||
      (options.num_loops & (options.num_loops - 1)) != 0) {
    return Status::Invalid(
        "ShardedIngestServer: num_loops must be a power of two in [1, 256]");
  }
  if (options.ring_capacity == 0 ||
      (options.ring_capacity & (options.ring_capacity - 1)) != 0) {
    return Status::Invalid(
        "ShardedIngestServer: ring_capacity must be a power of two");
  }

  std::unique_ptr<ShardedIngestServer> server(
      new ShardedIngestServer(options));
  const uint32_t n = static_cast<uint32_t>(options.num_loops);

  auto store = PartitionedSummaryStore::Create(base.archetype, n);
  if (!store.ok()) return store.status();
  server->store_ =
      std::make_unique<PartitionedSummaryStore>(std::move(store).value());

  server->workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->index = i;
    auto loop = EventLoop::Create(options.backend);
    if (!loop.ok()) return loop.status();
    worker->loop = std::move(loop).value();
    auto ingest_latency = LatencyRecorder::Create();
    if (!ingest_latency.ok()) return ingest_latency.status();
    worker->ingest_latency = std::make_unique<LatencyRecorder>(
        std::move(ingest_latency).value());
    auto query_latency = LatencyRecorder::Create();
    if (!query_latency.ok()) return query_latency.status();
    worker->query_latency =
        std::make_unique<LatencyRecorder>(std::move(query_latency).value());
    worker->rings.reserve(n);
    for (uint32_t producer = 0; producer < n; ++producer) {
      worker->rings.push_back(
          std::make_unique<SpscRing<std::vector<KeyedSample>>>(
              options.ring_capacity));
    }
    worker->scratch.resize(n);
    server->workers_.push_back(std::move(worker));
  }

  if (Status s = server->Bind(); !s.ok()) return s;
  return server;
}

EventLoopBackend ShardedIngestServer::backend() const {
  return workers_[0]->loop->backend();
}

Status ShardedIngestServer::Bind() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Invalid("ShardedIngestServer: socket() failed");
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.base.port);
  if (inet_pton(AF_INET, options_.base.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::Invalid("ShardedIngestServer: bad bind address " +
                           options_.base.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::Invalid("ShardedIngestServer: bind() failed: " +
                           std::string(strerror(errno)));
  }
  if (listen(listen_fd_, 128) != 0) {
    return Status::Invalid("ShardedIngestServer: listen() failed");
  }
  if (Status s = SetNonBlockingFd(listen_fd_); !s.ok()) return s;

  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&bound),
                  &bound_len) != 0) {
    return Status::Invalid("ShardedIngestServer: getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  return Status::Ok();
}

Status ShardedIngestServer::Start() {
  if (started_) return Status::Invalid("ShardedIngestServer: already started");
  // Registered before any thread exists, so no cross-thread Watch.
  if (Status s = workers_[0]->loop->Watch(
          listen_fd_, /*want_read=*/true, /*want_write=*/false,
          [this](EventLoop::IoEvent) { OnListenerReadable(); });
      !s.ok()) {
    return s;
  }
  started_ = true;
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([w] { w->loop->Run(); });
  }
  return Status::Ok();
}

void ShardedIngestServer::RunOnAllLoopsAndWait(
    const std::function<void(Worker&)>& fn) {
  auto remaining =
      std::make_shared<std::atomic<int>>(static_cast<int>(workers_.size()));
  auto done = std::make_shared<std::promise<void>>();
  std::future<void> all_done = done->get_future();
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->loop->Post([fn, w, remaining, done] {
      fn(*w);
      if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        done->set_value();
      }
    });
  }
  all_done.wait();
}

Status ShardedIngestServer::Shutdown() {
  if (!started_ || stopped_) return Status::Ok();
  stopped_ = true;
  draining_.store(true, std::memory_order_release);

  // Barrier 1: stop the world's inputs.  After this returns, every
  // connection on every loop is closed and the listener is gone, so no
  // producer can push into any ring again.
  RunOnAllLoopsAndWait([this](Worker& w) {
    if (w.index == 0) {
      if (accept_rearm_timer_id_ != 0) {
        w.loop->Cancel(accept_rearm_timer_id_);
        accept_rearm_timer_id_ = 0;
      }
      if (listen_fd_ >= 0) {
        w.loop->Unwatch(listen_fd_);
        close(listen_fd_);
        listen_fd_ = -1;
      }
    }
    std::vector<int> fds;
    fds.reserve(w.connections.size());
    for (const auto& [fd, conn] : w.connections) fds.push_back(fd);
    for (const int fd : fds) CloseConnection(w, fd);
  });

  // Barrier 2: with producers quiesced, every ring drains completely and
  // every partition's pending batch lands in its store.  This is where
  // "the store holds exactly the accepted samples" becomes true.
  RunOnAllLoopsAndWait([this](Worker& w) {
    DrainRings(w);
    FlushPending(w);
  });

  // Stage 3: nothing left to do on the loops.
  for (auto& worker : workers_) worker->loop->Quit();
  for (auto& worker : workers_) worker->thread.join();
  return Status::Ok();
}

// --- Acceptor --------------------------------------------------------------

void ShardedIngestServer::OnListenerReadable() {
  Worker& acceptor = *workers_[0];
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      PauseAccepting();  // EMFILE and kin: back off, don't spin
      return;
    }
    if (num_connections_.load(std::memory_order_relaxed) >=
        options_.base.max_connections) {
      close(fd);
      ++acceptor.counters.connections_dropped;
      continue;
    }
    if (!SetNonBlockingFd(fd).ok()) {
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    num_connections_.fetch_add(1, std::memory_order_relaxed);
    ++acceptor.counters.connections_accepted;
    // Round-robin distribution; the target loop adopts (creates + watches)
    // the connection so all of its io stays on one thread.
    const uint32_t target =
        next_accept_worker_++ % static_cast<uint32_t>(workers_.size());
    Worker* w = workers_[target].get();
    if (target == 0) {
      AdoptConnection(*w, fd);
    } else {
      w->loop->Post([this, w, fd] { AdoptConnection(*w, fd); });
    }
  }
}

void ShardedIngestServer::PauseAccepting() {
  if (accept_rearm_timer_id_ != 0) return;
  Worker& acceptor = *workers_[0];
  acceptor.loop->Unwatch(listen_fd_);
  accept_rearm_timer_id_ = acceptor.loop->ScheduleAt(
      MonotonicNanos() + kAcceptRearmDelayNanos, [this] {
        accept_rearm_timer_id_ = 0;
        if (listen_fd_ < 0) return;  // shutdown closed the listener
        (void)workers_[0]->loop->Watch(
            listen_fd_, /*want_read=*/true, /*want_write=*/false,
            [this](EventLoop::IoEvent) { OnListenerReadable(); });
      });
}

void ShardedIngestServer::AdoptConnection(Worker& w, int fd) {
  if (draining_.load(std::memory_order_acquire)) {
    // Shutdown's close barrier already swept this loop; adopting now would
    // leak a connection no barrier will ever close.
    close(fd);
    num_connections_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t id = w.next_conn_id++;
  w.connections.emplace(fd, std::make_unique<Connection>(
                                fd, id, options_.base.max_frame_payload));
  Worker* wp = &w;
  (void)w.loop->Watch(fd, /*want_read=*/true, /*want_write=*/false,
                      [this, wp, fd](EventLoop::IoEvent event) {
                        OnConnectionIo(*wp, fd, event);
                      });
}

// --- Connection io ---------------------------------------------------------

void ShardedIngestServer::OnConnectionIo(Worker& w, int fd,
                                         EventLoop::IoEvent event) {
  auto it = w.connections.find(fd);
  if (it == w.connections.end()) return;
  Connection& conn = *it->second;
  if (event.error) {
    CloseConnection(w, fd);
    return;
  }
  if (event.writable) {
    if (!PumpWrites(w, conn)) return;
  }
  if (event.readable) OnConnectionReadable(w, conn);
}

void ShardedIngestServer::OnConnectionReadable(Worker& w, Connection& conn) {
  const int fd = conn.fd;
  uint8_t buffer[65536];
  for (;;) {
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      CloseConnection(w, fd);
      return;
    }
    if (n == 0) {
      // Orderly EOF.  Accepted slices are already in the rings, so nothing
      // is lost by tearing the socket down now.
      CloseConnection(w, fd);
      return;
    }
    conn.parser.Consume(Span<const uint8_t>(buffer, static_cast<size_t>(n)));
    Frame frame;
    for (;;) {
      const FrameParser::Result result = conn.parser.Next(&frame);
      if (result == FrameParser::Result::kNeedMore) break;
      if (result == FrameParser::Result::kMalformed) {
        DropConnection(w, conn, ErrorCode::kMalformed,
                       "malformed frame header");
        return;
      }
      HandleFrame(w, conn, frame);
      auto it = w.connections.find(fd);
      if (it == w.connections.end() || it->second->dropping) return;
    }
    if (static_cast<size_t>(n) < sizeof(buffer)) break;
  }
}

void ShardedIngestServer::HandleFrame(Worker& w, Connection& conn,
                                      const Frame& frame) {
  ++w.counters.frames_received;
  const uint64_t start_ns = MonotonicNanos();
  switch (frame.type) {
    case FrameType::kIngest:
      HandleIngest(w, conn, frame, start_ns);
      return;
    case FrameType::kSnapshotPull:
      HandleSnapshotPull(w, conn, frame, start_ns);
      return;
    case FrameType::kQuantileQuery:
      HandleQuantileQuery(w, conn, frame, start_ns);
      return;
    case FrameType::kStats:
      HandleStats(w, conn);
      return;
    default:
      DropConnection(w, conn, ErrorCode::kMalformed,
                     "unexpected frame type for a request");
      return;
  }
}

void ShardedIngestServer::HandleIngest(Worker& w, Connection& conn,
                                       const Frame& frame, uint64_t start_ns) {
  auto samples = DecodeIngestPayload(frame.payload);
  if (!samples.ok()) {
    DropConnection(w, conn, ErrorCode::kMalformed, samples.status().message());
    return;
  }
  const int64_t domain = options_.base.archetype.domain_size;
  for (const KeyedSample& sample : *samples) {
    if (sample.value < 0 || sample.value >= domain) {
      DropConnection(w, conn, ErrorCode::kMalformed,
                     "sample value outside the server's domain");
      return;
    }
  }
  const uint64_t offered = samples->size();
  w.counters.samples_offered += offered;

  // Stable partition: each bucket holds its partition's subsequence in
  // batch order — the order the replay reconstruction will rewalk.
  const uint32_t n = static_cast<uint32_t>(workers_.size());
  for (const KeyedSample& sample : *samples) {
    w.scratch[PartitionOfKey(sample.key, n)].push_back(sample);
  }

  IngestAck ack;
  bool any_rejected = false;
  for (uint32_t p = 0; p < n; ++p) {
    std::vector<KeyedSample>& bucket = w.scratch[p];
    if (bucket.empty()) continue;
    Worker& owner = *workers_[p];
    const uint64_t offered_p = bucket.size();
    PartitionDisposition d;
    d.partition = p;
    // The shed decision reads the owner's depth racily (it may be mid
    // flush) — that only skews *policy*, never accounting: whatever this
    // loop decides is exactly what the ACK records.
    const uint64_t depth = owner.depth.load(std::memory_order_relaxed);
    if (depth >= options_.base.hard_watermark) {
      d.rejected = offered_p;
    } else {
      const uint32_t keep_shift =
          KeepShiftForDepth(depth, options_.base.soft_watermark,
                            options_.base.hard_watermark);
      const uint64_t stride = uint64_t{1} << keep_shift;
      std::vector<KeyedSample> slice;
      slice.reserve(static_cast<size_t>((offered_p + stride - 1) / stride));
      for (uint64_t j = 0; j < offered_p; j += stride) {
        slice.push_back(bucket[static_cast<size_t>(j)]);
      }
      const uint64_t kept = slice.size();
      if (!owner.rings[w.index]->Push(std::move(slice))) {
        // Hand-off ring full: the owner is far behind this producer.  Same
        // contract as the hard watermark — refuse the whole slice, so the
        // ACK stays an exact description of server state.
        d.rejected = offered_p;
      } else {
        d.keep_shift = keep_shift;
        d.accepted = kept;
        d.shed = offered_p - kept;
        const uint64_t new_depth =
            owner.depth.fetch_add(kept, std::memory_order_relaxed) + kept;
        uint64_t seen = owner.max_depth.load(std::memory_order_relaxed);
        while (new_depth > seen &&
               !owner.max_depth.compare_exchange_weak(
                   seen, new_depth, std::memory_order_relaxed)) {
        }
        ArmDrain(owner);
      }
    }
    owner.acc_accepted.fetch_add(d.accepted, std::memory_order_relaxed);
    owner.acc_shed.fetch_add(d.shed, std::memory_order_relaxed);
    owner.acc_rejected.fetch_add(d.rejected, std::memory_order_relaxed);
    if (d.rejected != 0) any_rejected = true;
    ack.accepted += d.accepted;
    ack.shed += d.shed;
    ack.rejected += d.rejected;
    ack.keep_shift = std::max(ack.keep_shift, d.keep_shift);
    ack.partitions.push_back(d);
    bucket.clear();
  }
  if (any_rejected) {
    ++w.counters.batches_rejected;
  } else {
    ++w.counters.batches_ingested;
  }

  // Push-before-ACK: the slices are in the rings already, so a client that
  // sees this ACK and immediately queries finds its samples.
  const std::vector<uint8_t> payload = EncodeIngestAck(ack);
  (void)SendFrame(w, conn, FrameType::kIngestAck, payload);
  w.ingest_latency->Record(MonotonicNanos() - start_ns);
}

void ShardedIngestServer::HandleSnapshotPull(Worker& w, Connection& conn,
                                             const Frame& frame,
                                             uint64_t start_ns) {
  auto key = DecodeKeyPayload(frame.payload);
  if (!key.ok()) {
    DropConnection(w, conn, ErrorCode::kMalformed, key.status().message());
    return;
  }
  const uint64_t key_v = *key;
  const uint64_t shard_id = options_.base.shard_id;
  Worker* owner = workers_[store_->partition_of(key_v)].get();
  Worker* self = &w;
  const int fd = conn.fd;
  const uint64_t conn_id = conn.id;
  // Hop to the key's owner loop: drain + flush for freshness (everything
  // ACKed before this pull is in the rings by the push-before-ACK order),
  // serve from the single-writer partition store, hop back to write.
  owner->loop->Post([this, owner, self, fd, conn_id, key_v, shard_id,
                     start_ns] {
    DrainRings(*owner);
    FlushPending(*owner);
    const SummaryStore& part = store_->partition(owner->index);
    FrameType type = FrameType::kError;
    std::vector<uint8_t> payload;
    if (!part.Contains(key_v)) {
      payload = EncodeErrorReply(ErrorReply{ErrorCode::kUnknownKey,
                                            "no such key"});
    } else if (auto snapshot = part.ExportKeyedSnapshot(key_v, shard_id);
               !snapshot.ok()) {
      payload = EncodeErrorReply(
          ErrorReply{ErrorCode::kInternal, snapshot.status().message()});
    } else {
      type = FrameType::kSnapshotPush;
      payload = EncodeShardSnapshot(*snapshot);
    }
    self->loop->Post([this, self, fd, conn_id, type,
                      payload = std::move(payload), start_ns]() mutable {
      DeliverReply(*self, fd, conn_id, type, std::move(payload), start_ns,
                   /*is_query=*/true);
    });
  });
}

void ShardedIngestServer::HandleQuantileQuery(Worker& w, Connection& conn,
                                              const Frame& frame,
                                              uint64_t start_ns) {
  auto query = DecodeQuantileQuery(frame.payload);
  if (!query.ok()) {
    DropConnection(w, conn, ErrorCode::kMalformed, query.status().message());
    return;
  }
  const QuantileQuery q = *query;
  Worker* owner = workers_[store_->partition_of(q.key)].get();
  Worker* self = &w;
  const int fd = conn.fd;
  const uint64_t conn_id = conn.id;
  owner->loop->Post([this, owner, self, fd, conn_id, q, start_ns] {
    DrainRings(*owner);
    FlushPending(*owner);
    const SummaryStore& part = store_->partition(owner->index);
    FrameType type = FrameType::kError;
    std::vector<uint8_t> payload;
    if (!part.Contains(q.key)) {
      payload = EncodeErrorReply(ErrorReply{ErrorCode::kUnknownKey,
                                            "no such key"});
    } else if (auto aggregator = part.QueryAggregator(q.key);
               !aggregator.ok()) {
      // The key exists, so the only Create-time rejection is zero samples.
      payload = EncodeErrorReply(
          ErrorReply{ErrorCode::kEmptyKey, aggregator.status().message()});
    } else {
      const double rank = std::min(1.0, std::max(0.0, q.q));
      QuantileReply reply;
      reply.value = aggregator->Quantile(rank);
      reply.error_budget = aggregator->error_budget();
      if (auto count = part.NumSamples(q.key); count.ok()) {
        reply.num_samples = *count;
      }
      type = FrameType::kQuantileReply;
      payload = EncodeQuantileReply(reply);
    }
    self->loop->Post([this, self, fd, conn_id, type,
                      payload = std::move(payload), start_ns]() mutable {
      DeliverReply(*self, fd, conn_id, type, std::move(payload), start_ns,
                   /*is_query=*/true);
    });
  });
}

void ShardedIngestServer::HandleStats(Worker& w, Connection& conn) {
  auto gather = std::make_shared<StatsGather>(workers_.size());
  gather->requester = &w;
  gather->fd = conn.fd;
  gather->conn_id = conn.id;
  for (auto& worker : workers_) {
    Worker* ow = worker.get();
    ow->loop->Post([this, gather, ow] {
      CollectLocalStats(*ow, *gather);
      if (gather->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        gather->requester->loop->Post(
            [this, gather] { FinalizeStats(*gather->requester, gather); });
      }
    });
  }
}

void ShardedIngestServer::DeliverReply(Worker& w, int fd, uint64_t conn_id,
                                       FrameType type,
                                       std::vector<uint8_t> payload,
                                       uint64_t start_ns, bool is_query) {
  auto it = w.connections.find(fd);
  if (it == w.connections.end() || it->second->id != conn_id ||
      it->second->dropping) {
    return;  // the connection died (or the fd was reused) mid round-trip
  }
  (void)SendFrame(w, *it->second, type, payload);
  if (is_query) w.query_latency->Record(MonotonicNanos() - start_ns);
}

// --- Owner-side partition work ---------------------------------------------

void ShardedIngestServer::ArmDrain(Worker& owner) {
  // exchange (an RMW) on both ends: RMW release sequences make "the drain
  // that observed armed == true" a synchronization point, so a producer
  // whose exchange returns true knows a drain that has *not yet* passed its
  // disarm is coming — that drain's pops happen after the disarm, which
  // happens after this producer's push.  No lost wakeups, and at most one
  // drain task in flight per owner however many producers push.
  if (!owner.drain_armed.exchange(true, std::memory_order_acq_rel)) {
    Worker* o = &owner;
    owner.loop->Post([this, o] { DrainRings(*o); });
  }
}

void ShardedIngestServer::DrainRings(Worker& owner) {
  // Disarm FIRST: a producer pushing after this point either sees armed ==
  // false (and posts a fresh drain) or armed == true set by a later
  // producer (whose drain is still coming).  Either way its push is
  // covered.
  (void)owner.drain_armed.exchange(false, std::memory_order_acq_rel);
  const bool was_empty = owner.pending.empty();
  std::vector<KeyedSample> slice;
  for (auto& ring : owner.rings) {
    while (ring->Pop(&slice)) {
      owner.pending.insert(owner.pending.end(), slice.begin(), slice.end());
      slice.clear();
    }
  }
  if (owner.pending.empty()) return;
  if (was_empty) owner.first_enqueue_ns = MonotonicNanos();
  if (owner.pending.size() >= options_.base.flush_batch) {
    ++owner.flushes_size;
    FlushPending(owner);
  } else if (owner.flush_timer_id == 0) {
    ScheduleDeadlineFlush(owner);
  }
}

void ShardedIngestServer::FlushPending(Worker& owner) {
  if (owner.flush_timer_id != 0) {
    owner.loop->Cancel(owner.flush_timer_id);
    owner.flush_timer_id = 0;
  }
  if (owner.pending.empty()) return;
  // Single writer: only this loop ever touches partition `owner.index`.
  if (Status s = store_->partition(owner.index)
                     .AddBatch(Span<const KeyedSample>(owner.pending.data(),
                                                       owner.pending.size()));
      !s.ok()) {
    std::fprintf(stderr, "ShardedIngestServer: AddBatch failed: %s\n",
                 s.message().c_str());
  }
  owner.depth.fetch_sub(owner.pending.size(), std::memory_order_relaxed);
  owner.pending.clear();
  owner.first_enqueue_ns = 0;
}

void ShardedIngestServer::ScheduleDeadlineFlush(Worker& owner) {
  Worker* o = &owner;
  const uint64_t deadline =
      owner.first_enqueue_ns + options_.base.flush_deadline_us * 1000;
  owner.flush_timer_id = owner.loop->ScheduleAt(deadline, [this, o] {
    o->flush_timer_id = 0;
    if (!o->pending.empty()) {
      ++o->flushes_deadline;
      FlushPending(*o);
    }
  });
}

// --- Stats -----------------------------------------------------------------

void ShardedIngestServer::CollectLocalStats(Worker& w, StatsGather& gather) {
  StatsGather::Part& slot = gather.parts[w.index];
  slot.counters = w.counters;
  PartitionStats partition;
  partition.partition = w.index;
  partition.queue_depth = w.depth.load(std::memory_order_relaxed);
  partition.max_queue_depth = w.max_depth.load(std::memory_order_relaxed);
  partition.samples_accepted = w.acc_accepted.load(std::memory_order_relaxed);
  partition.samples_shed = w.acc_shed.load(std::memory_order_relaxed);
  partition.samples_rejected = w.acc_rejected.load(std::memory_order_relaxed);
  partition.flushes_size = w.flushes_size;
  partition.flushes_deadline = w.flushes_deadline;
  slot.partition = partition;
  if (w.ingest_latency->count() > 0) {
    if (auto s = w.ingest_latency->ExportSummary(); s.ok()) {
      slot.ingest = std::move(s).value();
    }
  }
  if (w.query_latency->count() > 0) {
    if (auto s = w.query_latency->ExportSummary(); s.ok()) {
      slot.query = std::move(s).value();
    }
  }
}

ServerStats ShardedIngestServer::AggregateStats(
    const StatsGather& gather) const {
  ServerStats stats;
  stats.num_loops = static_cast<uint32_t>(workers_.size());
  std::vector<ShardSummary> ingest_parts;
  std::vector<ShardSummary> query_parts;
  ingest_parts.reserve(gather.parts.size());
  query_parts.reserve(gather.parts.size());
  for (const StatsGather::Part& part : gather.parts) {
    const ServerStats& c = part.counters;
    stats.frames_received += c.frames_received;
    stats.connections_accepted += c.connections_accepted;
    stats.connections_dropped += c.connections_dropped;
    stats.batches_ingested += c.batches_ingested;
    stats.batches_rejected += c.batches_rejected;
    stats.samples_offered += c.samples_offered;
    const PartitionStats& p = part.partition;
    stats.samples_accepted += p.samples_accepted;
    stats.samples_shed += p.samples_shed;
    stats.flushes_size += p.flushes_size;
    stats.flushes_deadline += p.flushes_deadline;
    stats.max_queue_depth = std::max(stats.max_queue_depth, p.max_queue_depth);
    stats.partitions.push_back(p);
    ingest_parts.push_back(part.ingest);
    query_parts.push_back(part.query);
  }
  // Per-loop recorders fold into one fleet-wide distribution through the
  // deterministic merge tree — the mergeability the service sells, applied
  // to its own telemetry.
  if (auto merged = LatencyRecorder::MergedStats(std::move(ingest_parts));
      merged.ok()) {
    stats.ingest_p50_us = merged->p50_us;
    stats.ingest_p99_us = merged->p99_us;
    stats.ingest_p995_us = merged->p995_us;
    stats.ingest_count = merged->count;
  }
  if (auto merged = LatencyRecorder::MergedStats(std::move(query_parts));
      merged.ok()) {
    stats.query_p50_us = merged->p50_us;
    stats.query_p99_us = merged->p99_us;
    stats.query_p995_us = merged->p995_us;
    stats.query_count = merged->count;
  }
  return stats;
}

void ShardedIngestServer::FinalizeStats(
    Worker& requester, const std::shared_ptr<StatsGather>& gather) {
  const std::vector<uint8_t> payload =
      EncodeServerStats(AggregateStats(*gather));
  auto it = requester.connections.find(gather->fd);
  if (it == requester.connections.end() ||
      it->second->id != gather->conn_id || it->second->dropping) {
    return;
  }
  (void)SendFrame(requester, *it->second, FrameType::kStatsReply, payload);
}

ServerStats ShardedIngestServer::stats() const {
  // Post-shutdown only: the loop threads own all of this while serving (a
  // live server answers through kStats frames instead).
  StatsGather gather(workers_.size());
  auto* self = const_cast<ShardedIngestServer*>(this);
  for (auto& worker : self->workers_) {
    self->CollectLocalStats(*worker, gather);
  }
  return AggregateStats(gather);
}

// --- Write path ------------------------------------------------------------

bool ShardedIngestServer::SendFrame(Worker& w, Connection& conn,
                                    FrameType type,
                                    Span<const uint8_t> payload) {
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  const int fd = conn.fd;
  if (!PumpWrites(w, conn)) return false;
  if (conn.out.size() - conn.out_pos > options_.base.max_reply_backlog) {
    ++w.counters.connections_dropped;
    CloseConnection(w, fd);
    return false;
  }
  return true;
}

bool ShardedIngestServer::SendError(Worker& w, Connection& conn,
                                    ErrorCode code,
                                    const std::string& message) {
  ErrorReply error;
  error.code = code;
  error.message = message;
  const std::vector<uint8_t> payload = EncodeErrorReply(error);
  return SendFrame(w, conn, FrameType::kError, payload);
}

bool ShardedIngestServer::PumpWrites(Worker& w, Connection& conn) {
  const int fd = conn.fd;
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = send(fd, conn.out.data() + conn.out_pos,
                           conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      (void)w.loop->SetInterest(fd, /*want_read=*/!conn.dropping,
                                /*want_write=*/true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(w, fd);
    return false;
  }
  conn.out.clear();
  conn.out_pos = 0;
  if (conn.dropping) {
    CloseConnection(w, fd);
    return false;
  }
  (void)w.loop->SetInterest(fd, /*want_read=*/true, /*want_write=*/false);
  return true;
}

void ShardedIngestServer::DropConnection(Worker& w, Connection& conn,
                                         ErrorCode code,
                                         const std::string& message) {
  if (conn.dropping) return;
  ++w.counters.connections_dropped;
  conn.dropping = true;  // set first: PumpWrites closes once `out` drains
  (void)SendError(w, conn, code, message);
}

void ShardedIngestServer::CloseConnection(Worker& w, int fd) {
  auto it = w.connections.find(fd);
  if (it == w.connections.end()) return;
  w.loop->Unwatch(fd);
  close(fd);
  w.connections.erase(it);
  num_connections_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace fasthist
