#include "net/latency_recorder.h"

#include <utility>

#include "service/aggregator.h"

namespace fasthist {

LatencyRecorder::LatencyRecorder(StreamingHistogramBuilder builder)
    : builder_(std::move(builder)) {}

StatusOr<LatencyRecorder> LatencyRecorder::Create(int64_t k,
                                                  size_t buffer_capacity) {
  auto builder =
      StreamingHistogramBuilder::Create(kDomainTicks, k, buffer_capacity);
  if (!builder.ok()) return builder.status();
  return LatencyRecorder(std::move(builder).value());
}

void LatencyRecorder::Record(uint64_t nanos) {
  int64_t ticks = static_cast<int64_t>(nanos / 100);
  if (ticks >= kDomainTicks) ticks = kDomainTicks - 1;
  // In-domain by construction, so Add cannot fail; the builder's Status is
  // about caller-supplied samples, which this clamp just ruled out.
  (void)builder_.Add(ticks);
}

StatusOr<LatencyStats> LatencyRecorder::Stats() const {
  LatencyStats stats;
  stats.count = builder_.num_samples();
  if (stats.count == 0) return stats;
  auto summary = builder_.Peek();
  if (!summary.ok()) return summary.status();
  auto aggregator = Aggregator::Create(std::move(summary).value());
  if (!aggregator.ok()) return aggregator.status();
  const double ticks_per_us = static_cast<double>(kTicksPerMicro);
  stats.p50_us =
      static_cast<double>(aggregator->Quantile(0.50)) / ticks_per_us;
  stats.p99_us =
      static_cast<double>(aggregator->Quantile(0.99)) / ticks_per_us;
  stats.p995_us =
      static_cast<double>(aggregator->Quantile(0.995)) / ticks_per_us;
  return stats;
}

StatusOr<ShardSummary> LatencyRecorder::ExportSummary() const {
  auto summary = builder_.Peek();
  if (!summary.ok()) return summary.status();
  return ShardSummary{std::move(summary).value(),
                      static_cast<double>(builder_.num_samples()),
                      builder_.error_levels()};
}

StatusOr<LatencyStats> LatencyRecorder::MergedStats(
    std::vector<ShardSummary> parts) {
  LatencyStats stats;
  double total_weight = 0.0;
  std::vector<ShardSummary> live;
  live.reserve(parts.size());
  for (ShardSummary& part : parts) {
    if (part.weight <= 0.0) continue;  // idle loop: no mass to merge
    total_weight += part.weight;
    live.push_back(std::move(part));
  }
  stats.count = static_cast<int64_t>(total_weight);
  if (live.empty()) return stats;  // every loop idle: the all-zero readout
  auto reduced = ReduceSummaries(std::move(live), /*k=*/64);
  if (!reduced.ok()) return reduced.status();
  auto aggregator = Aggregator::Create(reduced.value());
  if (!aggregator.ok()) return aggregator.status();
  const double ticks_per_us = static_cast<double>(kTicksPerMicro);
  stats.p50_us =
      static_cast<double>(aggregator->Quantile(0.50)) / ticks_per_us;
  stats.p99_us =
      static_cast<double>(aggregator->Quantile(0.99)) / ticks_per_us;
  stats.p995_us =
      static_cast<double>(aggregator->Quantile(0.995)) / ticks_per_us;
  return stats;
}

}  // namespace fasthist
