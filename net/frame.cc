#include "net/frame.h"

#include <cmath>
#include <cstring>

#include "store/partitioned_store.h"

namespace fasthist {
namespace {

// Caps on the variable-length tails of the extended ack/stats codecs: a
// hostile count field can cost at most this many fixed-size entries of
// buffering before the remaining-bytes check rejects it.
constexpr uint32_t kMaxPartitionEntries = 65536;

// "FHn1" as it appears on the wire (little-endian u32).
constexpr uint32_t kFrameMagic = 0x316e4846;

constexpr uint32_t kMinFrameType = static_cast<uint32_t>(FrameType::kIngest);
constexpr uint32_t kMaxFrameType = static_cast<uint32_t>(FrameType::kError);

// Error messages ride in kError payloads verbatim; cap them so a hostile
// peer cannot make "decode the error" itself expensive.
constexpr size_t kMaxErrorMessageBytes = 4096;

void AppendU32(std::vector<uint8_t>* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void AppendU64(std::vector<uint8_t>* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void AppendI64(std::vector<uint8_t>* out, int64_t value) {
  AppendU64(out, static_cast<uint64_t>(value));
}

void AppendDouble(std::vector<uint8_t>* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

// The same bounds-checked cursor idiom as service/wire_format.cc: every
// read checks what remains first, so hostile input yields `false`, not UB.
class PayloadReader {
 public:
  explicit PayloadReader(Span<const uint8_t> bytes)
      : data_(bytes.data()), size_(bytes.size()) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU32(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (remaining() < 8) return false;
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = value;
    return true;
  }

  bool ReadI64(int64_t* out) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    *out = static_cast<int64_t>(bits);
    return true;
  }

  bool ReadDouble(double* out) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(bits));
    return true;
  }

  const uint8_t* cursor() const { return data_ + pos_; }
  void Skip(size_t count) { pos_ += count; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status TrailingBytes(const char* where) {
  return Status::Invalid(std::string(where) + ": trailing bytes");
}

Status Truncated(const char* where) {
  return Status::Invalid(std::string(where) + ": truncated payload");
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type, Span<const uint8_t> payload) {
  std::vector<uint8_t> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&out, kFrameMagic);
  AppendU32(&out, static_cast<uint32_t>(type));
  AppendU64(&out, static_cast<uint64_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameParser::Consume(Span<const uint8_t> bytes) {
  if (poisoned_) return;  // the connection is dead; stop buffering
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameParser::Result FrameParser::Next(Frame* out) {
  if (poisoned_) return Result::kMalformed;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Result::kNeedMore;
  const uint8_t* head = buffer_.data() + consumed_;

  uint32_t magic = 0;
  uint32_t type = 0;
  uint64_t payload_length = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<uint32_t>(head[i]) << (8 * i);
    type |= static_cast<uint32_t>(head[4 + i]) << (8 * i);
  }
  for (int i = 0; i < 8; ++i) {
    payload_length |= static_cast<uint64_t>(head[8 + i]) << (8 * i);
  }

  // Header validation happens before any payload is awaited, so a hostile
  // header poisons the stream immediately — the parser never waits for (or
  // buffers toward) a length it has already decided is bogus.
  if (magic != kFrameMagic || type < kMinFrameType || type > kMaxFrameType ||
      payload_length > max_payload_) {
    poisoned_ = true;
    return Result::kMalformed;
  }
  if (available - kFrameHeaderBytes < payload_length) return Result::kNeedMore;

  out->type = static_cast<FrameType>(type);
  out->payload.assign(head + kFrameHeaderBytes,
                      head + kFrameHeaderBytes + payload_length);
  consumed_ += kFrameHeaderBytes + static_cast<size_t>(payload_length);
  // Compact once the dead prefix dominates, so long-lived connections do
  // not accrete every frame they ever received.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Result::kFrame;
}

// --- Typed payload codecs ---------------------------------------------------

std::vector<uint8_t> EncodeIngestPayload(Span<const KeyedSample> samples) {
  std::vector<uint8_t> out;
  out.reserve(8 + 16 * samples.size());
  AppendU64(&out, static_cast<uint64_t>(samples.size()));
  for (const KeyedSample& sample : samples) {
    AppendU64(&out, sample.key);
    AppendI64(&out, sample.value);
  }
  return out;
}

StatusOr<std::vector<KeyedSample>> DecodeIngestPayload(
    Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  uint64_t count = 0;
  if (!reader.ReadU64(&count)) return Truncated("DecodeIngestPayload");
  // Overflow-safe sizing: check the count against the bytes actually
  // present before allocating anything from it.
  if (count > reader.remaining() / 16) {
    return Status::Invalid("DecodeIngestPayload: sample count overruns frame");
  }
  if (reader.remaining() != static_cast<size_t>(count) * 16) {
    return TrailingBytes("DecodeIngestPayload");
  }
  std::vector<KeyedSample> samples(static_cast<size_t>(count));
  for (KeyedSample& sample : samples) {
    if (!reader.ReadU64(&sample.key) || !reader.ReadI64(&sample.value)) {
      return Truncated("DecodeIngestPayload");
    }
  }
  return samples;
}

std::vector<uint8_t> EncodeIngestAck(const IngestAck& ack) {
  std::vector<uint8_t> out;
  AppendU64(&out, ack.accepted);
  AppendU64(&out, ack.shed);
  AppendU32(&out, ack.keep_shift);
  AppendU64(&out, ack.rejected);
  AppendU32(&out, static_cast<uint32_t>(ack.partitions.size()));
  for (const PartitionDisposition& p : ack.partitions) {
    AppendU32(&out, p.partition);
    AppendU32(&out, p.keep_shift);
    AppendU64(&out, p.accepted);
    AppendU64(&out, p.shed);
    AppendU64(&out, p.rejected);
  }
  return out;
}

StatusOr<IngestAck> DecodeIngestAck(Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  IngestAck ack;
  if (!reader.ReadU64(&ack.accepted) || !reader.ReadU64(&ack.shed) ||
      !reader.ReadU32(&ack.keep_shift) || !reader.ReadU64(&ack.rejected)) {
    return Truncated("DecodeIngestAck");
  }
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("DecodeIngestAck");
  // Entries are 32 bytes each; bound the count against the bytes actually
  // present (and an absolute cap) before sizing anything from it.
  if (count > kMaxPartitionEntries || reader.remaining() / 32 < count) {
    return Status::Invalid("DecodeIngestAck: partition count overruns frame");
  }
  ack.partitions.resize(count);
  for (PartitionDisposition& p : ack.partitions) {
    if (!reader.ReadU32(&p.partition) || !reader.ReadU32(&p.keep_shift) ||
        !reader.ReadU64(&p.accepted) || !reader.ReadU64(&p.shed) ||
        !reader.ReadU64(&p.rejected)) {
      return Truncated("DecodeIngestAck");
    }
  }
  if (reader.remaining() != 0) return TrailingBytes("DecodeIngestAck");
  return ack;
}

std::vector<uint8_t> EncodeRejectedInfo(const RejectedInfo& info) {
  std::vector<uint8_t> out;
  AppendU64(&out, info.queue_depth);
  AppendU64(&out, info.hard_watermark);
  return out;
}

StatusOr<RejectedInfo> DecodeRejectedInfo(Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  RejectedInfo info;
  if (!reader.ReadU64(&info.queue_depth) ||
      !reader.ReadU64(&info.hard_watermark)) {
    return Truncated("DecodeRejectedInfo");
  }
  if (reader.remaining() != 0) return TrailingBytes("DecodeRejectedInfo");
  return info;
}

std::vector<uint8_t> EncodeKeyPayload(uint64_t key) {
  std::vector<uint8_t> out;
  AppendU64(&out, key);
  return out;
}

StatusOr<uint64_t> DecodeKeyPayload(Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  uint64_t key = 0;
  if (!reader.ReadU64(&key)) return Truncated("DecodeKeyPayload");
  if (reader.remaining() != 0) return TrailingBytes("DecodeKeyPayload");
  return key;
}

std::vector<uint8_t> EncodeQuantileQuery(const QuantileQuery& query) {
  std::vector<uint8_t> out;
  AppendU64(&out, query.key);
  AppendDouble(&out, query.q);
  return out;
}

StatusOr<QuantileQuery> DecodeQuantileQuery(Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  QuantileQuery query;
  if (!reader.ReadU64(&query.key) || !reader.ReadDouble(&query.q)) {
    return Truncated("DecodeQuantileQuery");
  }
  if (reader.remaining() != 0) return TrailingBytes("DecodeQuantileQuery");
  // Hostile bit patterns land here as NaN/Inf; the server clamps q to
  // [0, 1] anyway, but NaN would sail through a clamp, so the codec
  // boundary rejects non-finite ranks outright.
  if (!std::isfinite(query.q)) {
    return Status::Invalid("DecodeQuantileQuery: non-finite rank");
  }
  return query;
}

std::vector<uint8_t> EncodeQuantileReply(const QuantileReply& reply) {
  std::vector<uint8_t> out;
  AppendI64(&out, reply.value);
  AppendDouble(&out, reply.error_budget);
  AppendI64(&out, reply.num_samples);
  return out;
}

StatusOr<QuantileReply> DecodeQuantileReply(Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  QuantileReply reply;
  if (!reader.ReadI64(&reply.value) || !reader.ReadDouble(&reply.error_budget) ||
      !reader.ReadI64(&reply.num_samples)) {
    return Truncated("DecodeQuantileReply");
  }
  if (reader.remaining() != 0) return TrailingBytes("DecodeQuantileReply");
  return reply;
}

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats) {
  std::vector<uint8_t> out;
  AppendU64(&out, stats.frames_received);
  AppendU64(&out, stats.connections_accepted);
  AppendU64(&out, stats.connections_dropped);
  AppendU64(&out, stats.batches_ingested);
  AppendU64(&out, stats.batches_rejected);
  AppendU64(&out, stats.samples_offered);
  AppendU64(&out, stats.samples_accepted);
  AppendU64(&out, stats.samples_shed);
  AppendU64(&out, stats.flushes_size);
  AppendU64(&out, stats.flushes_deadline);
  AppendU64(&out, stats.max_queue_depth);
  AppendDouble(&out, stats.ingest_p50_us);
  AppendDouble(&out, stats.ingest_p99_us);
  AppendDouble(&out, stats.ingest_p995_us);
  AppendI64(&out, stats.ingest_count);
  AppendDouble(&out, stats.query_p50_us);
  AppendDouble(&out, stats.query_p99_us);
  AppendDouble(&out, stats.query_p995_us);
  AppendI64(&out, stats.query_count);
  AppendU32(&out, stats.num_loops);
  AppendU32(&out, static_cast<uint32_t>(stats.partitions.size()));
  for (const PartitionStats& p : stats.partitions) {
    AppendU32(&out, p.partition);
    AppendU64(&out, p.queue_depth);
    AppendU64(&out, p.max_queue_depth);
    AppendU64(&out, p.samples_accepted);
    AppendU64(&out, p.samples_shed);
    AppendU64(&out, p.samples_rejected);
    AppendU64(&out, p.flushes_size);
    AppendU64(&out, p.flushes_deadline);
  }
  return out;
}

StatusOr<ServerStats> DecodeServerStats(Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  ServerStats stats;
  if (!reader.ReadU64(&stats.frames_received) ||
      !reader.ReadU64(&stats.connections_accepted) ||
      !reader.ReadU64(&stats.connections_dropped) ||
      !reader.ReadU64(&stats.batches_ingested) ||
      !reader.ReadU64(&stats.batches_rejected) ||
      !reader.ReadU64(&stats.samples_offered) ||
      !reader.ReadU64(&stats.samples_accepted) ||
      !reader.ReadU64(&stats.samples_shed) ||
      !reader.ReadU64(&stats.flushes_size) ||
      !reader.ReadU64(&stats.flushes_deadline) ||
      !reader.ReadU64(&stats.max_queue_depth) ||
      !reader.ReadDouble(&stats.ingest_p50_us) ||
      !reader.ReadDouble(&stats.ingest_p99_us) ||
      !reader.ReadDouble(&stats.ingest_p995_us) ||
      !reader.ReadI64(&stats.ingest_count) ||
      !reader.ReadDouble(&stats.query_p50_us) ||
      !reader.ReadDouble(&stats.query_p99_us) ||
      !reader.ReadDouble(&stats.query_p995_us) ||
      !reader.ReadI64(&stats.query_count) ||
      !reader.ReadU32(&stats.num_loops)) {
    return Truncated("DecodeServerStats");
  }
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) return Truncated("DecodeServerStats");
  // Entries are 60 bytes each; count is bounded by the bytes present.
  if (count > kMaxPartitionEntries || reader.remaining() / 60 < count) {
    return Status::Invalid("DecodeServerStats: partition count overruns frame");
  }
  stats.partitions.resize(count);
  for (PartitionStats& p : stats.partitions) {
    if (!reader.ReadU32(&p.partition) || !reader.ReadU64(&p.queue_depth) ||
        !reader.ReadU64(&p.max_queue_depth) ||
        !reader.ReadU64(&p.samples_accepted) ||
        !reader.ReadU64(&p.samples_shed) ||
        !reader.ReadU64(&p.samples_rejected) ||
        !reader.ReadU64(&p.flushes_size) ||
        !reader.ReadU64(&p.flushes_deadline)) {
      return Truncated("DecodeServerStats");
    }
  }
  if (reader.remaining() != 0) return TrailingBytes("DecodeServerStats");
  return stats;
}

std::vector<uint8_t> EncodeErrorReply(const ErrorReply& error) {
  std::vector<uint8_t> out;
  AppendU32(&out, static_cast<uint32_t>(error.code));
  const size_t len = std::min(error.message.size(), kMaxErrorMessageBytes);
  AppendU64(&out, static_cast<uint64_t>(len));
  out.insert(out.end(), error.message.begin(),
             error.message.begin() + static_cast<ptrdiff_t>(len));
  return out;
}

StatusOr<ErrorReply> DecodeErrorReply(Span<const uint8_t> payload) {
  PayloadReader reader(payload);
  uint32_t code = 0;
  uint64_t length = 0;
  if (!reader.ReadU32(&code) || !reader.ReadU64(&length)) {
    return Truncated("DecodeErrorReply");
  }
  if (code < static_cast<uint32_t>(ErrorCode::kMalformed) ||
      code > static_cast<uint32_t>(ErrorCode::kShuttingDown)) {
    return Status::Invalid("DecodeErrorReply: unknown error code");
  }
  if (length > kMaxErrorMessageBytes || length != reader.remaining()) {
    return Status::Invalid("DecodeErrorReply: message length mismatch");
  }
  ErrorReply error;
  error.code = static_cast<ErrorCode>(code);
  error.message.assign(reinterpret_cast<const char*>(reader.cursor()),
                       static_cast<size_t>(length));
  return error;
}

std::vector<KeyedSample> ReconstructAccepted(Span<const KeyedSample> batch,
                                             const IngestAck& ack,
                                             uint32_t num_partitions) {
  std::vector<KeyedSample> kept;
  if (ack.partitions.empty()) {
    // Single-loop shape: one stride over the whole batch (rejected != 0
    // would have come as a kRejected frame instead of an ack).
    const uint64_t stride = uint64_t{1} << ack.keep_shift;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (i % stride == 0) kept.push_back(batch[i]);
    }
    return kept;
  }
  // Sharded shape: replay the server's own partition walk.  Each entry's
  // stride applies to that partition's subsequence index, which is exactly
  // the running count of earlier batch samples mapping to the partition.
  struct Disposition {
    bool present = false;
    bool rejected = false;
    uint64_t stride = 1;
  };
  std::vector<Disposition> by_partition(num_partitions);
  for (const PartitionDisposition& p : ack.partitions) {
    if (p.partition >= num_partitions) continue;  // hostile/buggy ack entry
    Disposition& d = by_partition[p.partition];
    d.present = true;
    d.rejected = p.rejected != 0;
    d.stride = uint64_t{1} << p.keep_shift;
  }
  std::vector<uint64_t> subindex(num_partitions, 0);
  for (const KeyedSample& sample : batch) {
    const uint32_t p = PartitionOfKey(sample.key, num_partitions);
    const uint64_t j = subindex[p]++;
    const Disposition& d = by_partition[p];
    if (!d.present || d.rejected) continue;
    if (j % d.stride == 0) kept.push_back(sample);
  }
  return kept;
}

}  // namespace fasthist
