#ifndef FASTHIST_NET_EVENT_LOOP_H_
#define FASTHIST_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/status.h"

namespace fasthist {

// Readiness backend.  kPoll is the portable poll(2) baseline that builds
// anywhere POSIX poll exists; kEpoll is the Linux epoll(7) fast path (O(1)
// dispatch instead of rebuilding an O(fds) pollfd array every iteration —
// what makes a many-connection loop cheap).  kDefault resolves at configure
// time: epoll on Linux unless FASTHIST_FORCE_POLL was set, poll everywhere
// else.  Both backends compile on Linux so one process can run both — the
// epoll-vs-poll equivalence test drives the same fixture through each.
enum class EventLoopBackend {
  kDefault,
  kPoll,
  kEpoll,
};

// A portable event loop: nonblocking fds, level-triggered readiness
// callbacks, monotonic one-shot timers, and a thread-safe Post queue — no
// external dependencies.  One loop is one thread: every callback runs on
// the thread inside Run(), so loop-owned state (the ingest server's
// connections, queues, store, and latency recorders) needs no locks at all.
// The only cross-thread surfaces are Post() and Quit(), which funnel
// through a mutex-guarded task queue plus a self-pipe wakeup.
//
// Readiness semantics are level-triggered on both backends: a Watch(read)
// callback keeps firing while the fd stays readable, so handlers must drain
// (or Unwatch) before returning to avoid a hot loop.  Error/hangup
// conditions (POLLERR/POLLHUP equivalents) are reported to the same
// callback as `error = true`; the handler decides whether to tear the fd
// down.
class EventLoop {
 public:
  struct IoEvent {
    bool readable = false;
    bool writable = false;
    bool error = false;
  };
  using IoCallback = std::function<void(IoEvent)>;

  // Creation opens the self-pipe (and the epoll instance, when that backend
  // is selected); the only failure mode is fd exhaustion.  Requesting
  // kEpoll on a platform without it is an Invalid status — callers probe
  // with EpollSupported() first.
  static StatusOr<std::unique_ptr<EventLoop>> Create(
      EventLoopBackend backend = EventLoopBackend::kDefault);
  ~EventLoop();

  // True when this build can construct a kEpoll loop (Linux).
  static bool EpollSupported();

  // The backend this loop actually runs (kDefault is resolved at Create).
  EventLoopBackend backend() const { return backend_; }

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers (or re-registers) `fd` with the given interest set.  The
  // callback is invoked on the loop thread whenever the backend reports
  // matching readiness.  Loop-thread only.
  Status Watch(int fd, bool want_read, bool want_write, IoCallback callback);

  // Adjusts the interest set of an already-watched fd, keeping its
  // callback.  Loop-thread only.
  Status SetInterest(int fd, bool want_read, bool want_write);

  // Stops watching `fd` (the caller still owns and closes it).  Safe to
  // call from inside the fd's own callback.  Loop-thread only.
  void Unwatch(int fd);

  // One-shot timer: runs `fn` on the loop thread once MonotonicNanos()
  // reaches `deadline_nanos`.  Returns an id for Cancel.  Loop-thread only.
  uint64_t ScheduleAt(uint64_t deadline_nanos, std::function<void()> fn);
  void Cancel(uint64_t timer_id);

  // Enqueues `fn` to run on the loop thread and wakes the loop.  The one
  // entry point other threads may call (besides Quit) — everything a
  // foreign thread wants done to loop state goes through here.
  void Post(std::function<void()> fn);

  // Runs until Quit: wait for readiness, dispatch io callbacks, run due
  // timers, drain posted tasks.  Returns after a Quit posted from any
  // thread.
  void Run();

  // Thread-safe: asks Run() to return after the current iteration.
  void Quit();

 private:
  EventLoop(int wake_read_fd, int wake_write_fd, int epoll_fd,
            EventLoopBackend backend);

  void DrainWakePipe();
  void RunPostedTasks();
  // Milliseconds until the nearest timer (clamped for poll/epoll), or -1.
  int NextTimerTimeoutMillis() const;
  void RunDueTimers();
  void RunPoll();
  void RunEpoll();
  void DispatchReady(int fd, IoEvent event);
  // epoll_ctl wrapper; no-op under the poll backend.
  Status EpollControl(int op, int fd, bool want_read, bool want_write);

  int wake_read_fd_;
  int wake_write_fd_;
  int epoll_fd_;  // -1 under the poll backend
  EventLoopBackend backend_;

  struct Watched {
    bool want_read = false;
    bool want_write = false;
    IoCallback callback;
  };
  std::map<int, Watched> watched_;
  // Timers keyed by (deadline, id): multimap order is fire order.
  std::map<std::pair<uint64_t, uint64_t>, std::function<void()>> timers_;
  uint64_t next_timer_id_ = 1;
  bool quit_ = false;

  std::mutex post_mutex_;
  std::vector<std::function<void()>> posted_;
  bool wake_pending_ = false;  // guarded by post_mutex_; dedupes pipe writes
};

}  // namespace fasthist

#endif  // FASTHIST_NET_EVENT_LOOP_H_
