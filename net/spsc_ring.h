#ifndef FASTHIST_NET_SPSC_RING_H_
#define FASTHIST_NET_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace fasthist {

// A bounded single-producer single-consumer ring: the hand-off lane between
// a receiving event loop (producer) and a partition's owner loop (consumer)
// in the sharded ingest server.  Exactly one thread may call Push and
// exactly one thread may call Pop — under that contract the ring is
// lock-free and wait-free: each side owns its own index and only *reads*
// the other's, with release/acquire pairing on the published index so the
// slot contents written before a Push are visible after the matching Pop.
//
// Capacity is a power of two fixed at construction; Push on a full ring
// returns false (the caller's backpressure signal — the sharded server
// counts it as a per-partition reject), it never blocks or allocates.
//
// head_ and tail_ live on separate cache lines so the producer's stores
// never invalidate the consumer's line (and vice versa) except at the
// moment of hand-off.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity_pow2)
      : slots_(capacity_pow2), mask_(capacity_pow2 - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  // Producer side.  False = full (nothing consumed, `value` untouched
  // beyond the failed attempt — the caller still owns it).
  bool Push(T&& value) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    const uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head == slots_.size()) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.  False = empty.
  bool Pop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Approximate occupancy (exact when called from either endpoint thread
  // with the other side quiescent) — used for depth reporting, not control.
  size_t size() const {
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    const uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

 private:
  std::vector<T> slots_;
  const uint64_t mask_;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer-owned
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer-owned
};

}  // namespace fasthist

#endif  // FASTHIST_NET_SPSC_RING_H_
