#ifndef FASTHIST_NET_SHARDED_INGEST_SERVER_H_
#define FASTHIST_NET_SHARDED_INGEST_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "net/frame.h"
#include "net/latency_recorder.h"
#include "net/spsc_ring.h"
#include "store/partitioned_store.h"
#include "util/status.h"

// IngestServerOptions is the shared knob set (watermarks, flush triggers,
// frame caps) — the sharded server reuses it verbatim as `base`.
#include "net/ingest_server.h"

namespace fasthist {

struct ShardedIngestServerOptions {
  // Address, archetype, flush triggers, watermarks, caps — identical
  // meaning to the single-loop server, except the watermarks and the queue
  // bound now apply *per partition* (see below).
  IngestServerOptions base;

  // Worker event loops = key-hash partitions.  Must be a power of two
  // (PartitionOfKey masks, it does not divide).  1 degenerates to the
  // single-loop topology — same code path, which is what the loops axis of
  // the bench compares against.
  int num_loops = 4;

  // Capacity (batches, power of two) of each (owner, producer) hand-off
  // ring.  A full ring rejects the batch's slice for that partition — the
  // same bounded-memory role the hard watermark plays, one level earlier.
  size_t ring_capacity = 64;

  // Readiness backend for every worker loop (kDefault = epoll on Linux).
  EventLoopBackend backend = EventLoopBackend::kDefault;
};

// The multi-core socket front-end: one acceptor distributing connections
// round-robin across N worker event loops, each worker owning the key-hash
// partition `PartitionOfKey(key, N) == worker index` of a
// PartitionedSummaryStore.  Mergeability is what makes this scaling free:
// partitions reduce through the deterministic merge tree with accounted
// error, so correctness never asks for a cross-thread lock — and indeed the
// request path has none.
//
//   clients ──> acceptor (loop 0) ──round-robin──> worker loops 0..N-1
//                 each loop:  parse ─ decode ─ stable-partition by key
//                       │ slice for own partition and for others
//                       ▼
//              SPSC ring[owner][producer]  (bounded, lock-free)
//                       ▼
//              owner loop drains rings ─ size/deadline flush ─ partition
//              store (single writer)  ──(queries)──> ReduceSummaries fan-in
//
// Ingest: the receiving loop decodes a batch, stable-partitions it by
// PartitionOfKey, and applies the two-tier shed policy *per partition*
// against that partition's accepted-but-unflushed depth: at or past the
// hard watermark (or with the hand-off ring full) the slice is rejected
// outright; between the watermarks it is thinned with the deterministic
// stride of the single-loop server; below the soft watermark it is kept
// whole.  Kept slices are pushed into the owner's ring *before* the ACK is
// sent, so by the time a client sees its ACK the samples are visible to any
// later drain — the freshness contract queries rely on.  The ACK carries
// one PartitionDisposition per touched partition, which keeps the
// bit-identical-replay contract of PR 9 alive under sharding: a client
// replays each partition's stride over its subsequence
// (ReconstructAccepted) and must land on exactly the server's state.
//
// Hand-off is one bounded SPSC ring per (owner, producer) pair — single
// producer (the receiving loop), single consumer (the owner loop), so the
// ring needs no locks, and a lost-wakeup-free arming bit (drain_armed)
// means at most one drain task is in flight per owner regardless of how
// many producers push.
//
// Queries and snapshot pulls route to the key's owner loop (drain rings,
// flush pending, serve from the single-writer partition store), and the
// reply hops back to the connection's own loop to be written.  kStats
// scatter-gathers every loop's counters and latency-recorder state, folds
// the recorders through ReduceSummaries (the service measuring itself with
// its own mergeability), and reports per-partition depths and shed
// counters so operators can see which partition is hot.
class ShardedIngestServer {
 public:
  static StatusOr<std::unique_ptr<ShardedIngestServer>> Create(
      const ShardedIngestServerOptions& options);

  ~ShardedIngestServer();

  ShardedIngestServer(const ShardedIngestServer&) = delete;
  ShardedIngestServer& operator=(const ShardedIngestServer&) = delete;

  uint16_t port() const { return port_; }
  uint32_t num_loops() const { return static_cast<uint32_t>(workers_.size()); }
  EventLoopBackend backend() const;

  // Spawns the worker threads and begins accepting.
  Status Start();

  // Graceful shutdown in three barriers: (1) stop accepting and close every
  // connection on every loop; (2) drain every hand-off ring and flush every
  // partition's pending batch into its store — safe now because stage 1
  // guaranteed no producer can push again; (3) quit and join the loops.
  // After Shutdown the store holds exactly the accepted samples — the
  // anchor of the replay bit-identity tests.  Idempotent.
  Status Shutdown();

  // Post-shutdown inspection (while serving, the loops own all of this and
  // a live server answers through frames instead).
  const PartitionedSummaryStore& store() const { return *store_; }
  const SummaryStore& partition_store(uint32_t p) const {
    return store_->partition(p);
  }
  StatusOr<ShardSnapshot> ExportKeyedSnapshot(uint64_t key) const {
    return store_->ExportKeyedSnapshot(key, options_.base.shard_id);
  }
  ServerStats stats() const;

 private:
  struct Connection;
  struct Worker;
  struct StatsGather;

  explicit ShardedIngestServer(ShardedIngestServerOptions options);

  Status Bind();
  // Posts `fn` to every worker loop and blocks until all have run it — the
  // shutdown barrier primitive.
  void RunOnAllLoopsAndWait(const std::function<void(Worker&)>& fn);

  // --- Acceptor (worker 0's loop) ---
  void OnListenerReadable();
  void PauseAccepting();
  void AdoptConnection(Worker& w, int fd);

  // --- Per-connection io (the owning worker's loop) ---
  void OnConnectionIo(Worker& w, int fd, EventLoop::IoEvent event);
  void OnConnectionReadable(Worker& w, Connection& conn);
  void HandleFrame(Worker& w, Connection& conn, const Frame& frame);
  void HandleIngest(Worker& w, Connection& conn, const Frame& frame,
                    uint64_t start_ns);
  void HandleSnapshotPull(Worker& w, Connection& conn, const Frame& frame,
                          uint64_t start_ns);
  void HandleQuantileQuery(Worker& w, Connection& conn, const Frame& frame,
                           uint64_t start_ns);
  void HandleStats(Worker& w, Connection& conn);
  // Runs on the connection's loop: deliver a reply built elsewhere, if the
  // connection is still the same one (fd reuse is id-checked).
  void DeliverReply(Worker& w, int fd, uint64_t conn_id, FrameType type,
                    std::vector<uint8_t> payload, uint64_t start_ns,
                    bool is_query);

  // --- Owner-side partition work (partition p == worker p's loop) ---
  void ArmDrain(Worker& owner);
  void DrainRings(Worker& owner);
  void FlushPending(Worker& owner);
  void ScheduleDeadlineFlush(Worker& owner);

  // --- Stats ---
  void CollectLocalStats(Worker& w, StatsGather& gather);
  void FinalizeStats(Worker& requester,
                     const std::shared_ptr<StatsGather>& gather);
  ServerStats AggregateStats(const StatsGather& gather) const;

  // --- Write path (the owning worker's loop); alive-bool contract as in
  // the single-loop server: false means the connection is gone. ---
  bool SendFrame(Worker& w, Connection& conn, FrameType type,
                 Span<const uint8_t> payload);
  bool SendError(Worker& w, Connection& conn, ErrorCode code,
                 const std::string& message);
  bool PumpWrites(Worker& w, Connection& conn);
  void DropConnection(Worker& w, Connection& conn, ErrorCode code,
                      const std::string& message);
  void CloseConnection(Worker& w, int fd);

  ShardedIngestServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  uint64_t accept_rearm_timer_id_ = 0;  // worker 0's loop only
  uint32_t next_accept_worker_ = 0;     // worker 0's loop only
  std::atomic<int> num_connections_{0};
  // Set by Shutdown before the close barrier: an adoption task that lands
  // after its worker already closed everything must not resurrect a
  // connection the barriers will never see again.
  std::atomic<bool> draining_{false};

  std::unique_ptr<PartitionedSummaryStore> store_;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace fasthist

#endif  // FASTHIST_NET_SHARDED_INGEST_SERVER_H_
