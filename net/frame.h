#ifndef FASTHIST_NET_FRAME_H_
#define FASTHIST_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "store/summary_store.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// The length-prefixed framed protocol the net/ layer speaks over TCP.  A
// frame is a fixed 16-byte header followed by `payload_length` bytes:
//
//   | offset | size | field                                          |
//   |--------|------|------------------------------------------------|
//   | 0      | 4    | magic "FHn1"                                   |
//   | 4      | 4    | frame type (FrameType, u32)                    |
//   | 8      | 8    | payload_length (u64, <= the reader's cap)      |
//   | 16     | ...  | payload (typed codecs below)                   |
//
// Everything is little-endian, matching service/wire_format.h.  Decoding is
// bounds-checked end to end in the WireReader spirit: a truncated or hostile
// byte stream can only produce a non-OK Status (or "need more bytes") —
// never an out-of-bounds access, an allocation sized by attacker-controlled
// arithmetic, or a crash.  The payload-length cap is enforced *before* any
// payload is buffered, so a hostile length field cannot balloon memory.

enum class FrameType : uint32_t {
  kIngest = 1,         // client -> server: a batch of KeyedSamples
  kIngestAck = 2,      // server -> client: accepted/shed accounting
  kRejected = 3,       // server -> client: batch refused (hard watermark)
  kSnapshotPull = 4,   // client -> server: export one key's snapshot
  kSnapshotPush = 5,   // server -> client: wire v2/v3 snapshot envelope
  kQuantileQuery = 6,  // client -> server: quantile of one key
  kQuantileReply = 7,  // server -> client: the served quantile
  kStats = 8,          // client -> server: self-measured server stats
  kStatsReply = 9,     // server -> client: counters + P50/P99/P99.5
  kError = 10,         // server -> client: typed error reply
};

// One partition's disposition of its slice of a kIngest batch (sharded
// server).  `keep_shift` is that partition's degrade-to-sampling stride:
// within the partition's subsequence of the batch (samples with
// PartitionOfKey(key, N) == partition, in batch order), subsequence index j
// was kept iff rejected == 0 and j % (1 << keep_shift) == 0.  `rejected`
// counts samples refused outright (hard watermark or full hand-off ring) —
// all-or-nothing per partition per batch, so replay reconstruction stays a
// pure function of the ACK.
struct PartitionDisposition {
  uint32_t partition = 0;
  uint32_t keep_shift = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t rejected = 0;
};

// Payload of kIngestAck: how the server disposed of one kIngest batch.
// `keep_shift` records the degrade-to-sampling stride: the server kept
// sample i of the batch iff i % (1 << keep_shift) == 0 (0 = kept all).  The
// stride is a deterministic function of queue depth, and the kept indices
// are a deterministic function of the stride — so the client can
// reconstruct the accepted subsequence exactly, which is what makes
// "server state is bit-identical to an offline replay of accepted samples"
// a checkable contract rather than a statistical hope.  offered/accepted is
// the recorded weight-correction factor: uniform systematic thinning
// preserves the sample distribution (quantiles stay unbiased), but count
// readouts must be rescaled by it.
//
// The sharded server applies shedding *per partition* and fills
// `partitions` with one entry per partition the batch touched; the
// top-level accepted/shed/rejected are then sums over the entries and
// keep_shift is the maximum stride any partition applied (a summary for
// single-loop-era dashboards).  When `partitions` is empty the whole batch
// was disposed with the single top-level stride (the single-loop server).
// ReconstructAccepted (below) handles both shapes.
struct IngestAck {
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint32_t keep_shift = 0;
  uint64_t rejected = 0;
  std::vector<PartitionDisposition> partitions;
};

// Payload of kRejected: the queue state that tripped the hard watermark.
struct RejectedInfo {
  uint64_t queue_depth = 0;
  uint64_t hard_watermark = 0;
};

// Payload of kQuantileQuery / kQuantileReply.
struct QuantileQuery {
  uint64_t key = 0;
  double q = 0.0;
};
struct QuantileReply {
  int64_t value = 0;
  double error_budget = 0.0;
  int64_t num_samples = 0;
};

// One partition's live counters inside a kStatsReply — how operators see
// which partition is hot.  `queue_depth` is the partition's pending-sample
// depth at the moment its owner loop answered the stats scatter;
// `max_queue_depth` is its high-water mark since start.
struct PartitionStats {
  uint32_t partition = 0;
  uint64_t queue_depth = 0;
  uint64_t max_queue_depth = 0;
  uint64_t samples_accepted = 0;
  uint64_t samples_shed = 0;
  uint64_t samples_rejected = 0;
  uint64_t flushes_size = 0;
  uint64_t flushes_deadline = 0;
};

// Payload of kStatsReply: the server's own accounting, measured by its own
// streaming histograms (net/latency_recorder.h).  Latencies are
// microseconds; the ingest class times frame-decode -> ACK-queued, the
// query class times frame-decode -> reply-queued for pulls and quantiles.
// Sharded servers report num_loops > 1 and one PartitionStats per
// partition; the top-level latency quantiles are then the *merge* of every
// loop's recorder (the library's own mergeability at work), and the
// top-level counters are sums.  The single-loop server reports
// num_loops = 1 with one partition entry mirroring its global counters.
struct ServerStats {
  uint64_t frames_received = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_dropped = 0;  // protocol errors (connection closed)
  uint64_t batches_ingested = 0;
  uint64_t batches_rejected = 0;
  uint64_t samples_offered = 0;
  uint64_t samples_accepted = 0;
  uint64_t samples_shed = 0;
  uint64_t flushes_size = 0;      // size-triggered queue flushes
  uint64_t flushes_deadline = 0;  // deadline-triggered queue flushes
  uint64_t max_queue_depth = 0;   // high-water mark over all connections
  double ingest_p50_us = 0.0;
  double ingest_p99_us = 0.0;
  double ingest_p995_us = 0.0;
  int64_t ingest_count = 0;
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;
  double query_p995_us = 0.0;
  int64_t query_count = 0;
  uint32_t num_loops = 1;
  std::vector<PartitionStats> partitions;
};

// Payload of kError.  kMalformed means the byte stream itself is broken —
// the server replies and then drops the connection (resynchronizing inside
// a corrupt length-prefixed stream is guesswork).  The semantic codes leave
// the connection up: the framing is intact, only the request failed.
enum class ErrorCode : uint32_t {
  kMalformed = 1,    // bad magic/type/length or undecodable payload
  kUnknownKey = 2,   // snapshot/quantile for a key the store has no entry
  kEmptyKey = 3,     // key exists but has no samples to serve
  kInternal = 4,     // store/aggregator failure on a well-formed request
  kShuttingDown = 5  // server is draining; no new batches accepted
};
struct ErrorReply {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// --- Frame assembly ---------------------------------------------------------

constexpr size_t kFrameHeaderBytes = 16;
// Default per-frame payload cap; servers may configure tighter.  The cap
// bounds decode-side buffering per connection, so one hostile length field
// cannot cost more memory than this.
constexpr uint64_t kDefaultMaxFramePayload = uint64_t{1} << 20;

// One decoded frame: the type plus its raw payload bytes (typed decode is a
// second, independent step — a dispatcher can switch on `type` first).
struct Frame {
  FrameType type = FrameType::kError;
  std::vector<uint8_t> payload;
};

// Wraps `payload` in a frame header.
std::vector<uint8_t> EncodeFrame(FrameType type, Span<const uint8_t> payload);

// Incremental decoder for a TCP byte stream: feed arbitrary chunks with
// Consume, pull complete frames with Next.  The parser owns a single
// reassembly buffer bounded by header + max_payload; a hostile length field
// fails fast (Next returns kMalformed) instead of growing the buffer.
class FrameParser {
 public:
  explicit FrameParser(uint64_t max_payload = kDefaultMaxFramePayload)
      : max_payload_(max_payload) {}

  // Appends raw bytes off the socket.
  void Consume(Span<const uint8_t> bytes);

  // Extraction result: kFrame fills `out`; kNeedMore means the buffered
  // prefix is a valid partial frame; kMalformed means the stream is broken
  // at the current position (bad magic, bad type, oversized length) and the
  // connection should be dropped — the parser stays poisoned.
  enum class Result { kFrame, kNeedMore, kMalformed };
  Result Next(Frame* out);

  // Bytes currently buffered (partial frame under reassembly).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  uint64_t max_payload_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // compacted lazily
  bool poisoned_ = false;
};

// --- Typed payload codecs ---------------------------------------------------
//
// Each Encode* produces exactly the bytes the matching Decode* accepts;
// every Decode* is total over arbitrary byte strings (Status, never UB) and
// rejects trailing bytes, so a frame's payload length must agree with its
// content exactly.

std::vector<uint8_t> EncodeIngestPayload(Span<const KeyedSample> samples);
StatusOr<std::vector<KeyedSample>> DecodeIngestPayload(
    Span<const uint8_t> payload);

std::vector<uint8_t> EncodeIngestAck(const IngestAck& ack);
StatusOr<IngestAck> DecodeIngestAck(Span<const uint8_t> payload);

std::vector<uint8_t> EncodeRejectedInfo(const RejectedInfo& info);
StatusOr<RejectedInfo> DecodeRejectedInfo(Span<const uint8_t> payload);

// kSnapshotPull carries just the key id.
std::vector<uint8_t> EncodeKeyPayload(uint64_t key);
StatusOr<uint64_t> DecodeKeyPayload(Span<const uint8_t> payload);

std::vector<uint8_t> EncodeQuantileQuery(const QuantileQuery& query);
StatusOr<QuantileQuery> DecodeQuantileQuery(Span<const uint8_t> payload);

std::vector<uint8_t> EncodeQuantileReply(const QuantileReply& reply);
StatusOr<QuantileReply> DecodeQuantileReply(Span<const uint8_t> payload);

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats);
StatusOr<ServerStats> DecodeServerStats(Span<const uint8_t> payload);

std::vector<uint8_t> EncodeErrorReply(const ErrorReply& error);
StatusOr<ErrorReply> DecodeErrorReply(Span<const uint8_t> payload);

// The client half of the bit-identical-replay contract: given the batch it
// sent, the ACK it got back, and the partition count the server runs
// (ServerStats::num_loops), returns the exact subsequence the server
// ingested, in original batch order.  With per-partition dispositions the
// stride is applied within each partition's subsequence (the same
// PartitionOfKey walk the server did); without them the top-level stride
// applies to the whole batch (single-loop server).  A partition entry with
// rejected != 0 contributed nothing; a partition the batch touched but the
// ACK omits likewise contributed nothing (defensive — the server always
// emits touched partitions).
std::vector<KeyedSample> ReconstructAccepted(Span<const KeyedSample> batch,
                                             const IngestAck& ack,
                                             uint32_t num_partitions);

}  // namespace fasthist

#endif  // FASTHIST_NET_FRAME_H_
