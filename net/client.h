#ifndef FASTHIST_NET_CLIENT_H_
#define FASTHIST_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "service/wire_format.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// Blocking client for the framed ingest protocol: one TCP connection, one
// outstanding request at a time (send a frame, block for the reply).  This
// is the closed-loop half of the bench driver and the test harness — a
// deliberately simple counterpart to the nonblocking server, so the two
// sides cannot share a bug.
//
// Every call returns Status on transport or protocol failure.  A kError
// reply from the server is surfaced as a non-OK Status carrying the
// server's code and message; after a kMalformed error (or any transport
// error) the connection is unusable and further calls fail fast.
class IngestClient {
 public:
  static StatusOr<IngestClient> Connect(const std::string& address,
                                        uint16_t port);

  IngestClient(IngestClient&& other) noexcept;
  IngestClient& operator=(IngestClient&& other) noexcept;
  ~IngestClient();

  IngestClient(const IngestClient&) = delete;
  IngestClient& operator=(const IngestClient&) = delete;

  // The server's disposition of one batch: either rejected at the hard
  // watermark (`rejected`, with the queue state that tripped it) or
  // accepted with the shed accounting (`ack` — keep_shift > 0 means the
  // soft tier thinned the batch; the kept indices are i % (1 << keep_shift)
  // == 0, so the caller can reconstruct the accepted subsequence exactly).
  struct IngestResult {
    bool rejected = false;
    IngestAck ack;
    RejectedInfo rejected_info;
  };
  StatusOr<IngestResult> Ingest(Span<const KeyedSample> samples);

  // One key's snapshot (wire v2/v3 envelope, decoded), fresh as of this
  // call: the server drains every pending queue before exporting.
  StatusOr<ShardSnapshot> PullSnapshot(uint64_t key);

  // One served quantile of one key's summary (q clamped to [0, 1]).
  StatusOr<QuantileReply> Quantile(uint64_t key, double q);

  // The server's self-measured counters and P50/P99/P99.5 latencies.
  StatusOr<ServerStats> Stats();

  // Half-closes the connection (the server flushes this connection's
  // queued samples on EOF).  Destruction does the same.
  void Close();

  bool connected() const { return fd_ >= 0; }

 private:
  explicit IngestClient(int fd) : fd_(fd) {}

  Status SendFrame(FrameType type, Span<const uint8_t> payload);
  // Blocks for the next complete frame; a server kError becomes a non-OK
  // Status (message prefixed with the error code).
  StatusOr<Frame> ReceiveFrame();

  int fd_ = -1;
  FrameParser parser_;
};

}  // namespace fasthist

#endif  // FASTHIST_NET_CLIENT_H_
