#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace fasthist {
namespace {

std::string ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformed:
      return "MALFORMED";
    case ErrorCode::kUnknownKey:
      return "UNKNOWN_KEY";
    case ErrorCode::kEmptyKey:
      return "EMPTY_KEY";
    case ErrorCode::kInternal:
      return "INTERNAL";
    case ErrorCode::kShuttingDown:
      return "SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

}  // namespace

StatusOr<IngestClient> IngestClient::Connect(const std::string& address,
                                             uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Invalid("IngestClient: cannot create socket");
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::Invalid("IngestClient: bad address: " + address);
  }
  int rc;
  do {
    rc = connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    close(fd);
    return Status::Invalid("IngestClient: connect failed: " +
                           std::string(strerror(errno)));
  }
  const int one = 1;
  // Best-effort: small request/reply frames should not wait on Nagle.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return IngestClient(fd);
}

IngestClient::IngestClient(IngestClient&& other) noexcept
    : fd_(other.fd_), parser_(std::move(other.parser_)) {
  other.fd_ = -1;
}

IngestClient& IngestClient::operator=(IngestClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    parser_ = std::move(other.parser_);
    other.fd_ = -1;
  }
  return *this;
}

IngestClient::~IngestClient() { Close(); }

void IngestClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status IngestClient::SendFrame(FrameType type, Span<const uint8_t> payload) {
  if (fd_ < 0) {
    return Status::Invalid("IngestClient: connection is closed");
  }
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a dead server must surface as a Status, not a
    // process-killing SIGPIPE.
    const ssize_t n =
        send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Invalid("IngestClient: write failed: " +
                             std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<Frame> IngestClient::ReceiveFrame() {
  if (fd_ < 0) {
    return Status::Invalid("IngestClient: connection is closed");
  }
  Frame frame;
  uint8_t buffer[65536];
  for (;;) {
    switch (parser_.Next(&frame)) {
      case FrameParser::Result::kFrame:
        if (frame.type == FrameType::kError) {
          auto error = DecodeErrorReply(
              Span<const uint8_t>(frame.payload.data(), frame.payload.size()));
          if (!error.ok()) {
            Close();
            return Status::Invalid(
                "IngestClient: undecodable server error frame");
          }
          // A malformed-stream verdict means the server is about to drop the
          // connection; stop reusing it on this side too.
          if (error->code == ErrorCode::kMalformed) Close();
          return Status::Invalid("server error [" + ErrorCodeName(error->code) +
                                 "]: " + error->message);
        }
        return frame;
      case FrameParser::Result::kMalformed:
        Close();
        return Status::Invalid("IngestClient: malformed frame from server");
      case FrameParser::Result::kNeedMore:
        break;
    }
    const ssize_t n = read(fd_, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return Status::Invalid("IngestClient: read failed: " +
                             std::string(strerror(errno)));
    }
    if (n == 0) {
      Close();
      return Status::Invalid("IngestClient: connection closed mid-reply");
    }
    parser_.Consume(Span<const uint8_t>(buffer, static_cast<size_t>(n)));
  }
}

StatusOr<IngestClient::IngestResult> IngestClient::Ingest(
    Span<const KeyedSample> samples) {
  const std::vector<uint8_t> payload = EncodeIngestPayload(samples);
  if (Status s = SendFrame(FrameType::kIngest,
                           Span<const uint8_t>(payload.data(), payload.size()));
      !s.ok()) {
    return s;
  }
  auto reply = ReceiveFrame();
  if (!reply.ok()) return reply.status();
  IngestResult result;
  if (reply->type == FrameType::kIngestAck) {
    auto ack = DecodeIngestAck(
        Span<const uint8_t>(reply->payload.data(), reply->payload.size()));
    if (!ack.ok()) return ack.status();
    result.ack = *ack;
    return result;
  }
  if (reply->type == FrameType::kRejected) {
    auto info = DecodeRejectedInfo(
        Span<const uint8_t>(reply->payload.data(), reply->payload.size()));
    if (!info.ok()) return info.status();
    result.rejected = true;
    result.rejected_info = *info;
    return result;
  }
  Close();
  return Status::Invalid("IngestClient: unexpected reply to kIngest");
}

StatusOr<ShardSnapshot> IngestClient::PullSnapshot(uint64_t key) {
  const std::vector<uint8_t> payload = EncodeKeyPayload(key);
  if (Status s =
          SendFrame(FrameType::kSnapshotPull,
                    Span<const uint8_t>(payload.data(), payload.size()));
      !s.ok()) {
    return s;
  }
  auto reply = ReceiveFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kSnapshotPush) {
    Close();
    return Status::Invalid("IngestClient: unexpected reply to kSnapshotPull");
  }
  return DecodeShardSnapshot(reply->payload.data(), reply->payload.size());
}

StatusOr<QuantileReply> IngestClient::Quantile(uint64_t key, double q) {
  QuantileQuery query;
  query.key = key;
  query.q = q;
  const std::vector<uint8_t> payload = EncodeQuantileQuery(query);
  if (Status s =
          SendFrame(FrameType::kQuantileQuery,
                    Span<const uint8_t>(payload.data(), payload.size()));
      !s.ok()) {
    return s;
  }
  auto reply = ReceiveFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kQuantileReply) {
    Close();
    return Status::Invalid("IngestClient: unexpected reply to kQuantileQuery");
  }
  return DecodeQuantileReply(
      Span<const uint8_t>(reply->payload.data(), reply->payload.size()));
}

StatusOr<ServerStats> IngestClient::Stats() {
  if (Status s = SendFrame(FrameType::kStats, Span<const uint8_t>());
      !s.ok()) {
    return s;
  }
  auto reply = ReceiveFrame();
  if (!reply.ok()) return reply.status();
  if (reply->type != FrameType::kStatsReply) {
    Close();
    return Status::Invalid("IngestClient: unexpected reply to kStats");
  }
  return DecodeServerStats(
      Span<const uint8_t>(reply->payload.data(), reply->payload.size()));
}

}  // namespace fasthist
