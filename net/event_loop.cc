#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

#include "util/clock.h"

namespace fasthist {
namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Invalid("EventLoop: cannot set O_NONBLOCK");
  }
  return Status::Ok();
}

EventLoopBackend ResolveBackend(EventLoopBackend requested) {
  if (requested != EventLoopBackend::kDefault) return requested;
#if defined(__linux__) && !defined(FASTHIST_FORCE_POLL)
  return EventLoopBackend::kEpoll;
#else
  return EventLoopBackend::kPoll;
#endif
}

}  // namespace

EventLoop::EventLoop(int wake_read_fd, int wake_write_fd, int epoll_fd,
                     EventLoopBackend backend)
    : wake_read_fd_(wake_read_fd),
      wake_write_fd_(wake_write_fd),
      epoll_fd_(epoll_fd),
      backend_(backend) {}

bool EventLoop::EpollSupported() {
#if defined(__linux__)
  return true;
#else
  return false;
#endif
}

StatusOr<std::unique_ptr<EventLoop>> EventLoop::Create(
    EventLoopBackend backend) {
  const EventLoopBackend resolved = ResolveBackend(backend);
  if (resolved == EventLoopBackend::kEpoll && !EpollSupported()) {
    return Status::Invalid("EventLoop: epoll is not available on this platform");
  }
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::Invalid("EventLoop: cannot create wake pipe");
  }
  for (const int fd : fds) {
    if (Status s = SetNonBlocking(fd); !s.ok()) {
      close(fds[0]);
      close(fds[1]);
      return s;
    }
  }
  int epoll_fd = -1;
#if defined(__linux__)
  if (resolved == EventLoopBackend::kEpoll) {
    epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) {
      close(fds[0]);
      close(fds[1]);
      return Status::Invalid("EventLoop: epoll_create1 failed");
    }
    struct epoll_event event;
    event.events = EPOLLIN;
    event.data.fd = fds[0];
    if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fds[0], &event) != 0) {
      close(epoll_fd);
      close(fds[0]);
      close(fds[1]);
      return Status::Invalid("EventLoop: cannot register the wake pipe");
    }
  }
#endif
  return std::unique_ptr<EventLoop>(
      new EventLoop(fds[0], fds[1], epoll_fd, resolved));
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) close(epoll_fd_);
  close(wake_read_fd_);
  close(wake_write_fd_);
}

Status EventLoop::EpollControl(int op, int fd, bool want_read,
                               bool want_write) {
#if defined(__linux__)
  if (epoll_fd_ < 0) return Status::Ok();
  struct epoll_event event;
  event.events = 0;
  if (want_read) event.events |= EPOLLIN;
  if (want_write) event.events |= EPOLLOUT;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, op, fd, &event) != 0) {
    return Status::Invalid("EventLoop: epoll_ctl failed");
  }
  return Status::Ok();
#else
  (void)op;
  (void)fd;
  (void)want_read;
  (void)want_write;
  return Status::Ok();
#endif
}

Status EventLoop::Watch(int fd, bool want_read, bool want_write,
                        IoCallback callback) {
  if (fd < 0 || !callback) {
    return Status::Invalid("EventLoop::Watch: bad fd or empty callback");
  }
#if defined(__linux__)
  const bool rearm = watched_.count(fd) != 0;
  if (Status s = EpollControl(rearm ? EPOLL_CTL_MOD : EPOLL_CTL_ADD, fd,
                              want_read, want_write);
      !s.ok()) {
    return s;
  }
#endif
  watched_[fd] = Watched{want_read, want_write, std::move(callback)};
  return Status::Ok();
}

Status EventLoop::SetInterest(int fd, bool want_read, bool want_write) {
  auto it = watched_.find(fd);
  if (it == watched_.end()) {
    return Status::Invalid("EventLoop::SetInterest: fd is not watched");
  }
#if defined(__linux__)
  if (Status s = EpollControl(EPOLL_CTL_MOD, fd, want_read, want_write);
      !s.ok()) {
    return s;
  }
#endif
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  return Status::Ok();
}

void EventLoop::Unwatch(int fd) {
#if defined(__linux__)
  if (watched_.count(fd) != 0) {
    (void)EpollControl(EPOLL_CTL_DEL, fd, false, false);
  }
#endif
  watched_.erase(fd);
}

uint64_t EventLoop::ScheduleAt(uint64_t deadline_nanos,
                               std::function<void()> fn) {
  const uint64_t id = next_timer_id_++;
  timers_.emplace(std::make_pair(deadline_nanos, id), std::move(fn));
  return id;
}

void EventLoop::Cancel(uint64_t timer_id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.second == timer_id) {
      timers_.erase(it);
      return;
    }
  }
}

void EventLoop::Post(std::function<void()> fn) {
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
    if (!wake_pending_) {
      wake_pending_ = true;
      need_wake = true;
    }
  }
  if (need_wake) {
    const char byte = 1;
    // A full pipe still wakes the loop (earlier bytes are unread), so a
    // short write here is benign.
    (void)!write(wake_write_fd_, &byte, 1);
  }
}

void EventLoop::Quit() {
  // Routed through Post so quit_ is only ever touched on the loop thread.
  Post([this] { quit_ = true; });
}

void EventLoop::DrainWakePipe() {
  char buffer[64];
  while (read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
  }
}

void EventLoop::RunPostedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    tasks.swap(posted_);
    wake_pending_ = false;
  }
  for (auto& task : tasks) task();
}

int EventLoop::NextTimerTimeoutMillis() const {
  if (timers_.empty()) return -1;
  const uint64_t now = MonotonicNanos();
  const uint64_t deadline = timers_.begin()->first.first;
  if (deadline <= now) return 0;
  const uint64_t millis = (deadline - now + 999999) / 1000000;
  // Clamp: poll/epoll take int millis, and re-polling once a minute costs
  // nothing against a far-future timer.
  return millis > 60000 ? 60000 : static_cast<int>(millis);
}

void EventLoop::RunDueTimers() {
  const uint64_t now = MonotonicNanos();
  // Timers may schedule new timers; re-examine the front each round so a
  // callback-scheduled past-due timer still runs this iteration.
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    fn();
  }
}

void EventLoop::DispatchReady(int fd, IoEvent event) {
  auto it = watched_.find(fd);
  if (it == watched_.end()) return;  // unwatched by an earlier callback
  // Copy the callback: it may Unwatch(fd) (destroying the stored
  // std::function mid-call) and the copy keeps `this` alive through the
  // invocation.
  IoCallback callback = it->second.callback;
  callback(event);
}

void EventLoop::RunPoll() {
  std::vector<struct pollfd> pollfds;
  std::vector<int> ready;
  while (!quit_) {
    pollfds.clear();
    pollfds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, watched] : watched_) {
      short events = 0;
      if (watched.want_read) events |= POLLIN;
      if (watched.want_write) events |= POLLOUT;
      if (events != 0) pollfds.push_back({fd, events, 0});
    }

    const int timeout = NextTimerTimeoutMillis();
    const int rc = poll(pollfds.data(), pollfds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable poll failure

    RunDueTimers();
    if (rc > 0) {
      if ((pollfds[0].revents & POLLIN) != 0) DrainWakePipe();
      // Snapshot the ready fds before dispatching: callbacks may Watch or
      // Unwatch (invalidating watched_ iterators), so dispatch re-checks
      // membership per fd instead of holding an iterator across calls.
      ready.clear();
      for (size_t i = 1; i < pollfds.size(); ++i) {
        if (pollfds[i].revents != 0) ready.push_back(i);
      }
      for (const int idx : ready) {
        const struct pollfd& pfd = pollfds[static_cast<size_t>(idx)];
        IoEvent event;
        event.readable = (pfd.revents & POLLIN) != 0;
        event.writable = (pfd.revents & POLLOUT) != 0;
        event.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        DispatchReady(pfd.fd, event);
      }
    }
    RunPostedTasks();
  }
}

void EventLoop::RunEpoll() {
#if defined(__linux__)
  constexpr int kMaxEvents = 64;
  struct epoll_event events[kMaxEvents];
  std::vector<std::pair<int, IoEvent>> ready;
  while (!quit_) {
    const int timeout = NextTimerTimeoutMillis();
    const int rc = epoll_wait(epoll_fd_, events, kMaxEvents, timeout);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable epoll failure

    RunDueTimers();
    if (rc > 0) {
      // Same snapshot-then-dispatch discipline as the poll backend:
      // callbacks may Unwatch any fd in this batch, so membership is
      // re-checked per dispatch instead of trusting the kernel's batch.
      ready.clear();
      for (int i = 0; i < rc; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_read_fd_) {
          DrainWakePipe();
          continue;
        }
        IoEvent event;
        event.readable = (events[i].events & (EPOLLIN | EPOLLPRI)) != 0;
        event.writable = (events[i].events & EPOLLOUT) != 0;
        event.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        ready.push_back({fd, event});
      }
      for (const auto& [fd, event] : ready) DispatchReady(fd, event);
    }
    RunPostedTasks();
  }
#endif
}

void EventLoop::Run() {
  if (backend_ == EventLoopBackend::kEpoll) {
    RunEpoll();
  } else {
    RunPoll();
  }
  // A final drain so tasks posted just before Quit still run.
  RunPostedTasks();
  quit_ = false;  // the loop is reusable (tests run it more than once)
}

}  // namespace fasthist
