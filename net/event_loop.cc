#include "net/event_loop.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <utility>

#include "util/clock.h"

namespace fasthist {
namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Invalid("EventLoop: cannot set O_NONBLOCK");
  }
  return Status::Ok();
}

}  // namespace

EventLoop::EventLoop(int wake_read_fd, int wake_write_fd)
    : wake_read_fd_(wake_read_fd), wake_write_fd_(wake_write_fd) {}

StatusOr<std::unique_ptr<EventLoop>> EventLoop::Create() {
  int fds[2];
  if (pipe(fds) != 0) {
    return Status::Invalid("EventLoop: cannot create wake pipe");
  }
  for (const int fd : fds) {
    if (Status s = SetNonBlocking(fd); !s.ok()) {
      close(fds[0]);
      close(fds[1]);
      return s;
    }
  }
  return std::unique_ptr<EventLoop>(new EventLoop(fds[0], fds[1]));
}

EventLoop::~EventLoop() {
  close(wake_read_fd_);
  close(wake_write_fd_);
}

Status EventLoop::Watch(int fd, bool want_read, bool want_write,
                        IoCallback callback) {
  if (fd < 0 || !callback) {
    return Status::Invalid("EventLoop::Watch: bad fd or empty callback");
  }
  watched_[fd] = Watched{want_read, want_write, std::move(callback)};
  return Status::Ok();
}

Status EventLoop::SetInterest(int fd, bool want_read, bool want_write) {
  auto it = watched_.find(fd);
  if (it == watched_.end()) {
    return Status::Invalid("EventLoop::SetInterest: fd is not watched");
  }
  it->second.want_read = want_read;
  it->second.want_write = want_write;
  return Status::Ok();
}

void EventLoop::Unwatch(int fd) { watched_.erase(fd); }

uint64_t EventLoop::ScheduleAt(uint64_t deadline_nanos,
                               std::function<void()> fn) {
  const uint64_t id = next_timer_id_++;
  timers_.emplace(std::make_pair(deadline_nanos, id), std::move(fn));
  return id;
}

void EventLoop::Cancel(uint64_t timer_id) {
  for (auto it = timers_.begin(); it != timers_.end(); ++it) {
    if (it->first.second == timer_id) {
      timers_.erase(it);
      return;
    }
  }
}

void EventLoop::Post(std::function<void()> fn) {
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    posted_.push_back(std::move(fn));
    if (!wake_pending_) {
      wake_pending_ = true;
      need_wake = true;
    }
  }
  if (need_wake) {
    const char byte = 1;
    // A full pipe still wakes the loop (earlier bytes are unread), so a
    // short write here is benign.
    (void)!write(wake_write_fd_, &byte, 1);
  }
}

void EventLoop::Quit() {
  // Routed through Post so quit_ is only ever touched on the loop thread.
  Post([this] { quit_ = true; });
}

void EventLoop::DrainWakePipe() {
  char buffer[64];
  while (read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
  }
}

void EventLoop::RunPostedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mutex_);
    tasks.swap(posted_);
    wake_pending_ = false;
  }
  for (auto& task : tasks) task();
}

int EventLoop::NextTimerTimeoutMillis() const {
  if (timers_.empty()) return -1;
  const uint64_t now = MonotonicNanos();
  const uint64_t deadline = timers_.begin()->first.first;
  if (deadline <= now) return 0;
  const uint64_t millis = (deadline - now + 999999) / 1000000;
  // Clamp: poll takes int millis, and re-polling once a minute costs
  // nothing against a far-future timer.
  return millis > 60000 ? 60000 : static_cast<int>(millis);
}

void EventLoop::RunDueTimers() {
  const uint64_t now = MonotonicNanos();
  // Timers may schedule new timers; re-examine the front each round so a
  // callback-scheduled past-due timer still runs this iteration.
  while (!timers_.empty() && timers_.begin()->first.first <= now) {
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    fn();
  }
}

void EventLoop::Run() {
  std::vector<struct pollfd> pollfds;
  std::vector<int> ready;
  while (!quit_) {
    pollfds.clear();
    pollfds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, watched] : watched_) {
      short events = 0;
      if (watched.want_read) events |= POLLIN;
      if (watched.want_write) events |= POLLOUT;
      if (events != 0) pollfds.push_back({fd, events, 0});
    }

    const int timeout = NextTimerTimeoutMillis();
    const int rc = poll(pollfds.data(), pollfds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable poll failure

    RunDueTimers();
    if (rc > 0) {
      if ((pollfds[0].revents & POLLIN) != 0) DrainWakePipe();
      // Snapshot the ready fds before dispatching: callbacks may Watch or
      // Unwatch (invalidating watched_ iterators), so dispatch re-checks
      // membership per fd instead of holding an iterator across calls.
      ready.clear();
      for (size_t i = 1; i < pollfds.size(); ++i) {
        if (pollfds[i].revents != 0) ready.push_back(i);
      }
      for (const int idx : ready) {
        const struct pollfd& pfd = pollfds[static_cast<size_t>(idx)];
        auto it = watched_.find(pfd.fd);
        if (it == watched_.end()) continue;  // unwatched by an earlier callback
        IoEvent event;
        event.readable = (pfd.revents & POLLIN) != 0;
        event.writable = (pfd.revents & POLLOUT) != 0;
        event.error = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
        // Copy the callback: it may Unwatch(fd) (destroying the stored
        // std::function mid-call) and the copy keeps `this` alive through
        // the invocation.
        IoCallback callback = it->second.callback;
        callback(event);
      }
    }
    RunPostedTasks();
  }
  // A final drain so tasks posted just before Quit still run.
  RunPostedTasks();
  quit_ = false;  // the loop is reusable (tests run it more than once)
}

}  // namespace fasthist
