#include "poly/fit_poly.h"

#include <algorithm>
#include <cmath>

namespace fasthist {

double PolyFit::EvaluateAt(int64_t x) const {
  return basis.EvaluateSeries(static_cast<double>(x - interval.begin),
                              coefficients);
}

StatusOr<PolyFit> FitPoly(const SparseFunction& q, const Interval& interval,
                          int degree) {
  if (interval.length() <= 0 || interval.begin < 0 ||
      interval.end > q.domain_size()) {
    return Status::Invalid("FitPoly: interval out of domain");
  }
  const int effective_degree = static_cast<int>(
      std::min<int64_t>(degree, interval.length() - 1));
  auto basis = GramBasis::Create(interval.length(), effective_degree);
  if (!basis.ok()) return basis.status();
  return FitPolyWithBasis(q, interval, *basis);
}

StatusOr<PolyFit> FitPolyWithBasis(const SparseFunction& q,
                                   const Interval& interval,
                                   const GramBasis& basis) {
  if (interval.length() != basis.num_points()) {
    return Status::Invalid("FitPolyWithBasis: basis/interval length mismatch");
  }
  PolyFit fit;
  fit.interval = interval;
  fit.basis = basis;
  fit.coefficients.resize(static_cast<size_t>(basis.degree()) + 1);
  std::vector<double> scratch;
  fit.err_squared = ProjectOntoBasis(q, interval, basis,
                                     fit.coefficients.data(), &scratch);
  return fit;
}

double ProjectOntoBasis(const SparseFunction& q, const Interval& interval,
                        const GramBasis& basis, double* coeff,
                        std::vector<double>* scratch) {
  const size_t num_coeff = static_cast<size_t>(basis.degree()) + 1;
  for (size_t j = 0; j < num_coeff; ++j) coeff[j] = 0.0;

  // c_j = <q, p_j> over the interval; only the support contributes.
  const std::vector<int64_t>& indices = q.indices();
  const std::vector<double>& values = q.values();
  const auto first = std::lower_bound(indices.begin(), indices.end(),
                                      interval.begin);
  double sum_squares = 0.0;
  for (auto it = first; it != indices.end() && *it < interval.end; ++it) {
    const size_t s = static_cast<size_t>(it - indices.begin());
    const double v = values[s];
    basis.EvaluateAt(static_cast<double>(*it - interval.begin), scratch);
    for (size_t j = 0; j < num_coeff; ++j) coeff[j] += v * (*scratch)[j];
    sum_squares += v * v;
  }

  // Orthonormal projection: residual = ||q||^2 - ||c||^2.  Clamp the tiny
  // negative values floating-point cancellation can produce.
  double coeff_norm_sq = 0.0;
  for (size_t j = 0; j < num_coeff; ++j) {
    coeff_norm_sq += coeff[j] * coeff[j];
  }
  return std::max(0.0, sum_squares - coeff_norm_sq);
}

const GramBasis& GramBasisCache::For(int64_t length) {
  auto it = cache_.find(length);
  if (it == cache_.end()) {
    const int effective_degree =
        static_cast<int>(std::min<int64_t>(degree_, length - 1));
    it = cache_
             .emplace(length,
                      GramBasis::Create(length, effective_degree).value())
             .first;
  }
  return it->second;
}

}  // namespace fasthist
