#ifndef FASTHIST_POLY_POLY_MERGING_H_
#define FASTHIST_POLY_POLY_MERGING_H_

#include <cstdint>
#include <vector>

#include "dist/sparse_function.h"
#include "poly/fit_poly.h"
#include "util/status.h"

namespace fasthist {

// Knobs of the paper's merging algorithm (Algorithm 1), shared by the
// histogram mergers in core/ and the piecewise-polynomial generalization
// below.  Per round the algorithm pairs up adjacent intervals, keeps the
//   m = max(k, floor(k * (1 + 1/delta)))
// pairs with the largest merged error split, and merges the rest, until at
// most 2*gamma*m + 1 intervals remain.
//   delta — approximation ratio vs output pieces (Theorem 3.3): the output
//           error is within sqrt(1 + delta) of opt_k while the piece count
//           shrinks toward 2k+1 as delta grows.
//   gamma — running time vs output pieces (Theorem 3.4 / Corollary 3.1):
//           larger gamma stops the rounds earlier, saving the tail of the
//           merging at the cost of proportionally more pieces.
//   num_threads — data-parallelism of the per-round candidate pass (the
//           pair merge-and-error evaluation).  Selection already orders
//           pairs under a strict (error, index) total order, so evaluation
//           order cannot affect which pairs survive: any thread count
//           produces bit-identical output to num_threads = 1 (asserted by
//           tests/property_test.cc).  Threads come from the shared
//           util/parallel pool; 1 means fully serial with no pool touch.
struct MergingOptions {
  double delta = 1000.0;
  double gamma = 1.0;
  int num_threads = 1;
};

// A function that is polynomial (degree <= d) on each of its pieces.
class PiecewisePolynomial {
 public:
  PiecewisePolynomial() = default;

  static StatusOr<PiecewisePolynomial> Create(int64_t domain_size,
                                              std::vector<PolyFit> pieces);

  int64_t domain_size() const { return domain_size_; }
  int64_t num_pieces() const { return static_cast<int64_t>(pieces_.size()); }
  const std::vector<PolyFit>& pieces() const { return pieces_; }

  double EvaluateAt(int64_t x) const;
  std::vector<double> ToDense() const;

 private:
  int64_t domain_size_ = 0;
  std::vector<PolyFit> pieces_;  // contiguous, covering the domain
};

struct PiecewisePolyResult {
  PiecewisePolynomial function;
  double err_squared = 0.0;
  long long num_rounds = 0;
};

// Theorem 2.3 / Corollary 4.1: the merging algorithm with the degree-d
// least-squares projection as its piece oracle.  Output has O(k) pieces
// (2m+1 with the default options), each fitted by a degree-<=d polynomial,
// and err_squared is the summed per-piece residual.  Runs the shared round
// engine (core/internal/merge_engine.h) with the per-round sort — the
// reference implementation the fast variant is verified against.
StatusOr<PiecewisePolyResult> ConstructPiecewisePolynomial(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options = MergingOptions());

// Theorem 3.4 applied to polynomials: the same rounds with the m worst
// pairs found by linear-time selection instead of a full sort.  Same
// contract as ConstructHistogramFast vs ConstructHistogram: the strict
// (error, index) order makes the selected pair sets — and therefore the
// pieces, coefficients, err_squared and num_rounds — identical to
// ConstructPiecewisePolynomial on every input.  The property suite
// (tests/property_test.cc) asserts this across degrees, seeds and knobs.
StatusOr<PiecewisePolyResult> ConstructPiecewisePolynomialFast(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options = MergingOptions());

}  // namespace fasthist

#endif  // FASTHIST_POLY_POLY_MERGING_H_
