#ifndef FASTHIST_POLY_FIT_POLY_H_
#define FASTHIST_POLY_FIT_POLY_H_

#include <cstdint>
#include <map>
#include <vector>

#include "dist/sparse_function.h"
#include "poly/gram.h"
#include "util/status.h"

namespace fasthist {

// A degree-d polynomial fitted to one interval, stored in the orthonormal
// Gram basis of that interval (the basis travels with the fit so a PolyFit
// is self-contained and evaluable anywhere).
struct PolyFit {
  Interval interval;
  GramBasis basis;
  std::vector<double> coefficients;  // size basis.degree() + 1
  double err_squared = 0.0;

  // Evaluates the fitted polynomial at absolute domain position x.
  double EvaluateAt(int64_t x) const;
};

// Least-squares projection of q restricted to `interval` onto polynomials of
// degree <= `degree` (zeros of q inside the interval count).  Because the
// basis is orthonormal, coefficients are plain inner products and the
// residual is ||q||^2 - ||coefficients||^2 — no normal equations needed.
// The effective degree is capped at interval.length() - 1.
//
// When an already-built basis for this interval length is at hand (the
// merging loop caches one per length), pass it to avoid the O(length *
// degree) rebuild.
StatusOr<PolyFit> FitPoly(const SparseFunction& q, const Interval& interval,
                          int degree);
StatusOr<PolyFit> FitPolyWithBasis(const SparseFunction& q,
                                   const Interval& interval,
                                   const GramBasis& basis);

// The shared inner loop of FitPolyWithBasis and the merge engine's SoA
// refit: projects q restricted to `interval` onto `basis`, writing the
// basis.degree()+1 coefficients into `coeff` (caller-allocated) and
// returning the squared residual ||q||^2 - ||c||^2 clamped at zero.
// `scratch` carries basis evaluations between calls so tight refit loops
// stay allocation-free.  Keeping this in one place is what guarantees the
// engine and the exact-DP baseline never drift apart numerically.
double ProjectOntoBasis(const SparseFunction& q, const Interval& interval,
                        const GramBasis& basis, double* coeff,
                        std::vector<double>* scratch);

// One GramBasis per distinct interval length, built on first use.  The
// merging rounds and the exact DP baseline revisit the same lengths
// constantly (every pair of equal length shares a basis), so the cache
// amortizes the O(length * degree) recurrence precomputation away.  The
// effective degree of each basis is capped at length - 1, matching FitPoly.
class GramBasisCache {
 public:
  explicit GramBasisCache(int degree) : degree_(degree) {}

  const GramBasis& For(int64_t length);

 private:
  int degree_;
  std::map<int64_t, GramBasis> cache_;
};

}  // namespace fasthist

#endif  // FASTHIST_POLY_FIT_POLY_H_
