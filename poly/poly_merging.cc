#include "poly/poly_merging.h"

#include <algorithm>
#include <utility>

#include "core/internal/merge_engine.h"

namespace fasthist {

StatusOr<PiecewisePolynomial> PiecewisePolynomial::Create(
    int64_t domain_size, std::vector<PolyFit> pieces) {
  if (domain_size <= 0) {
    return Status::Invalid("PiecewisePolynomial: domain must be positive");
  }
  int64_t expected_begin = 0;
  for (const PolyFit& piece : pieces) {
    if (piece.interval.begin != expected_begin ||
        piece.interval.length() <= 0) {
      return Status::Invalid("PiecewisePolynomial: pieces not contiguous");
    }
    expected_begin = piece.interval.end;
  }
  if (pieces.empty() || expected_begin != domain_size) {
    return Status::Invalid("PiecewisePolynomial: pieces must cover domain");
  }
  PiecewisePolynomial f;
  f.domain_size_ = domain_size;
  f.pieces_ = std::move(pieces);
  return f;
}

double PiecewisePolynomial::EvaluateAt(int64_t x) const {
  const auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), x,
      [](int64_t value, const PolyFit& piece) {
        return value < piece.interval.begin;
      });
  if (it == pieces_.begin()) return 0.0;
  const PolyFit& piece = *(it - 1);
  return piece.interval.Contains(x) ? piece.EvaluateAt(x) : 0.0;
}

std::vector<double> PiecewisePolynomial::ToDense() const {
  std::vector<double> dense(static_cast<size_t>(domain_size_), 0.0);
  for (const PolyFit& piece : pieces_) {
    for (int64_t x = piece.interval.begin; x < piece.interval.end; ++x) {
      dense[static_cast<size_t>(x)] = piece.EvaluateAt(x);
    }
  }
  return dense;
}

StatusOr<PiecewisePolyResult> ConstructPiecewisePolynomial(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options) {
  return internal::RunPolyMergingRounds(q, k, degree, options,
                                        internal::SelectionStrategy::kSort);
}

StatusOr<PiecewisePolyResult> ConstructPiecewisePolynomialFast(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options) {
  return internal::RunPolyMergingRounds(q, k, degree, options,
                                        internal::SelectionStrategy::kSelect);
}

}  // namespace fasthist
