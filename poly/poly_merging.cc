#include "poly/poly_merging.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace fasthist {
namespace {

Status ValidateMergingArgs(int64_t k, const MergingOptions& options) {
  if (k < 1) return Status::Invalid("merging: k must be >= 1");
  if (!(options.delta > 0.0)) {
    return Status::Invalid("merging: delta must be positive");
  }
  if (!(options.gamma >= 1.0)) {
    return Status::Invalid("merging: gamma must be >= 1");
  }
  return Status::Ok();
}

// Number of pairs kept split per round; the fixed point of the round
// recursion s -> ceil(s/2) + m is 2m (+1 for a carried odd interval), which
// is where the piece counts 2k+1 (gamma=1, large delta) come from.
int64_t PairsKeptPerRound(int64_t k, const MergingOptions& options) {
  const double raw = static_cast<double>(k) * (1.0 + 1.0 / options.delta);
  return std::max(k, static_cast<int64_t>(raw));
}

// Initial partition with breakpoints at every support index: alternating
// zero-run intervals (exact under any constant/polynomial, error 0) and
// singleton support intervals.  Size <= 2 * support + 1, so the whole
// construction is sample-linear for empirical distributions.
std::vector<Interval> InitialPartition(const SparseFunction& q) {
  const std::vector<int64_t>& support = q.indices();
  std::vector<Interval> intervals;
  intervals.reserve(2 * support.size() + 1);
  int64_t cursor = 0;
  for (int64_t s : support) {
    if (s > cursor) intervals.push_back({cursor, s});
    intervals.push_back({s, s + 1});
    cursor = s + 1;
  }
  if (cursor < q.domain_size()) {
    intervals.push_back({cursor, q.domain_size()});
  }
  if (intervals.empty()) intervals.push_back({0, q.domain_size()});
  return intervals;
}

// One Gram basis per distinct interval length, reused across rounds.
class BasisCache {
 public:
  explicit BasisCache(int degree) : degree_(degree) {}

  const GramBasis& For(int64_t length) {
    auto it = cache_.find(length);
    if (it == cache_.end()) {
      const int effective_degree =
          static_cast<int>(std::min<int64_t>(degree_, length - 1));
      it = cache_
               .emplace(length,
                        GramBasis::Create(length, effective_degree).value())
               .first;
    }
    return it->second;
  }

 private:
  int degree_;
  std::map<int64_t, GramBasis> cache_;
};

}  // namespace

StatusOr<PiecewisePolynomial> PiecewisePolynomial::Create(
    int64_t domain_size, std::vector<PolyFit> pieces) {
  if (domain_size <= 0) {
    return Status::Invalid("PiecewisePolynomial: domain must be positive");
  }
  int64_t expected_begin = 0;
  for (const PolyFit& piece : pieces) {
    if (piece.interval.begin != expected_begin ||
        piece.interval.length() <= 0) {
      return Status::Invalid("PiecewisePolynomial: pieces not contiguous");
    }
    expected_begin = piece.interval.end;
  }
  if (pieces.empty() || expected_begin != domain_size) {
    return Status::Invalid("PiecewisePolynomial: pieces must cover domain");
  }
  PiecewisePolynomial f;
  f.domain_size_ = domain_size;
  f.pieces_ = std::move(pieces);
  return f;
}

double PiecewisePolynomial::EvaluateAt(int64_t x) const {
  const auto it = std::upper_bound(
      pieces_.begin(), pieces_.end(), x,
      [](int64_t value, const PolyFit& piece) {
        return value < piece.interval.begin;
      });
  if (it == pieces_.begin()) return 0.0;
  const PolyFit& piece = *(it - 1);
  return piece.interval.Contains(x) ? piece.EvaluateAt(x) : 0.0;
}

std::vector<double> PiecewisePolynomial::ToDense() const {
  std::vector<double> dense(static_cast<size_t>(domain_size_), 0.0);
  for (const PolyFit& piece : pieces_) {
    for (int64_t x = piece.interval.begin; x < piece.interval.end; ++x) {
      dense[static_cast<size_t>(x)] = piece.EvaluateAt(x);
    }
  }
  return dense;
}

StatusOr<PiecewisePolyResult> ConstructPiecewisePolynomial(
    const SparseFunction& q, int64_t k, int degree,
    const MergingOptions& options) {
  if (Status s = ValidateMergingArgs(k, options); !s.ok()) return s;
  if (degree < 0) {
    return Status::Invalid("ConstructPiecewisePolynomial: degree must be >= 0");
  }
  if (q.domain_size() <= 0) {
    return Status::Invalid("ConstructPiecewisePolynomial: empty domain");
  }

  const int64_t keep = PairsKeptPerRound(k, options);
  BasisCache cache(degree);
  const std::vector<Interval> initial = InitialPartition(q);

  std::vector<PolyFit> fits;
  fits.reserve(initial.size());
  for (const Interval& interval : initial) {
    fits.push_back(
        FitPolyWithBasis(q, interval, cache.For(interval.length())).value());
  }

  const int64_t stop =
      2 * static_cast<int64_t>(options.gamma * static_cast<double>(keep)) + 1;
  PiecewisePolyResult result;
  while (static_cast<int64_t>(fits.size()) > stop) {
    const size_t num_pairs = fits.size() / 2;

    // Fit every candidate merged pair.
    std::vector<PolyFit> candidates;
    candidates.reserve(num_pairs);
    for (size_t p = 0; p < num_pairs; ++p) {
      const Interval merged{fits[2 * p].interval.begin,
                            fits[2 * p + 1].interval.end};
      candidates.push_back(
          FitPolyWithBasis(q, merged, cache.For(merged.length())).value());
    }

    // Keep the `keep` pairs with the largest merged error split; the tie
    // break on the pair index makes the selected set a strict total order.
    std::vector<size_t> order(num_pairs);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (candidates[a].err_squared != candidates[b].err_squared) {
        return candidates[a].err_squared > candidates[b].err_squared;
      }
      return a < b;
    });
    std::vector<bool> keep_split(num_pairs, false);
    const size_t num_keep = std::min(static_cast<size_t>(keep), num_pairs);
    for (size_t i = 0; i < num_keep; ++i) keep_split[order[i]] = true;

    std::vector<PolyFit> next;
    next.reserve(num_pairs + num_keep + 1);
    for (size_t p = 0; p < num_pairs; ++p) {
      if (keep_split[p]) {
        next.push_back(std::move(fits[2 * p]));
        next.push_back(std::move(fits[2 * p + 1]));
      } else {
        next.push_back(std::move(candidates[p]));
      }
    }
    if (fits.size() % 2 == 1) next.push_back(std::move(fits.back()));
    fits.swap(next);
    ++result.num_rounds;
  }

  result.err_squared = 0.0;
  for (const PolyFit& fit : fits) result.err_squared += fit.err_squared;
  auto function = PiecewisePolynomial::Create(q.domain_size(), std::move(fits));
  if (!function.ok()) return function.status();
  result.function = std::move(function).value();
  return result;
}

}  // namespace fasthist
