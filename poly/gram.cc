#include "poly/gram.h"

#include <cmath>

namespace fasthist {

StatusOr<GramBasis> GramBasis::Create(int64_t num_points, int degree) {
  if (num_points < 1) {
    return Status::Invalid("GramBasis: num_points must be >= 1");
  }
  if (degree < 0 || static_cast<int64_t>(degree) >= num_points) {
    return Status::Invalid("GramBasis: need 0 <= degree < num_points");
  }

  GramBasis basis;
  basis.num_points_ = num_points;
  basis.degree_ = degree;
  basis.p0_ = 1.0 / std::sqrt(static_cast<double>(num_points));
  basis.alpha_.resize(static_cast<size_t>(degree));
  basis.beta_.resize(static_cast<size_t>(degree));

  // Stieltjes procedure: materialize p_{j} on the grid, compute
  //   alpha_j = <x p_j, p_j>,  r_{j+1} = (x - alpha_j) p_j - beta_{j-1} p_{j-1},
  //   beta_j = ||r_{j+1}||,    p_{j+1} = r_{j+1} / beta_j.
  // (The symmetric Jacobi-matrix identity <x p_j, p_{j-1}> = beta_{j-1}
  // saves one accumulation pass.)
  const size_t n = static_cast<size_t>(num_points);
  std::vector<double> prev(n, 0.0), cur(n, basis.p0_), next(n, 0.0);
  for (int j = 0; j < degree; ++j) {
    double alpha = 0.0;
    for (size_t x = 0; x < n; ++x) {
      alpha += static_cast<double>(x) * cur[x] * cur[x];
    }
    const double beta_prev = j > 0 ? basis.beta_[static_cast<size_t>(j) - 1]
                                   : 0.0;
    double norm_sq = 0.0;
    for (size_t x = 0; x < n; ++x) {
      next[x] = (static_cast<double>(x) - alpha) * cur[x] -
                beta_prev * prev[x];
      norm_sq += next[x] * next[x];
    }
    const double beta = std::sqrt(norm_sq);
    if (!(beta > 0.0)) {
      return Status::Invalid("GramBasis: recurrence degenerated");
    }
    for (size_t x = 0; x < n; ++x) next[x] /= beta;
    basis.alpha_[static_cast<size_t>(j)] = alpha;
    basis.beta_[static_cast<size_t>(j)] = beta;
    prev.swap(cur);
    cur.swap(next);
  }
  return basis;
}

double GramBasis::EvaluateSeries(double x,
                                 const std::vector<double>& coefficients) const {
  if (coefficients.empty()) return 0.0;
  double prev = 0.0;
  double cur = p0_;
  double total = coefficients[0] * cur;
  const size_t terms = coefficients.size() - 1;
  for (size_t j = 0; j < terms; ++j) {
    const double next =
        ((x - alpha_[j]) * cur - (j > 0 ? beta_[j - 1] : 0.0) * prev) /
        beta_[j];
    total += coefficients[j + 1] * next;
    prev = cur;
    cur = next;
  }
  return total;
}

void GramBasis::EvaluateAt(double x, std::vector<double>* out) const {
  out->resize(static_cast<size_t>(degree_) + 1);
  (*out)[0] = p0_;
  if (degree_ == 0) return;
  (*out)[1] = (x - alpha_[0]) * p0_ / beta_[0];
  for (int j = 1; j < degree_; ++j) {
    const size_t sj = static_cast<size_t>(j);
    (*out)[sj + 1] = ((x - alpha_[sj]) * (*out)[sj] -
                      beta_[sj - 1] * (*out)[sj - 1]) /
                     beta_[sj];
  }
}

}  // namespace fasthist
