#ifndef FASTHIST_POLY_GRAM_H_
#define FASTHIST_POLY_GRAM_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace fasthist {

// Orthonormal discrete polynomial basis (Gram / discrete Chebyshev
// polynomials) over the grid {0, 1, ..., num_points-1} with the unweighted
// counting inner product <f, g> = sum_x f(x) g(x).
//
// Create precomputes the three-term recurrence coefficients in
// O(num_points * degree); EvaluateAt then evaluates all degree+1 basis
// polynomials at an arbitrary (real) point in O(degree) — the projection
// oracle cost the paper's piecewise-polynomial extension depends on.
class GramBasis {
 public:
  GramBasis() = default;

  // Requires num_points >= 1 and 0 <= degree < num_points.
  static StatusOr<GramBasis> Create(int64_t num_points, int degree);

  int degree() const { return degree_; }
  int64_t num_points() const { return num_points_; }

  // out is resized to degree+1; out[j] = p_j(x).
  void EvaluateAt(double x, std::vector<double>* out) const;

  // sum_j coefficients[j] * p_j(x), accumulated inside the recurrence —
  // O(degree) with no allocation (the per-point path of piecewise-poly
  // evaluation).  coefficients.size() must be <= degree+1.
  double EvaluateSeries(double x, const std::vector<double>& coefficients) const;

 private:
  int64_t num_points_ = 0;
  int degree_ = 0;
  double p0_ = 0.0;             // constant value of p_0
  std::vector<double> alpha_;   // alpha_[j] = <x p_j, p_j>,    j = 0..degree-1
  std::vector<double> beta_;    // beta_[j]  = ||r_{j+1}||,     j = 0..degree-1
};

}  // namespace fasthist

#endif  // FASTHIST_POLY_GRAM_H_
