#include "baseline/ahist.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fasthist {
namespace {

double Cost(const std::vector<double>& prefix_sum,
            const std::vector<double>& prefix_sumsq, size_t a, size_t b) {
  if (b <= a + 1) return 0.0;
  const double s = prefix_sum[b] - prefix_sum[a];
  const double ss = prefix_sumsq[b] - prefix_sumsq[a];
  return std::max(0.0, ss - s * s / static_cast<double>(b - a));
}

}  // namespace

StatusOr<AhistResult> ApproxVOptimalHistogram(const std::vector<double>& data,
                                              int64_t k,
                                              const AhistOptions& options) {
  if (data.empty()) {
    return Status::Invalid("ApproxVOptimalHistogram: empty data");
  }
  if (k < 1) return Status::Invalid("ApproxVOptimalHistogram: k must be >= 1");
  if (!(options.delta > 0.0)) {
    return Status::Invalid("ApproxVOptimalHistogram: delta must be positive");
  }

  const size_t n = data.size();
  const size_t kk = std::min(static_cast<size_t>(k), n);
  std::vector<double> prefix_sum(n + 1, 0.0), prefix_sumsq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix_sum[i + 1] = prefix_sum[i] + data[i];
    prefix_sumsq[i + 1] = prefix_sumsq[i] + data[i] * data[i];
  }
  const auto cost = [&](size_t a, size_t b) {
    return Cost(prefix_sum, prefix_sumsq, a, b);
  };

  // Per-row multiplicative slack; compounding over kk rows stays within
  // (1 + delta) on the squared error: (1 + delta/(2k))^k <= e^{delta/2}
  // <= 1 + delta for delta <= 2.5 (and we cap the step for larger delta).
  const double eps = std::min(options.delta, 2.5) /
                     (2.0 * static_cast<double>(kk));

  std::vector<double> prev(n + 1, 0.0), cur(n + 1, 0.0);
  for (size_t i = 1; i <= n; ++i) prev[i] = cost(0, i);
  std::vector<std::vector<int32_t>> parent(
      kk + 1, std::vector<int32_t>(n + 1, 0));

  std::vector<size_t> candidates;
  for (size_t j = 2; j <= kk; ++j) {
    // Compress row j-1: keep the last boundary position of each geometric
    // error class.  For any true optimum t*, the kept representative
    // t >= t* satisfies dp(t) <= (1+eps) dp(t*) and cost(t, i) <=
    // cost(t*, i), so the row loses at most a (1+eps) factor.
    candidates.clear();
    double class_base = -1.0;
    for (size_t t = j - 1; t < n; ++t) {
      const double v = prev[t];
      const bool same_class =
          !candidates.empty() &&
          ((class_base == 0.0 && v == 0.0) ||
           (class_base > 0.0 && v <= class_base * (1.0 + eps)));
      if (same_class) {
        candidates.back() = t;
      } else {
        candidates.push_back(t);
        class_base = v;
      }
    }

    for (size_t i = 0; i <= n; ++i) cur[i] = prev[i];
    for (size_t i = j; i <= n; ++i) {
      double best = prev[i - 1];
      int32_t best_t = static_cast<int32_t>(i - 1);
      for (size_t t : candidates) {
        if (t + 1 >= i) break;
        const double candidate = prev[t] + cost(t, i);
        if (candidate < best) {
          best = candidate;
          best_t = static_cast<int32_t>(t);
        }
      }
      cur[i] = best;
      parent[j][i] = best_t;
    }
    prev.swap(cur);
  }

  AhistResult result;
  result.err_squared = prev[n];
  std::vector<size_t> boundaries;
  size_t i = n;
  for (size_t j = kk; j >= 2 && i > 0; --j) {
    boundaries.push_back(i);
    i = static_cast<size_t>(parent[j][i]);
  }
  boundaries.push_back(i);

  std::vector<HistogramPiece> pieces;
  size_t begin = 0;
  for (auto it = boundaries.rbegin(); it != boundaries.rend(); ++it) {
    const size_t end = *it;
    if (end == begin) continue;
    pieces.push_back(
        {{static_cast<int64_t>(begin), static_cast<int64_t>(end)},
         (prefix_sum[end] - prefix_sum[begin]) /
             static_cast<double>(end - begin)});
    begin = end;
  }
  auto histogram =
      Histogram::Create(static_cast<int64_t>(n), std::move(pieces));
  if (!histogram.ok()) return histogram.status();
  result.histogram = std::move(histogram).value();
  return result;
}

}  // namespace fasthist
