#include "baseline/dual_greedy.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace fasthist {
namespace {

struct Prefix {
  std::vector<double> sum;
  std::vector<double> sumsq;

  explicit Prefix(const std::vector<double>& data)
      : sum(data.size() + 1, 0.0), sumsq(data.size() + 1, 0.0) {
    for (size_t i = 0; i < data.size(); ++i) {
      sum[i + 1] = sum[i] + data[i];
      sumsq[i + 1] = sumsq[i] + data[i] * data[i];
    }
  }

  double Cost(size_t a, size_t b) const {
    if (b <= a + 1) return 0.0;
    const double s = sum[b] - sum[a];
    const double ss = sumsq[b] - sumsq[a];
    return std::max(0.0, ss - s * s / static_cast<double>(b - a));
  }

  double MeanOf(size_t a, size_t b) const {
    return (sum[b] - sum[a]) / static_cast<double>(b - a);
  }
};

// Greedy scan with per-piece budget tau; returns the boundaries (piece end
// positions) of the minimal partition.
std::vector<size_t> GreedyPartition(const Prefix& prefix, size_t n,
                                    double tau) {
  std::vector<size_t> ends;
  size_t begin = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (prefix.Cost(begin, i) > tau) {
      ends.push_back(i - 1);  // piece [begin, i-1]; singleton cost is 0
      begin = i - 1;
    }
  }
  ends.push_back(n);
  return ends;
}

}  // namespace

StatusOr<DualGreedyResult> DualPrimal(const std::vector<double>& data,
                                      int64_t max_pieces) {
  if (data.empty()) return Status::Invalid("DualPrimal: empty data");
  if (max_pieces < 1) {
    return Status::Invalid("DualPrimal: max_pieces must be >= 1");
  }
  const size_t n = data.size();
  const Prefix prefix(data);
  const size_t budget = static_cast<size_t>(max_pieces);

  DualGreedyResult result;
  std::vector<size_t> best_ends;
  double lo = 0.0, hi = prefix.Cost(0, n);

  // tau = 0 may already fit (e.g. piecewise-constant data).
  {
    std::vector<size_t> ends = GreedyPartition(prefix, n, 0.0);
    ++result.num_probes;
    if (ends.size() <= budget) {
      best_ends = std::move(ends);
      hi = 0.0;
    }
  }
  if (best_ends.empty()) {
    // hi = total cost always yields a single piece, hence feasible.
    for (int iter = 0; iter < 60 && hi > lo; ++iter) {
      const double mid = 0.5 * (lo + hi);
      std::vector<size_t> ends = GreedyPartition(prefix, n, mid);
      ++result.num_probes;
      if (ends.size() <= budget) {
        best_ends = std::move(ends);
        hi = mid;
      } else {
        lo = mid;
      }
    }
    if (best_ends.empty()) {
      best_ends = GreedyPartition(prefix, n, hi);
      ++result.num_probes;
    }
  }

  std::vector<HistogramPiece> pieces;
  size_t begin = 0;
  for (size_t end : best_ends) {
    if (end == begin) continue;
    pieces.push_back({{static_cast<int64_t>(begin), static_cast<int64_t>(end)},
                      prefix.MeanOf(begin, end)});
    result.err_squared += prefix.Cost(begin, end);
    begin = end;
  }
  auto histogram =
      Histogram::Create(static_cast<int64_t>(n), std::move(pieces));
  if (!histogram.ok()) return histogram.status();
  result.histogram = std::move(histogram).value();
  return result;
}

}  // namespace fasthist
