#ifndef FASTHIST_BASELINE_DUAL_GREEDY_H_
#define FASTHIST_BASELINE_DUAL_GREEDY_H_

#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "util/status.h"

namespace fasthist {

struct DualGreedyResult {
  Histogram histogram;
  double err_squared = 0.0;
  long long num_probes = 0;  // greedy scans spent in the binary search
};

// The [JKM+98] dual heuristic: the dual problem — minimize pieces subject
// to a per-piece squared-error budget tau — is solved exactly by a greedy
// left-to-right scan (extend the current piece while its residual stays
// within tau).  A binary search over tau then finds the tightest budget
// whose greedy partition fits in `max_pieces`.  O(n log(1/precision))
// total, at the price of no global optimality guarantee.
StatusOr<DualGreedyResult> DualPrimal(const std::vector<double>& data,
                                      int64_t max_pieces);

}  // namespace fasthist

#endif  // FASTHIST_BASELINE_DUAL_GREEDY_H_
