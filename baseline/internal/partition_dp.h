#ifndef FASTHIST_BASELINE_INTERNAL_PARTITION_DP_H_
#define FASTHIST_BASELINE_INTERNAL_PARTITION_DP_H_

#include <cstdint>
#include <vector>

namespace fasthist {
namespace internal {

// The classic V-optimal partition dynamic program [JKM+98], generic over
// the interval-cost oracle: cost(a, b) is the squared residual of the best
// single piece on [a, b) under whatever piece family the caller optimizes
// (flat values in baseline/exact_dp.cc, degree-d polynomials in
// baseline/exact_poly_dp.cc).  Fills `parent` (piece-count-major) iff
// non-null and returns the optimal squared error with at most k pieces.
template <typename CostFn>
double PartitionDp(const CostFn& cost, size_t n, size_t k,
                   std::vector<std::vector<int32_t>>* parent) {
  std::vector<double> prev(n + 1), cur(n + 1);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) prev[i] = cost(0, i);
  if (parent != nullptr) {
    parent->assign(k + 1, std::vector<int32_t>(n + 1, 0));
  }
  for (size_t j = 2; j <= k; ++j) {
    for (size_t i = 0; i <= n; ++i) cur[i] = prev[i];
    for (size_t i = j; i <= n; ++i) {
      double best = prev[i - 1];  // t = i-1: last piece is a singleton
      int32_t best_t = static_cast<int32_t>(i - 1);
      for (size_t t = j - 1; t + 1 < i; ++t) {
        const double candidate = prev[t] + cost(t, i);
        if (candidate < best) {
          best = candidate;
          best_t = static_cast<int32_t>(t);
        }
      }
      cur[i] = best;
      if (parent != nullptr) (*parent)[j][i] = best_t;
    }
    prev.swap(cur);
  }
  return prev[n];
}

// Walks the parents back from (kk, n) and returns the piece end positions
// in ascending order (the last entry is n; with j = 1 the remaining prefix
// is one piece starting at 0).  Adjacent duplicates are possible when the
// optimum uses fewer than kk pieces — callers skip empty intervals.
inline std::vector<size_t> PartitionBacktrack(
    const std::vector<std::vector<int32_t>>& parent, size_t kk, size_t n) {
  std::vector<size_t> boundaries;
  size_t i = n;
  for (size_t j = kk; j >= 2 && i > 0; --j) {
    boundaries.push_back(i);
    i = static_cast<size_t>(parent[j][i]);
  }
  boundaries.push_back(i);
  return std::vector<size_t>(boundaries.rbegin(), boundaries.rend());
}

}  // namespace internal
}  // namespace fasthist

#endif  // FASTHIST_BASELINE_INTERNAL_PARTITION_DP_H_
