#ifndef FASTHIST_BASELINE_AHIST_H_
#define FASTHIST_BASELINE_AHIST_H_

#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "util/status.h"

namespace fasthist {

struct AhistOptions {
  // Approximation slack: the output's squared error is at most
  // (1 + delta) times the exact V-optimal squared error.
  double delta = 0.5;
};

struct AhistResult {
  Histogram histogram;
  double err_squared = 0.0;
};

// AHIST-style (1+delta)-approximate V-optimal DP in the spirit of [GKS06]:
// the DP over "j pieces covering the prefix [0, t)" keeps, per row, only
// one candidate boundary per geometric error class (width 1 + delta/(2k)),
// so each transition scans O((k/delta) log range) candidates instead of all
// t.  Guarantee class matches the paper's Section 5.1 comparison: ratio
// within (1 + delta) of exactdp but orders of magnitude slower than the
// merging family, which is exactly the trade-off the bench reproduces.
StatusOr<AhistResult> ApproxVOptimalHistogram(
    const std::vector<double>& data, int64_t k,
    const AhistOptions& options = AhistOptions());

}  // namespace fasthist

#endif  // FASTHIST_BASELINE_AHIST_H_
