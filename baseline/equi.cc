#include "baseline/equi.h"

#include <algorithm>
#include <vector>

namespace fasthist {
namespace {

StatusOr<Histogram> FromBoundaries(const std::vector<double>& data,
                                   const std::vector<size_t>& boundaries) {
  std::vector<HistogramPiece> pieces;
  pieces.reserve(boundaries.size() - 1);
  for (size_t b = 0; b + 1 < boundaries.size(); ++b) {
    const size_t begin = boundaries[b];
    const size_t end = boundaries[b + 1];
    if (end == begin) continue;
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += data[i];
    pieces.push_back({{static_cast<int64_t>(begin), static_cast<int64_t>(end)},
                      sum / static_cast<double>(end - begin)});
  }
  return Histogram::Create(static_cast<int64_t>(data.size()),
                           std::move(pieces));
}

}  // namespace

StatusOr<Histogram> EquiWidthHistogram(const std::vector<double>& data,
                                       int64_t k) {
  if (data.empty()) return Status::Invalid("EquiWidthHistogram: empty data");
  if (k < 1) return Status::Invalid("EquiWidthHistogram: k must be >= 1");
  const size_t n = data.size();
  const size_t buckets = std::min(static_cast<size_t>(k), n);
  std::vector<size_t> boundaries(buckets + 1);
  for (size_t b = 0; b <= buckets; ++b) boundaries[b] = b * n / buckets;
  return FromBoundaries(data, boundaries);
}

StatusOr<Histogram> EquiDepthHistogram(const std::vector<double>& data,
                                       int64_t k) {
  if (data.empty()) return Status::Invalid("EquiDepthHistogram: empty data");
  if (k < 1) return Status::Invalid("EquiDepthHistogram: k must be >= 1");
  const size_t n = data.size();
  std::vector<double> prefix_mass(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    if (data[i] < 0.0) {
      return Status::Invalid("EquiDepthHistogram: data must be non-negative");
    }
    prefix_mass[i + 1] = prefix_mass[i] + data[i];
  }
  const double total = prefix_mass[n];
  if (total <= 0.0) {
    // All-zero data: any partition is exact; fall back to one bucket.
    return FromBoundaries(data, {0, n});
  }

  const size_t buckets = std::min(static_cast<size_t>(k), n);
  std::vector<size_t> boundaries(buckets + 1);
  boundaries[0] = 0;
  boundaries[buckets] = n;
  for (size_t b = 1; b < buckets; ++b) {
    const double target =
        total * static_cast<double>(b) / static_cast<double>(buckets);
    const auto it = std::lower_bound(prefix_mass.begin(), prefix_mass.end(),
                                     target);
    size_t pos = static_cast<size_t>(it - prefix_mass.begin());
    // Keep boundaries strictly increasing with room for later buckets.
    pos = std::max(pos, boundaries[b - 1] + 1);
    pos = std::min(pos, n - (buckets - b));
    boundaries[b] = pos;
  }
  return FromBoundaries(data, boundaries);
}

}  // namespace fasthist
