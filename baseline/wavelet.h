#ifndef FASTHIST_BASELINE_WAVELET_H_
#define FASTHIST_BASELINE_WAVELET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/status.h"

namespace fasthist {

struct WaveletSynopsis {
  // The B kept (position, value) pairs in the orthonormal Haar transform of
  // the zero-padded signal; a fair storage rival to a B-piece histogram's
  // (boundary, value) pairs.
  std::vector<std::pair<int64_t, double>> coefficients;
  std::vector<double> reconstruction;  // size n, transform inverted
  double err_squared = 0.0;            // vs the original data, on [0, n)
};

// Top-B Haar wavelet synopsis: orthonormal Haar transform (signal padded
// with zeros to a power of two), keep the B largest-magnitude coefficients,
// reconstruct.  Because the basis is orthonormal, keeping the largest
// coefficients is the l2-optimal B-term wavelet approximation.
StatusOr<WaveletSynopsis> TopBWaveletSynopsis(const std::vector<double>& data,
                                              int64_t b);

}  // namespace fasthist

#endif  // FASTHIST_BASELINE_WAVELET_H_
