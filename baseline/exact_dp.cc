#include "baseline/exact_dp.h"

#include <algorithm>
#include <cmath>

namespace fasthist {
namespace {

// Prefix statistics; Cost(a, b) is the squared residual of the best flat
// value on [a, b).
struct Prefix {
  std::vector<double> sum;
  std::vector<double> sumsq;

  explicit Prefix(const std::vector<double>& data)
      : sum(data.size() + 1, 0.0), sumsq(data.size() + 1, 0.0) {
    for (size_t i = 0; i < data.size(); ++i) {
      sum[i + 1] = sum[i] + data[i];
      sumsq[i + 1] = sumsq[i] + data[i] * data[i];
    }
  }

  double Cost(size_t a, size_t b) const {
    const double s = sum[b] - sum[a];
    const double ss = sumsq[b] - sumsq[a];
    return std::max(0.0, ss - s * s / static_cast<double>(b - a));
  }

  double MeanOf(size_t a, size_t b) const {
    return (sum[b] - sum[a]) / static_cast<double>(b - a);
  }
};

Status Validate(const std::vector<double>& data, int64_t k) {
  if (data.empty()) return Status::Invalid("VOptimalHistogram: empty data");
  if (k < 1) return Status::Invalid("VOptimalHistogram: k must be >= 1");
  return Status::Ok();
}

// Runs the DP; fills `parent` (piece-count-major) iff non-null and returns
// the optimal squared error with at most k pieces.
double RunDp(const Prefix& prefix, size_t n, size_t k,
             std::vector<std::vector<int32_t>>* parent) {
  std::vector<double> prev(n + 1), cur(n + 1);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) prev[i] = prefix.Cost(0, i);
  if (parent != nullptr) {
    parent->assign(k + 1, std::vector<int32_t>(n + 1, 0));
  }
  for (size_t j = 2; j <= k; ++j) {
    for (size_t i = 0; i <= n; ++i) cur[i] = prev[i];
    for (size_t i = j; i <= n; ++i) {
      double best = prev[i - 1];  // t = i-1: last piece is a singleton
      int32_t best_t = static_cast<int32_t>(i - 1);
      for (size_t t = j - 1; t + 1 < i; ++t) {
        const double candidate = prev[t] + prefix.Cost(t, i);
        if (candidate < best) {
          best = candidate;
          best_t = static_cast<int32_t>(t);
        }
      }
      cur[i] = best;
      if (parent != nullptr) (*parent)[j][i] = best_t;
    }
    prev.swap(cur);
  }
  return prev[n];
}

}  // namespace

StatusOr<VOptimalResult> VOptimalHistogram(const std::vector<double>& data,
                                           int64_t k) {
  if (Status s = Validate(data, k); !s.ok()) return s;
  const size_t n = data.size();
  const size_t kk = std::min(static_cast<size_t>(k), n);
  const Prefix prefix(data);

  std::vector<std::vector<int32_t>> parent;
  VOptimalResult result;
  result.err_squared = RunDp(prefix, n, kk, &parent);

  // Walk the parents back from (kk, n); with j = 1 the remaining prefix is
  // one piece starting at 0.
  std::vector<size_t> boundaries;  // piece end positions, reversed
  size_t i = n;
  for (size_t j = kk; j >= 2 && i > 0; --j) {
    boundaries.push_back(i);
    i = static_cast<size_t>(parent[j][i]);
  }
  boundaries.push_back(i);

  std::vector<HistogramPiece> pieces;
  size_t begin = 0;
  for (auto it = boundaries.rbegin(); it != boundaries.rend(); ++it) {
    const size_t end = *it;
    if (end == begin) continue;
    pieces.push_back({{static_cast<int64_t>(begin), static_cast<int64_t>(end)},
                      prefix.MeanOf(begin, end)});
    begin = end;
  }
  auto histogram = Histogram::Create(static_cast<int64_t>(n),
                                     std::move(pieces));
  if (!histogram.ok()) return histogram.status();
  result.histogram = std::move(histogram).value();
  return result;
}

StatusOr<double> OptK(const std::vector<double>& data, int64_t k) {
  if (Status s = Validate(data, k); !s.ok()) return s;
  const size_t n = data.size();
  const size_t kk = std::min(static_cast<size_t>(k), n);
  const Prefix prefix(data);
  return std::sqrt(RunDp(prefix, n, kk, nullptr));
}

}  // namespace fasthist
