#include "baseline/exact_dp.h"

#include <algorithm>
#include <cmath>

#include "baseline/internal/partition_dp.h"

namespace fasthist {
namespace {

// Prefix statistics; Cost(a, b) is the squared residual of the best flat
// value on [a, b).
struct Prefix {
  std::vector<double> sum;
  std::vector<double> sumsq;

  explicit Prefix(const std::vector<double>& data)
      : sum(data.size() + 1, 0.0), sumsq(data.size() + 1, 0.0) {
    for (size_t i = 0; i < data.size(); ++i) {
      sum[i + 1] = sum[i] + data[i];
      sumsq[i + 1] = sumsq[i] + data[i] * data[i];
    }
  }

  double Cost(size_t a, size_t b) const {
    const double s = sum[b] - sum[a];
    const double ss = sumsq[b] - sumsq[a];
    return std::max(0.0, ss - s * s / static_cast<double>(b - a));
  }

  double MeanOf(size_t a, size_t b) const {
    return (sum[b] - sum[a]) / static_cast<double>(b - a);
  }
};

Status Validate(const std::vector<double>& data, int64_t k) {
  if (data.empty()) return Status::Invalid("VOptimalHistogram: empty data");
  if (k < 1) return Status::Invalid("VOptimalHistogram: k must be >= 1");
  return Status::Ok();
}

}  // namespace

StatusOr<VOptimalResult> VOptimalHistogram(const std::vector<double>& data,
                                           int64_t k) {
  if (Status s = Validate(data, k); !s.ok()) return s;
  const size_t n = data.size();
  const size_t kk = std::min(static_cast<size_t>(k), n);
  const Prefix prefix(data);
  const auto cost = [&prefix](size_t a, size_t b) {
    return prefix.Cost(a, b);
  };

  std::vector<std::vector<int32_t>> parent;
  VOptimalResult result;
  result.err_squared = internal::PartitionDp(cost, n, kk, &parent);

  std::vector<HistogramPiece> pieces;
  size_t begin = 0;
  for (size_t end : internal::PartitionBacktrack(parent, kk, n)) {
    if (end == begin) continue;
    pieces.push_back({{static_cast<int64_t>(begin), static_cast<int64_t>(end)},
                      prefix.MeanOf(begin, end)});
    begin = end;
  }
  auto histogram = Histogram::Create(static_cast<int64_t>(n),
                                     std::move(pieces));
  if (!histogram.ok()) return histogram.status();
  result.histogram = std::move(histogram).value();
  return result;
}

StatusOr<double> OptK(const std::vector<double>& data, int64_t k) {
  if (Status s = Validate(data, k); !s.ok()) return s;
  const size_t n = data.size();
  const size_t kk = std::min(static_cast<size_t>(k), n);
  const Prefix prefix(data);
  const auto cost = [&prefix](size_t a, size_t b) {
    return prefix.Cost(a, b);
  };
  return std::sqrt(internal::PartitionDp(cost, n, kk, nullptr));
}

}  // namespace fasthist
