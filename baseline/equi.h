#ifndef FASTHIST_BASELINE_EQUI_H_
#define FASTHIST_BASELINE_EQUI_H_

#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "util/status.h"

namespace fasthist {

// Classic database-practice baselines.  Both return a k-piece histogram
// whose flat values are the data means of the buckets.

// k buckets of (near-)equal index width.
StatusOr<Histogram> EquiWidthHistogram(const std::vector<double>& data,
                                       int64_t k);

// k buckets of (near-)equal total mass; `data` must be non-negative since
// bucket boundaries are mass quantiles.
StatusOr<Histogram> EquiDepthHistogram(const std::vector<double>& data,
                                       int64_t k);

}  // namespace fasthist

#endif  // FASTHIST_BASELINE_EQUI_H_
