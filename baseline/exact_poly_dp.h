#ifndef FASTHIST_BASELINE_EXACT_POLY_DP_H_
#define FASTHIST_BASELINE_EXACT_POLY_DP_H_

#include <cstdint>
#include <vector>

#include "poly/poly_merging.h"
#include "util/status.h"

namespace fasthist {

struct ExactPolyDpResult {
  PiecewisePolynomial function;
  double err_squared = 0.0;
};

// The exact k-piece degree-d piecewise polynomial: V-optimal [JKM+98]
// generalized from flat pieces to degree-<=d least-squares fits.  Interval
// costs are the FitPolynomial residuals through the orthonormal Gram basis
// (one basis per interval length, cached), the partition is the same
// O(n^2 k) dynamic program as baseline/exact_dp.cc on top of an O(n^3 d)
// cost table.  Deliberately cubic: this is the accuracy gold standard the
// merging construction's sqrt(1 + delta) guarantee is tested against
// (tests/property_test.cc), not a serving path — keep n in the hundreds.
// With degree = 0 it agrees with VOptimalHistogram exactly.
StatusOr<ExactPolyDpResult> ExactPiecewisePolyDp(
    const std::vector<double>& data, int64_t k, int degree);

// poly-opt_k = the l2 error (not squared) of the best k-piece degree-d
// piecewise polynomial; the same DP without materializing the witness.
StatusOr<double> PolyOptK(const std::vector<double>& data, int64_t k,
                          int degree);

}  // namespace fasthist

#endif  // FASTHIST_BASELINE_EXACT_POLY_DP_H_
