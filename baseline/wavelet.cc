#include "baseline/wavelet.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fasthist {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

// In-place orthonormal Haar analysis: after the call, work[0] is the
// scaling coefficient and work[half .. 2*half) holds the detail
// coefficients of each scale, coarse scales at the front.
void HaarForward(std::vector<double>* work) {
  const size_t n = work->size();
  std::vector<double> tmp(n);
  for (size_t len = n; len >= 2; len /= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      tmp[i] = ((*work)[2 * i] + (*work)[2 * i + 1]) * kInvSqrt2;
      tmp[half + i] = ((*work)[2 * i] - (*work)[2 * i + 1]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<ptrdiff_t>(len),
              work->begin());
  }
}

void HaarInverse(std::vector<double>* work) {
  const size_t n = work->size();
  std::vector<double> tmp(n);
  for (size_t len = 2; len <= n; len *= 2) {
    const size_t half = len / 2;
    for (size_t i = 0; i < half; ++i) {
      tmp[2 * i] = ((*work)[i] + (*work)[half + i]) * kInvSqrt2;
      tmp[2 * i + 1] = ((*work)[i] - (*work)[half + i]) * kInvSqrt2;
    }
    std::copy(tmp.begin(), tmp.begin() + static_cast<ptrdiff_t>(len),
              work->begin());
  }
}

}  // namespace

StatusOr<WaveletSynopsis> TopBWaveletSynopsis(const std::vector<double>& data,
                                              int64_t b) {
  if (data.empty()) return Status::Invalid("TopBWaveletSynopsis: empty data");
  if (b < 1) return Status::Invalid("TopBWaveletSynopsis: b must be >= 1");

  size_t padded = 1;
  while (padded < data.size()) padded <<= 1;
  std::vector<double> transform(padded, 0.0);
  std::copy(data.begin(), data.end(), transform.begin());
  HaarForward(&transform);

  // Keep the B largest |coefficient|s (ties broken toward coarser scales).
  const size_t keep = std::min(static_cast<size_t>(b), padded);
  std::vector<size_t> order(padded);
  std::iota(order.begin(), order.end(), size_t{0});
  std::nth_element(order.begin(),
                   order.begin() + static_cast<ptrdiff_t>(keep - 1),
                   order.end(), [&](size_t a, size_t c) {
                     const double fa = std::abs(transform[a]);
                     const double fc = std::abs(transform[c]);
                     if (fa != fc) return fa > fc;
                     return a < c;
                   });

  WaveletSynopsis synopsis;
  std::vector<double> kept(padded, 0.0);
  for (size_t i = 0; i < keep; ++i) {
    const size_t pos = order[i];
    kept[pos] = transform[pos];
    synopsis.coefficients.emplace_back(static_cast<int64_t>(pos),
                                       transform[pos]);
  }
  std::sort(synopsis.coefficients.begin(), synopsis.coefficients.end());

  HaarInverse(&kept);
  synopsis.reconstruction.assign(kept.begin(),
                                 kept.begin() + static_cast<ptrdiff_t>(data.size()));
  synopsis.err_squared = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double d = data[i] - synopsis.reconstruction[i];
    synopsis.err_squared += d * d;
  }
  return synopsis;
}

}  // namespace fasthist
