#ifndef FASTHIST_BASELINE_EXACT_DP_H_
#define FASTHIST_BASELINE_EXACT_DP_H_

#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "util/status.h"

namespace fasthist {

struct VOptimalResult {
  Histogram histogram;
  double err_squared = 0.0;
};

// The exact V-optimal histogram [JKM+98]: the k-piece histogram minimizing
// the l2 error against `data`, via the classic O(n^2 k) dynamic program
// over prefix sums.  This is the accuracy gold standard every approximate
// construction in the library is measured against (and the reason they
// exist: at n=16384, k=50 this DP is the paper's 73-second cell).
StatusOr<VOptimalResult> VOptimalHistogram(const std::vector<double>& data,
                                           int64_t k);

// opt_k = the l2 error (not squared) of the best k-piece histogram; the
// same DP without materializing the witness.
StatusOr<double> OptK(const std::vector<double>& data, int64_t k);

}  // namespace fasthist

#endif  // FASTHIST_BASELINE_EXACT_DP_H_
