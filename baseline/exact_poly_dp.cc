#include "baseline/exact_poly_dp.h"

#include <algorithm>
#include <cmath>

#include "baseline/internal/partition_dp.h"
#include "poly/fit_poly.h"
#include "poly/gram.h"

namespace fasthist {
namespace {

Status Validate(const std::vector<double>& data, int64_t k, int degree) {
  if (data.empty()) return Status::Invalid("ExactPiecewisePolyDp: empty data");
  if (k < 1) return Status::Invalid("ExactPiecewisePolyDp: k must be >= 1");
  if (degree < 0) {
    return Status::Invalid("ExactPiecewisePolyDp: degree must be >= 0");
  }
  return Status::Ok();
}

// All-intervals cost table: cost[a * (n + 1) + b] is the squared residual
// of the best degree-<=d polynomial on [a, b).  Unlike the flat case there
// is no prefix-sum shortcut (the orthonormal basis depends on the interval
// length), so each entry is a fresh projection: c_j = <data, p_j>, residual
// = ||data||^2 - ||c||^2, clamped against cancellation like FitPoly.
class CostTable {
 public:
  CostTable(const std::vector<double>& data, int degree)
      : n_(data.size()), table_(n_ * (n_ + 1), 0.0) {
    GramBasisCache cache(degree);
    std::vector<double> basis_values;
    std::vector<double> prefix_sumsq(n_ + 1, 0.0);
    for (size_t i = 0; i < n_; ++i) {
      prefix_sumsq[i + 1] = prefix_sumsq[i] + data[i] * data[i];
    }
    std::vector<double> coefficients;
    for (size_t a = 0; a < n_; ++a) {
      for (size_t b = a + 1; b <= n_; ++b) {
        const GramBasis& basis = cache.For(static_cast<int64_t>(b - a));
        coefficients.assign(static_cast<size_t>(basis.degree()) + 1, 0.0);
        for (size_t x = a; x < b; ++x) {
          basis.EvaluateAt(static_cast<double>(x - a), &basis_values);
          for (size_t j = 0; j < coefficients.size(); ++j) {
            coefficients[j] += data[x] * basis_values[j];
          }
        }
        double coeff_norm_sq = 0.0;
        for (double c : coefficients) coeff_norm_sq += c * c;
        table_[a * (n_ + 1) + b] =
            std::max(0.0, prefix_sumsq[b] - prefix_sumsq[a] - coeff_norm_sq);
      }
    }
  }

  double operator()(size_t a, size_t b) const {
    return table_[a * (n_ + 1) + b];
  }

 private:
  size_t n_;
  std::vector<double> table_;
};

}  // namespace

StatusOr<ExactPolyDpResult> ExactPiecewisePolyDp(
    const std::vector<double>& data, int64_t k, int degree) {
  if (Status s = Validate(data, k, degree); !s.ok()) return s;
  const size_t n = data.size();
  const size_t kk = std::min(static_cast<size_t>(k), n);
  const CostTable cost(data, degree);

  std::vector<std::vector<int32_t>> parent;
  ExactPolyDpResult result;
  result.err_squared = internal::PartitionDp(cost, n, kk, &parent);

  const SparseFunction q = SparseFunction::FromDense(data);
  std::vector<PolyFit> pieces;
  size_t begin = 0;
  for (size_t end : internal::PartitionBacktrack(parent, kk, n)) {
    if (end == begin) continue;
    auto fit = FitPoly(
        q, {static_cast<int64_t>(begin), static_cast<int64_t>(end)}, degree);
    if (!fit.ok()) return fit.status();
    pieces.push_back(std::move(fit).value());
    begin = end;
  }
  auto function =
      PiecewisePolynomial::Create(static_cast<int64_t>(n), std::move(pieces));
  if (!function.ok()) return function.status();
  result.function = std::move(function).value();
  return result;
}

StatusOr<double> PolyOptK(const std::vector<double>& data, int64_t k,
                          int degree) {
  if (Status s = Validate(data, k, degree); !s.ok()) return s;
  const size_t n = data.size();
  const size_t kk = std::min(static_cast<size_t>(k), n);
  const CostTable cost(data, degree);
  return std::sqrt(internal::PartitionDp(cost, n, kk, nullptr));
}

}  // namespace fasthist
