#ifndef FASTHIST_DATA_GENERATORS_H_
#define FASTHIST_DATA_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace fasthist {

// Synthetic reproductions of the paper's Figure 1 data sets.  All
// generators are deterministic for a fixed seed.

// Noisy degree-`degree` polynomial over the domain: a random polynomial is
// affinely rescaled to the [low, high] value range, then i.i.d. Gaussian
// noise is added per point.  Matches the paper's "poly" panel (n=4000,
// degree 5).
struct PolyDatasetOptions {
  int64_t domain_size = 4000;
  uint64_t seed = 20150531;
  int degree = 5;
  double low = 10.0;
  double high = 90.0;
  double noise_stddev = 2.0;
};
std::vector<double> MakePolyDataset(
    const PolyDatasetOptions& options = PolyDatasetOptions());

// Noisy `num_pieces`-piece histogram over the domain: random flat levels on
// jittered-width pieces plus Gaussian noise.  Matches the paper's "hist"
// panel (n=1000, 10 pieces).
struct HistDatasetOptions {
  int64_t domain_size = 1000;
  uint64_t seed = 19980607;
  int num_pieces = 10;
  double min_level = 20.0;
  double max_level = 100.0;
  double noise_stddev = 1.0;
};
std::vector<double> MakeHistDataset(
    const HistDatasetOptions& options = HistDatasetOptions());

// Every `factor`-th element of `data` (used to shrink poly/dow into
// sampleable supports for the learning experiments, Section 5.2).
StatusOr<std::vector<double>> SubsampleUniform(const std::vector<double>& data,
                                               int64_t factor);

}  // namespace fasthist

#endif  // FASTHIST_DATA_GENERATORS_H_
