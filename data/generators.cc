#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace fasthist {

std::vector<double> MakePolyDataset(const PolyDatasetOptions& options) {
  const size_t n = static_cast<size_t>(std::max<int64_t>(options.domain_size, 1));
  Rng rng(options.seed);

  // Random polynomial with Uniform[-1, 1] coefficients over t in [-1, 1].
  std::vector<double> coefficients(static_cast<size_t>(options.degree) + 1);
  for (double& c : coefficients) c = 2.0 * rng.UniformDouble() - 1.0;

  std::vector<double> data(n);
  double raw_min = 0.0, raw_max = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double t =
        n > 1 ? 2.0 * static_cast<double>(i) / static_cast<double>(n - 1) - 1.0
              : 0.0;
    double value = 0.0;
    for (size_t j = coefficients.size(); j-- > 0;) {
      value = value * t + coefficients[j];
    }
    data[i] = value;
    if (i == 0 || value < raw_min) raw_min = value;
    if (i == 0 || value > raw_max) raw_max = value;
  }

  // Affine rescale (degree preserved) into [low, high], then add noise.
  const double span = raw_max > raw_min ? raw_max - raw_min : 1.0;
  const double scale = (options.high - options.low) / span;
  for (double& value : data) {
    value = options.low + (value - raw_min) * scale +
            options.noise_stddev * rng.Gaussian();
  }
  return data;
}

std::vector<double> MakeHistDataset(const HistDatasetOptions& options) {
  const size_t n = static_cast<size_t>(std::max<int64_t>(options.domain_size, 1));
  const size_t pieces =
      std::min(static_cast<size_t>(std::max(options.num_pieces, 1)), n);
  Rng rng(options.seed);

  // Jittered piece boundaries around the equal-width grid.
  std::vector<size_t> boundaries(pieces + 1);
  boundaries[0] = 0;
  boundaries[pieces] = n;
  const double width = static_cast<double>(n) / static_cast<double>(pieces);
  for (size_t p = 1; p < pieces; ++p) {
    const double jitter = (rng.UniformDouble() - 0.5) * 0.5 * width;
    const double pos = width * static_cast<double>(p) + jitter;
    boundaries[p] = static_cast<size_t>(std::max(
        static_cast<double>(boundaries[p - 1] + 1), std::min(pos, static_cast<double>(n - (pieces - p)))));
  }

  std::vector<double> data(n);
  for (size_t p = 0; p < pieces; ++p) {
    const double level =
        options.min_level +
        (options.max_level - options.min_level) * rng.UniformDouble();
    for (size_t i = boundaries[p]; i < boundaries[p + 1]; ++i) {
      data[i] = level + options.noise_stddev * rng.Gaussian();
    }
  }
  return data;
}

StatusOr<std::vector<double>> SubsampleUniform(const std::vector<double>& data,
                                               int64_t factor) {
  if (factor < 1) {
    return Status::Invalid("SubsampleUniform: factor must be >= 1");
  }
  if (data.empty()) {
    return Status::Invalid("SubsampleUniform: empty input");
  }
  std::vector<double> out;
  out.reserve(data.size() / static_cast<size_t>(factor) + 1);
  for (size_t i = 0; i < data.size(); i += static_cast<size_t>(factor)) {
    out.push_back(data[i]);
  }
  return out;
}

}  // namespace fasthist
