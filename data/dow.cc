#include "data/dow.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace fasthist {

std::vector<double> MakeDowDataset(const DowDatasetOptions& options) {
  const size_t n = static_cast<size_t>(std::max<int64_t>(options.num_days, 1));
  Rng rng(options.seed);

  std::vector<double> data(n);
  double value = options.start_value;
  double volatility = options.daily_volatility;
  for (size_t i = 0; i < n; ++i) {
    // Volatility itself mean-reverts with occasional spikes, giving the
    // bursty look of real index series.
    volatility = std::max(
        0.2 * options.daily_volatility,
        volatility + 0.05 * (options.daily_volatility - volatility) +
            0.002 * options.daily_volatility * rng.Gaussian());
    if (rng.UniformDouble() < 0.001) volatility *= 3.0;

    value *= std::exp(options.daily_drift -
                      0.5 * volatility * volatility +
                      volatility * rng.Gaussian());
    data[i] = value;
  }
  return data;
}

}  // namespace fasthist
