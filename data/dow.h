#ifndef FASTHIST_DATA_DOW_H_
#define FASTHIST_DATA_DOW_H_

#include <cstdint>
#include <vector>

namespace fasthist {

// Synthetic Dow-Jones-like daily-value series: a geometric random walk with
// mild drift and occasional volatility bursts, standing in for the paper's
// dow data set (n=16384).  Values are strictly positive, so the series can
// be normalized into a distribution or fed to equi-depth directly.
struct DowDatasetOptions {
  int64_t num_days = 16384;
  uint64_t seed = 18960526;  // the DJIA's first trading day
  double start_value = 1000.0;
  double daily_drift = 1e-4;
  double daily_volatility = 0.01;
};

std::vector<double> MakeDowDataset(
    const DowDatasetOptions& options = DowDatasetOptions());

}  // namespace fasthist

#endif  // FASTHIST_DATA_DOW_H_
