// Seeded randomized property harness.  Every case sweeps many seeds and
// knob combinations and asserts an exact or theorem-backed relationship
// between two independent implementations — the contracts the library's
// layers are built on:
//   * selection-based fast paths are bit-identical to the sort-based
//     reference paths (histograms and piecewise polynomials),
//   * merging error is within sqrt(1 + delta) of the exact DP optimum
//     (Theorem 3.3, here verified for polynomials at degrees 0-3),
//   * the degree-0 polynomial path and the histogram path agree,
//   * MergeHistograms respects weights and is associative up to the
//     re-merging tolerance (the precondition for a sharded merge tree).
// All randomness flows through util/random.h's Rng, so every failure
// reproduces from the printed seed constants below.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "baseline/exact_poly_dp.h"
#include "core/fast_merging.h"
#include "core/merging.h"
#include "core/streaming.h"
#include "dist/empirical.h"
#include "poly/poly_merging.h"
#include "tests/fasthist_test.h"
#include "tests/histogram_testutil.h"
#include "util/parallel.h"
#include "util/random.h"

namespace fasthist {
namespace {

// A random piecewise-quadratic signal with jumps and additive Gaussian
// noise: rough enough to exercise histogram breakpoints, smooth enough
// that higher-degree fits differ meaningfully from flat ones.
std::vector<double> RandomSignal(Rng& rng, int64_t n, int num_segments,
                                 double noise) {
  std::vector<int64_t> cuts = {0, n};
  for (int i = 1; i < num_segments; ++i) {
    cuts.push_back(1 + rng.UniformInt(n - 1));
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  std::vector<double> data(static_cast<size_t>(n), 0.0);
  for (size_t c = 0; c + 1 < cuts.size(); ++c) {
    const int64_t begin = cuts[c];
    const int64_t end = cuts[c + 1];
    const double c0 = 10.0 * rng.Gaussian();
    const double c1 = 5.0 * rng.Gaussian();
    const double c2 = 3.0 * rng.Gaussian();
    for (int64_t x = begin; x < end; ++x) {
      const double t = static_cast<double>(x - begin) /
                       static_cast<double>(end - begin);
      data[static_cast<size_t>(x)] =
          c0 + c1 * t + c2 * t * t + noise * rng.Gaussian();
    }
  }
  return data;
}

// A random probability distribution over [n] (for the mergeability laws).
std::vector<double> RandomDistribution(Rng& rng, int64_t n) {
  std::vector<double> pmf = RandomSignal(rng, n, 5, 0.3);
  double total = 0.0;
  for (double& v : pmf) {
    v = std::abs(v) + 1e-3;
    total += v;
  }
  for (double& v : pmf) v /= total;
  return pmf;
}

void CheckHistogramsIdentical(const MergingResult& slow,
                              const MergingResult& fast) {
  CHECK(slow.num_rounds == fast.num_rounds);
  CHECK_NEAR(slow.err_squared, fast.err_squared, 0.0);
  CHECK(slow.histogram.num_pieces() == fast.histogram.num_pieces());
  for (int64_t p = 0; p < slow.histogram.num_pieces(); ++p) {
    const HistogramPiece& a = slow.histogram.pieces()[static_cast<size_t>(p)];
    const HistogramPiece& b = fast.histogram.pieces()[static_cast<size_t>(p)];
    CHECK(a.interval.begin == b.interval.begin);
    CHECK(a.interval.end == b.interval.end);
    CHECK_NEAR(a.value, b.value, 0.0);
  }
}

TEST(HistogramFastVsSlowRandomized) {
  // ConstructHistogramFast's contract over random inputs: identical output
  // to ConstructHistogram on every seed and knob combination.  Every fifth
  // seed uses a sparse empirical input (few samples over a huge domain),
  // the regime the sample-linear path exists for.
  const MergingOptions sweeps[] = {
      {1000.0, 1.0}, {0.5, 1.0}, {3.0, 2.0}, {1000.0, 8.0}};
  for (uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(0x8157'0000 + seed);
    SparseFunction q;
    if (seed % 5 == 4) {
      const int64_t domain = 1'000'000;
      std::vector<int64_t> samples;
      for (int i = 0; i < 60; ++i) samples.push_back(rng.UniformInt(domain));
      q = EmpiricalDistribution(domain, samples).value();
    } else {
      const int64_t n = 64 + rng.UniformInt(400);
      q = SparseFunction::FromDense(RandomSignal(rng, n, 6, 0.5));
    }
    for (int64_t k : {3, 17}) {
      for (const MergingOptions& options : sweeps) {
        auto slow = ConstructHistogram(q, k, options);
        auto fast = ConstructHistogramFast(q, k, options);
        CHECK_OK(slow);
        CHECK_OK(fast);
        CheckHistogramsIdentical(*slow, *fast);
      }
    }
  }
}

TEST(PolyFastVsSlowRandomized) {
  // The polynomial twin of the histogram contract: both speeds run the
  // same shared engine rounds, so pieces, coefficients, err_squared and
  // num_rounds must be bit-identical at every degree.
  const MergingOptions sweeps[] = {{1000.0, 1.0}, {0.7, 1.0}, {2.0, 4.0}};
  for (int degree = 0; degree <= 3; ++degree) {
    for (uint64_t seed = 0; seed < 20; ++seed) {
      Rng rng(0x7011'0000 + 1000 * static_cast<uint64_t>(degree) + seed);
      const int64_t n = 64 + rng.UniformInt(200);
      const SparseFunction q =
          SparseFunction::FromDense(RandomSignal(rng, n, 5, 0.4));
      for (int64_t k : {3, 8}) {
        for (const MergingOptions& options : sweeps) {
          auto slow = ConstructPiecewisePolynomial(q, k, degree, options);
          auto fast = ConstructPiecewisePolynomialFast(q, k, degree, options);
          CHECK_OK(slow);
          CHECK_OK(fast);
          CHECK(slow->num_rounds == fast->num_rounds);
          CHECK_NEAR(slow->err_squared, fast->err_squared, 0.0);
          CHECK(slow->function.num_pieces() == fast->function.num_pieces());
          for (int64_t p = 0; p < slow->function.num_pieces(); ++p) {
            const PolyFit& a = slow->function.pieces()[static_cast<size_t>(p)];
            const PolyFit& b = fast->function.pieces()[static_cast<size_t>(p)];
            CHECK(a.interval.begin == b.interval.begin);
            CHECK(a.interval.end == b.interval.end);
            CHECK(a.coefficients.size() == b.coefficients.size());
            for (size_t j = 0; j < a.coefficients.size(); ++j) {
              CHECK_NEAR(a.coefficients[j], b.coefficients[j], 0.0);
            }
          }
        }
      }
    }
  }
}

TEST(PolyMergingWithinSqrtOnePlusDeltaOfExactDp) {
  // Theorem 3.3 at degrees 0-3: the merging construction's error is within
  // sqrt(1 + delta) of the exact k-piece degree-d optimum — checked
  // against the O(n^3) DP gold standard, so the domain stays small.
  for (int degree = 0; degree <= 3; ++degree) {
    for (uint64_t seed = 0; seed < 10; ++seed) {
      Rng rng(0xd901'0000 + 1000 * static_cast<uint64_t>(degree) + seed);
      const std::vector<double> data = RandomSignal(rng, 96, 4, 0.5);
      const SparseFunction q = SparseFunction::FromDense(data);
      for (int64_t k : {3, 5}) {
        auto opt = PolyOptK(data, k, degree);
        CHECK_OK(opt);
        for (double delta : {0.5, 3.0}) {
          auto merged = ConstructPiecewisePolynomial(
              q, k, degree, MergingOptions{delta, 1.0});
          CHECK_OK(merged);
          CHECK(std::sqrt(merged->err_squared) <=
                std::sqrt(1.0 + delta) * (*opt) + 1e-7);
        }
      }
    }
  }
}

TEST(PolyDegreeZeroMatchesHistogramMerging) {
  // Degree-0 polynomial merging is histogram merging: same initial
  // partition, same round schedule, and the degree-0 projection is the
  // interval mean.  The two paths compute piece errors through different
  // formulas (Gram coefficients vs sum/sumsq moments), so values and
  // errors agree to rounding, and with continuous random data the
  // surviving partitions coincide exactly.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(0xd060'0000 + seed);
    const int64_t n = 64 + rng.UniformInt(300);
    const SparseFunction q =
        SparseFunction::FromDense(RandomSignal(rng, n, 6, 0.5));
    for (int64_t k : {4, 9}) {
      for (const MergingOptions& options :
           {MergingOptions{1000.0, 1.0}, MergingOptions{0.7, 1.0}}) {
        auto hist = ConstructHistogram(q, k, options);
        auto poly = ConstructPiecewisePolynomial(q, k, 0, options);
        CHECK_OK(hist);
        CHECK_OK(poly);
        CHECK(hist->num_rounds == poly->num_rounds);
        CHECK_NEAR(hist->err_squared, poly->err_squared,
                   1e-9 * (1.0 + hist->err_squared));
        CHECK(hist->histogram.num_pieces() == poly->function.num_pieces());
        for (int64_t p = 0; p < hist->histogram.num_pieces(); ++p) {
          const HistogramPiece& h =
              hist->histogram.pieces()[static_cast<size_t>(p)];
          const PolyFit& f = poly->function.pieces()[static_cast<size_t>(p)];
          CHECK(h.interval.begin == f.interval.begin);
          CHECK(h.interval.end == f.interval.end);
          CHECK_NEAR(h.value, f.EvaluateAt(f.interval.begin),
                     1e-9 * (1.0 + std::abs(h.value)));
        }
      }
    }
  }
}

TEST(ThreadedHistogramMatchesSerialRandomized) {
  // MergingOptions::num_threads must be invisible in the output: the
  // engine's pair evaluation writes disjoint slots and selection ranks
  // under a strict total order, so serial, 2-thread and 8-thread runs are
  // bit-identical — for both selection strategies, and under threading the
  // sort and select paths still agree with each other.  Inputs are large
  // enough (support >> the engine's chunk grain) that the pool really
  // splits the candidate pass; every third seed uses a sparse empirical
  // input over a huge domain.
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(0x9a11'0000 + seed);
    SparseFunction q;
    if (seed % 3 == 2) {
      const int64_t domain = 50'000'000;
      std::vector<int64_t> samples;
      for (int i = 0; i < 20'000; ++i) samples.push_back(rng.UniformInt(domain));
      q = EmpiricalDistribution(domain, samples).value();
    } else {
      q = SparseFunction::FromDense(RandomSignal(rng, 30'000, 8, 0.5));
    }
    for (const MergingOptions& base :
         {MergingOptions{1000.0, 1.0, 1}, MergingOptions{0.5, 2.0, 1}}) {
      const auto slow_serial = ConstructHistogram(q, 13, base);
      const auto fast_serial = ConstructHistogramFast(q, 13, base);
      CHECK_OK(slow_serial);
      CHECK_OK(fast_serial);
      CheckHistogramsIdentical(*slow_serial, *fast_serial);
      for (int threads : {2, 8}) {
        MergingOptions threaded = base;
        threaded.num_threads = threads;
        const auto slow = ConstructHistogram(q, 13, threaded);
        const auto fast = ConstructHistogramFast(q, 13, threaded);
        CHECK_OK(slow);
        CHECK_OK(fast);
        CheckHistogramsIdentical(*slow_serial, *slow);
        CheckHistogramsIdentical(*slow_serial, *fast);
      }
    }
  }
}

TEST(ThreadedPolyMatchesSerialRandomized) {
  // The polynomial twin: threaded refits write disjoint coefficient-plane
  // slots, so pieces, coefficients, err_squared and num_rounds are
  // bit-identical to the serial run at every degree, again for both
  // selection strategies.
  for (int degree = 0; degree <= 3; ++degree) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      Rng rng(0x9a77'0000 + 1000 * static_cast<uint64_t>(degree) + seed);
      const SparseFunction q =
          SparseFunction::FromDense(RandomSignal(rng, 4096, 6, 0.4));
      const MergingOptions serial{1000.0, 1.0, 1};
      const auto reference = ConstructPiecewisePolynomial(q, 7, degree, serial);
      CHECK_OK(reference);
      for (int threads : {2, 8}) {
        const MergingOptions threaded{1000.0, 1.0, threads};
        const auto slow = ConstructPiecewisePolynomial(q, 7, degree, threaded);
        const auto fast =
            ConstructPiecewisePolynomialFast(q, 7, degree, threaded);
        CHECK_OK(slow);
        CHECK_OK(fast);
        for (const PiecewisePolyResult* result : {&*slow, &*fast}) {
          CHECK(reference->num_rounds == result->num_rounds);
          CHECK_NEAR(reference->err_squared, result->err_squared, 0.0);
          CHECK(reference->function.num_pieces() ==
                result->function.num_pieces());
          for (int64_t p = 0; p < reference->function.num_pieces(); ++p) {
            const PolyFit& a =
                reference->function.pieces()[static_cast<size_t>(p)];
            const PolyFit& b = result->function.pieces()[static_cast<size_t>(p)];
            CHECK(a.interval.begin == b.interval.begin);
            CHECK(a.interval.end == b.interval.end);
            CHECK(a.coefficients.size() == b.coefficients.size());
            for (size_t j = 0; j < a.coefficients.size(); ++j) {
              CHECK_NEAR(a.coefficients[j], b.coefficients[j], 0.0);
            }
          }
        }
      }
    }
  }
}

TEST(ThresholdSelectionTieBreakingMatchesSort) {
  // The value-based threshold select must resolve duplicated candidate
  // errors exactly like the sort path's strict (error desc, index asc)
  // order.  Constant inputs make every candidate error identical (all
  // zero) — the worst case, where the whole round is one tie class — and
  // two-level inputs make the error plane take a handful of values per
  // round so the threshold always sits inside a tie run.  Checked
  // bit-for-bit at 1/2/8 threads (the hardware override forces genuine
  // pool dispatch even on a 1-core container) for histograms and poly
  // degrees 0-3.  The retired index-indirect nth_element select was
  // proven identical to kSort by this same comparison, so matching kSort
  // also proves parity with it.
  SetHardwareParallelismForTesting(8);
  std::vector<std::vector<double>> inputs;
  inputs.push_back(std::vector<double>(30'000, 1.0));  // constant
  {
    std::vector<double> two_level(30'000);
    for (size_t i = 0; i < two_level.size(); ++i) {
      two_level[i] = (i / 3) % 2 == 0 ? 1.0 : 2.0;  // short alternating runs
    }
    inputs.push_back(std::move(two_level));
  }
  {
    Rng rng(0x71e5'0001);
    std::vector<double> blocks(30'000);
    for (size_t i = 0; i < blocks.size(); ++i) {
      blocks[i] = rng.UniformInt(2) == 0 ? -0.5 : 4.0;  // random two-level
    }
    inputs.push_back(std::move(blocks));
  }
  for (const std::vector<double>& data : inputs) {
    const SparseFunction q = SparseFunction::FromDense(data);
    for (int64_t k : {7, 32}) {
      MergingOptions serial;
      const auto reference = ConstructHistogram(q, k, serial);
      CHECK_OK(reference);
      for (int threads : {1, 2, 8}) {
        MergingOptions options;
        options.num_threads = threads;
        const auto slow = ConstructHistogram(q, k, options);
        const auto fast = ConstructHistogramFast(q, k, options);
        CHECK_OK(slow);
        CHECK_OK(fast);
        CheckHistogramsIdentical(*reference, *slow);
        CheckHistogramsIdentical(*reference, *fast);
      }
    }
    // The polynomial engine shares the selection code but ranks refit
    // residuals; constant and two-level data keep those tied too.
    const SparseFunction q_small = SparseFunction::FromDense(
        std::vector<double>(data.begin(), data.begin() + 2'000));
    for (int degree = 0; degree <= 3; ++degree) {
      MergingOptions serial;
      const auto reference =
          ConstructPiecewisePolynomial(q_small, 5, degree, serial);
      CHECK_OK(reference);
      for (int threads : {1, 2, 8}) {
        MergingOptions options;
        options.num_threads = threads;
        const auto slow =
            ConstructPiecewisePolynomial(q_small, 5, degree, options);
        const auto fast =
            ConstructPiecewisePolynomialFast(q_small, 5, degree, options);
        CHECK_OK(slow);
        CHECK_OK(fast);
        for (const PiecewisePolyResult* result : {&*slow, &*fast}) {
          CHECK(reference->num_rounds == result->num_rounds);
          CHECK_NEAR(reference->err_squared, result->err_squared, 0.0);
          CHECK(reference->function.num_pieces() ==
                result->function.num_pieces());
          for (int64_t p = 0; p < reference->function.num_pieces(); ++p) {
            const PolyFit& a =
                reference->function.pieces()[static_cast<size_t>(p)];
            const PolyFit& b =
                result->function.pieces()[static_cast<size_t>(p)];
            CHECK(a.interval.begin == b.interval.begin);
            CHECK(a.interval.end == b.interval.end);
            CHECK(a.coefficients.size() == b.coefficients.size());
            for (size_t j = 0; j < a.coefficients.size(); ++j) {
              CHECK_NEAR(a.coefficients[j], b.coefficients[j], 0.0);
            }
          }
        }
      }
    }
  }
  SetHardwareParallelismForTesting(0);
}

TEST(MergeHistogramsIsWeightRespecting) {
  const int64_t n = 256;
  const int64_t k = 8;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(0x3e16'0000 + seed);
    const std::vector<double> p1 = RandomDistribution(rng, n);
    const std::vector<double> p2 = RandomDistribution(rng, n);
    const Histogram h1 =
        ConstructHistogram(SparseFunction::FromDense(p1), k)->histogram;
    const Histogram h2 =
        ConstructHistogram(SparseFunction::FromDense(p2), k)->histogram;

    auto merged = MergeHistograms(h1, 3.0, h2, 1.0, k);
    CHECK_OK(merged);
    // Mass is the weighted mixture's mass (here 1: both inputs are
    // distributions), and the merged histogram tracks the 3:1 mixture.
    CHECK_NEAR(merged->TotalMass(), 1.0, 1e-9);
    std::vector<double> mixture(static_cast<size_t>(n));
    for (size_t i = 0; i < mixture.size(); ++i) {
      mixture[i] = 0.75 * p1[i] + 0.25 * p2[i];
    }
    const double err_sq =
        merged->L2DistanceSquaredTo(SparseFunction::FromDense(mixture));
    CHECK(std::sqrt(err_sq) < 0.05);

    // Only the weight ratio matters: (3, 1) and (0.75, 0.25) normalize to
    // the same mixture, so the outputs are identical.
    auto rescaled = MergeHistograms(h1, 0.75, h2, 0.25, k);
    CHECK_OK(rescaled);
    CHECK(merged->num_pieces() == rescaled->num_pieces());
    for (int64_t p = 0; p < merged->num_pieces(); ++p) {
      const HistogramPiece& a = merged->pieces()[static_cast<size_t>(p)];
      const HistogramPiece& b = rescaled->pieces()[static_cast<size_t>(p)];
      CHECK(a.interval.begin == b.interval.begin);
      CHECK(a.interval.end == b.interval.end);
      CHECK_NEAR(a.value, b.value, 0.0);
    }
  }
}

TEST(MergeHistogramsIsAssociativeUpToTolerance) {
  // (A + B) + C vs A + (B + C) with cumulative weights: both groupings
  // must track the true weighted mixture, and therefore each other, within
  // the re-merging tolerance.  This is the property a sharded merge tree
  // relies on: the reduction order must not matter.
  const int64_t n = 256;
  const int64_t k = 8;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(0xa550'0000 + seed);
    const std::vector<double> pa = RandomDistribution(rng, n);
    const std::vector<double> pb = RandomDistribution(rng, n);
    const std::vector<double> pc = RandomDistribution(rng, n);
    const Histogram ha =
        ConstructHistogram(SparseFunction::FromDense(pa), k)->histogram;
    const Histogram hb =
        ConstructHistogram(SparseFunction::FromDense(pb), k)->histogram;
    const Histogram hc =
        ConstructHistogram(SparseFunction::FromDense(pc), k)->histogram;

    // Weights 2 : 1 : 1.
    const Histogram left =
        MergeHistograms(MergeHistograms(ha, 2.0, hb, 1.0, k).value(), 3.0,
                        hc, 1.0, k)
            .value();
    const Histogram right =
        MergeHistograms(ha, 2.0,
                        MergeHistograms(hb, 1.0, hc, 1.0, k).value(), 2.0, k)
            .value();

    std::vector<double> mixture(static_cast<size_t>(n));
    for (size_t i = 0; i < mixture.size(); ++i) {
      mixture[i] = 0.5 * pa[i] + 0.25 * pb[i] + 0.25 * pc[i];
    }
    const SparseFunction qmix = SparseFunction::FromDense(mixture);
    const double err_left = std::sqrt(left.L2DistanceSquaredTo(qmix));
    const double err_right = std::sqrt(right.L2DistanceSquaredTo(qmix));
    CHECK(err_left < 0.05);
    CHECK(err_right < 0.05);

    double gap_sq = 0.0;
    for (int64_t x = 0; x < n; ++x) {
      const double d = left.ValueAt(x) - right.ValueAt(x);
      gap_sq += d * d;
    }
    CHECK(std::sqrt(gap_sq) < 0.1);
  }
}

TEST(StripedReconciliationWithinSqrtOnePlusDeltaBound) {
  // The striped ingestor's reconcile is one extra merge level: per-stripe
  // degree-d summaries h_i (with construction errors e_i against their own
  // streams q_i) are folded by one more construction over their weighted
  // mixture.  Triangle inequality + Theorem 3.3 turn that into a provable
  // bound on the reconciled error against the POOLED stream q = sum w_i q_i:
  //
  //   err(reconciled, q) <= err(reconciled, sum w_i h_i) + sum w_i e_i
  //                      <= sqrt(1+delta) * opt_k(sum w_i h_i) + sum w_i e_i
  //                      <= sqrt(1+delta) * (opt_k(q) + sum w_i e_i)
  //                         + sum w_i e_i
  //
  // — i.e. one extra sqrt(1+delta) factor and one extra weighted-error
  // term, exactly the "one merge level" the ingestor's error accounting
  // charges (StripedShardIngestor::kReconcileErrorLevels).  Verified at
  // degrees 0-3 against the exact DP optimum.
  const int64_t n = 96;
  for (int degree = 0; degree <= 3; ++degree) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      Rng rng(0x57a1'0000 + 1000 * static_cast<uint64_t>(degree) + seed);
      for (const int stripes : {2, 3}) {
        // Per-stripe streams with uneven weights (sample-count ratios).
        std::vector<std::vector<double>> streams;
        std::vector<double> weights;
        double total_weight = 0.0;
        for (int i = 0; i < stripes; ++i) {
          streams.push_back(RandomDistribution(rng, n));
          weights.push_back(1.0 + static_cast<double>(rng.UniformInt(4)));
          total_weight += weights.back();
        }
        for (double& w : weights) w /= total_weight;
        std::vector<double> pooled(static_cast<size_t>(n), 0.0);
        for (int i = 0; i < stripes; ++i) {
          for (size_t x = 0; x < pooled.size(); ++x) {
            pooled[x] += weights[static_cast<size_t>(i)] *
                         streams[static_cast<size_t>(i)][x];
          }
        }
        for (const int64_t k : {int64_t{3}, int64_t{5}}) {
          auto opt = PolyOptK(pooled, k, degree);
          CHECK_OK(opt);
          for (const double delta : {0.5, 3.0}) {
            const MergingOptions options{delta, 1.0};
            // Per-stripe summaries and their weighted mixture.
            std::vector<double> mixture(static_cast<size_t>(n), 0.0);
            double weighted_err = 0.0;
            for (int i = 0; i < stripes; ++i) {
              auto summary = ConstructPiecewisePolynomial(
                  SparseFunction::FromDense(streams[static_cast<size_t>(i)]),
                  k, degree, options);
              CHECK_OK(summary);
              weighted_err += weights[static_cast<size_t>(i)] *
                              std::sqrt(summary->err_squared);
              const std::vector<double> dense = summary->function.ToDense();
              for (size_t x = 0; x < mixture.size(); ++x) {
                mixture[x] += weights[static_cast<size_t>(i)] * dense[x];
              }
            }
            // The reconcile: one construction over the summary mixture.
            auto reconciled = ConstructPiecewisePolynomial(
                SparseFunction::FromDense(mixture), k, degree, options);
            CHECK_OK(reconciled);
            const std::vector<double> dense = reconciled->function.ToDense();
            double err_sq = 0.0;
            for (size_t x = 0; x < dense.size(); ++x) {
              const double d = dense[x] - pooled[x];
              err_sq += d * d;
            }
            CHECK(std::sqrt(err_sq) <=
                  std::sqrt(1.0 + delta) * (*opt + weighted_err) +
                      weighted_err + 1e-7);
          }
        }
      }
    }
  }
}

TEST(StreamingLadderDriftBoundOverThousandsOfFlushes) {
  // The dyadic condensation ladder's drift guarantee at stream scale: over
  // F = 4096 flushes, a mirror ladder tracks every lossy step with measured
  // errors and triangle-inequality accounting, and the commit-side drift
  // budget closes at O(log F) — not the O(F) a linear fold chain pays.
  //
  // The accounting: the builder's summary differs from the pooled empirical
  // by at most
  //     B  =  sum_leaves w_l * e_l  +  sum_merges w_m * c_m,
  // where e_l is the measured leaf condense error, c_m the measured carry
  // merge error against its input mixture, and the w are sample-count
  // fractions.  In the ladder every sample ascends at most one merge per
  // level, so sum_m w_m == ladder depth (exactly log2 F for F a power of
  // two) and the merge budget is depth * max_m c_m.  In the pre-ladder
  // linear chain sum_m w_m was ~F/2.
  const int64_t domain = 256;
  const int64_t k = 8;
  const size_t b = 32;
  const int64_t flushes = 4096;  // 2^12: the ladder ends as one level-12 slot
  const int64_t n = flushes * static_cast<int64_t>(b);
  const MergingOptions options{0.5, 1.0};

  auto builder = StreamingHistogramBuilder::Create(domain, k, b, options);
  CHECK_OK(builder);

  const auto dense = [&](const Histogram& h) {
    std::vector<double> d(static_cast<size_t>(domain));
    for (int64_t x = 0; x < domain; ++x) {
      d[static_cast<size_t>(x)] = h.ValueAt(x);
    }
    return d;
  };
  const auto l2 = [](const std::vector<double>& a,
                     const std::vector<double>& c) {
    double err_sq = 0.0;
    for (size_t x = 0; x < a.size(); ++x) {
      const double diff = a[x] - c[x];
      err_sq += diff * diff;
    }
    return std::sqrt(err_sq);
  };

  struct MirrorSlot {
    Histogram h;
    int64_t count = 0;
    double bound = 0.0;  // accumulated error bound vs this slot's samples
  };
  std::vector<MirrorSlot> ladder;
  std::vector<double> pooled(static_cast<size_t>(domain), 0.0);
  std::vector<int64_t> buffer;
  Rng rng(0x1add'e700);
  double leaf_budget = 0.0;     // sum_l w_l * e_l
  double merge_weight = 0.0;    // sum_m w_m
  double max_merge_err = 0.0;   // max_m c_m

  for (int64_t f = 0; f < flushes; ++f) {
    // One exact buffer per iteration, drawn from a skewed two-step
    // distribution so the summaries are non-trivial.
    buffer.clear();
    std::vector<double> pmf(static_cast<size_t>(domain), 0.0);
    for (size_t i = 0; i < b; ++i) {
      const int64_t sample = rng.UniformInt(2) == 0
                                 ? rng.UniformInt(domain / 4)
                                 : rng.UniformInt(domain);
      buffer.push_back(sample);
      pmf[static_cast<size_t>(sample)] += 1.0 / static_cast<double>(b);
      pooled[static_cast<size_t>(sample)] += 1.0 / static_cast<double>(n);
    }
    CHECK(builder->AddMany(buffer).ok());

    // Mirror the flush: condense, then carry upward like binary addition,
    // measuring each lossy step against its own input.
    auto leaf = StreamingHistogramBuilder::FoldBufferIntoSummary(
        nullptr, 0, buffer, domain, k, options);
    CHECK_OK(leaf);
    MirrorSlot carry{std::move(leaf).value(), static_cast<int64_t>(b), 0.0};
    carry.bound = l2(dense(carry.h), pmf);
    leaf_budget +=
        static_cast<double>(b) / static_cast<double>(n) * carry.bound;
    size_t level = 0;
    while (level < ladder.size() && ladder[level].count > 0) {
      MirrorSlot& slot = ladder[level];
      auto merged = MergeHistograms(
          slot.h, static_cast<double>(slot.count), carry.h,
          static_cast<double>(carry.count), k, options);
      CHECK_OK(merged);
      const int64_t total = slot.count + carry.count;
      const double w1 =
          static_cast<double>(slot.count) / static_cast<double>(total);
      const double w2 = 1.0 - w1;
      const std::vector<double> d1 = dense(slot.h);
      const std::vector<double> d2 = dense(carry.h);
      std::vector<double> mixture(static_cast<size_t>(domain));
      for (size_t x = 0; x < mixture.size(); ++x) {
        mixture[x] = w1 * d1[x] + w2 * d2[x];
      }
      const double c = l2(dense(*merged), mixture);
      max_merge_err = std::max(max_merge_err, c);
      merge_weight += static_cast<double>(total) / static_cast<double>(n);
      const double bound = c + w1 * slot.bound + w2 * carry.bound;
      carry = MirrorSlot{std::move(merged).value(), total, bound};
      slot = MirrorSlot{};
      ++level;
    }
    if (level == ladder.size()) {
      ladder.push_back(std::move(carry));
    } else {
      ladder[level] = std::move(carry);
    }

    // Level accounting stays logarithmic the whole way: after f flushes
    // (buffer empty at these boundaries) at most ceil(log2 f) + 2 levels.
    if (((f + 1) & 255) == 0) {
      int cap = 2;
      while ((int64_t{1} << (cap - 2)) < f + 1) ++cap;
      CHECK(builder->error_levels() <= cap);
    }
  }

  // F = 2^12 exactly: one live slot at level 12, empty buffer.
  CHECK(builder->buffered() == 0);
  CHECK(builder->ladder_slots() == 1);
  CHECK(builder->ladder_depth() == 13);
  CHECK(builder->error_levels() == 13);
  CHECK(builder->error_levels() <= 14);  // ceil(log2(n/b)) + 2
  CHECK(ladder.size() == 13);
  CHECK(ladder.back().count == n);

  // The mirror is the builder, bit for bit, and Snapshot on a copy returns
  // the same cut Peek reports without disturbing the original.
  auto peek = builder->Peek();
  CHECK_OK(peek);
  CHECK(testing::BitIdentical(*peek, ladder.back().h));
  auto copy = *builder;
  auto snapshot = copy.Snapshot();
  CHECK_OK(snapshot);
  CHECK(testing::BitIdentical(*snapshot, *peek));

  // The drift accounting closes: the true error against the pooled
  // empirical distribution of all 131072 samples is under the accumulated
  // bound, the commit-side merge weight is exactly the ladder depth's
  // log2 F merges-per-sample, and the total bound decomposes into the leaf
  // budget plus at most depth * worst-merge drift.
  const double true_err = l2(dense(*peek), pooled);
  const double bound = ladder.back().bound;
  CHECK(true_err <= bound + 1e-9);
  CHECK_NEAR(merge_weight, 12.0, 1e-6);
  CHECK(bound <= leaf_budget + 12.0 * max_merge_err + 1e-9);
  // Loose absolute sanity: the served summary really tracks the stream.
  CHECK(true_err < 0.05);
}

TEST(DyadicCarryMergesWithinSqrtOnePlusDeltaDegrees0to3) {
  // Every carry merge in the condensation ladder is one Theorem 3.3
  // construction over the weighted mixture of its two inputs, so each tree
  // node obeys the same bound StripedReconciliation verifies for one level:
  //
  //   err(node, pooled) <= sqrt(1+delta) * (opt_k(pooled) + W) + W,
  //   W = sum_children w_i * err(child, pooled_child)
  //
  // — applied recursively up a 16-leaf dyadic tree at degrees 0-3, with
  // opt_k from the exact DP at every internal node.  This is the per-merge
  // form of the ladder's Lemma-4.2 accounting: each level multiplies by one
  // sqrt(1+delta) and adds one weighted child-error term, nothing more.
  const int64_t n = 64;
  const int kLeaves = 16;
  const int kLevels = 4;  // log2(kLeaves)
  const int64_t k = 3;
  for (int degree = 0; degree <= 3; ++degree) {
    Rng rng(0xdca2'0000 + 1000 * static_cast<uint64_t>(degree));
    // Equal-weight leaf streams and the pooled stream at every tree node.
    std::vector<std::vector<std::vector<double>>> pooled(kLevels + 1);
    for (int i = 0; i < kLeaves; ++i) {
      pooled[0].push_back(RandomDistribution(rng, n));
    }
    for (int level = 1; level <= kLevels; ++level) {
      const auto& below = pooled[level - 1];
      for (size_t i = 0; i + 1 < below.size(); i += 2) {
        std::vector<double> mix(static_cast<size_t>(n));
        for (size_t x = 0; x < mix.size(); ++x) {
          mix[x] = 0.5 * (below[i][x] + below[i + 1][x]);
        }
        pooled[level].push_back(std::move(mix));
      }
    }
    // The exact k-piece optimum at every node (independent of delta).
    std::vector<std::vector<double>> opt(kLevels + 1);
    for (int level = 0; level <= kLevels; ++level) {
      for (const auto& stream : pooled[level]) {
        auto node_opt = PolyOptK(stream, k, degree);
        CHECK_OK(node_opt);
        opt[level].push_back(*node_opt);
      }
    }
    for (const double delta : {0.5, 3.0}) {
      const MergingOptions options{delta, 1.0};
      const double s = std::sqrt(1.0 + delta);
      std::vector<std::vector<double>> cur_dense;
      std::vector<double> cur_err;
      for (int i = 0; i < kLeaves; ++i) {
        auto fit = ConstructPiecewisePolynomial(
            SparseFunction::FromDense(pooled[0][static_cast<size_t>(i)]), k,
            degree, options);
        CHECK_OK(fit);
        const double err = std::sqrt(fit->err_squared);
        CHECK(err <= s * opt[0][static_cast<size_t>(i)] + 1e-7);
        cur_dense.push_back(fit->function.ToDense());
        cur_err.push_back(err);
      }
      for (int level = 1; level <= kLevels; ++level) {
        std::vector<std::vector<double>> next_dense;
        std::vector<double> next_err;
        for (size_t i = 0; i + 1 < cur_dense.size(); i += 2) {
          std::vector<double> mixture(static_cast<size_t>(n));
          for (size_t x = 0; x < mixture.size(); ++x) {
            mixture[x] = 0.5 * (cur_dense[i][x] + cur_dense[i + 1][x]);
          }
          auto merged = ConstructPiecewisePolynomial(
              SparseFunction::FromDense(mixture), k, degree, options);
          CHECK_OK(merged);
          const std::vector<double> out = merged->function.ToDense();
          double err_sq = 0.0;
          const auto& node_pool = pooled[level][i / 2];
          for (size_t x = 0; x < out.size(); ++x) {
            const double diff = out[x] - node_pool[x];
            err_sq += diff * diff;
          }
          const double err = std::sqrt(err_sq);
          const double w = 0.5 * cur_err[i] + 0.5 * cur_err[i + 1];
          CHECK(err <= s * (opt[level][i / 2] + w) + w + 1e-7);
          next_dense.push_back(out);
          next_err.push_back(err);
        }
        cur_dense = std::move(next_dense);
        cur_err = std::move(next_err);
      }
    }
  }
}

}  // namespace
}  // namespace fasthist
