#include <cmath>
#include <vector>

#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "dist/histogram.h"
#include "dist/l2.h"
#include "dist/sparse_function.h"
#include "tests/fasthist_test.h"
#include "util/random.h"

namespace fasthist {
namespace {

TEST(SparseFunctionRoundTrips) {
  const std::vector<double> dense{0.0, 1.5, 0.0, 0.0, -2.0, 3.0};
  const SparseFunction q = SparseFunction::FromDense(dense);
  CHECK(q.domain_size() == 6);
  CHECK(q.support_size() == 3);
  CHECK(q.ToDense() == dense);
  CHECK_NEAR(q.ValueAt(1), 1.5, 0.0);
  CHECK_NEAR(q.ValueAt(2), 0.0, 0.0);
  CHECK_NEAR(q.TotalMass(), 2.5, 1e-12);
  CHECK_NEAR(q.SumSquares(), 1.5 * 1.5 + 4.0 + 9.0, 1e-12);
  CHECK(!SparseFunction::FromPairs(3, {{0, 1.0}, {0, 2.0}}).ok());
  CHECK(!SparseFunction::FromPairs(3, {{5, 1.0}}).ok());
}

TEST(NormalizeToDistributionClampsAndSums) {
  auto p = NormalizeToDistribution({2.0, -5.0, 6.0});
  CHECK_OK(p);
  CHECK_NEAR(p->pmf()[0], 0.25, 1e-12);
  CHECK_NEAR(p->pmf()[1], 0.0, 0.0);
  CHECK_NEAR(p->pmf()[2], 0.75, 1e-12);
  CHECK(!NormalizeToDistribution({-1.0, -2.0}).ok());
  CHECK(!Distribution::FromWeights({1.0, -0.5}).ok());
}

TEST(EmpiricalDistributionCountsSamples) {
  auto empirical = EmpiricalDistribution(5, {0, 2, 2, 2, 4, 4, 0, 2});
  CHECK_OK(empirical);
  CHECK_NEAR(empirical->ValueAt(0), 0.25, 1e-12);
  CHECK_NEAR(empirical->ValueAt(1), 0.0, 0.0);
  CHECK_NEAR(empirical->ValueAt(2), 0.5, 1e-12);
  CHECK_NEAR(empirical->ValueAt(4), 0.25, 1e-12);
  CHECK_NEAR(empirical->TotalMass(), 1.0, 1e-12);
  CHECK(!EmpiricalDistribution(3, {0, 3}).ok());
  CHECK(!EmpiricalDistribution(3, {}).ok());
}

TEST(AliasSamplerMatchesPmfChiSquared) {
  const std::vector<double> weights{5.0, 1.0, 0.5, 2.0, 0.0, 1.5, 4.0, 6.0,
                                    0.25, 0.75};
  auto p = Distribution::FromWeights(weights);
  CHECK_OK(p);
  auto sampler = AliasSampler::Create(*p);
  CHECK_OK(sampler);

  Rng rng(2718281828);
  const size_t m = 200000;
  std::vector<int64_t> counts(weights.size(), 0);
  for (size_t i = 0; i < m; ++i) ++counts[static_cast<size_t>(sampler->Sample(&rng))];

  // Pearson chi-squared against the pmf; 8 support cells with nonzero
  // expectation -> dof ~ 8; 30 is far beyond the 99.9th percentile, so this
  // only fails if the sampler is actually wrong.
  double chi_squared = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = p->pmf()[i] * static_cast<double>(m);
    if (expected == 0.0) {
      CHECK(counts[i] == 0);
      continue;
    }
    const double d = static_cast<double>(counts[i]) - expected;
    chi_squared += d * d / expected;
  }
  CHECK(chi_squared < 30.0);

  // SampleMany draws from the same stream.
  auto many = sampler->SampleMany(1000, &rng);
  CHECK(many.size() == 1000);
  for (int64_t s : many) CHECK(s >= 0 && s < sampler->domain_size());
}

TEST(L2AndL1DistancesMatchHandComputation) {
  const std::vector<double> a{1.0, 2.0, 0.0, 4.0};
  const std::vector<double> b{1.0, 0.0, 1.0, 2.0};
  CHECK_NEAR(L2DistanceSquared(a, b), 4.0 + 1.0 + 4.0, 1e-12);
  CHECK_NEAR(L1Distance(a, b), 2.0 + 1.0 + 2.0, 1e-12);

  const SparseFunction qa = SparseFunction::FromDense(a);
  CHECK_NEAR(L2DistanceSquared(qa, b), 9.0, 1e-12);
  // Length mismatch treats the missing tail as zero.
  CHECK_NEAR(L2DistanceSquared(qa, {1.0, 2.0}), 16.0, 1e-12);

  auto h = Histogram::Create(4, {{{0, 2}, 1.5}, {{2, 4}, 2.0}});
  CHECK_OK(h);
  CHECK_NEAR(L2DistanceSquared(*h, b),
             0.25 + 2.25 + 1.0 + 0.0, 1e-12);
  CHECK_NEAR(L1Distance(*h, b), 0.5 + 1.5 + 1.0 + 0.0, 1e-12);
  CHECK_NEAR(h->L2DistanceSquaredTo(qa), 0.25 + 0.25 + 4.0 + 4.0, 1e-12);
  CHECK_NEAR(h->TotalMass(), 7.0, 1e-12);
}

TEST(RequiredSampleSizeSchedule) {
  auto base = RequiredSampleSize(0.1, 0.1);
  CHECK_OK(base);
  CHECK(*base >= 100);  // at least the 1/eps^2 term
  auto tighter_eps = RequiredSampleSize(0.05, 0.1);
  auto tighter_delta = RequiredSampleSize(0.1, 0.01);
  CHECK(*tighter_eps > *base);
  CHECK(*tighter_delta > *base);
  // Domain-independence is the whole point: no n anywhere in the API.
  CHECK(!RequiredSampleSize(0.0, 0.1).ok());
  CHECK(!RequiredSampleSize(0.1, 1.5).ok());
}

}  // namespace
}  // namespace fasthist
