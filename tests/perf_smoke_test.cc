// Perf-structure smoke tests: cheap, deterministic assertions on the merge
// engine's *shape*, so the two properties the single-pass refactor bought —
// no per-round (or per-support) allocations on a warm engine, and exactly
// one sweep over the partition planes per round — are locked in by ctest in
// every build mode instead of only by reading the bench output.

#include <atomic>
#include <cstdlib>
#include <new>
#include <type_traits>
#include <vector>

#include "core/fast_merging.h"
#include "core/streaming.h"
#include "core/internal/merge_engine.h"
#include "data/generators.h"
#include "poly/poly_merging.h"
#include "tests/fasthist_test.h"
#include "util/parallel.h"

// Global allocation counter, the same crude-but-exact instrument
// bench_micro's --merge-grid check uses: every operator new in the binary
// bumps it, so a warm construction's count is the number of vector (and
// closure) allocations the engine performs — no sampling, no estimates.
// Atomic because the forced-parallel case below runs genuine pool workers,
// any of which may allocate.
namespace {
std::atomic<long long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fasthist {
namespace {

SparseFunction Signal(int64_t n) {
  PolyDatasetOptions options;
  options.domain_size = n;
  return SparseFunction::FromDense(MakePolyDataset(options));
}

// A warm serial construction allocates a fixed, input-size-independent
// number of vectors: the store's planes and scratch resize within capacity
// reserved up front, and the fused rounds reuse every buffer — so two
// inputs whose constructions run different round counts must land on the
// *same* allocation count, and that count must stay at or below the 17 the
// SoA engine shipped with.
TEST(WarmConstructionAllocationsAreRoundCountIndependent) {
  const int64_t k = 64;
  long long counts[2] = {0, 0};
  long long rounds[2] = {0, 0};
  const int64_t sizes[2] = {1 << 15, 1 << 18};
  for (int i = 0; i < 2; ++i) {
    const SparseFunction q = Signal(sizes[i]);
    MergingOptions serial;
    auto warm = ConstructHistogramFast(q, k, serial);  // buffers sized here
    CHECK_OK(warm);
    rounds[i] = warm->num_rounds;
    const long long before = g_allocations.load(std::memory_order_relaxed);
    auto probe = ConstructHistogramFast(q, k, serial);
    counts[i] = g_allocations.load(std::memory_order_relaxed) - before;
    CHECK_OK(probe);
  }
  CHECK(rounds[0] != rounds[1]);  // the sizes really differ in round count
  CHECK(counts[0] == counts[1]);
  CHECK(counts[0] <= 17);
}

// One fused round = one sweep over the planes.  The engine's pass counters
// (a test-only hook in core/internal/merge_engine.h) must show exactly one
// stand-alone evaluation (the cold start), one bare commit (the final
// round), and a fused commit+evaluate for every round in between:
// total plane sweeps == rounds + 1, where the pre-fusion engine spent
// 2 * rounds.  The pass structure is thread-invariant, so the forced-
// parallel run must report the identical shape.
TEST(FusedRoundMakesOneSweepOverThePlanes) {
  const SparseFunction q = Signal(1 << 15);
  const auto check_passes = [](long long expected_rounds) {
    const internal::EngineCounters& c = internal::EngineCountersForTesting();
    CHECK(c.rounds == expected_rounds);
    CHECK(c.evaluate_passes == 1);
    CHECK(c.commit_passes == 1);
    CHECK(c.fused_passes == expected_rounds - 1);
  };

  internal::ResetEngineCountersForTesting();
  auto hist = ConstructHistogramFast(q, 64, MergingOptions());
  CHECK_OK(hist);
  CHECK(hist->num_rounds > 2);
  check_passes(hist->num_rounds);

  internal::ResetEngineCountersForTesting();
  auto poly = ConstructPiecewisePolynomial(Signal(1 << 12), 8, 2,
                                           MergingOptions());
  CHECK_OK(poly);
  CHECK(poly->num_rounds > 2);
  check_passes(poly->num_rounds);

  SetHardwareParallelismForTesting(4);
  MergingOptions threaded;
  threaded.num_threads = 4;
  internal::ResetEngineCountersForTesting();
  auto threaded_hist = ConstructHistogramFast(q, 64, threaded);
  CHECK_OK(threaded_hist);
  CHECK(threaded_hist->num_rounds == hist->num_rounds);
  check_passes(threaded_hist->num_rounds);
  SetHardwareParallelismForTesting(0);
}

// Reset() is the recycling contract the keyed store's slab design leans on:
// a warm builder re-fed after Reset() must not pay the construction
// allocations again (buffer reserve, ladder growth), and two warm runs must
// land on the identical allocation count — if a Reset leaked state into
// the next run, the counts would drift.
TEST(StreamingBuilderResetReusesWithoutReallocation) {
  static_assert(
      std::is_move_assignable<StreamingHistogramBuilder>::value &&
          std::is_move_constructible<StreamingHistogramBuilder>::value,
      "pools recycle builders by move");

  const int64_t domain = 4096;
  const int64_t k = 16;
  const size_t buffer = 512;
  std::vector<int64_t> samples(20 * buffer);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<int64_t>((i * 2654435761u) % domain);
  }

  auto builder = StreamingHistogramBuilder::Create(domain, k, buffer);
  CHECK_OK(builder);
  const auto run = [&]() {
    const long long before = g_allocations.load(std::memory_order_relaxed);
    CHECK(builder->AddMany(samples).ok());
    return g_allocations.load(std::memory_order_relaxed) - before;
  };

  const long long cold = run();  // pays ladder growth + engine warm-up
  builder->Reset();
  CHECK(builder->num_samples() == 0);
  CHECK(builder->generation() == 0);
  const long long warm1 = run();
  builder->Reset();
  const long long warm2 = run();
  CHECK(warm1 == warm2);  // warm runs are allocation-deterministic
  CHECK(warm1 < cold);    // the reused buffers actually got reused
}

}  // namespace
}  // namespace fasthist
