// The net/ layer's contracts: frame codecs total over hostile bytes, the
// parser reassembling arbitrary chunkings, the event loop's timers and
// cross-thread Post, the latency recorder against a sorted-vector
// reference, and the ingest server end to end over real loopback sockets —
// including the two-tier overload policy's bit-identical-replay guarantee,
// live-socket frame fuzzing, and graceful-shutdown drain.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/ingest_server.h"
#include "net/latency_recorder.h"
#include "service/wire_format.h"
#include "store/summary_store.h"
#include "tests/fasthist_test.h"
#include "util/clock.h"
#include "util/random.h"

namespace fasthist {
namespace {

// --- Shared helpers ---------------------------------------------------------

std::unique_ptr<IngestServer> StartServer(const IngestServerOptions& options) {
  auto server = IngestServer::Create(options);
  CHECK_OK(server);
  std::unique_ptr<IngestServer> owned = std::move(server).value();
  CHECK(owned->Start().ok());
  return owned;
}

IngestClient ConnectTo(const IngestServer& server) {
  auto client = IngestClient::Connect("127.0.0.1", server.port());
  CHECK_OK(client);
  return std::move(client).value();
}

std::vector<KeyedSample> MakeBatch(Rng* rng, uint64_t key, size_t n,
                                   int64_t domain) {
  std::vector<KeyedSample> batch(n);
  for (KeyedSample& sample : batch) {
    sample.key = key;
    sample.value = rng->UniformInt(domain);
  }
  return batch;
}

// Byte-level snapshot equality through the canonical wire encoding — the
// same "bit-identical" definition the store and service suites use, pushed
// through one more (lossless) codec.
bool SnapshotsBitIdentical(const ShardSnapshot& a, const ShardSnapshot& b) {
  return EncodeShardSnapshot(a) == EncodeShardSnapshot(b);
}

// --- Frame codec + parser ---------------------------------------------------

TEST(NetFrameRoundTripsAndParserReassembles) {
  // One frame of every payload type, concatenated into a single stream.
  std::vector<KeyedSample> samples = {{42, 7}, {42, 300}, {9001, 12}};
  IngestAck ack;
  ack.accepted = 2;
  ack.shed = 1;
  ack.keep_shift = 1;
  ack.rejected = 4;
  ack.partitions.push_back(PartitionDisposition{0, 0, 2, 0, 0});
  ack.partitions.push_back(PartitionDisposition{3, 1, 0, 1, 4});
  RejectedInfo rejected;
  rejected.queue_depth = 4096;
  rejected.hard_watermark = 1024;
  QuantileQuery query;
  query.key = 42;
  query.q = 0.99;
  QuantileReply reply;
  reply.value = 123;
  reply.error_budget = 0.03125;
  reply.num_samples = 5000;
  ServerStats stats;
  stats.frames_received = 17;
  stats.samples_shed = 3;
  stats.ingest_p99_us = 250.5;
  stats.ingest_count = 12;
  stats.num_loops = 4;
  stats.partitions.push_back(PartitionStats{2, 96, 4096, 100, 3, 7, 5, 1});
  ErrorReply error;
  error.code = ErrorCode::kUnknownKey;
  error.message = "no such key";

  std::vector<uint8_t> stream;
  auto append = [&stream](std::vector<uint8_t> frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  append(EncodeFrame(FrameType::kIngest, EncodeIngestPayload(samples)));
  append(EncodeFrame(FrameType::kIngestAck, EncodeIngestAck(ack)));
  append(EncodeFrame(FrameType::kRejected, EncodeRejectedInfo(rejected)));
  append(EncodeFrame(FrameType::kSnapshotPull, EncodeKeyPayload(42)));
  append(EncodeFrame(FrameType::kQuantileQuery, EncodeQuantileQuery(query)));
  append(EncodeFrame(FrameType::kQuantileReply, EncodeQuantileReply(reply)));
  append(EncodeFrame(FrameType::kStatsReply, EncodeServerStats(stats)));
  append(EncodeFrame(FrameType::kError, EncodeErrorReply(error)));

  // Feed the stream in awkward 7-byte chunks: the parser must reassemble
  // frames across arbitrary TCP segmentation.
  FrameParser parser;
  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t chunk = std::min<size_t>(7, stream.size() - pos);
    parser.Consume(Span<const uint8_t>(stream.data() + pos, chunk));
    pos += chunk;
    Frame frame;
    while (parser.Next(&frame) == FrameParser::Result::kFrame) {
      frames.push_back(frame);
    }
  }
  CHECK(frames.size() == 8);
  CHECK(parser.buffered() == 0);

  CHECK(frames[0].type == FrameType::kIngest);
  auto decoded_samples = DecodeIngestPayload(frames[0].payload);
  CHECK_OK(decoded_samples);
  CHECK(decoded_samples->size() == 3);
  CHECK((*decoded_samples)[1].key == 42 && (*decoded_samples)[1].value == 300);

  auto decoded_ack = DecodeIngestAck(frames[1].payload);
  CHECK_OK(decoded_ack);
  CHECK(decoded_ack->accepted == 2 && decoded_ack->shed == 1 &&
        decoded_ack->keep_shift == 1);
  CHECK(decoded_ack->rejected == 4);
  CHECK(decoded_ack->partitions.size() == 2);
  CHECK(decoded_ack->partitions[0].partition == 0 &&
        decoded_ack->partitions[0].accepted == 2);
  CHECK(decoded_ack->partitions[1].partition == 3 &&
        decoded_ack->partitions[1].keep_shift == 1 &&
        decoded_ack->partitions[1].shed == 1 &&
        decoded_ack->partitions[1].rejected == 4);

  auto decoded_rejected = DecodeRejectedInfo(frames[2].payload);
  CHECK_OK(decoded_rejected);
  CHECK(decoded_rejected->queue_depth == 4096 &&
        decoded_rejected->hard_watermark == 1024);

  auto decoded_key = DecodeKeyPayload(frames[3].payload);
  CHECK_OK(decoded_key);
  CHECK(*decoded_key == 42);

  auto decoded_query = DecodeQuantileQuery(frames[4].payload);
  CHECK_OK(decoded_query);
  CHECK(decoded_query->key == 42);
  CHECK_NEAR(decoded_query->q, 0.99, 0.0);

  auto decoded_reply = DecodeQuantileReply(frames[5].payload);
  CHECK_OK(decoded_reply);
  CHECK(decoded_reply->value == 123 && decoded_reply->num_samples == 5000);
  CHECK_NEAR(decoded_reply->error_budget, 0.03125, 0.0);

  auto decoded_stats = DecodeServerStats(frames[6].payload);
  CHECK_OK(decoded_stats);
  CHECK(decoded_stats->frames_received == 17 &&
        decoded_stats->samples_shed == 3 && decoded_stats->ingest_count == 12);
  CHECK_NEAR(decoded_stats->ingest_p99_us, 250.5, 0.0);
  CHECK(decoded_stats->num_loops == 4);
  CHECK(decoded_stats->partitions.size() == 1);
  CHECK(decoded_stats->partitions[0].partition == 2 &&
        decoded_stats->partitions[0].queue_depth == 96 &&
        decoded_stats->partitions[0].max_queue_depth == 4096 &&
        decoded_stats->partitions[0].samples_accepted == 100 &&
        decoded_stats->partitions[0].samples_shed == 3 &&
        decoded_stats->partitions[0].samples_rejected == 7 &&
        decoded_stats->partitions[0].flushes_size == 5 &&
        decoded_stats->partitions[0].flushes_deadline == 1);

  auto decoded_error = DecodeErrorReply(frames[7].payload);
  CHECK_OK(decoded_error);
  CHECK(decoded_error->code == ErrorCode::kUnknownKey);
  CHECK(decoded_error->message == "no such key");
}

TEST(NetFrameDecodeRejectsCorruptInput) {
  const std::vector<KeyedSample> samples = {{1, 2}, {3, 4}};
  const std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kIngest, EncodeIngestPayload(samples));

  // Every strict prefix of a valid frame is "need more", never a frame and
  // never UB — truncation mid-header and mid-payload both included.
  for (size_t len = 0; len < frame.size(); ++len) {
    FrameParser parser;
    parser.Consume(Span<const uint8_t>(frame.data(), len));
    Frame out;
    CHECK(parser.Next(&out) == FrameParser::Result::kNeedMore);
  }

  // Hostile bits in the header: flipping any magic/type byte (0..7) or any
  // high length byte (10..15) must poison the stream.  (Flipping the two
  // low length bytes just declares a longer — still capped — payload, which
  // is legitimately "need more".)
  for (size_t i = 0; i < kFrameHeaderBytes; ++i) {
    std::vector<uint8_t> corrupt = frame;
    corrupt[i] ^= 0xFF;
    FrameParser parser;
    parser.Consume(corrupt);
    Frame out;
    const FrameParser::Result result = parser.Next(&out);
    if (i < 8 || i >= 10) {
      CHECK(result == FrameParser::Result::kMalformed);
      // Poisoned parsers stay poisoned: more bytes do not resynchronize.
      parser.Consume(frame);
      CHECK(parser.Next(&out) == FrameParser::Result::kMalformed);
    } else {
      CHECK(result == FrameParser::Result::kNeedMore);
    }
  }

  // An in-cap length that disagrees with the payload's own count fails the
  // typed decode (trailing bytes), not the parser.
  {
    std::vector<uint8_t> padded = EncodeIngestPayload(samples);
    padded.push_back(0);
    CHECK(!DecodeIngestPayload(padded).ok());
  }

  // A hostile sample count cannot size an allocation: the count is checked
  // against the bytes present first.
  {
    std::vector<uint8_t> hostile(8, 0xFF);  // count = 2^64 - 1, no samples
    CHECK(!DecodeIngestPayload(hostile).ok());
  }

  // Same for the ACK's per-partition disposition count (bytes 28..31, after
  // accepted + shed + keep_shift + rejected): a huge count with one actual
  // entry present must fail the bytes-present check, not allocate.
  {
    IngestAck sharded_ack{5, 3, 1};
    sharded_ack.partitions.push_back(PartitionDisposition{0, 1, 5, 3, 0});
    std::vector<uint8_t> hostile = EncodeIngestAck(sharded_ack);
    hostile[28] = 0xFF;
    hostile[29] = 0xFF;
    hostile[30] = 0xFF;
    hostile[31] = 0xFF;
    CHECK(!DecodeIngestAck(hostile).ok());
  }

  // Every typed decoder rejects every strict prefix and one trailing byte.
  const std::vector<std::vector<uint8_t>> payloads = {
      EncodeIngestPayload(samples),
      EncodeIngestAck(IngestAck{5, 3, 1}),
      EncodeRejectedInfo(RejectedInfo{10, 8}),
      EncodeKeyPayload(77),
      EncodeQuantileQuery(QuantileQuery{77, 0.5}),
      EncodeQuantileReply(QuantileReply{1, 0.1, 2}),
      EncodeServerStats(ServerStats{}),
      EncodeErrorReply(ErrorReply{ErrorCode::kInternal, "x"}),
  };
  const auto decode = [](size_t which, Span<const uint8_t> bytes) -> bool {
    switch (which) {
      case 0: return DecodeIngestPayload(bytes).ok();
      case 1: return DecodeIngestAck(bytes).ok();
      case 2: return DecodeRejectedInfo(bytes).ok();
      case 3: return DecodeKeyPayload(bytes).ok();
      case 4: return DecodeQuantileQuery(bytes).ok();
      case 5: return DecodeQuantileReply(bytes).ok();
      case 6: return DecodeServerStats(bytes).ok();
      default: return DecodeErrorReply(bytes).ok();
    }
  };
  for (size_t which = 0; which < payloads.size(); ++which) {
    const std::vector<uint8_t>& good = payloads[which];
    CHECK(decode(which, good));
    for (size_t len = 0; len < good.size(); ++len) {
      CHECK(!decode(which, Span<const uint8_t>(good.data(), len)));
    }
    std::vector<uint8_t> padded = good;
    padded.push_back(0);
    CHECK(!decode(which, padded));
  }

  // Semantic rejections: NaN quantile rank, unknown error code.
  {
    QuantileQuery nan_query;
    nan_query.key = 1;
    nan_query.q = std::nan("");
    CHECK(!DecodeQuantileQuery(EncodeQuantileQuery(nan_query)).ok());
    std::vector<uint8_t> bad_code = EncodeErrorReply(
        ErrorReply{ErrorCode::kInternal, ""});
    bad_code[0] = 99;
    CHECK(!DecodeErrorReply(bad_code).ok());
  }
}

// --- Event loop -------------------------------------------------------------

TEST(NetEventLoopRunsTimersAndPostedTasks) {
  auto loop_or = EventLoop::Create();
  CHECK_OK(loop_or);
  EventLoop& loop = **loop_or;
  std::thread runner([&loop] { loop.Run(); });

  std::atomic<int> posted_runs{0};
  loop.Post([&posted_runs] { posted_runs.fetch_add(1); });

  // Timers are loop-thread state, so they are scheduled from a posted task;
  // they must fire in deadline order (not scheduling order), and a
  // cancelled timer must not fire at all.
  std::vector<int> order;  // loop-thread only until the join below
  std::promise<void> done;
  loop.Post([&] {
    const uint64_t now = MonotonicNanos();
    loop.ScheduleAt(now + 20'000'000, [&order] { order.push_back(2); });
    loop.ScheduleAt(now + 5'000'000, [&order] { order.push_back(1); });
    const uint64_t cancelled =
        loop.ScheduleAt(now + 10'000'000, [&order] { order.push_back(99); });
    loop.Cancel(cancelled);
    loop.ScheduleAt(now + 30'000'000, [&done] { done.set_value(); });
  });

  CHECK(done.get_future().wait_for(std::chrono::seconds(10)) ==
        std::future_status::ready);
  loop.Quit();
  runner.join();

  CHECK(posted_runs.load() == 1);
  CHECK(order.size() == 2);
  CHECK(order[0] == 1 && order[1] == 2);
}

// --- Latency recorder -------------------------------------------------------

// The recorded distribution's quantiles must agree with a sorted-vector
// reference in *rank*: the empirical CDF at the reported value sits within
// a small band of the requested rank (the summary's guarantee is in rank
// space, so that is the right yardstick — value-space equality would be
// asking a 64-piece histogram to memorize 4000 points).
TEST(NetLatencyRecorderMatchesSortedReference) {
  auto recorder_or = LatencyRecorder::Create();
  CHECK_OK(recorder_or);
  LatencyRecorder& recorder = *recorder_or;

  CHECK(recorder.count() == 0);
  auto empty = recorder.Stats();
  CHECK_OK(empty);
  CHECK(empty->count == 0);
  CHECK_NEAR(empty->p50_us, 0.0, 0.0);

  Rng rng(20260807);
  const size_t n = 4000;
  std::vector<int64_t> reference_ticks;
  reference_ticks.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Uniform over [0, 1 ms) in 100 ns ticks, nanos a multiple of the tick
    // so the conversion is exact.
    const int64_t ticks = rng.UniformInt(10000);
    reference_ticks.push_back(ticks);
    recorder.Record(static_cast<uint64_t>(ticks) * 100);
  }
  std::sort(reference_ticks.begin(), reference_ticks.end());
  CHECK(recorder.count() == static_cast<int64_t>(n));

  auto stats = recorder.Stats();
  CHECK_OK(stats);
  CHECK(stats->count == static_cast<int64_t>(n));
  CHECK(stats->p50_us <= stats->p99_us && stats->p99_us <= stats->p995_us);

  const auto rank_of = [&reference_ticks](double value_us) {
    const double value_ticks = value_us * LatencyRecorder::kTicksPerMicro;
    size_t below = 0;
    while (below < reference_ticks.size() &&
           static_cast<double>(reference_ticks[below]) <= value_ticks) {
      ++below;
    }
    return static_cast<double>(below) /
           static_cast<double>(reference_ticks.size());
  };
  CHECK_NEAR(rank_of(stats->p50_us), 0.50, 0.10);
  CHECK_NEAR(rank_of(stats->p99_us), 0.99, 0.10);
  CHECK(rank_of(stats->p995_us) >= 0.90);

  // Out-of-domain durations clamp into the top bucket instead of failing.
  recorder.Record(uint64_t{10} * 1000 * 1000 * 1000);  // 10 s >> domain
  CHECK(recorder.count() == static_cast<int64_t>(n) + 1);
  auto clamped = recorder.Stats();
  CHECK_OK(clamped);
  // The extra top-bucket sample can only push the tail up — but p99.5 of a
  // 64-piece summary sits inside the summary's rank-error band, where the
  // estimate interpolates across a wide sparse piece, so "up" is only true
  // to within that band.  Relative slack, not absolute: the one new sample
  // must not collapse the tail estimate.
  CHECK(clamped->p995_us >= stats->p995_us * 0.5);
  CHECK_NEAR(rank_of(clamped->p50_us), 0.50, 0.10);
}

// --- Loopback end to end ----------------------------------------------------

TEST(NetLoopbackIngestQueryEndToEnd) {
  IngestServerOptions options;
  options.shard_id = 7;
  options.flush_batch = 8;          // exercise the size trigger
  options.flush_deadline_us = 5000; // and the deadline trigger
  auto server = StartServer(options);
  const int64_t domain = options.archetype.domain_size;

  // Two clients with disjoint key sets: per-key store state depends only on
  // that key's subsequence, so the offline replay below is exact no matter
  // how the two connections' flushes interleave.
  IngestClient alice = ConnectTo(*server);
  IngestClient bob = ConnectTo(*server);

  Rng rng(4242);
  std::vector<KeyedSample> alice_sent;
  std::vector<KeyedSample> bob_sent;
  uint64_t batches = 0;
  for (int round = 0; round < 12; ++round) {
    for (uint64_t key : {uint64_t{1}, uint64_t{2}}) {
      const std::vector<KeyedSample> batch = MakeBatch(&rng, key, 11, domain);
      auto result = alice.Ingest(batch);
      CHECK_OK(result);
      CHECK(!result->rejected);
      CHECK(result->ack.accepted == batch.size() && result->ack.shed == 0);
      alice_sent.insert(alice_sent.end(), batch.begin(), batch.end());
      ++batches;
    }
    const std::vector<KeyedSample> batch = MakeBatch(&rng, 3, 5, domain);
    auto result = bob.Ingest(batch);
    CHECK_OK(result);
    CHECK(!result->rejected);
    bob_sent.insert(bob_sent.end(), batch.begin(), batch.end());
    ++batches;
  }

  // Offline replay: one store fed the same per-connection streams.
  auto offline = SummaryStore::Create(options.archetype);
  CHECK_OK(offline);
  CHECK(offline->AddBatch(alice_sent).ok());
  CHECK(offline->AddBatch(bob_sent).ok());

  for (uint64_t key : {uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    auto pulled = alice.PullSnapshot(key);
    CHECK_OK(pulled);
    auto expected = offline->ExportKeyedSnapshot(key, options.shard_id);
    CHECK_OK(expected);
    CHECK(SnapshotsBitIdentical(*pulled, *expected));

    auto served = alice.Quantile(key, 0.5);
    CHECK_OK(served);
    auto aggregator = offline->QueryAggregator(key);
    CHECK_OK(aggregator);
    CHECK(served->value == aggregator->Quantile(0.5));
    CHECK_NEAR(served->error_budget, aggregator->error_budget(), 0.0);
    auto expected_count = offline->NumSamples(key);
    CHECK_OK(expected_count);
    CHECK(served->num_samples == *expected_count);
  }

  // Semantic errors leave the connection serving.
  auto unknown = bob.Quantile(999, 0.5);
  CHECK(!unknown.ok());
  CHECK(unknown.status().message().find("UNKNOWN_KEY") != std::string::npos);
  CHECK(bob.connected());
  auto still_alive = bob.Quantile(3, 0.5);
  CHECK_OK(still_alive);

  // A partial batch below the size trigger must flush by deadline.
  const std::vector<KeyedSample> tail = MakeBatch(&rng, 3, 3, domain);
  CHECK_OK(bob.Ingest(tail));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto stats = alice.Stats();
  CHECK_OK(stats);
  CHECK(stats->connections_accepted == 2);
  CHECK(stats->batches_ingested == batches + 1);
  CHECK(stats->samples_offered ==
        alice_sent.size() + bob_sent.size() + tail.size());
  CHECK(stats->samples_accepted == stats->samples_offered);
  CHECK(stats->samples_shed == 0 && stats->batches_rejected == 0);
  CHECK(stats->flushes_size > 0);
  CHECK(stats->flushes_deadline > 0);
  // The server measured itself: every ingest and query was recorded.
  CHECK(stats->ingest_count == static_cast<int64_t>(batches + 1));
  CHECK(stats->query_count > 0);
  CHECK(stats->ingest_p50_us > 0.0);
  CHECK(stats->ingest_p50_us <= stats->ingest_p99_us);

  CHECK(server->Shutdown().ok());
}

// --- Overload: shed, reject, and still replay bit-identically ---------------

TEST(NetServerShedsAndRejectsUnderOverload) {
  IngestServerOptions options;
  options.shard_id = 3;
  options.soft_watermark = 64;
  options.hard_watermark = 256;
  options.flush_batch = 1u << 20;        // never size-flush:
  options.flush_deadline_us = 60000000;  // the queue only grows
  auto server = StartServer(options);
  const int64_t domain = options.archetype.domain_size;

  IngestClient client = ConnectTo(*server);
  Rng rng(99);
  std::vector<KeyedSample> accepted_replay;
  bool saw_shed = false;
  bool saw_reject = false;
  uint64_t offered = 0;
  for (int round = 0; round < 40; ++round) {
    const std::vector<KeyedSample> batch = MakeBatch(&rng, 7, 32, domain);
    offered += batch.size();
    auto result = client.Ingest(batch);
    CHECK_OK(result);
    if (result->rejected) {
      saw_reject = true;
      CHECK(result->rejected_info.queue_depth >= options.hard_watermark);
      CHECK(result->rejected_info.hard_watermark == options.hard_watermark);
      continue;
    }
    // Reconstruct the accepted subsequence from the recorded stride — the
    // whole point of deterministic systematic thinning.
    const uint64_t stride = uint64_t{1} << result->ack.keep_shift;
    uint64_t kept = 0;
    for (size_t i = 0; i < batch.size(); i += stride) {
      accepted_replay.push_back(batch[i]);
      ++kept;
    }
    CHECK(result->ack.accepted == kept);
    CHECK(result->ack.shed == batch.size() - kept);
    if (result->ack.keep_shift > 0) saw_shed = true;
  }
  CHECK(saw_shed);
  CHECK(saw_reject);

  auto live_stats = client.Stats();
  CHECK_OK(live_stats);
  CHECK(live_stats->samples_shed > 0);
  CHECK(live_stats->batches_rejected > 0);
  CHECK(live_stats->samples_offered == offered);
  CHECK(live_stats->samples_accepted == accepted_replay.size());
  // The bounded-memory guarantee: the queue never exceeds the hard
  // watermark plus one (thinned) batch.
  CHECK(live_stats->max_queue_depth < options.hard_watermark + 32);

  CHECK(server->Shutdown().ok());

  // The drained store is bit-identical to an offline replay of exactly the
  // accepted (non-shed, non-rejected) samples.
  auto offline = SummaryStore::Create(options.archetype);
  CHECK_OK(offline);
  CHECK(offline->AddBatch(accepted_replay).ok());
  auto server_snapshot = server->store().ExportKeyedSnapshot(7, 3);
  CHECK_OK(server_snapshot);
  auto offline_snapshot = offline->ExportKeyedSnapshot(7, 3);
  CHECK_OK(offline_snapshot);
  CHECK(SnapshotsBitIdentical(*server_snapshot, *offline_snapshot));
  auto count = server->store().NumSamples(7);
  CHECK_OK(count);
  CHECK(*count == static_cast<int64_t>(accepted_replay.size()));
}

// --- Live-socket frame fuzz -------------------------------------------------

int RawConnect(uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  CHECK(fd >= 0);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  CHECK(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
  CHECK(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) == 0);
  return fd;
}

// Sends `bytes`, half-closes, and drains everything the server says until
// EOF.  Returning at all proves the server neither crashed nor left the
// connection dangling.
std::vector<uint8_t> RawExchange(uint16_t port, Span<const uint8_t> bytes) {
  const int fd = RawConnect(port);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n < 0 && errno == EINTR) continue;
    CHECK(n > 0);
    sent += static_cast<size_t>(n);
  }
  shutdown(fd, SHUT_WR);
  std::vector<uint8_t> received;
  uint8_t buffer[4096];
  for (;;) {
    const ssize_t n = read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    received.insert(received.end(), buffer, buffer + n);
  }
  close(fd);
  return received;
}

// Parses the server's reply bytes; if any frames came back they must be
// well-formed, and the server's verdict on hostile input must be a typed
// kError frame — never garbage, never silence-then-crash.
bool RepliesWithError(const std::vector<uint8_t>& received, ErrorCode* code) {
  FrameParser parser;
  parser.Consume(received);
  Frame frame;
  while (parser.Next(&frame) == FrameParser::Result::kFrame) {
    if (frame.type == FrameType::kError) {
      auto error = DecodeErrorReply(frame.payload);
      CHECK_OK(error);
      if (code != nullptr) *code = error->code;
      return true;
    }
  }
  return false;
}

TEST(NetFrameFuzzServerSurvivesHostileBytes) {
  IngestServerOptions options;
  auto server = StartServer(options);
  const int64_t domain = options.archetype.domain_size;

  Rng rng(1337);
  const std::vector<KeyedSample> samples = {{5, 1}, {5, 2}, {6, 3}};
  const std::vector<uint8_t> valid =
      EncodeFrame(FrameType::kIngest, EncodeIngestPayload(samples));

  // Every-prefix truncation: the server must treat any cut point (mid-
  // header, mid-payload, clean boundary) as an orderly or empty stream.
  for (size_t len = 0; len <= valid.size(); ++len) {
    const std::vector<uint8_t> received =
        RawExchange(server->port(), Span<const uint8_t>(valid.data(), len));
    FrameParser parser;  // whatever came back must at least be well-formed
    parser.Consume(received);
    Frame frame;
    while (parser.Next(&frame) == FrameParser::Result::kFrame) {
    }
    CHECK(parser.buffered() == 0);
  }

  // Hostile bits: corrupt header fields must earn a typed kMalformed error
  // and a dropped connection.
  size_t hostile_cases = 0;
  for (const size_t index : {size_t{0}, size_t{5}, size_t{15}}) {
    std::vector<uint8_t> corrupt = valid;
    corrupt[index] ^= 0xFF;
    const std::vector<uint8_t> received =
        RawExchange(server->port(), corrupt);
    ErrorCode code = ErrorCode::kInternal;
    CHECK(RepliesWithError(received, &code));
    CHECK(code == ErrorCode::kMalformed);
    ++hostile_cases;
  }
  // A well-framed payload whose content lies about its sample count.
  {
    std::vector<uint8_t> payload = EncodeIngestPayload(samples);
    payload[0] = 0xEE;  // count no longer matches the bytes present
    const std::vector<uint8_t> received = RawExchange(
        server->port(), EncodeFrame(FrameType::kIngest, payload));
    ErrorCode code = ErrorCode::kInternal;
    CHECK(RepliesWithError(received, &code));
    CHECK(code == ErrorCode::kMalformed);
    ++hostile_cases;
  }
  // An out-of-domain sample value: decodes fine, violates the store's
  // contract, must be refused before it can poison an AddBatch.
  {
    const std::vector<KeyedSample> out_of_domain = {{5, domain + 100}};
    const std::vector<uint8_t> received = RawExchange(
        server->port(),
        EncodeFrame(FrameType::kIngest, EncodeIngestPayload(out_of_domain)));
    ErrorCode code = ErrorCode::kInternal;
    CHECK(RepliesWithError(received, &code));
    CHECK(code == ErrorCode::kMalformed);
    ++hostile_cases;
  }
  // A reply-direction frame arriving as a request.
  {
    const std::vector<uint8_t> received = RawExchange(
        server->port(),
        EncodeFrame(FrameType::kIngestAck, EncodeIngestAck(IngestAck{})));
    ErrorCode code = ErrorCode::kInternal;
    CHECK(RepliesWithError(received, &code));
    CHECK(code == ErrorCode::kMalformed);
    ++hostile_cases;
  }
  // Seeded garbage streams.
  for (int round = 0; round < 8; ++round) {
    std::vector<uint8_t> garbage(64 + static_cast<size_t>(rng.UniformInt(64)));
    for (uint8_t& byte : garbage) {
      byte = static_cast<uint8_t>(rng.UniformInt(256));
    }
    const std::vector<uint8_t> received =
        RawExchange(server->port(), garbage);
    // Random bytes essentially never spell the magic, so the server should
    // answer kMalformed; at minimum it must close cleanly (RawExchange
    // returning proves that).
    ErrorCode code = ErrorCode::kInternal;
    if (RepliesWithError(received, &code)) {
      CHECK(code == ErrorCode::kMalformed);
    }
    ++hostile_cases;
  }

  // After all of that the server still serves a fresh, honest client.
  IngestClient client = ConnectTo(*server);
  const std::vector<KeyedSample> batch = MakeBatch(&rng, 11, 16, domain);
  auto result = client.Ingest(batch);
  CHECK_OK(result);
  CHECK(!result->rejected && result->ack.accepted == batch.size());
  auto reply = client.Quantile(11, 0.5);
  CHECK_OK(reply);
  auto stats = client.Stats();
  CHECK_OK(stats);
  CHECK(stats->connections_dropped >= 7);  // every typed-error case above
  CHECK(static_cast<size_t>(stats->connections_accepted) >= hostile_cases);

  CHECK(server->Shutdown().ok());
}

// A peer that vanishes right after sending traffic makes the server's ack
// write fail (EPIPE/ECONNRESET) inside SendFrame, destroying the
// connection while HandleIngest still holds a reference — the
// use-after-free this guards against lived exactly there.  Pipelining many
// batches and then closing makes the failure deterministic: the server
// drains them all in ONE readable event (so poll never gets a chance to
// report the error state first), its first ack to the closed socket
// provokes an RST, and a later ack write in the same drain loop hits the
// error path mid-HandleIngest.  ASan turns any regression into a hard
// failure.
TEST(NetServerSurvivesPeerResetDuringIngestReply) {
  IngestServerOptions options;
  auto server = StartServer(options);
  const int64_t domain = options.archetype.domain_size;
  Rng rng(31337);

  for (int round = 0; round < 8; ++round) {
    std::vector<uint8_t> bytes;
    for (int b = 0; b < 16; ++b) {
      const std::vector<KeyedSample> batch = MakeBatch(&rng, 5, 64, domain);
      const std::vector<uint8_t> frame =
          EncodeFrame(FrameType::kIngest, EncodeIngestPayload(batch));
      bytes.insert(bytes.end(), frame.begin(), frame.end());
    }
    const int fd = RawConnect(server->port());
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      CHECK(n > 0);
      sent += static_cast<size_t>(n);
    }
    // Close with the acks unread: data arriving for the orphaned socket
    // (the server's first ack) draws an RST, so the server's later ack
    // writes in the same drain loop fail.
    close(fd);
  }

  // The server must still serve a fresh, honest client.
  IngestClient client = ConnectTo(*server);
  const std::vector<KeyedSample> batch = MakeBatch(&rng, 11, 16, domain);
  auto result = client.Ingest(batch);
  CHECK_OK(result);
  CHECK(!result->rejected && result->ack.accepted == batch.size());
  auto reply = client.Quantile(11, 0.5);
  CHECK_OK(reply);
  CHECK(server->Shutdown().ok());
}

// The write-side bound: a client that sends requests but never reads the
// replies must be dropped once the server's unwritten reply backlog passes
// max_reply_backlog — not buffered indefinitely.
TEST(NetServerBoundsReplyBacklog) {
  IngestServerOptions options;
  options.max_frame_payload = 1024;
  options.max_reply_backlog = 2048;
  auto server = StartServer(options);

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  CHECK(fd >= 0);
  // A tiny receive buffer (set before connect so the window is negotiated
  // small) keeps the kernel from absorbing replies the test never reads.
  const int rcvbuf = 4096;
  setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server->port());
  CHECK(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
  CHECK(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) == 0);

  // Pump stats requests (each reply ~168 bytes) and never read.  Replies
  // fill the kernel buffers, then the server's `out`, then trip the cap:
  // the server closes and the pending RST fails any still-blocked send.
  // 50k requests is ~8 MB of replies — past any plausible kernel
  // buffering, so a server that (wrongly) buffers forever cannot pass.
  const std::vector<uint8_t> stats_request =
      EncodeFrame(FrameType::kStats, Span<const uint8_t>());
  bool server_dropped_us = false;
  for (int i = 0; i < 50000 && !server_dropped_us; ++i) {
    size_t sent = 0;
    while (sent < stats_request.size()) {
      const ssize_t n = send(fd, stats_request.data() + sent,
                             stats_request.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        server_dropped_us = true;  // EPIPE/ECONNRESET: the cap fired
        break;
      }
      sent += static_cast<size_t>(n);
    }
  }
  // The send side can outrun a (sanitizer-slowed) server — the whole
  // request stream fits in the local kernel send buffer — so a clean send
  // loop proves nothing yet.  The verdict is the RST: wait for it.
  if (!server_dropped_us) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = 0;  // POLLERR/POLLHUP are reported regardless
    for (int waited_ms = 0; waited_ms < 30000; waited_ms += 100) {
      if (poll(&pfd, 1, 100) > 0 &&
          (pfd.revents & (POLLERR | POLLHUP)) != 0) {
        server_dropped_us = true;
        break;
      }
    }
  }
  CHECK(server_dropped_us);
  close(fd);

  // The drop was surgical: the server still serves, and counted it.
  IngestClient client = ConnectTo(*server);
  auto stats = client.Stats();
  CHECK_OK(stats);
  CHECK(stats->connections_dropped >= 1);
  CHECK(server->Shutdown().ok());
}

// --- Graceful shutdown ------------------------------------------------------

TEST(NetGracefulShutdownDrainsAndMatchesOfflineReplay) {
  IngestServerOptions options;
  options.shard_id = 12;
  options.flush_batch = 1u << 20;        // nothing flushes by size...
  options.flush_deadline_us = 60000000;  // ...or by deadline:
  auto server = StartServer(options);    // Shutdown's drain does all of it
  const int64_t domain = options.archetype.domain_size;

  IngestClient alice = ConnectTo(*server);
  IngestClient bob = ConnectTo(*server);
  Rng rng(2718);
  std::vector<KeyedSample> alice_sent;
  std::vector<KeyedSample> bob_sent;
  for (int round = 0; round < 6; ++round) {
    for (uint64_t key : {uint64_t{21}, uint64_t{22}}) {
      const std::vector<KeyedSample> batch = MakeBatch(&rng, key, 9, domain);
      auto result = alice.Ingest(batch);
      CHECK_OK(result);
      CHECK(!result->rejected && result->ack.shed == 0);
      alice_sent.insert(alice_sent.end(), batch.begin(), batch.end());
    }
    const std::vector<KeyedSample> batch = MakeBatch(&rng, 23, 7, domain);
    auto result = bob.Ingest(batch);
    CHECK_OK(result);
    bob_sent.insert(bob_sent.end(), batch.begin(), batch.end());
  }

  // Shut down with both connections open and every sample still queued:
  // the drain must flush the partial batches before the loop dies.
  CHECK(server->Shutdown().ok());
  const ServerStats stats = server->stats();
  CHECK(stats.flushes_size == 0);  // nothing reached the size trigger
  CHECK(stats.samples_accepted == alice_sent.size() + bob_sent.size());

  auto offline = SummaryStore::Create(options.archetype);
  CHECK_OK(offline);
  CHECK(offline->AddBatch(alice_sent).ok());
  CHECK(offline->AddBatch(bob_sent).ok());
  for (uint64_t key : {uint64_t{21}, uint64_t{22}, uint64_t{23}}) {
    auto drained = server->store().ExportKeyedSnapshot(key, options.shard_id);
    CHECK_OK(drained);
    auto expected = offline->ExportKeyedSnapshot(key, options.shard_id);
    CHECK_OK(expected);
    CHECK(SnapshotsBitIdentical(*drained, *expected));
    auto drained_count = server->store().NumSamples(key);
    auto expected_count = offline->NumSamples(key);
    CHECK_OK(drained_count);
    CHECK_OK(expected_count);
    CHECK(*drained_count == *expected_count);
  }
}

}  // namespace
}  // namespace fasthist
