# Throughput-regression check between a committed benchmark trajectory and a
# freshly-run smoke grid of the same cells.  Fails ctest (and all five CI
# jobs) when any matched cell's *relative* throughput fell more than
# TOLERANCE_PCT below the committed trajectory.
#
# Comparison is shape-based, not absolute: each file's matched rows are
# normalized by the file's own anchor row (the first matched record), so a
# uniformly slower CI machine passes while one cell regressing against its
# neighbours — the signature of a real code regression, e.g. a batching path
# losing its grouping — fails.  Rows are matched by record name AND equal
# threads_effective, so a row that ran at different effective parallelism is
# never compared.
#
# Inputs (via -D):
#   COMMITTED_JSON  the committed trajectory (e.g. BENCH_store.json)
#   FRESH_JSON      the just-run smoke output (a FIXTURES_SETUP test wrote it)
#   FIELD           record member holding the metric under test
#   TOLERANCE_PCT   allowed relative drift, in percent (e.g. 30)
#
# Optional inputs (via -D):
#   MATCH_THREADS      default ON.  OFF matches rows by name alone — for
#                      grids whose committed rows come from a machine with a
#                      different core count than CI (e.g. BENCH_net rows
#                      carry threads_effective = cores actually used, so a
#                      1-core-committed row would never thread-match a
#                      multi-core CI run).  Shape normalization still
#                      absorbs the absolute speed difference.
#   DIRECTION          default "higher" (bigger FIELD = better, regression =
#                      relative drop).  "lower" flips it for latency-style
#                      fields: regression = fresh shape rising more than
#                      TOLERANCE_PCT above the committed shape.
#   SKIP_IF_UNMATCHED  default OFF.  ON turns the <2-matches FATAL into a
#                      STATUS + pass — for checks that only apply when the
#                      fresh grid overlaps the committed one (e.g. a
#                      threads-matched latency check that legitimately has
#                      nothing to compare on a machine class the committed
#                      file has never seen).
#
# CMake math() is integer-only, so decimal field values are parsed into
# micro-unit integers; ratios are then exact integer arithmetic.
cmake_minimum_required(VERSION 3.19)

foreach(var COMMITTED_JSON FRESH_JSON FIELD TOLERANCE_PCT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_bench_regression: ${var} must be passed -D")
  endif()
endforeach()
if(NOT DEFINED MATCH_THREADS)
  set(MATCH_THREADS ON)
endif()
if(NOT DEFINED DIRECTION)
  set(DIRECTION "higher")
endif()
if(NOT DEFINED SKIP_IF_UNMATCHED)
  set(SKIP_IF_UNMATCHED OFF)
endif()
if(NOT DIRECTION STREQUAL "higher" AND NOT DIRECTION STREQUAL "lower")
  message(FATAL_ERROR "check_bench_regression: DIRECTION must be 'higher' "
                      "or 'lower', got '${DIRECTION}'")
endif()
foreach(path "${COMMITTED_JSON}" "${FRESH_JSON}")
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "check_bench_regression: missing ${path}")
  endif()
endforeach()

# Decimal string -> micro-units integer ("3.57916" -> 3579160).  The bench
# writer emits %.6g, which stays in plain decimal for every throughput this
# check reads; scientific notation is rejected loudly rather than misread.
function(parse_micros str context out)
  if("${str}" MATCHES "[eE]")
    message(FATAL_ERROR "check_bench_regression: ${context}: scientific "
                        "notation '${str}' is not supported")
  endif()
  if("${str}" MATCHES "^([0-9]+)\\.([0-9]+)$")
    set(int_part "${CMAKE_MATCH_1}")
    set(frac "${CMAKE_MATCH_2}")
  elseif("${str}" MATCHES "^([0-9]+)$")
    set(int_part "${CMAKE_MATCH_1}")
    set(frac "")
  else()
    message(FATAL_ERROR "check_bench_regression: ${context}: cannot parse "
                        "'${str}' as a non-negative decimal")
  endif()
  string(SUBSTRING "${frac}000000" 0 6 frac)
  # Strip leading zeros so math() does not read the operand as octal.
  string(REGEX REPLACE "^0+" "" int_part "${int_part}")
  string(REGEX REPLACE "^0+" "" frac "${frac}")
  if(int_part STREQUAL "")
    set(int_part 0)
  endif()
  if(frac STREQUAL "")
    set(frac 0)
  endif()
  math(EXPR result "${int_part} * 1000000 + ${frac}")
  set(${out} "${result}" PARENT_SCOPE)
endfunction()

file(READ "${COMMITTED_JSON}" committed)
file(READ "${FRESH_JSON}" fresh)

foreach(file_var committed fresh)
  string(JSON ${file_var}_count ERROR_VARIABLE json_error
         LENGTH "${${file_var}}" records)
  if(json_error)
    message(FATAL_ERROR "check_bench_regression: no 'records' array in the "
                        "${file_var} file: ${json_error}")
  endif()
endforeach()

# Collect the matched rows: same name in both files, and (unless
# MATCH_THREADS is OFF) same threads_effective.
set(matched_names "")
math(EXPR fresh_last "${fresh_count} - 1")
math(EXPR committed_last "${committed_count} - 1")
foreach(i RANGE ${fresh_last})
  string(JSON name GET "${fresh}" records ${i} name)
  if(MATCH_THREADS)
    string(JSON fresh_threads ERROR_VARIABLE json_error
           GET "${fresh}" records ${i} threads_effective)
    if(json_error)
      message(FATAL_ERROR "check_bench_regression: fresh record '${name}' "
                          "lacks threads_effective")
    endif()
  endif()
  foreach(j RANGE ${committed_last})
    string(JSON committed_name GET "${committed}" records ${j} name)
    if(NOT committed_name STREQUAL name)
      continue()
    endif()
    if(MATCH_THREADS)
      string(JSON committed_threads ERROR_VARIABLE json_error
             GET "${committed}" records ${j} threads_effective)
      if(json_error OR NOT committed_threads EQUAL fresh_threads)
        continue()
      endif()
    endif()
    string(JSON fresh_value GET "${fresh}" records ${i} ${FIELD})
    string(JSON committed_value ERROR_VARIABLE json_error
           GET "${committed}" records ${j} ${FIELD})
    if(json_error)
      message(FATAL_ERROR "check_bench_regression: committed record "
                          "'${name}' lacks field '${FIELD}'")
    endif()
    parse_micros("${fresh_value}" "fresh '${name}'" fresh_micros)
    parse_micros("${committed_value}" "committed '${name}'" committed_micros)
    if(fresh_micros EQUAL 0 OR committed_micros EQUAL 0)
      message(FATAL_ERROR "check_bench_regression: '${name}' reports zero "
                          "${FIELD} (fresh ${fresh_value}, committed "
                          "${committed_value})")
    endif()
    list(APPEND matched_names "${name}")
    set(fresh_of_${name} "${fresh_micros}")
    set(committed_of_${name} "${committed_micros}")
  endforeach()
endforeach()

list(LENGTH matched_names num_matched)
if(num_matched LESS 2)
  if(SKIP_IF_UNMATCHED)
    message(STATUS
            "check_bench_regression: only ${num_matched} record(s) of "
            "${FRESH_JSON} match ${COMMITTED_JSON}; SKIP_IF_UNMATCHED is "
            "set, so nothing to compare here — passing")
    return()
  endif()
  message(FATAL_ERROR
          "check_bench_regression: only ${num_matched} record(s) of "
          "${FRESH_JSON} match ${COMMITTED_JSON} by name"
          " — the smoke grid and the committed grid have "
          "drifted apart; re-run the full bench and commit it")
endif()

# Anchor-relative shapes.  shape(row) = value(row) / value(anchor), scaled
# by 1e6; a drop means the row lost ground against the anchor in the fresh
# run.  An anchor-only regression shows up as every other row "improving",
# which passes — the tolerance is deliberately one-sided, so only use data
# from grids with at least two non-anchor rows for real protection.
list(GET matched_names 0 anchor)
set(failures "")
foreach(name IN LISTS matched_names)
  if(name STREQUAL anchor)
    continue()
  endif()
  math(EXPR fresh_shape
       "(${fresh_of_${name}} * 1000000) / ${fresh_of_${anchor}}")
  math(EXPR committed_shape
       "(${committed_of_${name}} * 1000000) / ${committed_of_${anchor}}")
  if(DIRECTION STREQUAL "higher")
    math(EXPR floor_shape
         "(${committed_shape} * (100 - ${TOLERANCE_PCT})) / 100")
    if(fresh_shape LESS floor_shape)
      math(EXPR drop_pct
           "100 - (${fresh_shape} * 100) / ${committed_shape}")
      list(APPEND failures
           "'${name}' fell ${drop_pct}% vs '${anchor}' (committed shape "
           "${committed_shape}, fresh ${fresh_shape}, floor ${floor_shape})")
    endif()
  else()
    math(EXPR ceiling_shape
         "(${committed_shape} * (100 + ${TOLERANCE_PCT})) / 100")
    if(fresh_shape GREATER ceiling_shape)
      math(EXPR rise_pct
           "(${fresh_shape} * 100) / ${committed_shape} - 100")
      list(APPEND failures
           "'${name}' rose ${rise_pct}% vs '${anchor}' (committed shape "
           "${committed_shape}, fresh ${fresh_shape}, ceiling "
           "${ceiling_shape})")
    endif()
  endif()
endforeach()

if(failures)
  string(REPLACE ";" "\n  " failure_text "${failures}")
  message(FATAL_ERROR "check_bench_regression: relative ${FIELD} "
                      "regression beyond ${TOLERANCE_PCT}%:\n  "
                      "${failure_text}")
endif()

message(STATUS "check_bench_regression: ${num_matched} matched records of "
               "${FRESH_JSON} within ${TOLERANCE_PCT}% of the committed "
               "shape (anchor '${anchor}')")
