// The striped ingestor's concurrency contracts, exercised with real
// threads: wait-free multi-writer appends with concurrent snapshot
// readers, the seqlock's consistency guarantee (every export decodes
// cleanly, counts never run backwards), and the determinism contract
// (the final aggregate is bit-identical to a serial replay of the
// per-stripe streams).  This binary is the core of the ThreadSanitizer CI
// job (FASTHIST_TSAN) — it is the suite where a racy protocol would
// actually interleave.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/streaming.h"
#include "service/merge_tree.h"
#include "service/shard.h"
#include "service/striped_ingestor.h"
#include "service/wire_format.h"
#include "store/summary_store.h"
#include "tests/fasthist_test.h"
#include "tests/histogram_testutil.h"
#include "util/random.h"

namespace fasthist {
namespace {

using ::fasthist::testing::BitIdentical;

constexpr int64_t kDomain = 512;
constexpr int64_t kK = 8;
constexpr size_t kBuffer = 256;

std::vector<int64_t> RandomStream(uint64_t seed, size_t count) {
  Rng rng(seed);
  std::vector<int64_t> samples;
  samples.reserve(count);
  for (size_t i = 0; i < count; ++i) samples.push_back(rng.UniformInt(kDomain));
  return samples;
}

// The reconcile ExportSnapshot promises: every non-empty stripe's serial
// summary (a plain builder Peek over that stripe's stream), folded in
// stripe-id order through one ReduceSummaries level.  Rebuilding it here
// from first principles is what makes the bit-identity tests a spec, not a
// tautology.
MergeTreeResult SerialReplayReduction(
    const std::vector<std::vector<int64_t>>& per_stripe_streams) {
  std::vector<ShardSummary> summaries;
  for (const auto& stream : per_stripe_streams) {
    if (stream.empty()) continue;
    auto builder = StreamingHistogramBuilder::Create(kDomain, kK, kBuffer);
    CHECK_OK(builder);
    CHECK(builder->AddMany(stream).ok());
    auto peek = builder->Peek();
    CHECK_OK(peek);
    summaries.push_back({std::move(peek).value(),
                         static_cast<double>(stream.size()),
                         builder->error_levels()});
  }
  CHECK(!summaries.empty());
  MergeTreeOptions reconcile;
  reconcile.fan_in =
      summaries.size() < 2 ? 2 : static_cast<int>(summaries.size());
  auto reduced = ReduceSummaries(std::move(summaries), kK, reconcile);
  CHECK_OK(reduced);
  return std::move(reduced).value();
}

Histogram SerialReplayAggregate(
    const std::vector<std::vector<int64_t>>& per_stripe_streams) {
  return SerialReplayReduction(per_stripe_streams).aggregate;
}

TEST(StripedSerialReplayBitIdentity) {
  const int kStripes = 4;
  auto striped = StripedShardIngestor::Create(7, kDomain, kK, kBuffer,
                                              MergingOptions(), kStripes);
  CHECK_OK(striped);

  // Deal one stream round-robin over the stripes in uneven batches, the
  // way a fleet of writer threads would — just without the threads, so the
  // expected per-stripe streams are exact.
  const std::vector<int64_t> stream = RandomStream(99, 10000);
  std::vector<std::vector<int64_t>> per_stripe(kStripes);
  std::vector<StripedShardIngestor::Writer> writers;
  for (int i = 0; i < kStripes; ++i) {
    auto writer = (*striped)->RegisterWriter();
    CHECK_OK(writer);
    CHECK(writer->stripe() == i);
    writers.push_back(std::move(writer).value());
  }
  Rng rng(1234);
  size_t offset = 0;
  int turn = 0;
  while (offset < stream.size()) {
    const size_t batch =
        std::min(static_cast<size_t>(1 + rng.UniformInt(700)),
                 stream.size() - offset);
    const int stripe = turn++ % kStripes;
    CHECK(writers[static_cast<size_t>(stripe)]
              .Append({stream.data() + offset, batch})
              .ok());
    per_stripe[static_cast<size_t>(stripe)].insert(
        per_stripe[static_cast<size_t>(stripe)].end(), stream.begin() + offset,
        stream.begin() + offset + batch);
    offset += batch;
  }

  CHECK((*striped)->num_samples() == static_cast<int64_t>(stream.size()));
  auto snapshot = (*striped)->ExportSnapshot();
  CHECK_OK(snapshot);
  CHECK(snapshot->shard_id == 7);
  CHECK(snapshot->num_samples == static_cast<int64_t>(stream.size()));
  auto decoded = DecodeHistogram(snapshot->encoded_histogram);
  CHECK_OK(decoded);
  const MergeTreeResult replay = SerialReplayReduction(per_stripe);
  CHECK(BitIdentical(*decoded, replay.aggregate));
  // The ladder accounting replays exactly too: each stripe's cut reports
  // the same levels a serial builder over that stream would, and the
  // reconcile fold adds the same depth.
  CHECK(snapshot->error_levels == replay.error_levels);

  // A second export with no intervening writes is byte-identical.
  auto again = (*striped)->ExportSnapshot();
  CHECK_OK(again);
  CHECK(again->encoded_histogram == snapshot->encoded_histogram);
  CHECK(again->error_levels == snapshot->error_levels);
}

TEST(StripedWriterLifecycleAndExhaustion) {
  auto striped = StripedShardIngestor::Create(1, kDomain, kK, kBuffer,
                                              MergingOptions(), 2);
  CHECK_OK(striped);
  CHECK((*striped)->num_stripes() == 2);

  // Claim both stripes; the third registration fails without blocking.
  auto first = (*striped)->RegisterWriter();
  CHECK_OK(first);
  auto second = (*striped)->RegisterWriter();
  CHECK_OK(second);
  CHECK(first->stripe() == 0);
  CHECK(second->stripe() == 1);
  CHECK(!(*striped)->RegisterWriter().ok());
  // Single-call Ingest also needs a stripe, so it fails too.
  CHECK(!(*striped)->Ingest({int64_t{1}, int64_t{2}}).ok());

  // Releasing stripe 0 makes it the next claim (lowest-free order); the
  // released handle refuses further appends.
  first->Release();
  CHECK(!first->valid());
  CHECK(!first->Append({int64_t{1}}).ok());
  auto reclaimed = (*striped)->RegisterWriter();
  CHECK_OK(reclaimed);
  CHECK(reclaimed->stripe() == 0);

  // Moves transfer the claim; the moved-from handle is inert.
  StripedShardIngestor::Writer moved = std::move(reclaimed).value();
  CHECK(moved.valid() && moved.stripe() == 0);
  CHECK(moved.Append({int64_t{3}, int64_t{4}}).ok());
  // Out-of-domain: valid prefix kept, like AddMany.
  CHECK(!moved.Append({int64_t{5}, kDomain}).ok());
  CHECK((*striped)->num_samples() == 3);

  // Destruction releases: drop every handle, then all stripes are free.
  moved.Release();
  second->Release();
  auto w0 = (*striped)->RegisterWriter();
  CHECK_OK(w0);
  auto w1 = (*striped)->RegisterWriter();
  CHECK_OK(w1);
  CHECK(w0->stripe() == 0 && w1->stripe() == 1);

  CHECK(!StripedShardIngestor::Create(1, kDomain, kK, kBuffer,
                                      MergingOptions(), -1)
             .ok());
  CHECK(!StripedShardIngestor::Create(1, 0, kK, kBuffer).ok());
}

TEST(StripedSingleStripeMatchesShardIngestor) {
  // With one stripe the striped ingestor degenerates to ShardIngestor:
  // same stream, same snapshot bytes.
  auto striped = StripedShardIngestor::Create(3, kDomain, kK, kBuffer,
                                              MergingOptions(), 1);
  CHECK_OK(striped);
  auto plain = ShardIngestor::Create(3, kDomain, kK, kBuffer);
  CHECK_OK(plain);

  // Empty on both sides: the uniform summary.
  auto empty_striped = (*striped)->ExportSnapshot();
  CHECK_OK(empty_striped);
  auto empty_plain = plain->ExportSnapshot();
  CHECK_OK(empty_plain);
  CHECK(empty_striped->encoded_histogram == empty_plain->encoded_histogram);

  const std::vector<int64_t> stream = RandomStream(55, 5000);
  CHECK((*striped)->Ingest(stream).ok());
  CHECK(plain->Ingest(stream).ok());
  CHECK((*striped)->num_samples() == plain->num_samples());
  auto striped_snapshot = (*striped)->ExportSnapshot();
  CHECK_OK(striped_snapshot);
  auto plain_snapshot = plain->ExportSnapshot();
  CHECK_OK(plain_snapshot);
  CHECK(striped_snapshot->encoded_histogram ==
        plain_snapshot->encoded_histogram);
}

TEST(StripedMultiWriterStressWithConcurrentExports) {
  // N writer threads, each with its own claimed stripe, append randomized
  // batches while a reader thread exports continuously.  Every export must
  // decode cleanly with sane mass; the sample count across sequential
  // exports must never run backwards (per-stripe counts are monotone and
  // the seqlock forbids double-counting a window mid-condense).  At the
  // end, the aggregate must be bit-identical to a serial replay.
  for (const int kWriters : {2, 4, 8}) {
    auto striped = StripedShardIngestor::Create(11, kDomain, kK, kBuffer,
                                                MergingOptions(), kWriters);
    CHECK_OK(striped);

    std::vector<StripedShardIngestor::Writer> writers;
    for (int i = 0; i < kWriters; ++i) {
      auto writer = (*striped)->RegisterWriter();
      CHECK_OK(writer);
      writers.push_back(std::move(writer).value());
    }

    std::vector<std::vector<int64_t>> per_stripe(
        static_cast<size_t>(kWriters));
    std::atomic<int> writers_done{0};
    std::atomic<bool> writer_failed{false};

    std::thread reader([&] {
      int64_t last_count = 0;
      bool running = true;
      while (running) {
        // One last export after the final writer finishes, so the loop
        // always observes the complete stream at least once.
        running = writers_done.load(std::memory_order_acquire) < kWriters;
        auto snapshot = (*striped)->ExportSnapshot();
        if (!snapshot.ok()) {
          writer_failed.store(true, std::memory_order_relaxed);
          return;
        }
        auto decoded = DecodeHistogram(snapshot->encoded_histogram);
        if (!decoded.ok() || snapshot->num_samples < last_count ||
            decoded->TotalMass() < 0.5 || decoded->TotalMass() > 1.5) {
          writer_failed.store(true, std::memory_order_relaxed);
          return;
        }
        last_count = snapshot->num_samples;
      }
    });

    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&, t] {
        const std::vector<int64_t> stream =
            RandomStream(1000 + static_cast<uint64_t>(t), 12000);
        per_stripe[static_cast<size_t>(t)] = stream;
        Rng rng(77 + static_cast<uint64_t>(t));
        size_t offset = 0;
        while (offset < stream.size()) {
          const size_t batch =
              std::min(static_cast<size_t>(1 + rng.UniformInt(600)),
                       stream.size() - offset);
          if (!writers[static_cast<size_t>(t)]
                   .Append({stream.data() + offset, batch})
                   .ok()) {
            writer_failed.store(true, std::memory_order_relaxed);
            return;
          }
          offset += batch;
        }
        writers_done.fetch_add(1, std::memory_order_acq_rel);
      });
    }
    for (auto& thread : threads) thread.join();
    reader.join();
    CHECK(!writer_failed.load());

    // Quiescent: counts are exact and the aggregate equals the replay.
    CHECK((*striped)->num_samples() ==
          static_cast<int64_t>(kWriters) * 12000);
    auto final_snapshot = (*striped)->ExportSnapshot();
    CHECK_OK(final_snapshot);
    CHECK(final_snapshot->num_samples ==
          static_cast<int64_t>(kWriters) * 12000);
    auto decoded = DecodeHistogram(final_snapshot->encoded_histogram);
    CHECK_OK(decoded);
    CHECK(BitIdentical(*decoded, SerialReplayAggregate(per_stripe)));
  }
}

// The summary store's ingest carve-out: once every key exists (serial
// EnsureKeys), AddBatch calls on *disjoint* key sets may run concurrently —
// writers touch disjoint plane slices, and the one shared mutation
// (lazily deepening a chunk's ladder by a level plane) is CAS-published.
// Threads share chunks (keys are interleaved across them round-robin by
// allocation order) and run enough batches that ladders deepen mid-run, so
// TSan sees the plane-publication race window.  Afterwards every key must
// be bit-identical to a serial replay into a second store.
TEST(StoreConcurrentAddBatchDisjointKeys) {
  constexpr int kThreads = 4;
  constexpr size_t kKeysPerThread = 96;  // 384 keys: two chunks, shared
  constexpr int kBatchesPerThread = 12;
  constexpr size_t kBatchSamples = 3000;

  ArchetypeConfig config;
  config.domain_size = kDomain;
  config.k = kK;
  config.window_capacity = 32;

  auto concurrent = SummaryStore::Create(config);
  CHECK_OK(concurrent);
  auto serial = SummaryStore::Create(config);
  CHECK_OK(serial);

  // Key t*1000+i belongs to thread t; creation is serial and interleaved
  // across threads so each chunk's slots mix owners.
  std::vector<uint64_t> all_keys;
  for (size_t i = 0; i < kKeysPerThread; ++i) {
    for (int t = 0; t < kThreads; ++t) {
      all_keys.push_back(static_cast<uint64_t>(t) * 1000 + i);
    }
  }
  CHECK(concurrent->EnsureKeys(all_keys).ok());
  CHECK(serial->EnsureKeys(all_keys).ok());

  // Pre-built batches: thread t ingests only its own keys.
  std::vector<std::vector<std::vector<KeyedSample>>> batches(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(0x5000 + static_cast<uint64_t>(t));
    batches[static_cast<size_t>(t)].resize(kBatchesPerThread);
    for (auto& batch : batches[static_cast<size_t>(t)]) {
      batch.resize(kBatchSamples);
      for (KeyedSample& sample : batch) {
        sample.key = static_cast<uint64_t>(t) * 1000 +
                     static_cast<uint64_t>(
                         rng.UniformInt(static_cast<int64_t>(kKeysPerThread)));
        sample.value = rng.UniformInt(kDomain);
      }
    }
  }

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const auto& batch : batches[static_cast<size_t>(t)]) {
        if (!concurrent->AddBatch(batch).ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  CHECK(!failed.load());

  for (int t = 0; t < kThreads; ++t) {
    for (const auto& batch : batches[static_cast<size_t>(t)]) {
      CHECK(serial->AddBatch(batch).ok());
    }
  }
  for (uint64_t key : all_keys) {
    auto concurrent_view = concurrent->Query(key);
    CHECK_OK(concurrent_view);
    auto serial_view = serial->Query(key);
    CHECK_OK(serial_view);
    CHECK(BitIdentical(*concurrent_view, *serial_view));
    CHECK(concurrent->NumSamples(key).value() ==
          serial->NumSamples(key).value());
  }
}

}  // namespace
}  // namespace fasthist
