#include <vector>

#include "data/dow.h"
#include "data/generators.h"
#include "tests/fasthist_test.h"

namespace fasthist {
namespace {

TEST(GeneratorsAreDeterministicAndSized) {
  const std::vector<double> hist = MakeHistDataset();
  const std::vector<double> poly = MakePolyDataset();
  const std::vector<double> dow = MakeDowDataset();
  CHECK(hist.size() == 1000);
  CHECK(poly.size() == 4000);
  CHECK(dow.size() == 16384);

  CHECK(MakeHistDataset() == hist);
  CHECK(MakePolyDataset() == poly);
  CHECK(MakeDowDataset() == dow);

  PolyDatasetOptions alt;
  alt.domain_size = 4000;
  alt.seed = 99;
  CHECK(MakePolyDataset(alt) != poly);

  HistDatasetOptions small;
  small.domain_size = 2000;
  CHECK(MakeHistDataset(small).size() == 2000);

  // Dow values stay strictly positive (normalizable, equi-depth safe).
  for (double v : dow) CHECK(v > 0.0);
}

TEST(SubsampleUniformStrides) {
  const std::vector<double> data{0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};
  auto by2 = SubsampleUniform(data, 2);
  CHECK_OK(by2);
  CHECK((*by2 == std::vector<double>{0.0, 2.0, 4.0, 6.0}));
  auto by3 = SubsampleUniform(data, 3);
  CHECK_OK(by3);
  CHECK((*by3 == std::vector<double>{0.0, 3.0, 6.0}));
  auto by1 = SubsampleUniform(data, 1);
  CHECK_OK(by1);
  CHECK(*by1 == data);
  CHECK(!SubsampleUniform(data, 0).ok());
  CHECK(!SubsampleUniform({}, 2).ok());

  // The learning benches rely on 4000/4 and 16384/16 landing near 1000.
  CHECK(SubsampleUniform(MakePolyDataset(), 4)->size() == 1000);
  CHECK(SubsampleUniform(MakeDowDataset(), 16)->size() == 1024);
}

}  // namespace
}  // namespace fasthist
