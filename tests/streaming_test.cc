// Satellite task: StreamingHistogramBuilder snapshots must match the batch
// pipeline (EmpiricalDistribution + ConstructHistogram over all samples)
// within tolerance, across buffer sizes 512 / 4096 / 32768.

#include <cmath>
#include <vector>

#include "core/merging.h"
#include "core/streaming.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "dist/l2.h"
#include "tests/fasthist_test.h"
#include "util/random.h"

namespace fasthist {
namespace {

// Shared fixture: 100k samples from a hist-shaped distribution on [2000].
const std::vector<int64_t>& Samples() {
  static const std::vector<int64_t>* samples = [] {
    HistDatasetOptions options;
    options.domain_size = 2000;
    auto p = NormalizeToDistribution(MakeHistDataset(options)).value();
    auto sampler = AliasSampler::Create(p).value();
    Rng rng(424242);
    return new std::vector<int64_t>(sampler.SampleMany(100000, &rng));
  }();
  return *samples;
}

void CheckStreamingMatchesBatch(size_t buffer_capacity) {
  const int64_t domain = 2000;
  const int64_t k = 10;
  const std::vector<int64_t>& samples = Samples();

  auto builder = StreamingHistogramBuilder::Create(domain, k, buffer_capacity);
  CHECK_OK(builder);
  CHECK(builder->AddMany(samples).ok());
  CHECK(builder->num_samples() == static_cast<int64_t>(samples.size()));
  auto snapshot = builder->Snapshot();
  CHECK_OK(snapshot);
  CHECK_NEAR(snapshot->TotalMass(), 1.0, 1e-6);

  auto empirical = EmpiricalDistribution(domain, samples);
  CHECK_OK(empirical);
  auto batch = ConstructHistogram(*empirical, k);
  CHECK_OK(batch);

  // Both summaries approximate the same empirical distribution; the
  // streaming one pays a bounded extra error per merge level (Lemma 4.2).
  const double streaming_err =
      std::sqrt(snapshot->L2DistanceSquaredTo(*empirical));
  const double batch_err = std::sqrt(batch->err_squared);
  CHECK(streaming_err <= 3.0 * batch_err + 0.01);

  // And they are close to each other as functions.
  const double gap_sq = L2DistanceSquared(
      *snapshot, batch->histogram.ToDense());
  CHECK(std::sqrt(gap_sq) <= 0.05);
}

TEST(StreamingMatchesBatchBuffer512) { CheckStreamingMatchesBatch(512); }
TEST(StreamingMatchesBatchBuffer4096) { CheckStreamingMatchesBatch(4096); }
TEST(StreamingMatchesBatchBuffer32768) { CheckStreamingMatchesBatch(32768); }

TEST(StreamingBuilderEdgeCases) {
  auto builder = StreamingHistogramBuilder::Create(100, 3, 16);
  CHECK_OK(builder);
  // Empty snapshot: the uniform distribution.
  auto empty = builder->Snapshot();
  CHECK_OK(empty);
  CHECK_NEAR(empty->TotalMass(), 1.0, 1e-12);
  CHECK_NEAR(empty->ValueAt(50), 0.01, 1e-12);

  CHECK(!builder->Add(-1).ok());
  CHECK(!builder->Add(100).ok());
  CHECK(builder->Add(7).ok());
  // Snapshot mid-buffer flushes and stays reusable.
  auto one = builder->Snapshot();
  CHECK_OK(one);
  CHECK_NEAR(one->TotalMass(), 1.0, 1e-9);
  CHECK(builder->Add(8).ok());
  CHECK(builder->num_samples() == 2);

  CHECK(!StreamingHistogramBuilder::Create(0, 3, 16).ok());
  CHECK(!StreamingHistogramBuilder::Create(100, 0, 16).ok());
  CHECK(!StreamingHistogramBuilder::Create(100, 3, 0).ok());
}

}  // namespace
}  // namespace fasthist
