// Satellite task: StreamingHistogramBuilder snapshots must match the batch
// pipeline (EmpiricalDistribution + ConstructHistogram over all samples)
// within tolerance, across buffer sizes 512 / 4096 / 32768.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "core/merging.h"
#include "core/streaming.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "dist/l2.h"
#include "tests/fasthist_test.h"
#include "tests/histogram_testutil.h"
#include "util/random.h"

namespace fasthist {
namespace {

// Shared fixture: 100k samples from a hist-shaped distribution on [2000].
const std::vector<int64_t>& Samples() {
  static const std::vector<int64_t>* samples = [] {
    HistDatasetOptions options;
    options.domain_size = 2000;
    auto p = NormalizeToDistribution(MakeHistDataset(options)).value();
    auto sampler = AliasSampler::Create(p).value();
    Rng rng(424242);
    return new std::vector<int64_t>(sampler.SampleMany(100000, &rng));
  }();
  return *samples;
}

void CheckStreamingMatchesBatch(size_t buffer_capacity) {
  const int64_t domain = 2000;
  const int64_t k = 10;
  const std::vector<int64_t>& samples = Samples();

  auto builder = StreamingHistogramBuilder::Create(domain, k, buffer_capacity);
  CHECK_OK(builder);
  CHECK(builder->AddMany(samples).ok());
  CHECK(builder->num_samples() == static_cast<int64_t>(samples.size()));
  auto snapshot = builder->Snapshot();
  CHECK_OK(snapshot);
  CHECK_NEAR(snapshot->TotalMass(), 1.0, 1e-6);

  auto empirical = EmpiricalDistribution(domain, samples);
  CHECK_OK(empirical);
  auto batch = ConstructHistogram(*empirical, k);
  CHECK_OK(batch);

  // Both summaries approximate the same empirical distribution; the
  // streaming one pays a bounded extra error per merge level (Lemma 4.2).
  const double streaming_err =
      std::sqrt(snapshot->L2DistanceSquaredTo(*empirical));
  const double batch_err = std::sqrt(batch->err_squared);
  CHECK(streaming_err <= 3.0 * batch_err + 0.01);

  // And they are close to each other as functions.
  const double gap_sq = L2DistanceSquared(
      *snapshot, batch->histogram.ToDense());
  CHECK(std::sqrt(gap_sq) <= 0.05);
}

TEST(StreamingMatchesBatchBuffer512) { CheckStreamingMatchesBatch(512); }
TEST(StreamingMatchesBatchBuffer4096) { CheckStreamingMatchesBatch(4096); }
TEST(StreamingMatchesBatchBuffer32768) { CheckStreamingMatchesBatch(32768); }

TEST(StreamingBuilderEdgeCases) {
  auto builder = StreamingHistogramBuilder::Create(100, 3, 16);
  CHECK_OK(builder);
  // Empty snapshot: the uniform distribution.
  auto empty = builder->Snapshot();
  CHECK_OK(empty);
  CHECK_NEAR(empty->TotalMass(), 1.0, 1e-12);
  CHECK_NEAR(empty->ValueAt(50), 0.01, 1e-12);

  CHECK(!builder->Add(-1).ok());
  CHECK(!builder->Add(100).ok());
  CHECK(builder->Add(7).ok());
  // Snapshot mid-buffer flushes and stays reusable.
  auto one = builder->Snapshot();
  CHECK_OK(one);
  CHECK_NEAR(one->TotalMass(), 1.0, 1e-9);
  CHECK(builder->Add(8).ok());
  CHECK(builder->num_samples() == 2);

  CHECK(!StreamingHistogramBuilder::Create(0, 3, 16).ok());
  CHECK(!StreamingHistogramBuilder::Create(100, 0, 16).ok());
  CHECK(!StreamingHistogramBuilder::Create(100, 3, 0).ok());
}

using ::fasthist::testing::BitIdentical;

TEST(StreamingPeekMatchesSnapshotWithoutMutating) {
  const int64_t domain = 2000;
  const std::vector<int64_t>& samples = Samples();
  // 10000 samples into a 512 buffer: 19 flushes plus a 272-sample partial
  // buffer, so Peek has to condense and fold without committing.
  const std::vector<int64_t> stream(samples.begin(), samples.begin() + 10000);

  auto builder = StreamingHistogramBuilder::Create(domain, 10, 512);
  CHECK_OK(builder);
  // Empty builder: Peek is the uniform distribution, like Snapshot.
  auto empty_peek = builder->Peek();
  CHECK_OK(empty_peek);
  CHECK_NEAR(empty_peek->ValueAt(50), 1.0 / 2000.0, 1e-15);

  CHECK(builder->AddMany(stream).ok());
  auto peek = builder->Peek();
  CHECK_OK(peek);
  // No mutation: the sample count is unchanged and a shadow builder that
  // never peeked stays bit-identical from here on.
  CHECK(builder->num_samples() == 10000);
  auto shadow = StreamingHistogramBuilder::Create(domain, 10, 512);
  CHECK_OK(shadow);
  CHECK(shadow->AddMany(stream).ok());

  // Peek == the snapshot both builders would produce.
  auto snapshot = builder->Snapshot();
  CHECK_OK(snapshot);
  CHECK(BitIdentical(*peek, *snapshot));

  // The peeked builder's snapshot equals the never-peeked one's...
  auto shadow_snapshot = shadow->Snapshot();
  CHECK_OK(shadow_snapshot);
  CHECK(BitIdentical(*snapshot, *shadow_snapshot));
  // ...and keeps matching after further ingest on both.
  const std::vector<int64_t> more(samples.begin() + 10000,
                                  samples.begin() + 12000);
  CHECK(builder->AddMany(more).ok());
  CHECK(shadow->AddMany(more).ok());
  CHECK(BitIdentical(*builder->Peek(), *shadow->Snapshot()));
}

TEST(StreamingAddManyBitIdenticalToAddLoop) {
  const int64_t domain = 2000;
  const std::vector<int64_t>& samples = Samples();
  const std::vector<int64_t> stream(samples.begin(), samples.begin() + 20000);

  // Buffer sizes around, below, and above the stream length, including a
  // capacity that divides the stream exactly and a degenerate size-1 buffer.
  for (const size_t capacity : {size_t{1}, size_t{7}, size_t{500},
                                size_t{512}, size_t{30000}}) {
    auto bulk = StreamingHistogramBuilder::Create(domain, 10, capacity);
    CHECK_OK(bulk);
    CHECK(bulk->AddMany(stream).ok());

    auto loop = StreamingHistogramBuilder::Create(domain, 10, capacity);
    CHECK_OK(loop);
    for (const int64_t sample : stream) CHECK(loop->Add(sample).ok());

    CHECK(bulk->num_samples() == loop->num_samples());
    auto bulk_snapshot = bulk->Snapshot();
    CHECK_OK(bulk_snapshot);
    auto loop_snapshot = loop->Snapshot();
    CHECK_OK(loop_snapshot);
    CHECK(BitIdentical(*bulk_snapshot, *loop_snapshot));
  }

  // A mid-batch out-of-domain sample leaves both paths in the same state:
  // the valid prefix ingested (flushes included), the bad sample rejected.
  std::vector<int64_t> poisoned(stream.begin(), stream.begin() + 2000);
  poisoned[1000] = domain;  // out of domain
  auto bulk = StreamingHistogramBuilder::Create(domain, 10, 512);
  CHECK_OK(bulk);
  CHECK(!bulk->AddMany(poisoned).ok());
  auto loop = StreamingHistogramBuilder::Create(domain, 10, 512);
  CHECK_OK(loop);
  Status loop_status = Status::Ok();
  for (const int64_t sample : poisoned) {
    loop_status = loop->Add(sample);
    if (!loop_status.ok()) break;
  }
  CHECK(!loop_status.ok());
  CHECK(bulk->num_samples() == 1000);
  CHECK(loop->num_samples() == 1000);
  CHECK(BitIdentical(*bulk->Snapshot(), *loop->Snapshot()));
}

TEST(StreamingSpanIngestFromRawSlices) {
  const int64_t domain = 2000;
  const std::vector<int64_t>& samples = Samples();
  const std::vector<int64_t> stream(samples.begin(), samples.begin() + 6000);

  // Spans over raw pointer slices (the network/decode-buffer caller) must
  // land bit-identically to one vector AddMany of the whole stream.
  auto sliced = StreamingHistogramBuilder::Create(domain, 10, 512);
  CHECK_OK(sliced);
  Rng rng(2026);
  size_t offset = 0;
  while (offset < stream.size()) {
    const size_t batch = std::min(
        static_cast<size_t>(1 + rng.UniformInt(900)), stream.size() - offset);
    CHECK(sliced
              ->AddMany(Span<const int64_t>(stream.data() + offset, batch))
              .ok());
    offset += batch;
  }
  auto whole = StreamingHistogramBuilder::Create(domain, 10, 512);
  CHECK_OK(whole);
  CHECK(whole->AddMany(stream).ok());
  CHECK(sliced->num_samples() == whole->num_samples());
  // Snapshot commits the buffered tail into the ladder, so capture whole's
  // view once and compare every reader against that same cut.
  auto whole_snapshot = whole->Snapshot();
  CHECK_OK(whole_snapshot);
  CHECK(BitIdentical(*sliced->Snapshot(), *whole_snapshot));

  // Subspan views compose: front half + back half == the whole.
  Span<const int64_t> view(stream);
  auto halves = StreamingHistogramBuilder::Create(domain, 10, 512);
  CHECK_OK(halves);
  CHECK(halves->AddMany(view.subspan(0, 3000)).ok());
  CHECK(halves->AddMany(view.subspan(3000, stream.size())).ok());
  CHECK(BitIdentical(*halves->Snapshot(), *whole_snapshot));
}

TEST(StreamingGenerationCountsCommittedCondenses) {
  const std::vector<int64_t>& samples = Samples();
  auto builder = StreamingHistogramBuilder::Create(2000, 10, 100);
  CHECK_OK(builder);
  CHECK(builder->generation() == 0);
  CHECK(builder->buffer_capacity() == 100);

  // 250 samples through a 100 buffer: two committed condenses, 50 buffered.
  // The dyadic carry merged the two flushes into one level-1 slot.
  CHECK(builder->AddMany({samples.data(), 250}).ok());
  CHECK(builder->generation() == 2);
  CHECK(builder->buffered() == 50);
  CHECK(builder->summarized_count() == 200);
  auto committed = builder->CommittedSummary();
  CHECK_OK(committed);
  CHECK(committed->num_pieces() > 0);
  CHECK(builder->ladder_depth() == 2);   // level-1 slot occupied
  CHECK(builder->ladder_slots() == 1);
  CHECK(builder->error_levels() == 3);   // depth 2 + one read-fold pass

  // Peek never bumps the generation; Snapshot's flush of a non-empty
  // buffer bumps it exactly once; flushing an empty buffer never does.
  CHECK_OK(builder->Peek());
  CHECK(builder->generation() == 2);
  CHECK_OK(builder->Snapshot());
  CHECK(builder->generation() == 3);
  CHECK(builder->buffered() == 0);
  // F = 3 = 0b11: slots at levels 0 and 1, chained by the read fold.
  CHECK(builder->ladder_depth() == 2);
  CHECK(builder->ladder_slots() == 2);
  CHECK(builder->error_levels() == 3);
  CHECK_OK(builder->Snapshot());
  CHECK(builder->generation() == 3);

  // A fresh builder has no levels at all; buffering alone costs one.
  auto fresh = StreamingHistogramBuilder::Create(2000, 10, 100);
  CHECK_OK(fresh);
  CHECK(fresh->error_levels() == 0);
  CHECK(!fresh->CommittedSummary().ok());
  CHECK(fresh->Add(3).ok());
  CHECK(fresh->error_levels() == 1);  // one condense, nothing to chain
}

TEST(StreamingFoldBufferMatchesPeek) {
  const int64_t domain = 2000;
  const int64_t k = 10;
  const std::vector<int64_t>& samples = Samples();
  auto builder = StreamingHistogramBuilder::Create(domain, k, 512);
  CHECK_OK(builder);
  CHECK(builder->AddMany({samples.data(), 1200}).ok());
  CHECK(builder->buffered() == 176);  // 1200 = 2 * 512 + 176

  // The static fold on hand-copied builder state (what the striped
  // ingestor's export runs on its seqlock-consistent stripe copies) is
  // bit-identical to the builder's own Peek: CommittedSummary is the exact
  // prefix of the Peek chain, so folding the window copy onto it lands on
  // the same bits.
  const std::vector<int64_t> window(samples.begin() + 1024,
                                    samples.begin() + 1200);
  auto committed = builder->CommittedSummary();
  CHECK_OK(committed);
  auto folded = StreamingHistogramBuilder::FoldBufferIntoSummary(
      &*committed, builder->summarized_count(), window, domain, k,
      builder->options());
  CHECK_OK(folded);
  CHECK(BitIdentical(*folded, *builder->Peek()));

  // With no prior summary the fold is just the batch construction — the
  // state of a stripe that has never condensed.
  auto fresh = StreamingHistogramBuilder::Create(domain, k, 512);
  CHECK_OK(fresh);
  CHECK(fresh->AddMany({samples.data(), 176}).ok());
  auto batch_only = StreamingHistogramBuilder::FoldBufferIntoSummary(
      nullptr, 0, {samples.data(), 176}, domain, k, fresh->options());
  CHECK_OK(batch_only);
  CHECK(BitIdentical(*batch_only, *fresh->Peek()));
}

TEST(StreamingLadderMatchesDyadicMirrorAndSlowPath) {
  // A from-first-principles mirror of the dyadic ladder, built with the
  // SLOW construction path (sort-based ConstructHistogram) and explicit
  // MergeHistograms calls.  Bit-identity of the mirror's read fold against
  // the builder's Peek proves three things at once: the commit schedule is
  // exactly binary-carry, the read fold is exactly highest-slot-first, and
  // fast == slow construction holds through every ladder level.
  const int64_t domain = 2000;
  const int64_t k = 8;
  const size_t b = 64;
  const std::vector<int64_t>& samples = Samples();
  const MergingOptions options;

  auto builder = StreamingHistogramBuilder::Create(domain, k, b, options);
  CHECK_OK(builder);

  struct Slot {
    Histogram summary;
    int64_t count = 0;
  };
  std::vector<Slot> slots;
  std::vector<int64_t> buffer;

  const size_t total = 2400;  // 37 flushes (0b100101) + 32 buffered
  size_t flushes = 0;
  for (size_t i = 0; i < total; ++i) {
    CHECK(builder->Add(samples[i]).ok());
    buffer.push_back(samples[i]);
    if (buffer.size() < b) continue;
    auto empirical = EmpiricalDistribution(domain, buffer);
    CHECK_OK(empirical);
    auto leaf = ConstructHistogram(*empirical, k, options);  // slow path
    CHECK_OK(leaf);
    Histogram carry = std::move(leaf->histogram);
    int64_t carry_count = static_cast<int64_t>(b);
    size_t level = 0;
    while (level < slots.size() && slots[level].count > 0) {
      auto merged = MergeHistograms(
          slots[level].summary, static_cast<double>(slots[level].count),
          carry, static_cast<double>(carry_count), k, options);
      CHECK_OK(merged);
      carry = std::move(merged).value();
      carry_count += slots[level].count;
      slots[level] = Slot{};
      ++level;
    }
    if (level == slots.size()) slots.emplace_back();
    slots[level] = {std::move(carry), carry_count};
    buffer.clear();
    ++flushes;
    // The logarithmic guarantee, checked after every flush: never more
    // than ceil(log2 F) + 2 levels no matter how long the stream runs.
    int cap = 2;
    while ((size_t{1} << (cap - 2)) < flushes) ++cap;
    CHECK(builder->error_levels() <= cap);
  }
  CHECK(flushes == 37);

  // Structural accounting matches the mirror's occupancy exactly.
  int depth = 0;
  int live = 0;
  for (size_t level = 0; level < slots.size(); ++level) {
    if (slots[level].count > 0) {
      depth = static_cast<int>(level) + 1;
      ++live;
    }
  }
  CHECK(builder->ladder_depth() == depth);
  CHECK(builder->ladder_slots() == live);
  const int sources = live + (buffer.empty() ? 0 : 1);
  const int deepest = std::max(depth, buffer.empty() ? 0 : 1);
  CHECK(builder->error_levels() == deepest + (sources > 1 ? 1 : 0));

  // Mirror read fold: live slots highest level first, then the buffered
  // remainder condensed (slow path) and chained on.
  Histogram fold;
  int64_t fold_count = 0;
  for (size_t level = slots.size(); level > 0; --level) {
    const Slot& slot = slots[level - 1];
    if (slot.count == 0) continue;
    if (fold_count == 0) {
      fold = slot.summary;
      fold_count = slot.count;
      continue;
    }
    auto merged = MergeHistograms(fold, static_cast<double>(fold_count),
                                  slot.summary,
                                  static_cast<double>(slot.count), k, options);
    CHECK_OK(merged);
    fold = std::move(merged).value();
    fold_count += slot.count;
  }
  if (!buffer.empty()) {
    auto empirical = EmpiricalDistribution(domain, buffer);
    CHECK_OK(empirical);
    auto tail = ConstructHistogram(*empirical, k, options);  // slow path
    CHECK_OK(tail);
    auto merged = MergeHistograms(fold, static_cast<double>(fold_count),
                                  tail->histogram,
                                  static_cast<double>(buffer.size()), k,
                                  options);
    CHECK_OK(merged);
    fold = std::move(merged).value();
  }
  auto peek = builder->Peek();
  CHECK_OK(peek);
  CHECK(BitIdentical(fold, *peek));

  // Snapshot on a copy == Peek on the original: the snapshot's value is
  // the pre-commit read fold by construction, and the original builder is
  // untouched by the copy's flush.
  auto copy = *builder;
  auto snapshot = copy.Snapshot();
  CHECK_OK(snapshot);
  CHECK(BitIdentical(*snapshot, *peek));
  CHECK(builder->buffered() == 32);
  CHECK(copy.buffered() == 0);
  CHECK(copy.generation() == builder->generation() + 1);
}

// After Reset() a builder is observationally identical to a freshly
// created one: every counter back to zero, and a re-fed stream produces
// bit-identical summaries at every probe point — including when the ladder
// was deep and the buffer mid-window at the moment of the Reset.
TEST(StreamingResetMatchesFreshBuilder) {
  const int64_t domain = 2000;
  const int64_t k = 10;
  const size_t buffer = 256;
  const std::vector<int64_t>& samples = Samples();
  const Span<const int64_t> first_epoch(samples.data(), 10 * buffer + 100);
  const Span<const int64_t> second_epoch(samples.data() + first_epoch.size(),
                                         7 * buffer + 31);

  auto recycled = StreamingHistogramBuilder::Create(domain, k, buffer);
  CHECK_OK(recycled);
  CHECK(recycled->AddMany(first_epoch).ok());
  CHECK(recycled->ladder_depth() > 1);  // the Reset really has state to drop
  CHECK(recycled->buffered() == 100);
  recycled->Reset();

  CHECK(recycled->num_samples() == 0);
  CHECK(recycled->buffered() == 0);
  CHECK(recycled->generation() == 0);
  CHECK(recycled->ladder_depth() == 0);
  CHECK(recycled->ladder_slots() == 0);
  CHECK(recycled->error_levels() == 0);
  auto empty_peek = recycled->Peek();
  CHECK_OK(empty_peek);
  CHECK_NEAR(empty_peek->TotalMass(), 1.0, 1e-12);  // uniform, like fresh

  auto fresh = StreamingHistogramBuilder::Create(domain, k, buffer);
  CHECK_OK(fresh);
  size_t fed = 0;
  while (fed < second_epoch.size()) {
    const size_t step = std::min<size_t>(97, second_epoch.size() - fed);
    const Span<const int64_t> slice(second_epoch.data() + fed, step);
    CHECK(recycled->AddMany(slice).ok());
    CHECK(fresh->AddMany(slice).ok());
    fed += step;
  }
  CHECK(recycled->num_samples() == fresh->num_samples());
  CHECK(recycled->generation() == fresh->generation());
  CHECK(recycled->error_levels() == fresh->error_levels());
  auto recycled_peek = recycled->Peek();
  CHECK_OK(recycled_peek);
  auto fresh_peek = fresh->Peek();
  CHECK_OK(fresh_peek);
  CHECK(BitIdentical(*recycled_peek, *fresh_peek));
}

}  // namespace
}  // namespace fasthist
