#include <cmath>
#include <vector>

#include "baseline/ahist.h"
#include "baseline/dual_greedy.h"
#include "baseline/equi.h"
#include "baseline/exact_dp.h"
#include "baseline/exact_poly_dp.h"
#include "baseline/wavelet.h"
#include "data/generators.h"
#include "tests/fasthist_test.h"

namespace fasthist {
namespace {

std::vector<double> PiecewiseConstantData() {
  std::vector<double> data;
  for (double level : {2.0, 9.0, 4.0}) {
    for (int i = 0; i < 20; ++i) data.push_back(level);
  }
  return data;
}

TEST(ExactDpIsOptimal) {
  const std::vector<double> data = PiecewiseConstantData();
  // k >= true piece count: exact recovery.
  auto exact = VOptimalHistogram(data, 3);
  CHECK_OK(exact);
  CHECK_NEAR(exact->err_squared, 0.0, 1e-9);
  CHECK(exact->histogram.num_pieces() == 3);
  CHECK_NEAR(exact->histogram.pieces()[0].value, 2.0, 1e-12);
  CHECK_NEAR(exact->histogram.pieces()[1].value, 9.0, 1e-12);
  // k below the true piece count: strictly positive error, and OptK agrees
  // with the witness-producing variant.
  auto under = VOptimalHistogram(data, 2);
  CHECK_OK(under);
  CHECK(under->err_squared > 1.0);
  CHECK_NEAR(*OptK(data, 2), std::sqrt(under->err_squared), 1e-9);
  // More pieces never hurt.
  CHECK(*OptK(data, 5) <= *OptK(data, 2) + 1e-12);
  CHECK(!VOptimalHistogram({}, 3).ok());
  CHECK(!VOptimalHistogram(data, 0).ok());
}

TEST(ExactPolyDpMatchesVOptimalAtDegreeZero) {
  // At degree 0 the polynomial DP must reproduce the flat V-optimal DP:
  // same optimal error through a completely different cost oracle
  // (Gram-basis projection vs prefix moments).
  HistDatasetOptions options;
  options.domain_size = 120;
  const std::vector<double> data = MakeHistDataset(options);
  for (int64_t k : {2, 4, 7}) {
    auto poly = ExactPiecewisePolyDp(data, k, 0);
    auto flat = VOptimalHistogram(data, k);
    CHECK_OK(poly);
    CHECK_OK(flat);
    CHECK_NEAR(poly->err_squared, flat->err_squared,
               1e-9 * (1.0 + flat->err_squared));
    CHECK_NEAR(*PolyOptK(data, k, 0), std::sqrt(poly->err_squared), 1e-9);
  }
}

TEST(ExactPolyDpIsOptimalOnPolynomialData) {
  // Three quadratic arcs with jumps between them: the degree-2 DP at k=3
  // must recover the partition exactly (error ~0), while fewer pieces or a
  // lower degree must leave a real residual; more of either never hurts.
  std::vector<double> data;
  const double shifts[] = {0.0, 30.0, -25.0};
  for (int arc = 0; arc < 3; ++arc) {
    for (int i = 0; i < 25; ++i) {
      const double t = static_cast<double>(i) / 25.0;
      data.push_back(shifts[arc] + 8.0 * t - 12.0 * t * t);
    }
  }
  auto exact = ExactPiecewisePolyDp(data, 3, 2);
  CHECK_OK(exact);
  CHECK_NEAR(exact->err_squared, 0.0, 1e-9);
  CHECK(exact->function.num_pieces() <= 3);
  const std::vector<double> fitted = exact->function.ToDense();
  for (size_t i = 0; i < data.size(); ++i) {
    CHECK_NEAR(fitted[i], data[i], 1e-6);
  }

  CHECK(*PolyOptK(data, 2, 2) > 1.0);
  CHECK(*PolyOptK(data, 3, 1) > 1.0);
  CHECK(*PolyOptK(data, 4, 2) <= *PolyOptK(data, 3, 2) + 1e-12);
  CHECK(*PolyOptK(data, 3, 3) <= *PolyOptK(data, 3, 2) + 1e-12);

  CHECK(!ExactPiecewisePolyDp({}, 3, 2).ok());
  CHECK(!ExactPiecewisePolyDp(data, 0, 2).ok());
  CHECK(!ExactPiecewisePolyDp(data, 3, -1).ok());
}

TEST(EquiHistogramsPartitionSanely) {
  HistDatasetOptions options;
  options.domain_size = 500;
  const std::vector<double> data = MakeHistDataset(options);

  auto width = EquiWidthHistogram(data, 7);
  CHECK_OK(width);
  CHECK(width->num_pieces() == 7);
  for (const HistogramPiece& piece : width->pieces()) {
    CHECK(piece.interval.length() >= 500 / 7);
    CHECK(piece.interval.length() <= 500 / 7 + 1);
  }

  auto depth = EquiDepthHistogram(data, 7);
  CHECK_OK(depth);
  CHECK(depth->num_pieces() == 7);
  // Near-equal mass per bucket (data is bounded away from 0, so the
  // quantile cuts can land at most one element off).
  const double total = depth->TotalMass();
  for (const HistogramPiece& piece : depth->pieces()) {
    const double mass =
        piece.value * static_cast<double>(piece.interval.length());
    CHECK(mass > 0.5 * total / 7);
    CHECK(mass < 2.0 * total / 7);
  }
  CHECK(!EquiDepthHistogram({1.0, -2.0}, 2).ok());
}

TEST(WaveletTopBIsOrthonormalAndImproves) {
  const std::vector<double> data = MakePolyDataset();
  auto coarse = TopBWaveletSynopsis(data, 4);
  auto fine = TopBWaveletSynopsis(data, 64);
  CHECK_OK(coarse);
  CHECK_OK(fine);
  CHECK(coarse->coefficients.size() == 4);
  CHECK(fine->err_squared <= coarse->err_squared + 1e-9);

  // Keeping every coefficient reconstructs exactly (orthonormal basis).
  auto all = TopBWaveletSynopsis(data, 1 << 12);
  CHECK_OK(all);
  CHECK_NEAR(all->err_squared, 0.0, 1e-6);

  // err_squared matches the reconstruction it ships.
  double direct = 0.0;
  for (size_t i = 0; i < data.size(); ++i) {
    const double d = data[i] - coarse->reconstruction[i];
    direct += d * d;
  }
  CHECK_NEAR(direct, coarse->err_squared, 1e-6 * (1.0 + direct));
}

TEST(AhistStaysWithinDeltaOfExact) {
  HistDatasetOptions options;
  options.domain_size = 300;
  const std::vector<double> data = MakeHistDataset(options);
  for (int64_t k : {4, 8}) {
    auto exact = VOptimalHistogram(data, k);
    CHECK_OK(exact);
    for (double delta : {0.5, 2.0}) {
      auto approx = ApproxVOptimalHistogram(data, k, AhistOptions{delta});
      CHECK_OK(approx);
      CHECK(approx->histogram.num_pieces() <= k);
      CHECK(approx->err_squared >= exact->err_squared - 1e-9);
      CHECK(approx->err_squared <=
            (1.0 + delta) * exact->err_squared + 1e-9);
    }
  }
  CHECK(!ApproxVOptimalHistogram(data, 4, AhistOptions{0.0}).ok());
}

TEST(DualGreedyRespectsBudget) {
  const std::vector<double> flat = PiecewiseConstantData();
  auto exact_fit = DualPrimal(flat, 3);
  CHECK_OK(exact_fit);
  CHECK(exact_fit->histogram.num_pieces() <= 3);
  CHECK_NEAR(exact_fit->err_squared, 0.0, 1e-9);

  HistDatasetOptions options;
  options.domain_size = 400;
  const std::vector<double> noisy = MakeHistDataset(options);
  for (int64_t budget : {5, 11}) {
    auto dual = DualPrimal(noisy, budget);
    CHECK_OK(dual);
    CHECK(dual->histogram.num_pieces() <= budget);
    // Never better than the true optimum at the same budget.
    CHECK(dual->err_squared >= *OptK(noisy, budget) * *OptK(noisy, budget) -
                                   1e-6);
  }
  CHECK(!DualPrimal(noisy, 0).ok());
}

}  // namespace
}  // namespace fasthist
