// The service layer end to end: wire-format round trips and corruption
// handling, shard snapshot export without flushes, the merge tree's
// determinism/accounting contracts, and the query API.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "core/fast_merging.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "service/aggregator.h"
#include "service/merge_tree.h"
#include "service/shard.h"
#include "service/striped_ingestor.h"
#include "service/wire_format.h"
#include "tests/fasthist_test.h"
#include "tests/histogram_testutil.h"
#include "util/random.h"

namespace fasthist {
namespace {

using ::fasthist::testing::BitIdentical;

Histogram RandomHistogram(Rng* rng) {
  const int64_t domain = 1 + rng->UniformInt(5000);
  const int64_t max_pieces = std::min<int64_t>(domain, 64);
  const int64_t num_pieces = 1 + rng->UniformInt(max_pieces);
  // num_pieces - 1 distinct interior cut points.
  std::vector<int64_t> ends;
  while (static_cast<int64_t>(ends.size()) < num_pieces - 1) {
    const int64_t cut = 1 + rng->UniformInt(domain - 1 > 0 ? domain - 1 : 1);
    if (cut < domain &&
        std::find(ends.begin(), ends.end(), cut) == ends.end()) {
      ends.push_back(cut);
    }
  }
  std::sort(ends.begin(), ends.end());
  ends.push_back(domain);
  std::vector<HistogramPiece> pieces;
  int64_t begin = 0;
  for (const int64_t end : ends) {
    // A mix of awkward values: exact dyadics, tiny magnitudes, zeros — all
    // non-negative, since the codec (like every real summary) rejects
    // negative densities at decode.
    double value = std::abs(rng->Gaussian()) * 1e-3;
    if (rng->UniformInt(8) == 0) value = 0.0;
    if (rng->UniformInt(8) == 0) value = 0.125 * rng->UniformInt(32);
    pieces.push_back({{begin, end}, value});
    begin = end;
  }
  return Histogram::Create(domain, std::move(pieces)).value();
}

TEST(WireFormatRoundTripsRandomHistograms) {
  Rng rng(20260730);
  for (int trial = 0; trial < 200; ++trial) {
    const Histogram original = RandomHistogram(&rng);
    const std::vector<uint8_t> encoded = EncodeHistogram(original);
    CHECK(encoded.size() ==
          24 + 16 * static_cast<size_t>(original.num_pieces()));
    auto decoded = DecodeHistogram(encoded);
    CHECK_OK(decoded);
    CHECK(BitIdentical(original, *decoded));
  }
  // And summaries the library actually produces (merging outputs).
  for (int trial = 0; trial < 20; ++trial) {
    const int64_t domain = 500 + rng.UniformInt(2000);
    std::vector<int64_t> samples;
    for (int i = 0; i < 3000; ++i) samples.push_back(rng.UniformInt(domain));
    auto empirical = EmpiricalDistribution(domain, samples);
    CHECK_OK(empirical);
    auto result = ConstructHistogramFast(*empirical, 1 + rng.UniformInt(20));
    CHECK_OK(result);
    auto decoded = DecodeHistogram(EncodeHistogram(result->histogram));
    CHECK_OK(decoded);
    CHECK(BitIdentical(result->histogram, *decoded));
  }
}

TEST(WireFormatRejectsCorruptInput) {
  Rng rng(77);
  const Histogram original = RandomHistogram(&rng);
  const std::vector<uint8_t> valid = EncodeHistogram(original);
  CHECK_OK(DecodeHistogram(valid));

  // Every proper prefix is a truncation and must fail cleanly.
  for (size_t len = 0; len < valid.size(); ++len) {
    CHECK(!DecodeHistogram(valid.data(), len).ok());
  }
  // Trailing garbage.
  {
    std::vector<uint8_t> padded = valid;
    padded.push_back(0);
    CHECK(!DecodeHistogram(padded).ok());
  }
  // Bad magic / bad version.
  {
    std::vector<uint8_t> corrupt = valid;
    corrupt[0] ^= 0xff;
    CHECK(!DecodeHistogram(corrupt).ok());
  }
  {
    std::vector<uint8_t> corrupt = valid;
    corrupt[4] = 0xfe;
    CHECK(!DecodeHistogram(corrupt).ok());
  }
  // Piece-count overflow: a count far past the buffer (and past any sane
  // multiply) must be rejected by the overflow-safe size check.
  {
    std::vector<uint8_t> corrupt = valid;
    for (int i = 0; i < 8; ++i) corrupt[16 + i] = 0xff;
    corrupt[23] = 0x7f;  // num_pieces = int64 max
    CHECK(!DecodeHistogram(corrupt).ok());
  }
  // Zero pieces.
  {
    std::vector<uint8_t> corrupt = valid;
    for (int i = 0; i < 8; ++i) corrupt[16 + i] = 0;
    CHECK(!DecodeHistogram(corrupt).ok());
  }
  // Non-monotone ends (only meaningful with >= 2 pieces).
  if (original.num_pieces() >= 2) {
    std::vector<uint8_t> corrupt = valid;
    for (int i = 0; i < 8; ++i) corrupt[24 + i] = 0;  // first end = 0
    CHECK(!DecodeHistogram(corrupt).ok());
  }
  // First end past the domain.
  {
    std::vector<uint8_t> corrupt = valid;
    for (int i = 0; i < 8; ++i) corrupt[24 + i] = 0xff;
    corrupt[31] = 0x7f;
    CHECK(!DecodeHistogram(corrupt).ok());
  }
  // Value-plane corruption: the structure stays perfectly valid, only a
  // density is replaced by NaN / +Inf / a negative — each must be rejected
  // at the codec boundary, not later inside a merge or a query.
  {
    const size_t value_plane =
        24 + 8 * static_cast<size_t>(original.num_pieces());
    const uint64_t hostile[] = {
        0x7ff8000000000000ull,  // quiet NaN
        0x7ff0000000000000ull,  // +Inf
        0xfff0000000000000ull,  // -Inf
        0xbff0000000000000ull,  // -1.0
        0x8000000000000001ull,  // tiny negative denormal
    };
    for (const uint64_t bits : hostile) {
      std::vector<uint8_t> corrupt = valid;
      for (int i = 0; i < 8; ++i) {
        corrupt[value_plane + static_cast<size_t>(i)] =
            static_cast<uint8_t>(bits >> (8 * i));
      }
      CHECK(!DecodeHistogram(corrupt).ok());
    }
    // Negative zero is bit-distinct but compares >= 0.0: still a valid
    // density, so it round-trips rather than being rejected.
    std::vector<uint8_t> negative_zero = valid;
    for (int i = 0; i < 7; ++i) negative_zero[value_plane + i] = 0;
    negative_zero[value_plane + 7] = 0x80;
    CHECK_OK(DecodeHistogram(negative_zero));
  }
  // Empty and null inputs.
  CHECK(!DecodeHistogram(nullptr, 0).ok());
  CHECK(!DecodeHistogram(std::vector<uint8_t>{}).ok());
}

TEST(SnapshotEnvelopeRoundTripsAndRejectsCorrupt) {
  Rng rng(123);
  const Histogram histogram = RandomHistogram(&rng);
  ShardSnapshot snapshot;
  snapshot.shard_id = 0xabcdef0123456789ull;
  snapshot.num_samples = 424242;
  snapshot.error_levels = 13;
  snapshot.encoded_histogram = EncodeHistogram(histogram);

  const std::vector<uint8_t> encoded = EncodeShardSnapshot(snapshot);
  auto decoded = DecodeShardSnapshot(encoded);
  CHECK_OK(decoded);
  CHECK(decoded->shard_id == snapshot.shard_id);
  CHECK(decoded->num_samples == snapshot.num_samples);
  CHECK(decoded->error_levels == 13);
  CHECK(decoded->encoded_histogram == snapshot.encoded_histogram);
  auto inner = DecodeHistogram(decoded->encoded_histogram);
  CHECK_OK(inner);
  CHECK(BitIdentical(histogram, *inner));

  for (size_t len = 0; len < encoded.size(); ++len) {
    CHECK(!DecodeShardSnapshot(encoded.data(), len).ok());
  }
  {
    std::vector<uint8_t> corrupt = encoded;
    corrupt[0] ^= 0xff;  // magic
    CHECK(!DecodeShardSnapshot(corrupt).ok());
  }
  {
    // A version-1 envelope has no error_levels field; defaulting it would
    // silently under-report the error budget, so v1 is rejected outright.
    std::vector<uint8_t> corrupt = encoded;
    corrupt[4] = 1;
    CHECK(!DecodeShardSnapshot(corrupt).ok());
  }
  {
    std::vector<uint8_t> corrupt = encoded;
    for (int i = 0; i < 8; ++i) corrupt[24 + i] = 0xff;  // error_levels = -1
    CHECK(!DecodeShardSnapshot(corrupt).ok());
  }
  {
    std::vector<uint8_t> corrupt = encoded;
    corrupt[27] = 0x7f;  // error_levels absurdly large (> 2^20)
    CHECK(!DecodeShardSnapshot(corrupt).ok());
  }
  {
    std::vector<uint8_t> corrupt = encoded;
    corrupt[32] ^= 0xff;  // blob size no longer matches
    CHECK(!DecodeShardSnapshot(corrupt).ok());
  }
  {
    // Valid envelope around a corrupted histogram blob.
    std::vector<uint8_t> corrupt = encoded;
    corrupt[40] ^= 0xff;  // embedded histogram magic
    CHECK(!DecodeShardSnapshot(corrupt).ok());
  }
}

// The versioned-decode matrix after the keyed (v3) envelope landed: v1
// stays rejected, an un-keyed snapshot still produces its exact v2 bytes
// (no pre-store producer or consumer sees a single changed bit), and a
// keyed snapshot round-trips its identity through v3.
TEST(SnapshotEnvelopeVersionedDecodeV1V2V3) {
  Rng rng(321);
  const Histogram histogram = RandomHistogram(&rng);
  ShardSnapshot snapshot;
  snapshot.shard_id = 0x1122334455667788ull;
  snapshot.num_samples = 9999;
  snapshot.error_levels = 4;
  snapshot.encoded_histogram = EncodeHistogram(histogram);

  // v2: `keyed` defaults false, and the byte stream is the pre-v3 layout
  // field for field — version word 2, num_samples at offset 16 (no key_id).
  const std::vector<uint8_t> v2 = EncodeShardSnapshot(snapshot);
  CHECK(v2[4] == 2 && v2[5] == 0 && v2[6] == 0 && v2[7] == 0);
  CHECK(v2[16] == 0x0f && v2[17] == 0x27);  // 9999 little-endian
  auto v2_decoded = DecodeShardSnapshot(v2);
  CHECK_OK(v2_decoded);
  CHECK(!v2_decoded->keyed);
  CHECK(v2_decoded->key_id == 0);
  // Decode -> re-encode is the identity on bytes (the regression guard:
  // a keyed-aware middlebox cannot perturb un-keyed traffic).
  CHECK(EncodeShardSnapshot(*v2_decoded) == v2);

  // v1 (no error_levels field) stays rejected outright.
  {
    std::vector<uint8_t> v1 = v2;
    v1[4] = 1;
    CHECK(!DecodeShardSnapshot(v1).ok());
  }

  // v3: keyed identity round-trips; the payload bytes ride unchanged.
  snapshot.keyed = true;
  snapshot.key_id = 0xfeedfacecafebeefull;
  const std::vector<uint8_t> v3 = EncodeShardSnapshot(snapshot);
  CHECK(v3[4] == 3);
  CHECK(v3.size() == v2.size() + 8);  // exactly one extra u64 (key_id)
  auto v3_decoded = DecodeShardSnapshot(v3);
  CHECK_OK(v3_decoded);
  CHECK(v3_decoded->keyed);
  CHECK(v3_decoded->key_id == snapshot.key_id);
  CHECK(v3_decoded->shard_id == snapshot.shard_id);
  CHECK(v3_decoded->num_samples == snapshot.num_samples);
  CHECK(v3_decoded->error_levels == snapshot.error_levels);
  CHECK(v3_decoded->encoded_histogram == snapshot.encoded_histogram);
  CHECK(EncodeShardSnapshot(*v3_decoded) == v3);

  // Truncating v3 at any length fails cleanly (the key_id field widened
  // the header; every prefix must still be a hard error, not a misparse).
  for (size_t len = 0; len < v3.size(); ++len) {
    CHECK(!DecodeShardSnapshot(v3.data(), len).ok());
  }

  // A v2 stream relabeled as v3 shifts every later field by 8 bytes; the
  // blob-size check catches the misalignment.
  {
    std::vector<uint8_t> relabeled = v2;
    relabeled[4] = 3;
    CHECK(!DecodeShardSnapshot(relabeled).ok());
  }

  // Keyed and un-keyed snapshots with the same shard_id are distinct
  // identities to the reducer: both survive as leaves (no dedupe, no
  // conflict), as do two different keys of one shard.
  {
    ShardSnapshot unkeyed = snapshot;
    unkeyed.keyed = false;
    unkeyed.key_id = 0;
    ShardSnapshot other_key = snapshot;
    other_key.key_id = 7;
    auto reduced = ReduceSnapshots({snapshot, unkeyed, other_key}, 8,
                                   MergeTreeOptions());
    CHECK_OK(reduced);
    CHECK(reduced->total_weight == 3.0 * 9999.0);
    // A byte-identical keyed retransmit still dedupes; a conflicting
    // payload under the same (shard, key) identity is still an error.
    auto deduped = ReduceSnapshots({snapshot, snapshot, other_key}, 8,
                                   MergeTreeOptions());
    CHECK_OK(deduped);
    CHECK(deduped->total_weight == 2.0 * 9999.0);
    ShardSnapshot conflicting = snapshot;
    conflicting.num_samples = 1234;
    CHECK(!ReduceSnapshots({snapshot, conflicting}, 8, MergeTreeOptions())
               .ok());
  }
}

TEST(ShardIngestorExportsWithoutFlushing) {
  const int64_t domain = 1000;
  auto p = NormalizeToDistribution(MakeHistDataset({domain, 7, 10, 20.0,
                                                    100.0, 1.0}));
  CHECK_OK(p);
  auto sampler = AliasSampler::Create(*p);
  CHECK_OK(sampler);
  Rng rng(99);
  // 1000 samples with a 256-sample buffer: three flushes + 232 buffered, so
  // the export path exercises the peek-merge of a partial buffer.
  const std::vector<int64_t> samples = sampler->SampleMany(1000, &rng);

  auto ingestor = ShardIngestor::Create(17, domain, 8, 256);
  CHECK_OK(ingestor);
  CHECK_OK(ingestor->ExportSnapshot());  // empty export: uniform, 0 samples
  CHECK(ingestor->ExportSnapshot()->num_samples == 0);
  CHECK(ingestor->ExportSnapshot()->error_levels == 0);  // fabricated summary
  CHECK(ingestor->Ingest(samples).ok());

  auto snapshot = ingestor->ExportSnapshot();
  CHECK_OK(snapshot);
  CHECK(snapshot->shard_id == 17);
  CHECK(snapshot->num_samples == 1000);
  // 3 flushes -> ladder slots at levels 0 and 1 (depth 2), plus the
  // buffered remainder: one read-fold pass over 3 sources = 3 levels.
  CHECK(snapshot->error_levels == 3);
  // Export is read-only: the builder state (partial buffer included) is
  // untouched, so a shadow builder fed the same stream and then snapshotted
  // produces a bit-identical summary.
  CHECK(ingestor->num_samples() == 1000);
  auto shadow = StreamingHistogramBuilder::Create(domain, 8, 256);
  CHECK_OK(shadow);
  CHECK(shadow->AddMany(samples).ok());
  auto shadow_summary = shadow->Snapshot();
  CHECK_OK(shadow_summary);
  auto exported = DecodeHistogram(snapshot->encoded_histogram);
  CHECK_OK(exported);
  CHECK(BitIdentical(*shadow_summary, *exported));
  // And exporting twice is idempotent.
  auto again = ingestor->ExportSnapshot();
  CHECK_OK(again);
  CHECK(again->encoded_histogram == snapshot->encoded_histogram);
}

// Builds N shard snapshots (a few deliberately empty) over one distribution.
std::vector<ShardSnapshot> MakeSnapshots(int64_t num_shards, Rng* rng) {
  const int64_t domain = 512;
  auto p = NormalizeToDistribution(MakeHistDataset({domain, 5, 8, 20.0,
                                                    100.0, 1.0}));
  auto sampler = AliasSampler::Create(*p);
  std::vector<ShardSnapshot> snapshots;
  for (int64_t shard = 0; shard < num_shards; ++shard) {
    auto ingestor = ShardIngestor::Create(static_cast<uint64_t>(shard),
                                          domain, 8, 128);
    if (rng->UniformInt(8) != 0) {  // ~1/8 of shards stay empty
      const size_t count = 200 + static_cast<size_t>(rng->UniformInt(2000));
      CHECK(ingestor->Ingest(sampler->SampleMany(count, rng)).ok());
    }
    snapshots.push_back(std::move(ingestor->ExportSnapshot()).value());
  }
  return snapshots;
}

TEST(MergeTreeBitIdenticalAcrossArrivalAndThreads) {
  Rng rng(20150531);
  for (int trial = 0; trial < 8; ++trial) {
    const int64_t num_shards = 1 + rng.UniformInt(16);
    std::vector<ShardSnapshot> snapshots = MakeSnapshots(num_shards, &rng);
    for (const int fan_in : {2, 4, 8}) {
      MergeTreeOptions serial;
      serial.fan_in = fan_in;
      auto base = ReduceSnapshots(snapshots, 8, serial);
      CHECK_OK(base);

      // Shuffled arrival order + tree-level threading must not change a bit.
      std::vector<ShardSnapshot> shuffled = snapshots;
      for (size_t i = shuffled.size(); i > 1; --i) {
        std::swap(shuffled[i - 1],
                  shuffled[static_cast<size_t>(rng.UniformInt(
                      static_cast<int64_t>(i)))]);
      }
      MergeTreeOptions threaded;
      threaded.fan_in = fan_in;
      threaded.num_threads = 8;
      auto alt = ReduceSnapshots(shuffled, 8, threaded);
      CHECK_OK(alt);

      CHECK(BitIdentical(base->aggregate, alt->aggregate));
      CHECK(base->depth == alt->depth);
      CHECK(base->num_merges == alt->num_merges);
      CHECK(base->total_weight == alt->total_weight);
      if (base->total_weight > 0) {
        CHECK_NEAR(base->aggregate.TotalMass(), 1.0, 1e-6);
      }
    }
  }
}

TEST(MergeTreeDepthAndErrorAccounting) {
  Rng rng(4242);
  // All shards non-empty so the leaf count is exact.
  const int64_t domain = 512;
  auto p = NormalizeToDistribution(MakeHistDataset({domain, 5, 8, 20.0,
                                                    100.0, 1.0}));
  CHECK_OK(p);
  auto sampler = AliasSampler::Create(*p);
  CHECK_OK(sampler);
  for (const int64_t num_shards : {1, 2, 3, 7, 8, 9, 16}) {
    std::vector<ShardSnapshot> snapshots;
    for (int64_t shard = 0; shard < num_shards; ++shard) {
      auto ingestor = ShardIngestor::Create(static_cast<uint64_t>(shard),
                                            domain, 8, 128);
      CHECK_OK(ingestor);
      CHECK(ingestor->Ingest(sampler->SampleMany(500, &rng)).ok());
      snapshots.push_back(std::move(ingestor->ExportSnapshot()).value());
    }
    for (const int fan_in : {2, 4, 8}) {
      MergeTreeOptions options;
      options.fan_in = fan_in;
      auto reduced = ReduceSnapshots(snapshots, 8, options);
      CHECK_OK(reduced);
      // depth = ceil(log_fan_in(N)); num_merges = N - 1 (every reduction
      // tree folds away exactly one summary per merge).
      int expected_depth = 0;
      for (int64_t width = num_shards; width > 1;
           width = (width + fan_in - 1) / fan_in) {
        ++expected_depth;
      }
      CHECK(reduced->depth == expected_depth);
      CHECK(reduced->num_merges == num_shards - 1);
      // Each leaf reports its ladder accounting: 500 samples / 128 buffer =
      // 3 flushes (depth-2 ladder, 2 live slots) + a buffered remainder,
      // so every snapshot arrives with 3 levels and the tree adds depth.
      CHECK(snapshots.front().error_levels == 3);
      CHECK(reduced->error_levels == expected_depth + 3);
      CHECK(reduced->total_weight ==
            static_cast<double>(num_shards) * 500.0);
    }
  }
  // Degenerate inputs.
  CHECK(!ReduceSnapshots({}, 8).ok());
  MergeTreeOptions bad_fan_in;
  bad_fan_in.fan_in = 1;
  std::vector<ShardSnapshot> one = MakeSnapshots(1, &rng);
  CHECK(!ReduceSnapshots(one, 8, bad_fan_in).ok());
  CHECK(!ReduceSummaries({}, 8).ok());

  // All shards empty: the aggregate is the *first* empty shard's summary in
  // canonical (shard id) order, with zero weight and one error level.
  auto empty_a = Histogram::Create(100, {{{0, 100}, 0.01}});
  auto empty_b = Histogram::Create(100, {{{0, 50}, 0.012}, {{50, 100}, 0.008}});
  CHECK_OK(empty_a);
  CHECK_OK(empty_b);
  std::vector<ShardSnapshot> all_empty;
  all_empty.push_back({7, 0, 0, EncodeHistogram(*empty_b)});  // higher id first
  all_empty.push_back({3, 0, 0, EncodeHistogram(*empty_a)});
  auto empty_reduced = ReduceSnapshots(all_empty, 8);
  CHECK_OK(empty_reduced);
  CHECK(BitIdentical(empty_reduced->aggregate, *empty_a));
  CHECK(empty_reduced->total_weight == 0.0);
  CHECK(empty_reduced->depth == 0);
  CHECK(empty_reduced->error_levels == 1);
}

TEST(MergeTreeSkipsEmptyShardSnapshotsEarly) {
  // Zero-sample shards are skipped before their payload is decoded: a
  // mixed fleet reduces bit-identically to the busy shards alone, and a
  // corrupt payload riding in an empty envelope is never even parsed.
  auto h1 = Histogram::Create(100, {{{0, 40}, 0.02}, {{40, 100}, 0.005}});
  auto h2 = Histogram::Create(100, {{{0, 70}, 0.01}, {{70, 100}, 0.01}});
  auto h3 = Histogram::Create(100, {{{0, 100}, 0.01}});
  CHECK_OK(h1);
  CHECK_OK(h2);
  CHECK_OK(h3);
  std::vector<ShardSnapshot> busy;
  busy.push_back({1, 300, 1, EncodeHistogram(*h1)});
  busy.push_back({4, 100, 1, EncodeHistogram(*h2)});
  busy.push_back({6, 200, 1, EncodeHistogram(*h3)});
  std::vector<ShardSnapshot> fleet = busy;
  fleet.push_back({2, 0, 0, EncodeHistogram(*h3)});        // idle, valid
  fleet.push_back({5, 0, 0, {0xde, 0xad, 0xbe, 0xef}});    // idle, corrupt
  fleet.push_back({7, 0, 0, {}});                          // idle, no bytes
  for (const int fan_in : {2, 4}) {
    MergeTreeOptions options;
    options.fan_in = fan_in;
    auto with_idle = ReduceSnapshots(fleet, 8, options);
    auto without_idle = ReduceSnapshots(busy, 8, options);
    CHECK_OK(with_idle);
    CHECK_OK(without_idle);
    CHECK(BitIdentical(with_idle->aggregate, without_idle->aggregate));
    CHECK(with_idle->depth == without_idle->depth);
    CHECK(with_idle->num_merges == without_idle->num_merges);
    CHECK(with_idle->total_weight == 600.0);
    CHECK(with_idle->error_levels == without_idle->error_levels);
  }

  // All-empty fleet: only the first empty shard (canonical order) is
  // decoded.  Corrupt-first surfaces the decode error; valid-first returns
  // that summary and the corrupt trailing payload stays dead weight.
  std::vector<ShardSnapshot> corrupt_first;
  corrupt_first.push_back({9, 0, 0, EncodeHistogram(*h1)});
  corrupt_first.push_back({3, 0, 0, {1, 2, 3}});
  CHECK(!ReduceSnapshots(corrupt_first, 8).ok());
  std::vector<ShardSnapshot> valid_first;
  valid_first.push_back({9, 0, 0, {1, 2, 3}});
  valid_first.push_back({3, 0, 0, EncodeHistogram(*h1)});
  auto reduced = ReduceSnapshots(valid_first, 8);
  CHECK_OK(reduced);
  CHECK(BitIdentical(reduced->aggregate, *h1));
  CHECK(reduced->total_weight == 0.0);
}

TEST(AggregatorCdfQuantileRangeMass) {
  // Hand-checkable summary: mass 0.4 on [0,4), 0.6 on [4,8).
  auto summary = Histogram::Create(8, {{{0, 4}, 0.1}, {{4, 8}, 0.15}});
  CHECK_OK(summary);
  auto aggregator = Aggregator::Create(*summary, 0.01);
  CHECK_OK(aggregator);

  CHECK_NEAR(aggregator->Cdf(-5), 0.0, 0.0);
  CHECK_NEAR(aggregator->Cdf(0), 0.1, 1e-12);
  CHECK_NEAR(aggregator->Cdf(3), 0.4, 1e-12);
  CHECK_NEAR(aggregator->Cdf(4), 0.55, 1e-12);
  CHECK_NEAR(aggregator->Cdf(7), 1.0, 0.0);
  CHECK_NEAR(aggregator->Cdf(100), 1.0, 0.0);
  for (int64_t x = -2; x < 10; ++x) {  // monotone
    CHECK(aggregator->Cdf(x) <= aggregator->Cdf(x + 1) + 1e-15);
  }

  CHECK(aggregator->Quantile(0.0) == 0);
  CHECK(aggregator->Quantile(0.1) == 0);
  CHECK(aggregator->Quantile(0.4) == 3);
  CHECK(aggregator->Quantile(0.41) == 4);
  CHECK(aggregator->Quantile(1.0) == 7);
  // Out-of-range and NaN ranks clamp instead of reaching a UB cast.
  CHECK(aggregator->Quantile(-0.5) == 0);
  CHECK(aggregator->Quantile(2.0) == 7);
  CHECK(aggregator->Quantile(std::nan("")) == 0);

  // Piece-aligned range: exact mass, only the caller's error budget.
  auto aligned = aggregator->RangeMassQuery(0, 4);
  CHECK_NEAR(aligned.mass, 0.4, 1e-12);
  CHECK_NEAR(aligned.error_bound, 0.01, 1e-12);
  // Cutting both pieces: slack covers the unattributable halves.
  auto cut = aggregator->RangeMassQuery(2, 6);
  CHECK_NEAR(cut.mass, 0.5, 1e-12);
  CHECK_NEAR(cut.error_bound, 0.01 + 0.2 + 0.3, 1e-12);
  // Degenerate/clamped ranges.
  CHECK_NEAR(aggregator->RangeMassQuery(5, 5).mass, 0.0, 0.0);
  CHECK_NEAR(aggregator->RangeMassQuery(-10, 100).mass, 1.0, 1e-12);

  // Invalid constructions.
  CHECK(!Aggregator::Create(Histogram(), 0.0).ok());
  CHECK(!Aggregator::Create(*summary, -1.0).ok());
  auto zero_mass = Histogram::Create(8, {{{0, 8}, 0.0}});
  CHECK_OK(zero_mass);
  CHECK(!Aggregator::Create(*zero_mass).ok());
  // Negative or non-finite piece values (possible in a structurally valid
  // hostile wire blob) must be rejected — they would break the monotone
  // prefix masses every query relies on.
  auto negative = Histogram::Create(
      8, {{{0, 2}, 0.5}, {{2, 4}, -0.2}, {{4, 8}, 0.15}});
  CHECK_OK(negative);
  CHECK(!Aggregator::Create(*negative).ok());
  auto with_nan = Histogram::Create(
      8, {{{0, 4}, 0.1}, {{4, 8}, std::nan("")}});
  CHECK_OK(with_nan);
  CHECK(!Aggregator::Create(*with_nan).ok());
  auto with_inf = Histogram::Create(
      8, {{{0, 4}, 0.1}, {{4, 8}, std::numeric_limits<double>::infinity()}});
  CHECK_OK(with_inf);
  CHECK(!Aggregator::Create(*with_inf).ok());
}

TEST(QuantileCdfRoundTripsWithinOnePiece) {
  Rng rng(31337);
  std::vector<ShardSnapshot> snapshots = MakeSnapshots(9, &rng);
  auto reduced = ReduceSnapshots(snapshots, 8);
  CHECK_OK(reduced);
  auto aggregator = Aggregator::Create(reduced->aggregate);
  CHECK_OK(aggregator);
  const Histogram& h = aggregator->histogram();
  // The resolution limit of a piecewise-constant summary is one piece of
  // mass: Quantile(Cdf(x)) may step back across a zero-mass plateau but
  // never skips more mass than a single piece carries, and never lands
  // past x.
  double max_piece_mass = 0.0;
  for (const HistogramPiece& piece : h.pieces()) {
    max_piece_mass = std::max(
        max_piece_mass, std::abs(piece.value) *
                            static_cast<double>(piece.interval.length()));
  }
  for (int64_t x = 0; x < h.domain_size(); x += 3) {
    const int64_t back = aggregator->Quantile(aggregator->Cdf(x));
    // May overshoot by at most one point (a 1-ulp rounding of q * total
    // when x closes a piece), or step back across a zero-mass plateau.
    CHECK(back <= x + 1);
    const double mass_gap = aggregator->Cdf(x) - aggregator->Cdf(back);
    CHECK(std::abs(mass_gap) <= max_piece_mass + 1e-9);
  }
}

TEST(ServiceEndToEndQuantiles) {
  const int64_t domain = 2000;
  const int64_t k = 10;
  auto p = NormalizeToDistribution(MakeHistDataset({domain, 19980607, 10,
                                                    20.0, 100.0, 1.0}));
  CHECK_OK(p);
  auto sampler = AliasSampler::Create(*p);
  CHECK_OK(sampler);

  std::vector<ShardSnapshot> snapshots;
  std::vector<int64_t> pooled;
  for (int64_t shard = 0; shard < 4; ++shard) {
    auto ingestor = ShardIngestor::Create(static_cast<uint64_t>(shard),
                                          domain, k, 2048);
    CHECK_OK(ingestor);
    Rng rng(1000 + static_cast<uint64_t>(shard));
    const std::vector<int64_t> samples = sampler->SampleMany(25000, &rng);
    CHECK(ingestor->Ingest(samples).ok());
    pooled.insert(pooled.end(), samples.begin(), samples.end());
    snapshots.push_back(std::move(ingestor->ExportSnapshot()).value());
  }
  auto reduced = ReduceSnapshots(snapshots, k);
  CHECK_OK(reduced);
  CHECK(reduced->total_weight == 100000.0);
  auto aggregator = Aggregator::Create(*reduced);
  CHECK_OK(aggregator);

  std::sort(pooled.begin(), pooled.end());
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const int64_t served = aggregator->Quantile(q);
    const int64_t exact = pooled[static_cast<size_t>(
        q * static_cast<double>(pooled.size()))];
    // A k=10 summary resolves the distribution at piece granularity; the
    // served quantile must stay within a few percent of the domain.
    CHECK(std::abs(served - exact) <= domain / 20);
  }
}

TEST(StripedSnapshotFeedsMergeTreeLikeAnyShard) {
  // A striped ingestor's export is a plain ShardSnapshot: it reduces
  // through ReduceSnapshots next to single-writer shards, counts its
  // samples in total_weight, and the mixed-fleet aggregate still tracks
  // the pooled stream.
  const int64_t domain = 2000;
  const int64_t k = 10;
  auto p = NormalizeToDistribution(MakeHistDataset({domain, 20260807, 10,
                                                    20.0, 100.0, 1.0}));
  CHECK_OK(p);
  auto sampler = AliasSampler::Create(*p);
  CHECK_OK(sampler);

  std::vector<ShardSnapshot> snapshots;
  std::vector<int64_t> pooled;

  auto plain = ShardIngestor::Create(0, domain, k, 2048);
  CHECK_OK(plain);
  Rng plain_rng(501);
  const std::vector<int64_t> plain_samples = sampler->SampleMany(30000,
                                                                 &plain_rng);
  CHECK(plain->Ingest(plain_samples).ok());
  pooled.insert(pooled.end(), plain_samples.begin(), plain_samples.end());
  snapshots.push_back(std::move(plain->ExportSnapshot()).value());

  auto striped = StripedShardIngestor::Create(1, domain, k, 2048,
                                              MergingOptions(), 4);
  CHECK_OK(striped);
  for (int w = 0; w < 4; ++w) {
    auto writer = (*striped)->RegisterWriter();
    CHECK_OK(writer);
    Rng rng(600 + static_cast<uint64_t>(w));
    const std::vector<int64_t> samples = sampler->SampleMany(15000, &rng);
    CHECK(writer->Append(samples).ok());
    pooled.insert(pooled.end(), samples.begin(), samples.end());
  }
  auto striped_snapshot = (*striped)->ExportSnapshot();
  CHECK_OK(striped_snapshot);
  // Ladder accounting is explicit and checkable.  The sequential writer
  // handles release their stripe on scope exit, so all four claims land on
  // the first stripe: 60000 samples on a 2048 window = 29 condenses
  // (0b11101: 4 live slots, depth 5) plus a buffered window -> 6 levels,
  // and a single contributing stripe adds no reconcile depth.  The plain
  // shard's 30000 samples = 14 flushes (0b1110: 3 slots, depth 4) plus a
  // buffered remainder -> 5.
  CHECK(striped_snapshot->error_levels == 6);
  CHECK(snapshots.front().error_levels == 5);
  // The envelope codec accepts it like any shard's, accounting included.
  auto round_trip =
      DecodeShardSnapshot(EncodeShardSnapshot(*striped_snapshot));
  CHECK_OK(round_trip);
  CHECK(round_trip->num_samples == 60000);
  CHECK(round_trip->error_levels == 6);
  snapshots.push_back(std::move(striped_snapshot).value());

  auto reduced = ReduceSnapshots(snapshots, k);
  CHECK_OK(reduced);
  CHECK(reduced->total_weight == 90000.0);
  // One tree merge on top of the deeper (6-level) leaf.
  CHECK(reduced->error_levels == 7);
  auto empirical = EmpiricalDistribution(domain, pooled);
  CHECK_OK(empirical);
  const double err =
      std::sqrt(reduced->aggregate.L2DistanceSquaredTo(*empirical));
  // The striped shard pays kReconcileErrorLevels extra on top of the
  // shared per-shard condense + tree levels; on 90k samples that budget
  // still lands far under this loose absolute check.
  CHECK(err < 0.05);
}

TEST(ReduceSnapshotsDedupesRetransmitsRejectsConflicts) {
  // An at-least-once transport may deliver the same shard snapshot twice.
  // Byte-identical retransmits must collapse to one contribution; two
  // different payloads claiming the same shard_id are a fleet bug and must
  // fail the reduction instead of silently double- or mis-counting.
  auto h1 = Histogram::Create(100, {{{0, 40}, 0.02}, {{40, 100}, 0.005}});
  auto h2 = Histogram::Create(100, {{{0, 70}, 0.01}, {{70, 100}, 0.01}});
  auto h3 = Histogram::Create(100, {{{0, 100}, 0.01}});
  CHECK_OK(h1);
  CHECK_OK(h2);
  CHECK_OK(h3);
  std::vector<ShardSnapshot> fleet;
  fleet.push_back({1, 300, 2, EncodeHistogram(*h1)});
  fleet.push_back({4, 100, 1, EncodeHistogram(*h2)});
  fleet.push_back({6, 200, 3, EncodeHistogram(*h3)});
  auto baseline = ReduceSnapshots(fleet, 8);
  CHECK_OK(baseline);

  // Duplicate every snapshot once (and one of them twice), shuffled in
  // arrival order: the reduction is bit-identical to the clean fleet.
  std::vector<ShardSnapshot> noisy;
  noisy.push_back(fleet[2]);
  noisy.push_back(fleet[0]);
  noisy.push_back(fleet[1]);
  noisy.push_back(fleet[0]);
  noisy.push_back(fleet[2]);
  noisy.push_back(fleet[1]);
  noisy.push_back(fleet[0]);
  auto deduped = ReduceSnapshots(noisy, 8);
  CHECK_OK(deduped);
  CHECK(BitIdentical(deduped->aggregate, baseline->aggregate));
  CHECK(deduped->total_weight == baseline->total_weight);
  CHECK(deduped->depth == baseline->depth);
  CHECK(deduped->num_merges == baseline->num_merges);
  CHECK(deduped->error_levels == baseline->error_levels);

  // Same shard_id, different sample count: conflict.
  std::vector<ShardSnapshot> recount = fleet;
  recount.push_back({1, 301, 2, EncodeHistogram(*h1)});
  CHECK(!ReduceSnapshots(recount, 8).ok());
  // Same shard_id and count, different payload bytes: conflict.
  std::vector<ShardSnapshot> repaint = fleet;
  repaint.push_back({4, 100, 1, EncodeHistogram(*h3)});
  CHECK(!ReduceSnapshots(repaint, 8).ok());
  // Same shard_id, payload, and count, different error accounting: still a
  // conflict — two runs of the same shard cannot disagree on their ladder.
  std::vector<ShardSnapshot> relevel = fleet;
  relevel.push_back({6, 200, 4, EncodeHistogram(*h3)});
  CHECK(!ReduceSnapshots(relevel, 8).ok());
  // Dedupe also applies to idle shards: a retransmitted empty envelope
  // does not disturb the all-empty fallback path.
  std::vector<ShardSnapshot> idle;
  idle.push_back({3, 0, 0, EncodeHistogram(*h3)});
  idle.push_back({3, 0, 0, EncodeHistogram(*h3)});
  auto idle_reduced = ReduceSnapshots(idle, 8);
  CHECK_OK(idle_reduced);
  CHECK(idle_reduced->total_weight == 0.0);
}

TEST(AggregatorRejectsZeroSampleAggregate) {
  // An all-idle fleet reduces fine (the uniform fallback keeps the merge
  // tree total), but it summarizes zero samples: the MergeTreeResult
  // overload refuses to build a query server from it, so nobody serves
  // Quantile(0.99) of a distribution that was never observed.
  auto idle_payload = Histogram::Create(100, {{{0, 100}, 0.01}});
  CHECK_OK(idle_payload);
  std::vector<ShardSnapshot> idle;
  idle.push_back({1, 0, 0, EncodeHistogram(*idle_payload)});
  idle.push_back({2, 0, 0, EncodeHistogram(*idle_payload)});
  idle.push_back({3, 0, 0, EncodeHistogram(*idle_payload)});
  auto reduced = ReduceSnapshots(idle, 8);
  CHECK_OK(reduced);
  CHECK(reduced->total_weight == 0.0);
  CHECK(!Aggregator::Create(*reduced).ok());

  // One busy shard is enough to serve again, and the overload scales the
  // error budget by the reduction's level count.
  auto h = Histogram::Create(100, {{{0, 100}, 0.01}});
  CHECK_OK(h);
  std::vector<ShardSnapshot> fleet = idle;
  fleet.push_back({4, 250, 2, EncodeHistogram(*h)});
  auto busy = ReduceSnapshots(fleet, 8);
  CHECK_OK(busy);
  CHECK(busy->total_weight == 250.0);
  auto served = Aggregator::Create(*busy, 0.01);
  CHECK_OK(served);
  CHECK_NEAR(served->RangeMassQuery(0, 100).error_bound,
             0.01 * static_cast<double>(busy->error_levels), 1e-12);
  // A negative per-level budget is rejected like the raw constructor's.
  CHECK(!Aggregator::Create(*busy, -0.5).ok());
}

}  // namespace
}  // namespace fasthist
