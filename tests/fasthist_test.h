#ifndef FASTHIST_TESTS_FASTHIST_TEST_H_
#define FASTHIST_TESTS_FASTHIST_TEST_H_

// Minimal single-header test framework (no external dependencies): each
// TEST(name) registers itself; the main below runs every registered test,
// or only those named on the command line (which is how CMake registers
// one ctest entry per case).  `--list` prints the registered names, one
// per line; the <binary>.registration_sync ctest entry diffs that output
// against the case list in tests/CMakeLists.txt, so a TEST added without
// its ctest line (or vice versa) fails the suite instead of silently
// riding along in the catch-all run.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

namespace fasthist {
namespace testing {

struct TestCase {
  const char* name;
  std::function<void()> fn;
};

inline std::vector<TestCase>& Registry() {
  static std::vector<TestCase> registry;
  return registry;
}

struct Registrar {
  Registrar(const char* name, std::function<void()> fn) {
    Registry().push_back({name, std::move(fn)});
  }
};

struct Failure : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void FailCheck(const char* file, int line,
                                   const std::string& what) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer), "%s:%d: %s", file, line, what.c_str());
  throw Failure(buffer);
}

}  // namespace testing
}  // namespace fasthist

#define TEST(name)                                                       \
  static void Test_##name();                                             \
  static ::fasthist::testing::Registrar registrar_##name(#name,          \
                                                         &Test_##name);  \
  static void Test_##name()

#define CHECK(condition)                                                  \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::fasthist::testing::FailCheck(__FILE__, __LINE__,                  \
                                     "CHECK failed: " #condition);        \
    }                                                                     \
  } while (0)

#define CHECK_NEAR(a, b, tolerance)                                       \
  do {                                                                    \
    const double check_near_a = (a);                                      \
    const double check_near_b = (b);                                      \
    const double check_near_tol = (tolerance);                            \
    if (!(std::abs(check_near_a - check_near_b) <= check_near_tol)) {     \
      char check_near_buf[256];                                           \
      std::snprintf(check_near_buf, sizeof(check_near_buf),               \
                    "CHECK_NEAR failed: %s=%g vs %s=%g (tol %g)", #a,     \
                    check_near_a, #b, check_near_b, check_near_tol);      \
      ::fasthist::testing::FailCheck(__FILE__, __LINE__, check_near_buf); \
    }                                                                     \
  } while (0)

#define CHECK_OK(expression)                                              \
  do {                                                                    \
    const auto& check_ok_result = (expression);                           \
    if (!check_ok_result.ok()) {                                          \
      ::fasthist::testing::FailCheck(                                     \
          __FILE__, __LINE__,                                             \
          std::string("CHECK_OK failed: " #expression ": ") +             \
              check_ok_result.status().message());                        \
    }                                                                     \
  } while (0)

int main(int argc, char** argv) {
  using ::fasthist::testing::Registry;
  if (argc == 2 && std::strcmp(argv[1], "--list") == 0) {
    for (const auto& test : Registry()) std::printf("%s\n", test.name);
    return 0;
  }
  int failures = 0;
  int executed = 0;
  for (const auto& test : Registry()) {
    bool selected = argc <= 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], test.name) == 0) selected = true;
    }
    if (!selected) continue;
    ++executed;
    try {
      test.fn();
      std::printf("[ PASS ] %s\n", test.name);
    } catch (const std::exception& e) {
      std::printf("[ FAIL ] %s\n         %s\n", test.name, e.what());
      ++failures;
    }
  }
  if (executed == 0) {
    std::printf("[ FAIL ] no test matched the given names\n");
    return 2;
  }
  return failures == 0 ? 0 : 1;
}

#endif  // FASTHIST_TESTS_FASTHIST_TEST_H_
