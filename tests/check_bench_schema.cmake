# Schema check for the committed service benchmark results.  Fails when any
# record in the JSON drops a field downstream consumers key on — so a
# regenerated BENCH_service.json with a narrower schema fails ctest (and all
# five CI jobs) before it lands.
#
# Inputs (via -D):
#   BENCH_JSON       path to the benchmark JSON (top-level "records" array)
#   REQUIRED_FIELDS  comma-separated member names every record must define
#
# Uses string(JSON), available since CMake 3.19.
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED BENCH_JSON OR NOT DEFINED REQUIRED_FIELDS)
  message(FATAL_ERROR "check_bench_schema: BENCH_JSON and REQUIRED_FIELDS "
                      "must be passed with -D")
endif()
if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR "check_bench_schema: missing results file ${BENCH_JSON}")
endif()

file(READ "${BENCH_JSON}" contents)
string(JSON num_records ERROR_VARIABLE json_error LENGTH "${contents}" records)
if(json_error)
  message(FATAL_ERROR
          "check_bench_schema: ${BENCH_JSON} has no 'records' array: "
          "${json_error}")
endif()
if(num_records EQUAL 0)
  message(FATAL_ERROR "check_bench_schema: ${BENCH_JSON} has zero records")
endif()

string(REPLACE "," ";" fields "${REQUIRED_FIELDS}")
math(EXPR last_record "${num_records} - 1")
foreach(i RANGE ${last_record})
  string(JSON record_name ERROR_VARIABLE json_error
         GET "${contents}" records ${i} name)
  if(json_error)
    set(record_name "#${i}")
  endif()
  foreach(field IN LISTS fields)
    string(JSON value ERROR_VARIABLE json_error
           GET "${contents}" records ${i} ${field})
    if(json_error)
      message(FATAL_ERROR
              "check_bench_schema: record '${record_name}' in ${BENCH_JSON} "
              "is missing required field '${field}'")
    endif()
  endforeach()
endforeach()

message(STATUS "check_bench_schema: ${num_records} records in ${BENCH_JSON} "
               "carry [${REQUIRED_FIELDS}]")
