# Schema check for the committed service benchmark results.  Fails when any
# record in the JSON drops a field downstream consumers key on — so a
# regenerated BENCH_service.json with a narrower schema fails ctest (and all
# five CI jobs) before it lands.
#
# Inputs (via -D):
#   BENCH_JSON       path to the benchmark JSON (top-level "records" array)
#   REQUIRED_FIELDS  comma-separated member names every record must define
#   POSITIVE_FIELDS  optional comma-separated subset that must also be
#                    strictly positive numbers in every record (latency
#                    quantiles, for example: a committed 0 means the server
#                    never actually measured itself)
#
# Uses string(JSON), available since CMake 3.19.
cmake_minimum_required(VERSION 3.19)

if(NOT DEFINED BENCH_JSON OR NOT DEFINED REQUIRED_FIELDS)
  message(FATAL_ERROR "check_bench_schema: BENCH_JSON and REQUIRED_FIELDS "
                      "must be passed with -D")
endif()
if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR "check_bench_schema: missing results file ${BENCH_JSON}")
endif()

file(READ "${BENCH_JSON}" contents)
string(JSON num_records ERROR_VARIABLE json_error LENGTH "${contents}" records)
if(json_error)
  message(FATAL_ERROR
          "check_bench_schema: ${BENCH_JSON} has no 'records' array: "
          "${json_error}")
endif()
if(num_records EQUAL 0)
  message(FATAL_ERROR "check_bench_schema: ${BENCH_JSON} has zero records")
endif()

string(REPLACE "," ";" fields "${REQUIRED_FIELDS}")
if(DEFINED POSITIVE_FIELDS)
  string(REPLACE "," ";" positive_fields "${POSITIVE_FIELDS}")
else()
  set(positive_fields "")
endif()
math(EXPR last_record "${num_records} - 1")
foreach(i RANGE ${last_record})
  string(JSON record_name ERROR_VARIABLE json_error
         GET "${contents}" records ${i} name)
  if(json_error)
    set(record_name "#${i}")
  endif()
  foreach(field IN LISTS fields)
    string(JSON value ERROR_VARIABLE json_error
           GET "${contents}" records ${i} ${field})
    if(json_error)
      message(FATAL_ERROR
              "check_bench_schema: record '${record_name}' in ${BENCH_JSON} "
              "is missing required field '${field}'")
    endif()
  endforeach()
  foreach(field IN LISTS positive_fields)
    string(JSON value ERROR_VARIABLE json_error
           GET "${contents}" records ${i} ${field})
    if(json_error OR NOT value GREATER 0)
      message(FATAL_ERROR
              "check_bench_schema: record '${record_name}' in ${BENCH_JSON} "
              "must have '${field}' > 0, got '${value}'")
    endif()
  endforeach()
endforeach()

message(STATUS "check_bench_schema: ${num_records} records in ${BENCH_JSON} "
               "carry [${REQUIRED_FIELDS}]")
