#include <algorithm>
#include <cmath>
#include <vector>

#include "baseline/exact_dp.h"
#include "core/fast_merging.h"
#include "core/hierarchical.h"
#include "core/internal/merge_engine.h"
#include "core/merging.h"
#include "data/generators.h"
#include "dist/empirical.h"
#include "tests/fasthist_test.h"
#include "util/random.h"

namespace fasthist {
namespace {

std::vector<double> SmallHistData() {
  HistDatasetOptions options;
  options.domain_size = 600;
  options.num_pieces = 5;
  return MakeHistDataset(options);
}

TEST(MergingIsExactOnPiecewiseConstantData) {
  // 4 flat pieces, k=4: opt error is 0 and merging must find it too (flat
  // pairs merge at zero cost; only the 3 true boundaries survive).
  std::vector<double> data;
  for (double level : {5.0, 1.0, 8.0, 3.0}) {
    for (int i = 0; i < 37; ++i) data.push_back(level);
  }
  const SparseFunction q = SparseFunction::FromDense(data);
  auto result = ConstructHistogram(q, 4);
  CHECK_OK(result);
  CHECK_NEAR(result->err_squared, 0.0, 1e-9);
  CHECK_NEAR(result->histogram.L2DistanceSquaredTo(q), 0.0, 1e-9);
}

TEST(MergingErrorWithinConstantOfExactDp) {
  // The paper's guarantee: with ~2k+1 pieces the merging error is within a
  // constant of the best k-piece histogram.  Empirically the ratio is near
  // 1; 2x is a comfortable bound that still fails on real regressions.
  const std::vector<double> data = SmallHistData();
  const SparseFunction q = SparseFunction::FromDense(data);
  for (int64_t k : {3, 5, 10}) {
    auto merging = ConstructHistogram(q, k);
    CHECK_OK(merging);
    auto opt = OptK(data, k);
    CHECK_OK(opt);
    CHECK(merging->histogram.num_pieces() <= 2 * k + 1);
    CHECK(std::sqrt(merging->err_squared) <= 2.0 * (*opt) + 1e-9);
    // err_squared is really the l2 error of the returned histogram.
    CHECK_NEAR(merging->histogram.L2DistanceSquaredTo(q),
               merging->err_squared, 1e-6 * (1.0 + merging->err_squared));
  }
}

TEST(FastMergingMatchesSlowExactly) {
  // ConstructHistogramFast's contract: identical output to
  // ConstructHistogram (selection replaces sorting, same total order).
  const std::vector<double> poly = MakePolyDataset();
  const std::vector<double> hist = SmallHistData();
  for (const std::vector<double>* data : {&poly, &hist}) {
    const SparseFunction q = SparseFunction::FromDense(*data);
    for (int64_t k : {2, 10, 25}) {
      for (const MergingOptions& options :
           {MergingOptions{1000.0, 1.0}, MergingOptions{0.5, 1.0},
            MergingOptions{1000.0, 8.0}}) {
        auto slow = ConstructHistogram(q, k, options);
        auto fast = ConstructHistogramFast(q, k, options);
        CHECK_OK(slow);
        CHECK_OK(fast);
        CHECK(slow->num_rounds == fast->num_rounds);
        CHECK(slow->histogram.num_pieces() == fast->histogram.num_pieces());
        CHECK_NEAR(slow->err_squared, fast->err_squared, 0.0);
        for (int64_t p = 0; p < slow->histogram.num_pieces(); ++p) {
          const HistogramPiece& a =
              slow->histogram.pieces()[static_cast<size_t>(p)];
          const HistogramPiece& b =
              fast->histogram.pieces()[static_cast<size_t>(p)];
          CHECK(a.interval.begin == b.interval.begin);
          CHECK(a.interval.end == b.interval.end);
          CHECK_NEAR(a.value, b.value, 0.0);
        }
      }
    }
  }
}

TEST(MergingOnEmpiricalDistributionIsSampleSupportSized) {
  // Sparse input: few samples over a huge domain; the construction must
  // stay well-behaved and mass-preserving.
  auto empirical = EmpiricalDistribution(
      1000000, {10, 10, 500000, 500001, 999999, 12, 10});
  CHECK_OK(empirical);
  auto result = ConstructHistogram(*empirical, 2);
  CHECK_OK(result);
  CHECK(result->histogram.num_pieces() <= 5);
  CHECK_NEAR(result->histogram.TotalMass(), 1.0, 1e-9);
  CHECK(result->histogram.domain_size() == 1000000);
}

TEST(MergingRejectsBadArguments) {
  const SparseFunction q = SparseFunction::FromDense({1.0, 2.0, 3.0});
  CHECK(!ConstructHistogram(q, 0).ok());
  CHECK(!ConstructHistogram(q, 2, MergingOptions{0.0, 1.0}).ok());
  CHECK(!ConstructHistogram(q, 2, MergingOptions{1.0, 0.5}).ok());
  MergingOptions no_threads;
  no_threads.num_threads = 0;
  CHECK(!ConstructHistogram(q, 2, no_threads).ok());
  // Domains beyond 2^53 are rejected explicitly: the engine tracks interval
  // lengths as exact integral doubles, which stop being exact there.
  const SparseFunction huge =
      EmpiricalDistribution((int64_t{1} << 53) + 2, {0, 5}).value();
  CHECK(!ConstructHistogram(huge, 2).ok());
  CHECK(!ConstructHistogramFast(huge, 2).ok());
  CHECK(!ConstructPiecewisePolynomial(huge, 2, 1).ok());
  const SparseFunction at_limit =
      EmpiricalDistribution(int64_t{1} << 53, {0, 5}).value();
  CHECK(ConstructHistogramFast(at_limit, 2).ok());
}

TEST(MergingClampsExtremeKeepSchedule) {
  // Regression: the per-round keep count is k * (1 + 1/delta), which
  // overflows int64 for tiny delta (and the stop threshold likewise for
  // huge gamma).  The old static_cast of the out-of-range double was UB;
  // the engine now clamps before casting, so these runs must terminate
  // cleanly with "keep everything" semantics: no pair ever merges, the
  // output is the exact support partition, and the error is zero.
  const std::vector<double> data = SmallHistData();
  const SparseFunction q = SparseFunction::FromDense(data);
  const size_t support = q.support_size();
  for (const MergingOptions& extreme :
       {MergingOptions{1e-18, 1.0}, MergingOptions{1e-300, 1.0},
        MergingOptions{1000.0, 1e30}}) {
    for (auto construct : {&ConstructHistogram, &ConstructHistogramFast}) {
      auto result = construct(q, 10, extreme);
      CHECK_OK(result);
      CHECK(result->num_rounds == 0);
      CHECK_NEAR(result->err_squared, 0.0, 0.0);
      // The untouched support partition reproduces q exactly.
      CHECK(static_cast<size_t>(result->histogram.num_pieces()) >= support);
      CHECK_NEAR(result->histogram.L2DistanceSquaredTo(q), 0.0, 1e-12);
    }
  }
}

TEST(MergeHistogramsApproximatesWeightedMixture) {
  HistDatasetOptions options;
  options.domain_size = 512;
  options.num_pieces = 4;
  auto p1 = NormalizeToDistribution(MakeHistDataset(options)).value();
  options.seed += 1;
  auto p2 = NormalizeToDistribution(MakeHistDataset(options)).value();

  const SparseFunction q1 = SparseFunction::FromDense(p1.pmf());
  const SparseFunction q2 = SparseFunction::FromDense(p2.pmf());
  const int64_t k = 8;
  const Histogram h1 = ConstructHistogram(q1, k)->histogram;
  const Histogram h2 = ConstructHistogram(q2, k)->histogram;

  auto merged = MergeHistograms(h1, 3.0, h2, 1.0, k);
  CHECK_OK(merged);
  CHECK(merged->num_pieces() <= 2 * k + 1);
  CHECK_NEAR(merged->TotalMass(), 1.0, 1e-9);

  // The merged histogram must track the true 3:1 mixture closely.
  std::vector<double> mixture(p1.pmf().size());
  for (size_t i = 0; i < mixture.size(); ++i) {
    mixture[i] = 0.75 * p1.pmf()[i] + 0.25 * p2.pmf()[i];
  }
  const double err_sq =
      merged->L2DistanceSquaredTo(SparseFunction::FromDense(mixture));
  CHECK(std::sqrt(err_sq) < 0.05);

  CHECK(!MergeHistograms(h1, 0.0, h2, 0.0, k).ok());
}

TEST(HierarchicalServesAllScales) {
  const std::vector<double> data = SmallHistData();
  const SparseFunction q = SparseFunction::FromDense(data);
  auto hierarchy = HierarchicalHistogram::Build(q);
  CHECK_OK(hierarchy);
  CHECK(hierarchy->num_levels() == 11);  // 600 pads to 1024 = 2^10

  const auto curve = hierarchy->ParetoCurve();
  CHECK(curve.size() == 11);
  CHECK_NEAR(curve.front().err, 0.0, 0.0);  // singleton level is exact
  for (size_t i = 1; i < curve.size(); ++i) {
    CHECK(curve[i].num_pieces < curve[i - 1].num_pieces);
    CHECK(curve[i].err >= curve[i - 1].err - 1e-9);  // coarser is worse
  }

  for (int64_t k : {2, 5, 20}) {
    auto selection = hierarchy->SelectForK(k);
    CHECK_OK(selection);
    CHECK(selection->num_pieces <= 8 * k);
    auto opt = OptK(data, k);
    CHECK_OK(opt);
    // Theorem 2.2 regime: a small constant of opt_k at <= 8k pieces.
    CHECK(selection->error_estimate <= 2.0 * (*opt) + 1e-9);
    CHECK_NEAR(
        std::sqrt(selection->histogram.L2DistanceSquaredTo(q)),
        selection->error_estimate,
        1e-6 * (1.0 + selection->error_estimate));
  }
  CHECK(!hierarchy->SelectForK(0).ok());
}

TEST(MaxSurvivingPiecesBoundsEveryEngineOutput) {
  // internal::MaxSurvivingPieces is the pre-sizing contract for
  // fixed-capacity consumers of engine outputs (the striped ingestor's
  // atomic summary planes): every construction and merge must fit inside
  // min(bound, domain_size) — across the knob sweeps that move the round
  // schedule's clamps around.
  Rng rng(0xb0fd'2026);
  const MergingOptions sweeps[] = {
      {1000.0, 1.0}, {0.5, 1.0}, {0.1, 1.0}, {2.0, 4.0}, {1e-9, 1.0}};
  for (const int64_t domain : {int64_t{64}, int64_t{512}, int64_t{4096}}) {
    std::vector<int64_t> samples;
    for (int i = 0; i < 3000; ++i) samples.push_back(rng.UniformInt(domain));
    auto q = EmpiricalDistribution(domain, samples);
    CHECK_OK(q);
    for (const int64_t k : {int64_t{1}, int64_t{8}, int64_t{64}}) {
      for (const MergingOptions& options : sweeps) {
        const int64_t bound =
            std::min(internal::MaxSurvivingPieces(k, options), domain);
        CHECK(bound >= 1);
        auto constructed = ConstructHistogramFast(*q, k, options);
        CHECK_OK(constructed);
        CHECK(constructed->histogram.num_pieces() <= bound);
        auto merged = MergeHistograms(constructed->histogram, 2.0,
                                      constructed->histogram, 1.0, k, options);
        CHECK_OK(merged);
        CHECK(merged->num_pieces() <= bound);
      }
    }
  }
  // The delta clamp: a tiny delta blows the kept-pairs count up to the
  // engine's 2^61 ceiling, and the bound must follow the same clamp rather
  // than overflow.
  CHECK(internal::MaxSurvivingPieces(8, {1e-18, 1.0}) > 0);
}

}  // namespace
}  // namespace fasthist
