#ifndef FASTHIST_TESTS_HISTOGRAM_TESTUTIL_H_
#define FASTHIST_TESTS_HISTOGRAM_TESTUTIL_H_

#include <cstring>

#include "dist/histogram.h"

namespace fasthist {
namespace testing {

// Bit-level histogram equality: intervals equal and value *bits* equal (so
// -0.0 vs 0.0 or any rounding difference fails).  This is the comparison
// behind every bit-identical determinism contract in the suite — Peek ==
// Snapshot, AddMany == Add loop, merge-tree arrival/thread invariance, wire
// round trips — so all of them share this one definition.
inline bool BitIdentical(const Histogram& a, const Histogram& b) {
  if (a.domain_size() != b.domain_size()) return false;
  if (a.num_pieces() != b.num_pieces()) return false;
  for (int64_t i = 0; i < a.num_pieces(); ++i) {
    const HistogramPiece& pa = a.pieces()[static_cast<size_t>(i)];
    const HistogramPiece& pb = b.pieces()[static_cast<size_t>(i)];
    if (pa.interval.begin != pb.interval.begin ||
        pa.interval.end != pb.interval.end) {
      return false;
    }
    if (std::memcmp(&pa.value, &pb.value, sizeof(double)) != 0) return false;
  }
  return true;
}

}  // namespace testing
}  // namespace fasthist

#endif  // FASTHIST_TESTS_HISTOGRAM_TESTUTIL_H_
