// The sharded socket front-end (net/sharded_ingest_server.h) and its
// building blocks: the key-hash partitioned store, the SPSC hand-off ring,
// multi-loop ingest/query end to end over real loopback sockets, the
// per-partition shed policy with ACK-reconstructed replay bit-identity,
// epoll-vs-poll behavioral equivalence, the scatter-gathered kStats
// reply, and the graceful-shutdown drain.  The multi-loop stress cases are
// the TSan CI job's main target for this layer.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/sharded_ingest_server.h"
#include "net/spsc_ring.h"
#include "service/wire_format.h"
#include "store/partitioned_store.h"
#include "store/summary_store.h"
#include "tests/fasthist_test.h"
#include "tests/histogram_testutil.h"
#include "util/clock.h"
#include "util/random.h"

namespace fasthist {
namespace {

using ::fasthist::testing::BitIdentical;

// --- Shared helpers ---------------------------------------------------------

std::unique_ptr<ShardedIngestServer> StartSharded(
    const ShardedIngestServerOptions& options) {
  auto server = ShardedIngestServer::Create(options);
  CHECK_OK(server);
  std::unique_ptr<ShardedIngestServer> owned = std::move(server).value();
  CHECK(owned->Start().ok());
  return owned;
}

IngestClient ConnectTo(const ShardedIngestServer& server) {
  auto client = IngestClient::Connect("127.0.0.1", server.port());
  CHECK_OK(client);
  return std::move(client).value();
}

// A batch spread round-robin over `keys`, so with several partitions every
// batch crosses loop boundaries (the hand-off rings are always exercised).
std::vector<KeyedSample> MakeMixedBatch(Rng* rng,
                                        const std::vector<uint64_t>& keys,
                                        size_t n, int64_t domain) {
  std::vector<KeyedSample> batch(n);
  for (size_t i = 0; i < n; ++i) {
    batch[i].key = keys[i % keys.size()];
    batch[i].value = rng->UniformInt(domain);
  }
  return batch;
}

bool SnapshotsBitIdentical(const ShardSnapshot& a, const ShardSnapshot& b) {
  return EncodeShardSnapshot(a) == EncodeShardSnapshot(b);
}

// Every key the replay stores know must agree bit-for-bit with the drained
// server state — both presence and the summary bytes.
void CheckDrainedMatchesReplay(const ShardedIngestServer& server,
                               const SummaryStore& offline,
                               const std::vector<uint64_t>& keys,
                               uint64_t shard_id) {
  for (const uint64_t key : keys) {
    const bool offline_has = offline.Contains(key);
    CHECK(server.store().Contains(key) == offline_has);
    if (!offline_has) continue;
    auto drained = server.ExportKeyedSnapshot(key);
    CHECK_OK(drained);
    auto expected = offline.ExportKeyedSnapshot(key, shard_id);
    CHECK_OK(expected);
    CHECK(SnapshotsBitIdentical(*drained, *expected));
  }
}

// --- Partitioned store ------------------------------------------------------

TEST(PartitionedStoreRoutesAndRollsUpDeterministically) {
  // One partition is the identity map.
  for (const uint64_t key : {0ull, 1ull, 42ull, 0xdeadbeefull}) {
    CHECK(PartitionOfKey(key, 1) == 0);
  }
  // The splitmix finalizer spreads adjacent keys: 64 consecutive keys must
  // touch all four partitions (a clustered map would starve workers).
  {
    std::vector<bool> hit(4, false);
    for (uint64_t key = 0; key < 64; ++key) hit[PartitionOfKey(key, 4)] = true;
    CHECK(hit[0] && hit[1] && hit[2] && hit[3]);
  }

  ArchetypeConfig config;
  config.domain_size = 512;
  Rng rng(20150601);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 16; ++k) keys.push_back(700 + k);
  std::vector<KeyedSample> stream(4096);
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].key = keys[static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(keys.size())))];
    stream[i].value = rng.UniformInt(config.domain_size);
  }

  auto partitioned = PartitionedSummaryStore::Create(config, 4);
  CHECK_OK(partitioned);
  // Empty store: the cross-partition reduce has nothing to fold.
  CHECK(!partitioned
             ->MergeAllMatching([](uint64_t) { return true; }, config.k)
             .ok());
  CHECK(partitioned->AddBatch(stream).ok());
  auto plain = SummaryStore::Create(config);
  CHECK_OK(plain);
  CHECK(plain->AddBatch(stream).ok());

  CHECK(partitioned->num_keys() == keys.size());
  for (const uint64_t key : keys) {
    // Exactly one partition holds each key, and it is the hash's pick.
    const uint32_t home = partitioned->partition_of(key);
    for (uint32_t p = 0; p < 4; ++p) {
      CHECK(partitioned->partition(p).Contains(key) == (p == home));
    }
    // Partitioning changes which store holds a key, never the computation:
    // per-key state is bit-identical to the unpartitioned store's.
    auto via_partitioned = partitioned->ExportKeyedSnapshot(key, 77);
    CHECK_OK(via_partitioned);
    auto via_plain = plain->ExportKeyedSnapshot(key, 77);
    CHECK_OK(via_plain);
    CHECK(SnapshotsBitIdentical(*via_partitioned, *via_plain));
    auto n_partitioned = partitioned->NumSamples(key);
    auto n_plain = plain->NumSamples(key);
    CHECK_OK(n_partitioned);
    CHECK_OK(n_plain);
    CHECK(*n_partitioned == *n_plain);
  }

  // The cross-partition rollup is a pure function of per-key state: a
  // second store fed the same per-key subsequences in a completely
  // different arrival order (per-key replay, reverse key order) reduces to
  // the identical aggregate, bit for bit.
  auto replayed = PartitionedSummaryStore::Create(config, 4);
  CHECK_OK(replayed);
  for (size_t ki = keys.size(); ki > 0; --ki) {
    std::vector<KeyedSample> only;
    for (const KeyedSample& sample : stream) {
      if (sample.key == keys[ki - 1]) only.push_back(sample);
    }
    CHECK(replayed->AddBatch(only).ok());
  }
  auto rollup_a =
      partitioned->MergeAllMatching([](uint64_t) { return true; }, config.k);
  auto rollup_b =
      replayed->MergeAllMatching([](uint64_t) { return true; }, config.k);
  CHECK_OK(rollup_a);
  CHECK_OK(rollup_b);
  CHECK(BitIdentical(rollup_a->aggregate, rollup_b->aggregate));
  CHECK(rollup_a->total_weight == rollup_b->total_weight);
  CHECK_NEAR(rollup_a->total_weight, static_cast<double>(stream.size()), 0.0);
  CHECK_NEAR(rollup_a->aggregate.TotalMass(), 1.0, 1e-6);
}

// --- SPSC ring --------------------------------------------------------------

TEST(SpscRingStressTransfersAllBatchesInOrder) {
  // Full-ring Push refuses and leaves the value with the caller.
  {
    SpscRing<std::vector<uint64_t>> ring(4);
    for (uint64_t i = 0; i < 4; ++i) {
      std::vector<uint64_t> v{i};
      CHECK(ring.Push(std::move(v)));
    }
    std::vector<uint64_t> extra{99, 100};
    CHECK(!ring.Push(std::move(extra)));
    CHECK(extra.size() == 2 && extra[0] == 99 && extra[1] == 100);
    CHECK(ring.size() == 4 && ring.capacity() == 4);
    std::vector<uint64_t> out;
    for (uint64_t i = 0; i < 4; ++i) {
      CHECK(ring.Pop(&out));
      CHECK(out.size() == 1 && out[0] == i);
    }
    CHECK(!ring.Pop(&out));
  }

  // Two real threads, a deliberately tiny ring, every batch carries its
  // sequence number and a payload derived from it: the consumer must see
  // every batch, in order, with the payload intact — the visibility
  // guarantee the sharded server's hand-off leans on.
  constexpr uint64_t kBatches = 20000;
  SpscRing<std::vector<uint64_t>> ring(8);
  std::thread producer([&ring] {
    for (uint64_t seq = 0; seq < kBatches; ++seq) {
      std::vector<uint64_t> batch{seq, seq * 3 + 1};
      while (!ring.Push(std::move(batch))) std::this_thread::yield();
    }
  });
  uint64_t next = 0;
  std::vector<uint64_t> got;
  while (next < kBatches) {
    if (!ring.Pop(&got)) {
      std::this_thread::yield();
      continue;
    }
    CHECK(got.size() == 2);
    CHECK(got[0] == next);
    CHECK(got[1] == next * 3 + 1);
    ++next;
  }
  producer.join();
  CHECK(!ring.Pop(&got));
}

// --- End to end -------------------------------------------------------------

TEST(ShardedLoopbackIngestQueryEndToEnd) {
  ShardedIngestServerOptions options;
  options.num_loops = 4;
  options.base.shard_id = 7;
  auto server = StartSharded(options);
  CHECK(server->num_loops() == 4);
  const int64_t domain = options.base.archetype.domain_size;

  IngestClient alice = ConnectTo(*server);
  IngestClient bob = ConnectTo(*server);
  std::vector<uint64_t> alice_keys, bob_keys;
  for (uint64_t k = 0; k < 8; ++k) {
    alice_keys.push_back(100 + k);
    bob_keys.push_back(200 + k);
  }

  auto offline = SummaryStore::Create(options.base.archetype);
  CHECK_OK(offline);
  Rng rng(0xabcd);
  uint64_t total = 0;
  const auto ingest_checked = [&](IngestClient& client,
                                  const std::vector<uint64_t>& keys,
                                  size_t n) {
    const std::vector<KeyedSample> batch =
        MakeMixedBatch(&rng, keys, n, domain);
    auto result = client.Ingest(batch);
    CHECK_OK(result);
    CHECK(!result->rejected);
    // Below the soft watermark nothing sheds: the ACK must account for the
    // whole batch, split across the touched partitions.
    CHECK(result->ack.accepted == batch.size());
    CHECK(result->ack.shed == 0 && result->ack.rejected == 0);
    CHECK(result->ack.keep_shift == 0);
    CHECK(!result->ack.partitions.empty());
    uint64_t sum = 0;
    for (const PartitionDisposition& d : result->ack.partitions) {
      CHECK(d.partition < 4);
      CHECK(d.shed == 0 && d.rejected == 0 && d.keep_shift == 0);
      sum += d.accepted;
    }
    CHECK(sum == batch.size());
    // And the reconstruction of "what the server kept" is the whole batch.
    const std::vector<KeyedSample> kept =
        ReconstructAccepted(batch, result->ack, 4);
    CHECK(kept.size() == batch.size());
    CHECK(offline->AddBatch(batch).ok());
    total += batch.size();
  };

  for (int b = 0; b < 20; ++b) ingest_checked(alice, alice_keys, 64);
  for (int b = 0; b < 15; ++b) ingest_checked(bob, bob_keys, 48);

  // Freshness across loops: everything ACKed above is visible to a pull,
  // even though the puller's connection lives on a different loop than the
  // key's owner.
  for (const uint64_t key : {alice_keys[0], alice_keys[5], bob_keys[3]}) {
    auto pulled = alice.PullSnapshot(key);
    CHECK_OK(pulled);
    auto expected = offline->ExportKeyedSnapshot(key, options.base.shard_id);
    CHECK_OK(expected);
    CHECK(SnapshotsBitIdentical(*pulled, *expected));
  }
  {
    auto reply = bob.Quantile(bob_keys[0], 0.5);
    CHECK_OK(reply);
    CHECK(reply->value >= 0 && reply->value < domain);
    auto count = offline->NumSamples(bob_keys[0]);
    CHECK_OK(count);
    CHECK(reply->num_samples == *count);
  }
  CHECK(!alice.PullSnapshot(999999).ok());  // unknown key, connection lives
  {
    auto stats = alice.Stats();
    CHECK_OK(stats);
    CHECK(stats->num_loops == 4);
    CHECK(stats->partitions.size() == 4);
    CHECK(stats->samples_offered == total);
    CHECK(stats->samples_accepted == total);
    CHECK(stats->samples_shed == 0);
    CHECK(stats->batches_ingested == 35);
    CHECK(stats->batches_rejected == 0);
  }

  alice.Close();
  bob.Close();
  CHECK(server->Shutdown().ok());
  std::vector<uint64_t> all_keys = alice_keys;
  all_keys.insert(all_keys.end(), bob_keys.begin(), bob_keys.end());
  CheckDrainedMatchesReplay(*server, *offline, all_keys,
                            options.base.shard_id);
}

// --- Shed storm -------------------------------------------------------------

TEST(ShardedShedStormPerPartitionReplayBitIdentity) {
  // Tiny per-partition watermarks and flushing disabled: depth only grows,
  // so every partition marches through keep-all -> thinned -> rejected, and
  // different partitions cross the tiers at different times (their load is
  // hash-split, not equal).  The ACK-reconstructed replay must land on the
  // drained state bit for bit anyway.
  ShardedIngestServerOptions options;
  options.num_loops = 4;
  options.base.shard_id = 9;
  options.base.soft_watermark = 64;
  options.base.hard_watermark = 256;
  options.base.flush_batch = size_t{1} << 20;
  options.base.flush_deadline_us = uint64_t{60} * 1000 * 1000;
  auto server = StartSharded(options);
  const int64_t domain = options.base.archetype.domain_size;

  constexpr int kClients = 3;
  constexpr int kBatchesPerClient = 150;
  constexpr size_t kBatchSize = 96;
  std::vector<IngestClient> clients;
  for (int c = 0; c < kClients; ++c) clients.push_back(ConnectTo(*server));
  std::vector<std::vector<KeyedSample>> replay(kClients);
  std::vector<uint64_t> shed_seen(kClients, 0);
  std::vector<uint64_t> rejected_seen(kClients, 0);
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<uint64_t> keys;
      for (uint64_t k = 0; k < 8; ++k) {
        keys.push_back(1000 + static_cast<uint64_t>(c) * 16 + k);
      }
      Rng rng(0xfeed + static_cast<uint64_t>(c));
      for (int b = 0; b < kBatchesPerClient; ++b) {
        const std::vector<KeyedSample> batch =
            MakeMixedBatch(&rng, keys, kBatchSize, domain);
        auto result = clients[static_cast<size_t>(c)].Ingest(batch);
        if (!result.ok() || result->rejected) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        const std::vector<KeyedSample> kept =
            ReconstructAccepted(batch, result->ack, 4);
        if (kept.size() != result->ack.accepted) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        auto& mine = replay[static_cast<size_t>(c)];
        mine.insert(mine.end(), kept.begin(), kept.end());
        shed_seen[static_cast<size_t>(c)] += result->ack.shed;
        rejected_seen[static_cast<size_t>(c)] += result->ack.rejected;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  CHECK(!failed.load(std::memory_order_relaxed));

  uint64_t shed_total = 0, rejected_total = 0, replayed = 0;
  for (int c = 0; c < kClients; ++c) {
    shed_total += shed_seen[static_cast<size_t>(c)];
    rejected_total += rejected_seen[static_cast<size_t>(c)];
    replayed += replay[static_cast<size_t>(c)].size();
  }
  // Both overload tiers must actually have fired.
  CHECK(shed_total > 0);
  CHECK(rejected_total > 0);

  // The server's own accounting agrees with what the ACKs promised, per
  // partition and in total — and the per-partition depth bound held.
  {
    IngestClient probe = ConnectTo(*server);
    auto stats = probe.Stats();
    CHECK_OK(stats);
    CHECK(stats->num_loops == 4);
    CHECK(stats->partitions.size() == 4);
    CHECK(stats->samples_offered ==
          static_cast<uint64_t>(kClients) * kBatchesPerClient * kBatchSize);
    CHECK(stats->samples_accepted == replayed);
    CHECK(stats->samples_shed == shed_total);
    uint64_t part_rejected = 0;
    const uint64_t producers = std::min<uint64_t>(kClients, 4);
    for (const PartitionStats& part : stats->partitions) {
      part_rejected += part.samples_rejected;
      CHECK(part.max_queue_depth <
            options.base.hard_watermark + producers * kBatchSize);
    }
    CHECK(part_rejected == rejected_total);
    probe.Close();
  }

  for (IngestClient& client : clients) client.Close();
  CHECK(server->Shutdown().ok());

  auto offline = SummaryStore::Create(options.base.archetype);
  CHECK_OK(offline);
  std::vector<uint64_t> all_keys;
  for (int c = 0; c < kClients; ++c) {
    if (!replay[static_cast<size_t>(c)].empty()) {
      CHECK(offline->AddBatch(replay[static_cast<size_t>(c)]).ok());
    }
    for (uint64_t k = 0; k < 16; ++k) {
      all_keys.push_back(1000 + static_cast<uint64_t>(c) * 16 + k);
    }
  }
  CheckDrainedMatchesReplay(*server, *offline, all_keys,
                            options.base.shard_id);
}

// --- Multi-loop stress with concurrent pulls --------------------------------

TEST(ShardedConcurrentPullsUnderMultiLoopStress) {
  // Four writer connections (one per loop, round-robin) interleaving
  // ingests with pulls of their own keys, plus a chaos connection hammering
  // stats/pulls/quantiles across everyone's keys — all while batches hop
  // loops through the rings.  Own-key pulls must be exact (push-before-ACK
  // + drain-on-pull freshness); foreign-key requests may race key creation
  // and are only required not to wedge or crash.  This is the TSan target.
  ShardedIngestServerOptions options;
  options.num_loops = 4;
  options.base.shard_id = 3;
  auto server = StartSharded(options);
  const int64_t domain = options.base.archetype.domain_size;

  constexpr int kWriters = 4;
  constexpr int kIterations = 80;
  std::vector<IngestClient> writers;
  for (int c = 0; c < kWriters; ++c) writers.push_back(ConnectTo(*server));
  IngestClient chaos = ConnectTo(*server);
  std::vector<std::unique_ptr<SummaryStore>> offline(kWriters);
  std::atomic<bool> failed{false};
  std::atomic<bool> writers_done{false};

  std::vector<std::thread> threads;
  for (int c = 0; c < kWriters; ++c) {
    auto store = SummaryStore::Create(options.base.archetype);
    CHECK_OK(store);
    offline[static_cast<size_t>(c)] =
        std::make_unique<SummaryStore>(std::move(store).value());
    threads.emplace_back([&, c] {
      SummaryStore& mine = *offline[static_cast<size_t>(c)];
      IngestClient& client = writers[static_cast<size_t>(c)];
      std::vector<uint64_t> keys;
      for (uint64_t k = 0; k < 4; ++k) {
        keys.push_back(5000 + static_cast<uint64_t>(c) * 8 + k);
      }
      Rng rng(0xc0de + static_cast<uint64_t>(c));
      for (int i = 0; i < kIterations; ++i) {
        const std::vector<KeyedSample> batch =
            MakeMixedBatch(&rng, keys, 32, domain);
        auto result = client.Ingest(batch);
        if (!result.ok() || result->rejected || result->ack.shed != 0) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        if (!mine.AddBatch(batch).ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        if (i % 8 == 7) {
          // Everything this connection has had ACKed must be visible and
          // exact, mid-stream, while the other loops keep writing.
          const uint64_t key = keys[static_cast<size_t>(i / 8) % keys.size()];
          auto pulled = client.PullSnapshot(key);
          auto expected = mine.ExportKeyedSnapshot(key, 3);
          if (!pulled.ok() || !expected.ok() ||
              !SnapshotsBitIdentical(*pulled, *expected)) {
            failed.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  std::thread chaos_thread([&] {
    Rng rng(0x5eed);
    int spins = 0;
    while (!writers_done.load(std::memory_order_relaxed) && spins < 10000) {
      ++spins;
      auto stats = chaos.Stats();
      if (!stats.ok() || stats->num_loops != 4 ||
          stats->partitions.size() != 4) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      // Foreign keys mid-creation: either a snapshot or a clean typed error.
      const uint64_t key =
          5000 + static_cast<uint64_t>(rng.UniformInt(kWriters)) * 8 +
          static_cast<uint64_t>(rng.UniformInt(4));
      (void)chaos.PullSnapshot(key);
      (void)chaos.Quantile(key, 0.5);
      if (!chaos.connected()) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  for (std::thread& t : threads) t.join();
  writers_done.store(true, std::memory_order_relaxed);
  chaos_thread.join();
  CHECK(!failed.load(std::memory_order_relaxed));

  for (IngestClient& client : writers) client.Close();
  chaos.Close();
  CHECK(server->Shutdown().ok());
  for (int c = 0; c < kWriters; ++c) {
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 4; ++k) {
      keys.push_back(5000 + static_cast<uint64_t>(c) * 8 + k);
    }
    CheckDrainedMatchesReplay(*server, *offline[static_cast<size_t>(c)], keys,
                              options.base.shard_id);
  }
}

// --- epoll vs poll ----------------------------------------------------------

TEST(EpollAndPollBackendsBehaveIdentically) {
  // Part 1: the same fully-sequential scenario driven through each backend
  // must produce the identical event transcript.  Each step triggers the
  // next (no racing timers), so the ordering is deterministic by
  // construction and any divergence is a backend bug.
  const auto run_scenario = [](EventLoopBackend backend) {
    auto loop_or = EventLoop::Create(backend);
    CHECK_OK(loop_or);
    EventLoop& loop = **loop_or;
    int fds[2];
    CHECK(pipe(fds) == 0);
    std::vector<std::string> events;  // loop-thread only until join
    std::thread runner([&loop] { loop.Run(); });
    loop.Post([&] {
      events.push_back("post");
      CHECK(loop
                .Watch(fds[0], /*want_read=*/true, /*want_write=*/false,
                       [&](EventLoop::IoEvent event) {
                         char buffer[8];
                         const ssize_t n = read(fds[0], buffer, sizeof(buffer));
                         CHECK(n > 0 && event.readable);
                         events.push_back(
                             "io:" +
                             std::string(buffer, static_cast<size_t>(n)));
                         if (buffer[0] == 'a') {
                           loop.ScheduleAt(MonotonicNanos() + 2000000, [&] {
                             events.push_back("timer");
                             CHECK(write(fds[1], "b", 1) == 1);
                           });
                         } else {
                           loop.Unwatch(fds[0]);
                           CHECK(loop
                                     .Watch(fds[1], /*want_read=*/false,
                                            /*want_write=*/true,
                                            [&](EventLoop::IoEvent ev) {
                                              CHECK(ev.writable);
                                              events.push_back("writable");
                                              loop.Unwatch(fds[1]);
                                              loop.Quit();
                                            })
                                     .ok());
                         }
                       })
                .ok());
      CHECK(write(fds[1], "a", 1) == 1);
    });
    runner.join();
    close(fds[0]);
    close(fds[1]);
    return events;
  };

  const std::vector<std::string> poll_events =
      run_scenario(EventLoopBackend::kPoll);
  const std::vector<std::string> want = {"post", "io:a", "timer", "io:b",
                                         "writable"};
  CHECK(poll_events == want);
  if (EventLoop::EpollSupported()) {
    CHECK(run_scenario(EventLoopBackend::kEpoll) == want);
  }

  // Part 2: a deterministic single-client workload against a sharded server
  // on each backend lands on identical ACKs, counters, and drained bytes.
  const auto run_workload = [](EventLoopBackend backend) {
    ShardedIngestServerOptions options;
    options.num_loops = 2;
    options.base.shard_id = 13;
    options.backend = backend;
    auto server = StartSharded(options);
    const int64_t domain = options.base.archetype.domain_size;
    IngestClient client = ConnectTo(*server);
    const std::vector<uint64_t> keys = {9100, 9101, 9102};
    Rng rng(0xbeef);
    std::vector<uint8_t> transcript;
    for (int b = 0; b < 20; ++b) {
      const std::vector<KeyedSample> batch =
          MakeMixedBatch(&rng, keys, 40, domain);
      auto result = client.Ingest(batch);
      CHECK_OK(result);
      CHECK(!result->rejected);
      const std::vector<uint8_t> ack = EncodeIngestAck(result->ack);
      transcript.insert(transcript.end(), ack.begin(), ack.end());
    }
    client.Close();
    CHECK(server->Shutdown().ok());
    const ServerStats stats = server->stats();
    CHECK(stats.samples_accepted == 800 && stats.samples_offered == 800);
    for (const uint64_t key : keys) {
      auto snapshot = server->ExportKeyedSnapshot(key);
      CHECK_OK(snapshot);
      const std::vector<uint8_t> bytes = EncodeShardSnapshot(*snapshot);
      transcript.insert(transcript.end(), bytes.begin(), bytes.end());
    }
    return transcript;
  };

  const std::vector<uint8_t> poll_transcript =
      run_workload(EventLoopBackend::kPoll);
  CHECK(!poll_transcript.empty());
  if (EventLoop::EpollSupported()) {
    CHECK(run_workload(EventLoopBackend::kEpoll) == poll_transcript);
  }
}

// --- Stats ------------------------------------------------------------------

TEST(ShardedStatsReportPerPartitionCountersAndMergedLatency) {
  ShardedIngestServerOptions options;
  options.num_loops = 4;
  options.base.shard_id = 5;
  auto server = StartSharded(options);
  const int64_t domain = options.base.archetype.domain_size;

  IngestClient client = ConnectTo(*server);
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 16; ++k) keys.push_back(300 + k);
  // What each partition should have accepted is computable client-side:
  // the key -> partition map is the shared pure function.
  std::vector<uint64_t> expected_accepted(4, 0);
  Rng rng(0x57a7);
  constexpr int kBatches = 30;
  for (int b = 0; b < kBatches; ++b) {
    const std::vector<KeyedSample> batch =
        MakeMixedBatch(&rng, keys, 64, domain);
    for (const KeyedSample& sample : batch) {
      ++expected_accepted[PartitionOfKey(sample.key, 4)];
    }
    auto result = client.Ingest(batch);
    CHECK_OK(result);
    CHECK(!result->rejected && result->ack.shed == 0);
  }
  for (int q = 0; q < 5; ++q) {
    CHECK_OK(client.PullSnapshot(keys[static_cast<size_t>(q)]));
    CHECK_OK(client.Quantile(keys[static_cast<size_t>(q)], 0.25 * q));
  }

  auto stats = client.Stats();
  CHECK_OK(stats);
  CHECK(stats->num_loops == 4);
  CHECK(stats->partitions.size() == 4);
  uint64_t sum_accepted = 0;
  for (uint32_t p = 0; p < 4; ++p) {
    const PartitionStats& part = stats->partitions[p];
    CHECK(part.partition == p);  // worker order, stable for dashboards
    CHECK(part.samples_accepted == expected_accepted[p]);
    CHECK(part.samples_shed == 0 && part.samples_rejected == 0);
    sum_accepted += part.samples_accepted;
  }
  CHECK(sum_accepted == static_cast<uint64_t>(kBatches) * 64);
  CHECK(stats->samples_accepted == sum_accepted);
  CHECK(stats->samples_offered == sum_accepted);
  // The latency quantiles are merged across every loop's recorder: the
  // counts must cover every timed request, and a nonzero count comes with
  // nonzero quantiles (the recorder clamps below 100ns, never to zero...
  // a zero would mean the merge dropped a loop's mass).
  CHECK(stats->ingest_count == kBatches);
  CHECK(stats->query_count == 10);
  CHECK(stats->ingest_p50_us > 0.0);
  CHECK(stats->ingest_p99_us >= stats->ingest_p50_us);
  CHECK(stats->query_p50_us > 0.0);

  client.Close();
  CHECK(server->Shutdown().ok());
  // The post-shutdown accessor aggregates the same way the wire path does.
  const ServerStats drained = server->stats();
  CHECK(drained.num_loops == 4);
  CHECK(drained.samples_accepted == sum_accepted);
  CHECK(drained.ingest_count == kBatches);
  for (uint32_t p = 0; p < 4; ++p) {
    CHECK(drained.partitions[p].samples_accepted == expected_accepted[p]);
    CHECK(drained.partitions[p].queue_depth == 0);  // everything flushed
  }
}

// --- Graceful shutdown ------------------------------------------------------

TEST(ShardedGracefulShutdownDrainsAllPartitions) {
  // Flushing disabled entirely: every accepted sample is still sitting in a
  // hand-off ring or a pending buffer when Shutdown starts, so the final
  // store state is produced by the shutdown barriers alone.
  ShardedIngestServerOptions options;
  options.num_loops = 4;
  options.base.shard_id = 11;
  options.base.flush_batch = size_t{1} << 20;
  options.base.flush_deadline_us = uint64_t{60} * 1000 * 1000;
  auto server = StartSharded(options);
  const int64_t domain = options.base.archetype.domain_size;

  auto offline = SummaryStore::Create(options.base.archetype);
  CHECK_OK(offline);
  std::vector<IngestClient> clients;
  clients.push_back(ConnectTo(*server));
  clients.push_back(ConnectTo(*server));
  std::vector<uint64_t> all_keys;
  Rng rng(0xd1a7);
  for (int c = 0; c < 2; ++c) {
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 6; ++k) {
      keys.push_back(8000 + static_cast<uint64_t>(c) * 8 + k);
      all_keys.push_back(keys.back());
    }
    for (int b = 0; b < 25; ++b) {
      const std::vector<KeyedSample> batch =
          MakeMixedBatch(&rng, keys, 40, domain);
      auto result = clients[static_cast<size_t>(c)].Ingest(batch);
      CHECK_OK(result);
      CHECK(!result->rejected && result->ack.accepted == batch.size());
      CHECK(offline->AddBatch(batch).ok());
    }
  }

  for (IngestClient& client : clients) client.Close();
  CHECK(server->Shutdown().ok());
  CHECK(server->Shutdown().ok());  // idempotent

  CHECK(server->store().num_keys() == all_keys.size());
  for (const uint64_t key : all_keys) {
    auto drained_count = server->store().NumSamples(key);
    auto expected_count = offline->NumSamples(key);
    CHECK_OK(drained_count);
    CHECK_OK(expected_count);
    CHECK(*drained_count == *expected_count);
  }
  CheckDrainedMatchesReplay(*server, *offline, all_keys,
                            options.base.shard_id);
  const ServerStats stats = server->stats();
  CHECK(stats.samples_accepted == uint64_t{2} * 25 * 40);
  for (const PartitionStats& part : stats.partitions) {
    CHECK(part.queue_depth == 0);  // the drain barrier left nothing behind
  }
}

}  // namespace
}  // namespace fasthist
