#include <cmath>
#include <vector>

#include "core/merging.h"
#include "poly/fit_poly.h"
#include "poly/gram.h"
#include "poly/poly_merging.h"
#include "tests/fasthist_test.h"

namespace fasthist {
namespace {

TEST(GramBasisIsOrthonormal) {
  const int64_t n = 64;
  const int degree = 6;
  auto basis = GramBasis::Create(n, degree);
  CHECK_OK(basis);

  // Evaluate all basis polynomials on the grid and check <p_i, p_j> = δij.
  std::vector<std::vector<double>> values(static_cast<size_t>(n));
  for (int64_t x = 0; x < n; ++x) {
    basis->EvaluateAt(static_cast<double>(x), &values[static_cast<size_t>(x)]);
  }
  for (int i = 0; i <= degree; ++i) {
    for (int j = 0; j <= degree; ++j) {
      double inner = 0.0;
      for (int64_t x = 0; x < n; ++x) {
        inner += values[static_cast<size_t>(x)][static_cast<size_t>(i)] *
                 values[static_cast<size_t>(x)][static_cast<size_t>(j)];
      }
      CHECK_NEAR(inner, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
  CHECK(!GramBasis::Create(4, 4).ok());  // degree must be < num_points
  CHECK(!GramBasis::Create(0, 0).ok());
}

TEST(FitPolyIsExactOnPolynomials) {
  // q(x) = a cubic; degree-3 projection must recover it exactly, degree-2
  // must leave a residual.
  const int64_t n = 128;
  std::vector<double> dense(static_cast<size_t>(n));
  for (int64_t x = 0; x < n; ++x) {
    const double t = static_cast<double>(x);
    dense[static_cast<size_t>(x)] = 1.0 + 0.5 * t - 0.02 * t * t + 1e-4 * t * t * t;
  }
  const SparseFunction q = SparseFunction::FromDense(dense);
  const Interval interval{0, n};

  auto exact = FitPoly(q, interval, 3);
  CHECK_OK(exact);
  CHECK_NEAR(exact->err_squared, 0.0, 1e-6);
  for (int64_t x : {int64_t{0}, int64_t{17}, n - 1}) {
    CHECK_NEAR(exact->EvaluateAt(x), dense[static_cast<size_t>(x)], 1e-6);
  }

  auto under = FitPoly(q, interval, 2);
  CHECK_OK(under);
  CHECK(under->err_squared > 1e-3);

  // Degree is capped by the interval length.
  auto tiny = FitPoly(q, {5, 7}, 8);
  CHECK_OK(tiny);
  CHECK_NEAR(tiny->err_squared, 0.0, 1e-9);
  CHECK(!FitPoly(q, {10, 10}, 1).ok());
  CHECK(!FitPoly(q, {0, n + 1}, 1).ok());
}

TEST(PiecewisePolynomialBeatsHistogramOnSmoothData) {
  // A smooth quartic: at an equal piece budget, degree-4 pieces must fit
  // far better than flat pieces.
  const int64_t n = 1024;
  std::vector<double> dense(static_cast<size_t>(n));
  for (int64_t x = 0; x < n; ++x) {
    const double t = static_cast<double>(x) / static_cast<double>(n);
    dense[static_cast<size_t>(x)] =
        50.0 + 80.0 * t * (1.0 - t) * (0.3 - t) * (0.9 - t);
  }
  const SparseFunction q = SparseFunction::FromDense(dense);
  const int64_t k = 4;

  auto poly = ConstructPiecewisePolynomial(q, k, 4);
  CHECK_OK(poly);
  auto hist = ConstructHistogram(q, k);
  CHECK_OK(hist);
  CHECK(poly->function.num_pieces() <= 2 * k + 1);
  CHECK(poly->err_squared < 0.01 * hist->err_squared);

  // The returned function tiles the domain and reproduces err_squared.
  double direct = 0.0;
  const std::vector<double> fitted = poly->function.ToDense();
  for (size_t i = 0; i < dense.size(); ++i) {
    const double d = dense[i] - fitted[i];
    direct += d * d;
  }
  CHECK_NEAR(direct, poly->err_squared, 1e-6 * (1.0 + direct));

  CHECK(!ConstructPiecewisePolynomial(q, 0, 2).ok());
  CHECK(!ConstructPiecewisePolynomial(q, 4, -1).ok());
}

}  // namespace
}  // namespace fasthist
