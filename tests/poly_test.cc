#include <cmath>
#include <vector>

#include "core/merging.h"
#include "poly/fit_poly.h"
#include "poly/gram.h"
#include "poly/poly_merging.h"
#include "tests/fasthist_test.h"

namespace fasthist {
namespace {

TEST(GramBasisIsOrthonormal) {
  const int64_t n = 64;
  const int degree = 6;
  auto basis = GramBasis::Create(n, degree);
  CHECK_OK(basis);

  // Evaluate all basis polynomials on the grid and check <p_i, p_j> = δij.
  std::vector<std::vector<double>> values(static_cast<size_t>(n));
  for (int64_t x = 0; x < n; ++x) {
    basis->EvaluateAt(static_cast<double>(x), &values[static_cast<size_t>(x)]);
  }
  for (int i = 0; i <= degree; ++i) {
    for (int j = 0; j <= degree; ++j) {
      double inner = 0.0;
      for (int64_t x = 0; x < n; ++x) {
        inner += values[static_cast<size_t>(x)][static_cast<size_t>(i)] *
                 values[static_cast<size_t>(x)][static_cast<size_t>(j)];
      }
      CHECK_NEAR(inner, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
  CHECK(!GramBasis::Create(4, 4).ok());  // degree must be < num_points
  CHECK(!GramBasis::Create(0, 0).ok());
}

TEST(FitPolyIsExactOnPolynomials) {
  // q(x) = a cubic; degree-3 projection must recover it exactly, degree-2
  // must leave a residual.
  const int64_t n = 128;
  std::vector<double> dense(static_cast<size_t>(n));
  for (int64_t x = 0; x < n; ++x) {
    const double t = static_cast<double>(x);
    dense[static_cast<size_t>(x)] = 1.0 + 0.5 * t - 0.02 * t * t + 1e-4 * t * t * t;
  }
  const SparseFunction q = SparseFunction::FromDense(dense);
  const Interval interval{0, n};

  auto exact = FitPoly(q, interval, 3);
  CHECK_OK(exact);
  CHECK_NEAR(exact->err_squared, 0.0, 1e-6);
  for (int64_t x : {int64_t{0}, int64_t{17}, n - 1}) {
    CHECK_NEAR(exact->EvaluateAt(x), dense[static_cast<size_t>(x)], 1e-6);
  }

  auto under = FitPoly(q, interval, 2);
  CHECK_OK(under);
  CHECK(under->err_squared > 1e-3);

  // Degree is capped by the interval length.
  auto tiny = FitPoly(q, {5, 7}, 8);
  CHECK_OK(tiny);
  CHECK_NEAR(tiny->err_squared, 0.0, 1e-9);
  CHECK(!FitPoly(q, {10, 10}, 1).ok());
  CHECK(!FitPoly(q, {0, n + 1}, 1).ok());
}

TEST(PiecewisePolynomialBeatsHistogramOnSmoothData) {
  // A smooth quartic: at an equal piece budget, degree-4 pieces must fit
  // far better than flat pieces.
  const int64_t n = 1024;
  std::vector<double> dense(static_cast<size_t>(n));
  for (int64_t x = 0; x < n; ++x) {
    const double t = static_cast<double>(x) / static_cast<double>(n);
    dense[static_cast<size_t>(x)] =
        50.0 + 80.0 * t * (1.0 - t) * (0.3 - t) * (0.9 - t);
  }
  const SparseFunction q = SparseFunction::FromDense(dense);
  const int64_t k = 4;

  auto poly = ConstructPiecewisePolynomial(q, k, 4);
  CHECK_OK(poly);
  auto hist = ConstructHistogram(q, k);
  CHECK_OK(hist);
  CHECK(poly->function.num_pieces() <= 2 * k + 1);
  CHECK(poly->err_squared < 0.01 * hist->err_squared);

  // The returned function tiles the domain and reproduces err_squared.
  double direct = 0.0;
  const std::vector<double> fitted = poly->function.ToDense();
  for (size_t i = 0; i < dense.size(); ++i) {
    const double d = dense[i] - fitted[i];
    direct += d * d;
  }
  CHECK_NEAR(direct, poly->err_squared, 1e-6 * (1.0 + direct));

  CHECK(!ConstructPiecewisePolynomial(q, 0, 2).ok());
  CHECK(!ConstructPiecewisePolynomial(q, 4, -1).ok());
}

TEST(FastPolyConstructionMatchesSlow) {
  // The shared-engine contract on a fixed smooth input: the selection-based
  // fast path returns exactly the sort-based reference's output.  (The
  // randomized sweep lives in property_test.cc.)
  const int64_t n = 512;
  std::vector<double> dense(static_cast<size_t>(n));
  for (int64_t x = 0; x < n; ++x) {
    const double t = static_cast<double>(x) / static_cast<double>(n);
    dense[static_cast<size_t>(x)] =
        20.0 * std::sin(7.0 * t) + 15.0 * t * t + (x % 17 == 0 ? 3.0 : 0.0);
  }
  const SparseFunction q = SparseFunction::FromDense(dense);
  for (int degree : {0, 2, 4}) {
    for (int64_t k : {3, 12}) {
      auto slow = ConstructPiecewisePolynomial(q, k, degree);
      auto fast = ConstructPiecewisePolynomialFast(q, k, degree);
      CHECK_OK(slow);
      CHECK_OK(fast);
      CHECK(slow->num_rounds == fast->num_rounds);
      CHECK_NEAR(slow->err_squared, fast->err_squared, 0.0);
      CHECK(slow->function.num_pieces() == fast->function.num_pieces());
      for (int64_t p = 0; p < slow->function.num_pieces(); ++p) {
        const PolyFit& a = slow->function.pieces()[static_cast<size_t>(p)];
        const PolyFit& b = fast->function.pieces()[static_cast<size_t>(p)];
        CHECK(a.interval.begin == b.interval.begin);
        CHECK(a.interval.end == b.interval.end);
        for (size_t j = 0; j < a.coefficients.size(); ++j) {
          CHECK_NEAR(a.coefficients[j], b.coefficients[j], 0.0);
        }
      }
    }
  }
  CHECK(!ConstructPiecewisePolynomialFast(q, 0, 2).ok());
  CHECK(!ConstructPiecewisePolynomialFast(q, 4, -1).ok());
}

}  // namespace
}  // namespace fasthist
