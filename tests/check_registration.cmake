# Run by the <binary>.registration_sync ctest entries: executes the test
# binary with --list and diffs the registered TEST(name) set against the
# case list declared in tests/CMakeLists.txt (passed comma-joined in
# EXPECTED_CASES).  Either direction of drift is a hard failure, so the
# "keep the lists in sync by hand" convention is now machine-checked.
#
# Usage:
#   cmake -DTEST_BINARY=<path> -DEXPECTED_CASES=a,b,c -P check_registration.cmake

cmake_minimum_required(VERSION 3.16)

if(NOT DEFINED TEST_BINARY OR NOT DEFINED EXPECTED_CASES)
  message(FATAL_ERROR "check_registration.cmake needs TEST_BINARY and EXPECTED_CASES")
endif()

execute_process(
  COMMAND ${TEST_BINARY} --list
  OUTPUT_VARIABLE listed_output
  RESULT_VARIABLE list_result
)
if(NOT list_result EQUAL 0)
  message(FATAL_ERROR "${TEST_BINARY} --list failed (exit ${list_result})")
endif()

string(STRIP "${listed_output}" listed_output)
string(REPLACE "\n" ";" registered "${listed_output}")
string(REPLACE "," ";" expected "${EXPECTED_CASES}")

set(errors "")
foreach(case IN LISTS registered)
  if(NOT case IN_LIST expected)
    string(APPEND errors
      "TEST(${case}) has no ctest entry; add it to tests/CMakeLists.txt\n")
  endif()
endforeach()
foreach(case IN LISTS expected)
  if(NOT case IN_LIST registered)
    string(APPEND errors
      "ctest case '${case}' matches no TEST() in the binary; "
      "remove or fix it in tests/CMakeLists.txt\n")
  endif()
endforeach()

if(NOT errors STREQUAL "")
  message(FATAL_ERROR "registration out of sync for ${TEST_BINARY}:\n${errors}")
endif()
