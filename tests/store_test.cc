// The keyed summary store's contracts: per-key summaries bit-identical to
// standalone streaming builders (the store changes layout, never the
// computation), slab reuse under key churn, the two-level key index against
// a reference map under collision-heavy fuzz, and bulk cross-key reductions
// against hand-built merge trees.

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "core/streaming.h"
#include "service/merge_tree.h"
#include "service/wire_format.h"
#include "store/key_index.h"
#include "store/summary_store.h"
#include "tests/fasthist_test.h"
#include "tests/histogram_testutil.h"
#include "util/random.h"

namespace fasthist {
namespace {

using testing::BitIdentical;

// Interleaved keyed stream: round-robin-ish assignment with random batch
// sizes, so keys hit different window/ladder phases.
std::vector<KeyedSample> MakeKeyedStream(size_t num_keys, size_t num_samples,
                                         int64_t domain, uint64_t seed) {
  Rng rng(seed);
  std::vector<KeyedSample> samples(num_samples);
  for (KeyedSample& sample : samples) {
    // Skewed key popularity: low keys are hot, so some keys run many
    // windows deep while others never fill their first.
    const auto key = static_cast<uint64_t>(
        rng.UniformInt(static_cast<int64_t>(num_keys)) *
        rng.UniformInt(static_cast<int64_t>(num_keys)) /
        static_cast<int64_t>(num_keys));
    sample.key = key * 2654435761u + 7;  // spread ids over the key space
    sample.value = rng.UniformInt(domain);
    }
  return samples;
}

// Every key's summary, sample count, and error levels must be bit-for-bit
// what a standalone StreamingHistogramBuilder produces from that key's
// subsequence — across archetypes (k, delta, window) and thread counts
// (the engine is thread-invariant, so num_threads must not change bytes).
TEST(StorePerKeyBitIdenticalToStandaloneBuilders) {
  const int64_t domain = 512;
  struct Shape {
    int64_t k;
    double delta;
    size_t window;
  };
  const Shape shapes[] = {{4, 1000.0, 32}, {8, 50.0, 64}, {12, 1000.0, 48}};
  for (int num_threads : {1, 2, 8}) {
    ArchetypeConfig base;
    base.domain_size = domain;
    base.k = shapes[0].k;
    base.window_capacity = shapes[0].window;
    base.options.delta = shapes[0].delta;
    base.options.num_threads = num_threads;
    auto store = SummaryStore::Create(base);
    CHECK_OK(store);

    std::vector<int> archetypes = {0};
    for (size_t i = 1; i < 3; ++i) {
      ArchetypeConfig config = base;
      config.k = shapes[i].k;
      config.window_capacity = shapes[i].window;
      config.options.delta = shapes[i].delta;
      auto id = store->RegisterArchetype(config);
      CHECK_OK(id);
      archetypes.push_back(*id);
    }
    // Registering the same shape again dedupes, num_threads ignored.
    {
      ArchetypeConfig again = base;
      again.options.num_threads = num_threads + 1;
      auto id = store->RegisterArchetype(again);
      CHECK_OK(id);
      CHECK(*id == 0);
    }

    const std::vector<KeyedSample> stream =
        MakeKeyedStream(24, 20000, domain, 0xfeed + num_threads);
    // Keys are spread over the three archetypes by residue; ingest in a
    // few batches so mid-stream window states are exercised too.
    std::unordered_map<uint64_t, int> archetype_of;
    for (const KeyedSample& sample : stream) {
      archetype_of.emplace(sample.key,
                           archetypes[sample.key % archetypes.size()]);
    }
    const size_t batch = stream.size() / 3 + 1;
    for (size_t begin = 0; begin < stream.size(); begin += batch) {
      const size_t len = std::min(batch, stream.size() - begin);
      std::vector<KeyedSample> slice(stream.begin() + begin,
                                     stream.begin() + begin + len);
      // Split the slice per archetype (AddBatch takes one target pool).
      for (int archetype : archetypes) {
        std::vector<KeyedSample> part;
        for (const KeyedSample& sample : slice) {
          if (archetype_of[sample.key] == archetype) part.push_back(sample);
        }
        if (!part.empty()) CHECK(store->AddBatch(part, archetype).ok());
      }
    }

    // Reference: one standalone builder per key, fed the key's subsequence.
    std::unordered_map<uint64_t, StreamingHistogramBuilder> builders;
    for (const KeyedSample& sample : stream) {
      auto it = builders.find(sample.key);
      if (it == builders.end()) {
        const ArchetypeConfig& config =
            store->archetype_config(archetype_of[sample.key]);
        auto builder = StreamingHistogramBuilder::Create(
            config.domain_size, config.k, config.window_capacity,
            config.options);
        CHECK_OK(builder);
        it = builders.emplace(sample.key, std::move(builder).value()).first;
      }
      CHECK(it->second.Add(sample.value).ok());
    }

    CHECK(store->num_keys() == builders.size());
    for (auto& [key, builder] : builders) {
      auto stored = store->Query(key);
      CHECK_OK(stored);
      auto reference = builder.Peek();
      CHECK_OK(reference);
      CHECK(BitIdentical(*stored, *reference));
      auto num_samples = store->NumSamples(key);
      CHECK_OK(num_samples);
      CHECK(*num_samples == builder.num_samples());
      auto error_levels = store->ErrorLevels(key);
      CHECK_OK(error_levels);
      CHECK(*error_levels == builder.error_levels());
    }
  }
}

// Key churn must recycle slab slots, not grow the slabs: erase half the
// keys, insert as many new ones, and the pool's total bytes stay flat.  A
// recycled slot must behave exactly like a fresh one (no state bleed from
// the previous occupant).
TEST(StoreEraseReinsertReusesSlabs) {
  ArchetypeConfig config;
  config.domain_size = 256;
  config.k = 6;
  config.window_capacity = 16;
  auto store = SummaryStore::Create(config);
  CHECK_OK(store);

  const size_t num_keys = 1500;  // ~6 chunks of 256
  Rng rng(77);
  for (uint64_t key = 0; key < num_keys; ++key) {
    for (int i = 0; i < 40; ++i) {
      CHECK(store->Add(key, rng.UniformInt(config.domain_size)).ok());
    }
  }
  const StoreMemoryStats stats_full = store->memory();
  const size_t bytes_full = stats_full.total_bytes - stats_full.index_bytes;

  std::vector<uint64_t> live_keys;
  for (uint64_t key = 0; key < num_keys; ++key) live_keys.push_back(key);
  uint64_t next_id = 10'000'000;  // never collides with anything live
  for (int round = 0; round < 4; ++round) {
    // Erase half the live keys, then insert the same number of fresh ids.
    const size_t half = live_keys.size() / 2;
    for (size_t i = 0; i < half; ++i) {
      CHECK(store->Erase(live_keys[i]).ok());
    }
    live_keys.erase(live_keys.begin(),
                    live_keys.begin() + static_cast<ptrdiff_t>(half));
    for (size_t i = 0; i < half; ++i) {
      const uint64_t fresh = next_id++;
      live_keys.push_back(fresh);
      for (int j = 0; j < 40; ++j) {
        CHECK(store->Add(fresh, rng.UniformInt(config.domain_size)).ok());
      }
    }
    CHECK(store->num_keys() == num_keys);
    // The slab planes did not grow: churn reuses released slots (LIFO
    // freelist).  The index may rehash (fresh ids hash elsewhere), so the
    // comparison is against pool bytes = total - index.
    const StoreMemoryStats stats = store->memory();
    CHECK(stats.total_bytes - stats.index_bytes == bytes_full);
  }

  // A recycled slot is indistinguishable from a fresh builder.
  CHECK(store->Erase(live_keys.back()).ok());
  const uint64_t reborn = 0xdeadbeefull;
  std::vector<int64_t> replay;
  for (int i = 0; i < 100; ++i) {
    replay.push_back(rng.UniformInt(config.domain_size));
    CHECK(store->Add(reborn, replay.back()).ok());
  }
  auto builder = StreamingHistogramBuilder::Create(
      config.domain_size, config.k, config.window_capacity, config.options);
  CHECK_OK(builder);
  CHECK(builder->AddMany(replay).ok());
  auto stored = store->Query(reborn);
  CHECK_OK(stored);
  CHECK(BitIdentical(*stored, *builder->Peek()));
}

// The two-level index against a reference map under a fuzz mix biased
// toward collisions: a small dense id range (heavy probe chains and
// tombstone churn in a few stripes) plus keys differing only in high bits.
// Every operation's return value and the final enumeration must match.
TEST(StoreKeyIndexFuzzCollisionHeavyKeys) {
  Rng rng(0xc011);
  KeyIndex index;
  std::unordered_map<uint64_t, uint64_t> reference;
  const uint64_t value_mask = (uint64_t{1} << 63) - 1;

  for (int op = 0; op < 200000; ++op) {
    uint64_t key;
    switch (rng.UniformInt(3)) {
      case 0:  // dense range: same few stripes, long runs
        key = static_cast<uint64_t>(rng.UniformInt(512));
        break;
      case 1:  // high-bit variants of the dense range
        key = static_cast<uint64_t>(rng.UniformInt(512)) |
              (static_cast<uint64_t>(rng.UniformInt(8)) << 60);
        break;
      default:
        key = rng.NextUint64();
    }
    const int action = static_cast<int>(rng.UniformInt(4));
    if (action == 0) {  // erase
      CHECK(index.Erase(key) == (reference.erase(key) > 0));
    } else if (action == 1) {  // reassign
      const uint64_t value = rng.NextUint64() & value_mask;
      const auto it = reference.find(key);
      if (it != reference.end()) it->second = value;
      CHECK(index.Assign(key, value) == (it != reference.end()));
    } else {  // insert
      const uint64_t value = rng.NextUint64() & value_mask;
      const bool fresh = reference.emplace(key, value).second;
      CHECK(index.Insert(key, value) == fresh);
    }
    const uint64_t found = index.Find(key);
    const auto it = reference.find(key);
    if (it == reference.end()) {
      CHECK(found == KeyIndex::kNotFound);
    } else {
      CHECK(found == it->second);
    }
    CHECK(index.size() == reference.size());
  }

  size_t enumerated = 0;
  index.ForEach([&](uint64_t key, uint64_t value) {
    const auto it = reference.find(key);
    CHECK(it != reference.end());
    CHECK(it->second == value);
    ++enumerated;
  });
  CHECK(enumerated == reference.size());
}

// Bulk ops against hand-built references: MergeAllMatching and
// GroupByRollup must equal ReduceSummaries over the per-key summaries in
// canonical key order (bit-identical aggregates, matching accounting),
// TopKHeaviest must equal a sort, and keyed exports must survive the wire
// and reduce like any snapshots.
TEST(StoreBulkOpsMatchReferenceReduction) {
  ArchetypeConfig config;
  config.domain_size = 400;
  config.k = 7;
  config.window_capacity = 24;
  auto store = SummaryStore::Create(config);
  CHECK_OK(store);

  const std::vector<KeyedSample> stream =
      MakeKeyedStream(40, 30000, config.domain_size, 0xb01d);
  CHECK(store->AddBatch(stream).ok());
  // A keyed but sample-less key: bulk ops must skip it, not crash or merge
  // a fabricated uniform into the aggregate.
  const uint64_t empty_key = 0xeeeeeeeeull;
  CHECK(store->EnsureKeys({empty_key}).ok());

  // Reference per-key summaries in canonical (sorted key) order.
  std::vector<uint64_t> keys;
  for (const KeyedSample& sample : stream) keys.push_back(sample.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  const int64_t k = 9;
  MergeTreeOptions tree_options;
  tree_options.fan_in = 3;
  const auto reference_reduce =
      [&](const std::function<bool(uint64_t)>& pred) {
        std::vector<ShardSummary> summaries;
        for (uint64_t key : keys) {
          if (!pred(key)) continue;
          summaries.push_back(ShardSummary{
              store->Query(key).value(),
              static_cast<double>(store->NumSamples(key).value()),
              std::max(1, store->ErrorLevels(key).value())});
        }
        return ReduceSummaries(std::move(summaries), k, tree_options);
      };

  {  // MergeAllMatching over everything (the empty key is skipped).
    auto all = store->MergeAllMatching([](uint64_t) { return true; }, k,
                                       tree_options);
    CHECK_OK(all);
    auto reference = reference_reduce([](uint64_t) { return true; });
    CHECK_OK(reference);
    CHECK(BitIdentical(all->aggregate, reference->aggregate));
    CHECK(all->total_weight == reference->total_weight);
    CHECK(all->error_levels == reference->error_levels);
  }
  {  // A selective predicate.
    const auto pred = [](uint64_t key) { return key % 3 == 0; };
    auto matched = store->MergeAllMatching(pred, k, tree_options);
    CHECK_OK(matched);
    auto reference = reference_reduce(pred);
    CHECK_OK(reference);
    CHECK(BitIdentical(matched->aggregate, reference->aggregate));
  }
  {  // Nothing matches -> error, not a fabricated summary.
    CHECK(!store->MergeAllMatching([](uint64_t) { return false; }, k,
                                   tree_options)
               .ok());
  }
  {  // Group-by rollup: groups ordered by id, each bit-identical to its
     // own reference reduction.
    const auto group_of = [](uint64_t key) { return key % 5; };
    auto rollup = store->GroupByRollup(group_of, k, tree_options);
    CHECK_OK(rollup);
    CHECK(!rollup->empty());
    uint64_t previous_group = 0;
    bool first = true;
    for (const auto& [group, result] : *rollup) {
      CHECK(first || group > previous_group);
      first = false;
      previous_group = group;
      auto reference = reference_reduce(
          [&](uint64_t key) { return group_of(key) == group; });
      CHECK_OK(reference);
      CHECK(BitIdentical(result.aggregate, reference->aggregate));
    }
  }
  {  // TopKHeaviest == full sort by (count desc, key asc).
    std::vector<std::pair<uint64_t, int64_t>> expected;
    for (uint64_t key : keys) {
      expected.emplace_back(key, store->NumSamples(key).value());
    }
    std::sort(expected.begin(), expected.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    expected.resize(10);
    const auto top = store->TopKHeaviest(10);
    CHECK(top == expected);
  }
  {  // Keyed exports: v3 round trip, then a cross-key reduction through
     // ReduceSnapshots matches MergeAllMatching over the same keys.
    std::vector<ShardSnapshot> snapshots;
    for (uint64_t key : keys) {
      if (key % 4 != 0) continue;
      auto snapshot = store->ExportKeyedSnapshot(key, /*shard_id=*/5);
      CHECK_OK(snapshot);
      CHECK(snapshot->keyed);
      CHECK(snapshot->key_id == key);
      auto decoded = DecodeShardSnapshot(EncodeShardSnapshot(*snapshot));
      CHECK_OK(decoded);
      CHECK(decoded->keyed && decoded->key_id == key);
      snapshots.push_back(std::move(decoded).value());
    }
    auto reduced = ReduceSnapshots(std::move(snapshots), k, tree_options);
    CHECK_OK(reduced);
    auto direct = store->MergeAllMatching(
        [](uint64_t key) { return key % 4 == 0; }, k, tree_options);
    CHECK_OK(direct);
    CHECK(BitIdentical(reduced->aggregate, direct->aggregate));
  }
  {  // Per-key serving: the aggregator answers, empty keys are rejected.
    auto served = store->QueryAggregator(keys.front(), 0.01);
    CHECK_OK(served);
    CHECK(served->Cdf(config.domain_size) == 1.0);
    CHECK(!store->QueryAggregator(empty_key).ok());
  }
}

}  // namespace
}  // namespace fasthist
