#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "tests/fasthist_test.h"
#include "util/clock.h"
#include "util/padded.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/span.h"
#include "util/selection.h"
#include "util/simd.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace fasthist {
namespace {

TEST(TimerIsMonotonic) {
  WallTimer timer;
  double last = timer.ElapsedMillis();
  CHECK(last >= 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double now = timer.ElapsedMillis();
  CHECK(now >= last);
  timer.Restart();
  CHECK(timer.ElapsedMillis() <= now);
}

TEST(ClockMonotonicNanosAdvances) {
  // Monotone under rapid-fire reads (the request-path usage: two reads
  // bracketing an operation must never subtract negative)...
  const uint64_t start = MonotonicNanos();
  uint64_t last = start;
  for (int i = 0; i < 10000; ++i) {
    const uint64_t now = MonotonicNanos();
    CHECK(now >= last);
    last = now;
  }
  // ...and it actually advances with wall time, at nanosecond granularity.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const uint64_t after = MonotonicNanos();
  CHECK(after > start);
  CHECK(after - start >= 1000000);  // the 2 ms sleep shows up as >= 1 ms

  // The readout struct net/ fills from these timestamps defaults to the
  // all-zero "no samples yet" state.
  LatencyStats stats;
  CHECK(stats.count == 0);
  CHECK_NEAR(stats.p50_us + stats.p99_us + stats.p995_us, 0.0, 0.0);
}

TEST(RunningStatsMatchesClosedForm) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  CHECK(stats.Count() == 8);
  CHECK_NEAR(stats.Mean(), 5.0, 1e-12);
  // Sample variance of the set is 32/7.
  CHECK_NEAR(stats.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  CHECK_NEAR(stats.Min(), 2.0, 0.0);
  CHECK_NEAR(stats.Max(), 9.0, 0.0);
  CHECK_NEAR(Mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
  CHECK_NEAR(StdDev({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(SelectionAgreesWithSorting) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(500));
    std::vector<double> values(n);
    for (double& v : values) {
      v = trial % 2 == 0 ? rng.Gaussian()
                         : static_cast<double>(rng.UniformInt(5));  // ties
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const size_t k = static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(n)));
    CHECK_NEAR(SelectKth(values, k), sorted[k], 0.0);
    CHECK_NEAR(SelectKthMedianOfMedians(values, k), sorted[k], 0.0);
  }
}

TEST(RngIsDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const double x = a.UniformDouble();
    CHECK_NEAR(x, b.UniformDouble(), 0.0);
    CHECK(x >= 0.0 && x < 1.0);
    if (x != c.UniformDouble()) all_equal_c = false;
  }
  CHECK(!all_equal_c);
  // Gaussian moments, loosely.
  Rng g(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(g.Gaussian());
  CHECK_NEAR(stats.Mean(), 0.0, 0.05);
  CHECK_NEAR(stats.StdDev(), 1.0, 0.05);
}

TEST(ParallelForCoversRangeExactlyOnce) {
  // The pool's contract: disjoint chunks covering the range, every index
  // exactly once, for any pool size / grain / range combination (including
  // ranges smaller than one grain, which run inline on the caller).  Pools
  // are reused across calls via the Shared registry.
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool& pool = ThreadPool::Shared(threads);
    CHECK(pool.num_threads() == threads);
    for (int64_t range : {1, 7, 1000, 10007}) {
      for (int64_t grain : {1, 16, 4096}) {
        std::vector<int> hits(static_cast<size_t>(range), 0);
        std::atomic<int> chunks{0};
        pool.ParallelFor(0, range, grain,
                         [&](int64_t chunk_begin, int64_t chunk_end) {
                           CHECK(chunk_begin < chunk_end);
                           ++chunks;
                           for (int64_t i = chunk_begin; i < chunk_end; ++i) {
                             ++hits[static_cast<size_t>(i)];
                           }
                         });
        for (int h : hits) CHECK(h == 1);
        // Static partitioning: at most one chunk per thread, and never more
        // chunks than grain-sized pieces fit in the range.
        CHECK(chunks.load() <= threads);
        CHECK(chunks.load() <= (range + grain - 1) / grain);
      }
    }
  }
  // The null-pool helper is the serial path.
  std::vector<int> hits(100, 0);
  ParallelFor(nullptr, 0, 100, 1, [&](int64_t b, int64_t e) {
    CHECK(b == 0 && e == 100);
    for (int64_t i = b; i < e; ++i) ++hits[static_cast<size_t>(i)];
  });
  for (int h : hits) CHECK(h == 1);

  // Boundary alignment: with align = a, every interior chunk seam lands on
  // a multiple of `a` (so neighbouring chunks of a double plane never split
  // a cache line), and coverage stays exactly-once.
  {
    ThreadPool& aligned_pool = ThreadPool::Shared(8);
    for (const int64_t align : {1, 8, 64}) {
      std::vector<int> hits(100000, 0);
      std::mutex mu;
      std::vector<int64_t> seams;
      aligned_pool.ParallelFor(
          0, 100000, 1024,
          [&](int64_t chunk_begin, int64_t chunk_end) {
            {
              std::lock_guard<std::mutex> lock(mu);
              seams.push_back(chunk_begin);
            }
            for (int64_t i = chunk_begin; i < chunk_end; ++i) {
              ++hits[static_cast<size_t>(i)];
            }
          },
          align);
      for (int h : hits) CHECK(h == 1);
      for (int64_t seam : seams) CHECK(seam % align == 0);
    }
  }

  // The oversubscription guard: EffectiveParallelism clamps a request to
  // the hardware (overridden here so the test is machine-independent) and
  // never returns less than 1.
  SetHardwareParallelismForTesting(4);
  CHECK(EffectiveParallelism(8) == 4);
  CHECK(EffectiveParallelism(4) == 4);
  CHECK(EffectiveParallelism(2) == 2);
  CHECK(EffectiveParallelism(0) == 1);
  SetHardwareParallelismForTesting(0);
  CHECK(EffectiveParallelism(1) == 1);

  // A throw inside a chunk — the caller's own (first chunk) or a worker's
  // (a later chunk) — propagates to the caller after the barrier, and the
  // pool stays fully usable afterwards.
  ThreadPool& pool = ThreadPool::Shared(4);
  for (const int64_t bad_chunk_begin : {0, 750}) {
    bool caught = false;
    try {
      pool.ParallelFor(0, 1000, 1, [&](int64_t b, int64_t) {
        if (b == bad_chunk_begin) throw std::runtime_error("chunk failure");
      });
    } catch (const std::runtime_error&) {
      caught = true;
    }
    CHECK(caught);
    std::vector<int> again(1000, 0);
    pool.ParallelFor(0, 1000, 1, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) ++again[static_cast<size_t>(i)];
    });
    for (int h : again) CHECK(h == 1);
  }
}

TEST(SimdKernelsMatchScalar) {
  // The simd shim's kernels must agree bit-for-bit with their scalar
  // definitions on every lane, including the unaligned tail — this is the
  // foundation of the engine's serial == threaded == SIMD determinism.
  Rng rng(29);
  for (size_t n : {0, 1, 3, 4, 5, 31, 128}) {
    std::vector<double> src(2 * n), sum(n), sumsq(n), len(n);
    for (double& x : src) x = rng.Gaussian();
    std::vector<double> pair_out(n, -1.0);
    simd::PairwiseSum(src.data(), n, pair_out.data());
    for (size_t i = 0; i < n; ++i) {
      CHECK_NEAR(pair_out[i], src[2 * i] + src[2 * i + 1], 0.0);
    }
    for (size_t i = 0; i < n; ++i) {
      sum[i] = 10.0 * rng.Gaussian();
      sumsq[i] = std::abs(10.0 * rng.Gaussian());
      len[i] = 1.0 + static_cast<double>(rng.UniformInt(50));
    }
    std::vector<double> err(n, -1.0);
    simd::ResidualError(sum.data(), sumsq.data(), len.data(), n, err.data());
    for (size_t i = 0; i < n; ++i) {
      const double r = sumsq[i] - sum[i] * sum[i] / len[i];
      CHECK_NEAR(err[i], r > 0.0 ? r : 0.0, 0.0);
      CHECK(err[i] >= 0.0);
    }
  }
}

TEST(PairwiseSpanMatchesScalar) {
  // The merged-pair span kernel: dst[i] = double(end[2i+1] - begin[2i]),
  // exact for any int64 difference a double can hold, including the
  // unaligned tail and huge endpoints.
  Rng rng(31);
  for (size_t n : {0, 1, 3, 4, 5, 31, 128}) {
    std::vector<int64_t> begin(2 * n), end(2 * n);
    int64_t cursor = rng.UniformInt(1'000'000'000);
    for (size_t i = 0; i < 2 * n; ++i) {
      begin[i] = cursor;
      cursor += 1 + rng.UniformInt(1 << 20);
      end[i] = cursor;
    }
    std::vector<double> span(n, -1.0);
    simd::PairwiseSpan(begin.data(), end.data(), n, span.data());
    for (size_t i = 0; i < n; ++i) {
      CHECK_NEAR(span[i],
                 static_cast<double>(end[2 * i + 1] - begin[2 * i]), 0.0);
      CHECK(span[i] > 0.0);
    }
  }
}

TEST(TablePrinterFormatsAndPrints) {
  CHECK(TablePrinter::FormatDouble(3.14159, 2) == "3.14");
  CHECK(TablePrinter::FormatDouble(2.0, 0) == "2");
  CHECK(TablePrinter::FormatInt(-42) == "-42");

  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", TablePrinter::FormatInt(1)});
  table.AddRow({"beta"});  // short rows pad
  std::ostringstream pretty, csv;
  table.Print(pretty);
  table.Dump(csv);
  CHECK(pretty.str().find("alpha") != std::string::npos);
  CHECK(pretty.str().find("name") != std::string::npos);
  CHECK(csv.str() == "name,value\nalpha,1\nbeta,\n");
}

TEST(SpanViewsAndSubspans) {
  const std::vector<int64_t> v = {10, 20, 30, 40, 50};
  Span<const int64_t> span = v;  // implicit from vector
  CHECK(span.size() == 5);
  CHECK(!span.empty());
  CHECK(span[0] == 10 && span[4] == 50);
  CHECK(span.data() == v.data());  // a view, not a copy
  int64_t sum = 0;
  for (const int64_t x : span) sum += x;
  CHECK(sum == 150);

  // Pointer+length and C-array construction.
  CHECK(Span<const int64_t>(v.data() + 1, 3)[0] == 20);
  const int64_t raw[] = {7, 8};
  CHECK(Span<const int64_t>(raw).size() == 2);

  // Subspans clamp instead of overrunning.
  CHECK(span.subspan(1, 2).size() == 2);
  CHECK(span.subspan(1, 2)[0] == 20);
  CHECK(span.subspan(3, 100).size() == 2);
  CHECK(span.subspan(100, 1).empty());
  CHECK(Span<const int64_t>().empty());
}

TEST(HardwareParallelismAndStripeCounts) {
  // The override steers both accessors, so stripe sizing is testable on
  // any container.
  SetHardwareParallelismForTesting(6);
  CHECK(HardwareParallelism() == 6);
  CHECK(EffectiveParallelism(8) == 6);
  CHECK(EffectiveParallelism(2) == 2);
  // Next power of two >= max(hint, machine), floor 4, cap 256.
  CHECK(DefaultStripeCount() == 8);        // machine 6 -> 8
  CHECK(DefaultStripeCount(3) == 8);       // hint below machine: machine wins
  CHECK(DefaultStripeCount(9) == 16);      // hint above machine: hint wins
  CHECK(DefaultStripeCount(100000) == 256);  // cap

  SetHardwareParallelismForTesting(1);
  CHECK(DefaultStripeCount() == 4);  // floor keeps claim headroom
  CHECK(DefaultStripeCount(5) == 8);

  SetHardwareParallelismForTesting(0);
  const int machine = HardwareParallelism();
  CHECK(machine >= 0);
  const int stripes = DefaultStripeCount();
  CHECK(stripes >= 4 && stripes <= 256);
  CHECK((stripes & (stripes - 1)) == 0);  // power of two
  CHECK(stripes >= machine || stripes == 256);
}

TEST(PaddedAtomicLayout) {
  // Each padded atomic owns its cache line: size and alignment are exactly
  // one line, so adjacent array elements (or struct fields) never share —
  // the false-sharing guard the striped ingestor's hot counters rely on.
  CHECK(sizeof(PaddedAtomic<int64_t>) == kCacheLineBytes);
  CHECK(alignof(PaddedAtomic<int64_t>) == kCacheLineBytes);
  PaddedAtomic<int64_t> pair[2];
  const auto gap = reinterpret_cast<char*>(&pair[1].value) -
                   reinterpret_cast<char*>(&pair[0].value);
  CHECK(gap == static_cast<ptrdiff_t>(kCacheLineBytes));
  pair[0].value.store(41, std::memory_order_relaxed);
  pair[1].value.store(1, std::memory_order_relaxed);
  CHECK(pair[0].value.load(std::memory_order_relaxed) +
            pair[1].value.load(std::memory_order_relaxed) ==
        42);
}

}  // namespace
}  // namespace fasthist
