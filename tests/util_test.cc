#include <algorithm>
#include <sstream>
#include <vector>

#include "tests/fasthist_test.h"
#include "util/random.h"
#include "util/selection.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace fasthist {
namespace {

TEST(TimerIsMonotonic) {
  WallTimer timer;
  double last = timer.ElapsedMillis();
  CHECK(last >= 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double now = timer.ElapsedMillis();
  CHECK(now >= last);
  timer.Restart();
  CHECK(timer.ElapsedMillis() <= now);
}

TEST(RunningStatsMatchesClosedForm) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  CHECK(stats.Count() == 8);
  CHECK_NEAR(stats.Mean(), 5.0, 1e-12);
  // Sample variance of the set is 32/7.
  CHECK_NEAR(stats.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  CHECK_NEAR(stats.Min(), 2.0, 0.0);
  CHECK_NEAR(stats.Max(), 9.0, 0.0);
  CHECK_NEAR(Mean({1.0, 2.0, 3.0}), 2.0, 1e-12);
  CHECK_NEAR(StdDev({1.0, 2.0, 3.0}), 1.0, 1e-12);
}

TEST(SelectionAgreesWithSorting) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + static_cast<size_t>(rng.UniformInt(500));
    std::vector<double> values(n);
    for (double& v : values) {
      v = trial % 2 == 0 ? rng.Gaussian()
                         : static_cast<double>(rng.UniformInt(5));  // ties
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    const size_t k = static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(n)));
    CHECK_NEAR(SelectKth(values, k), sorted[k], 0.0);
    CHECK_NEAR(SelectKthMedianOfMedians(values, k), sorted[k], 0.0);
  }
}

TEST(RngIsDeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const double x = a.UniformDouble();
    CHECK_NEAR(x, b.UniformDouble(), 0.0);
    CHECK(x >= 0.0 && x < 1.0);
    if (x != c.UniformDouble()) all_equal_c = false;
  }
  CHECK(!all_equal_c);
  // Gaussian moments, loosely.
  Rng g(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.Add(g.Gaussian());
  CHECK_NEAR(stats.Mean(), 0.0, 0.05);
  CHECK_NEAR(stats.StdDev(), 1.0, 0.05);
}

TEST(TablePrinterFormatsAndPrints) {
  CHECK(TablePrinter::FormatDouble(3.14159, 2) == "3.14");
  CHECK(TablePrinter::FormatDouble(2.0, 0) == "2");
  CHECK(TablePrinter::FormatInt(-42) == "-42");

  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", TablePrinter::FormatInt(1)});
  table.AddRow({"beta"});  // short rows pad
  std::ostringstream pretty, csv;
  table.Print(pretty);
  table.Dump(csv);
  CHECK(pretty.str().find("alpha") != std::string::npos);
  CHECK(pretty.str().find("name") != std::string::npos);
  CHECK(csv.str() == "name,value\nalpha,1\nbeta,\n");
}

}  // namespace
}  // namespace fasthist
