// End-to-end throughput of the service layer.  Two grids, both written to
// the same machine-readable perf trajectory (BENCH_service.json, same
// schema as BENCH_merge.json):
//
//   --grid          shards x samples: per-shard ingest
//                   (StreamingHistogramBuilder::AddMany), snapshot export +
//                   wire encoding, merge-tree reduction at fan-in 2/4/8,
//                   and quantile-query latency on the aggregate.
//   --striped-grid  writer-threads x stripes: N real std::threads appending
//                   concurrently into one StripedShardIngestor, timed end
//                   to end (create + append + reconcile export).  Reps are
//                   interleaved and rotated across the writer-count axis so
//                   no cell owns a quiet (or noisy) stretch of the machine.
//
// With neither flag both grids run.  Every JSON row records
// threads_effective (what the machine actually ran, so a 1-core container
// cannot masquerade as a scaling result), the stripe count, and the
// min-of-R rep count (--reps=N, floor 3).
//
//   bench_service [--grid] [--striped-grid] [--smoke] [--reps=N] [--out=PATH]
//
// --smoke shrinks the grids for CI; the binary exits non-zero if any
// service call fails or an aggregate loses mass, so the smoke run doubles
// as an end-to-end correctness check.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "service/aggregator.h"
#include "service/merge_tree.h"
#include "service/shard.h"
#include "service/striped_ingestor.h"
#include "service/wire_format.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace fasthist {
namespace {

constexpr int64_t kDomain = 4096;
constexpr int64_t kK = 16;
constexpr size_t kBufferCapacity = 2048;
constexpr int kNumQuantileQueries = 1024;

struct GridPoint {
  int64_t shards = 0;
  int64_t samples_per_shard = 0;
};

[[noreturn]] void Die(const char* where, const Status& status) {
  std::fprintf(stderr, "bench_service: %s: %s\n", where,
               status.message().c_str());
  std::exit(2);
}

std::vector<std::vector<int64_t>> MakeShardStreams(const AliasSampler& sampler,
                                                   int64_t shards,
                                                   int64_t samples_per_shard) {
  std::vector<std::vector<int64_t>> streams;
  streams.reserve(static_cast<size_t>(shards));
  for (int64_t shard = 0; shard < shards; ++shard) {
    Rng rng(0xbe9c0000 + static_cast<uint64_t>(shard));
    streams.push_back(
        sampler.SampleMany(static_cast<size_t>(samples_per_shard), &rng));
  }
  return streams;
}

std::vector<ShardSnapshot> IngestAndExport(
    const std::vector<std::vector<int64_t>>& streams) {
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(streams.size());
  for (size_t shard = 0; shard < streams.size(); ++shard) {
    auto ingestor = ShardIngestor::Create(static_cast<uint64_t>(shard),
                                          kDomain, kK, kBufferCapacity);
    if (!ingestor.ok()) Die("ShardIngestor::Create", ingestor.status());
    if (Status s = ingestor->Ingest(streams[shard]); !s.ok()) {
      Die("Ingest", s);
    }
    auto snapshot = ingestor->ExportSnapshot();
    if (!snapshot.ok()) Die("ExportSnapshot", snapshot.status());
    snapshots.push_back(std::move(snapshot).value());
  }
  return snapshots;
}

const AliasSampler& SharedSampler() {
  static const AliasSampler* sampler = [] {
    auto p = NormalizeToDistribution(MakeHistDataset({kDomain, 19980607, 10,
                                                      20.0, 100.0, 1.0}));
    if (!p.ok()) Die("NormalizeToDistribution", p.status());
    auto s = AliasSampler::Create(*p);
    if (!s.ok()) Die("AliasSampler::Create", s.status());
    return new AliasSampler(std::move(s).value());
  }();
  return *sampler;
}

int RunGrid(bool smoke, int reps, bench_util::JsonBenchWriter& writer) {
  const std::vector<int64_t> shard_counts =
      smoke ? std::vector<int64_t>{1, 4} : std::vector<int64_t>{1, 4, 16, 64};
  const std::vector<int64_t> sample_counts =
      smoke ? std::vector<int64_t>{4096}
            : std::vector<int64_t>{16384, 131072};
  const AliasSampler& sampler = SharedSampler();
  // This grid's pipeline is single-threaded end to end, so every row's
  // threads_effective is 1 regardless of the machine.
  const double threads_effective = 1.0;

  TablePrinter table({"shards", "samples/shard", "ingest Msamp/s",
                      "snap bytes/shard", "reduce ms f2", "reduce ms f4",
                      "reduce ms f8", "depth f2", "query us", "pieces"});

  for (const int64_t shards : shard_counts) {
    for (const int64_t samples_per_shard : sample_counts) {
      const auto streams = MakeShardStreams(sampler, shards,
                                            samples_per_shard);

      // Ingest throughput: shard creation + AddMany + snapshot export, the
      // full per-shard pipeline a server would run.
      const double ingest_ms = bench_util::MinMillis(
          [&] { IngestAndExport(streams); }, reps);
      const double total_samples =
          static_cast<double>(shards * samples_per_shard);
      const double ingest_msamples_per_s = total_samples / (ingest_ms * 1e3);

      const std::vector<ShardSnapshot> snapshots = IngestAndExport(streams);
      double snapshot_bytes = 0.0;
      for (const ShardSnapshot& snapshot : snapshots) {
        snapshot_bytes +=
            static_cast<double>(snapshot.encoded_histogram.size());
      }
      snapshot_bytes /= static_cast<double>(shards);

      // Reduction time per fan-in (ReduceSnapshots includes the decode, the
      // canonical sort, and every MergeHistograms of the tree).
      double reduce_ms[3] = {0.0, 0.0, 0.0};
      int depth_fan2 = 0;
      MergeTreeResult reduced_fan2;
      const int fan_ins[3] = {2, 4, 8};
      for (int i = 0; i < 3; ++i) {
        MergeTreeOptions options;
        options.fan_in = fan_ins[i];
        reduce_ms[i] = bench_util::MinMillis(
            [&] {
              auto reduced = ReduceSnapshots(snapshots, kK, options);
              if (!reduced.ok()) Die("ReduceSnapshots", reduced.status());
            },
            reps);
        auto reduced = ReduceSnapshots(snapshots, kK, options);
        if (!reduced.ok()) Die("ReduceSnapshots", reduced.status());
        if (std::abs(reduced->aggregate.TotalMass() - 1.0) > 1e-6) {
          std::fprintf(stderr,
                       "bench_service: aggregate mass drifted to %.9f\n",
                       reduced->aggregate.TotalMass());
          return 2;
        }
        if (fan_ins[i] == 2) {
          depth_fan2 = reduced->depth;
          reduced_fan2 = std::move(reduced).value();
        }
      }

      // Query latency on the fan-in-2 aggregate (the MergeTreeResult
      // overload, so a zero-weight aggregate would abort the bench).
      auto aggregator = Aggregator::Create(reduced_fan2);
      if (!aggregator.ok()) Die("Aggregator::Create", aggregator.status());
      const double query_ms = bench_util::MinMillis(
          [&] {
            double sink = 0.0;
            for (int i = 0; i < kNumQuantileQueries; ++i) {
              const double q = (static_cast<double>(i) + 0.5) /
                               static_cast<double>(kNumQuantileQueries);
              sink += static_cast<double>(aggregator->Quantile(q));
            }
            if (sink < 0.0) std::abort();  // keep the loop observable
          },
          reps);
      const double query_us =
          query_ms * 1e3 / static_cast<double>(kNumQuantileQueries);

      const std::string name = "shards" + std::to_string(shards) +
                               "_samples" + std::to_string(samples_per_shard);
      writer.Add(name,
                 {{"shards", static_cast<double>(shards)},
                  {"samples_per_shard",
                   static_cast<double>(samples_per_shard)},
                  {"threads_effective", threads_effective},
                  {"stripes", 1.0},
                  {"reps", static_cast<double>(reps)},
                  {"ingest_ms", ingest_ms},
                  {"ingest_msamples_per_s", ingest_msamples_per_s},
                  {"snapshot_bytes_per_shard", snapshot_bytes},
                  {"reduce_ms_fan2", reduce_ms[0]},
                  {"reduce_ms_fan4", reduce_ms[1]},
                  {"reduce_ms_fan8", reduce_ms[2]},
                  {"depth_fan2", static_cast<double>(depth_fan2)},
                  {"error_levels",
                   static_cast<double>(reduced_fan2.error_levels)},
                  {"query_us_per_quantile", query_us},
                  {"aggregate_pieces",
                   static_cast<double>(reduced_fan2.aggregate.num_pieces())}});
      table.AddRow({TablePrinter::FormatInt(shards),
                    TablePrinter::FormatInt(samples_per_shard),
                    TablePrinter::FormatDouble(ingest_msamples_per_s, 2),
                    TablePrinter::FormatDouble(snapshot_bytes, 0),
                    TablePrinter::FormatDouble(reduce_ms[0], 3),
                    TablePrinter::FormatDouble(reduce_ms[1], 3),
                    TablePrinter::FormatDouble(reduce_ms[2], 3),
                    TablePrinter::FormatInt(depth_fan2),
                    TablePrinter::FormatDouble(query_us, 3),
                    TablePrinter::FormatInt(
                        reduced_fan2.aggregate.num_pieces())});
    }
  }

  table.Print(std::cout);
  return 0;
}

// --- striped grid -----------------------------------------------------------

constexpr size_t kStripedBatch = 1024;

// One full multi-writer pipeline: create a StripedShardIngestor, claim
// `writers` stripes, append each writer's pre-generated stream from its own
// std::thread in kStripedBatch-sample batches, join, and export the
// reconciled snapshot.  Returns the snapshot so the caller can verify it
// outside the timed region; any service failure dies (a benchmark that
// silently times broken runs is worse than one that aborts).
ShardSnapshot RunStripedCellOnce(
    int writers, int stripes,
    const std::vector<std::vector<int64_t>>& streams) {
  auto ingestor = StripedShardIngestor::Create(
      /*shard_id=*/0, kDomain, kK, kBufferCapacity, MergingOptions(), stripes);
  if (!ingestor.ok()) Die("StripedShardIngestor::Create", ingestor.status());
  std::vector<StripedShardIngestor::Writer> handles;
  handles.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    auto handle = (*ingestor)->RegisterWriter();
    if (!handle.ok()) Die("RegisterWriter", handle.status());
    handles.push_back(std::move(handle).value());
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      const std::vector<int64_t>& stream = streams[static_cast<size_t>(w)];
      for (size_t off = 0; off < stream.size(); off += kStripedBatch) {
        const size_t len = std::min(kStripedBatch, stream.size() - off);
        if (!handles[static_cast<size_t>(w)]
                 .Append(Span<const int64_t>(stream.data() + off, len))
                 .ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (failed.load(std::memory_order_relaxed)) {
    Die("Writer::Append", Status::Invalid("append failed mid-stream"));
  }
  auto snapshot = (*ingestor)->ExportSnapshot();
  if (!snapshot.ok()) Die("ExportSnapshot", snapshot.status());
  return std::move(snapshot).value();
}

int RunStripedGrid(bool smoke, int reps, bench_util::JsonBenchWriter& writer) {
  const std::vector<int> writer_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> stripe_counts =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8, 16};
  const int64_t samples_per_writer = smoke ? 8192 : 65536;

  // One stream per writer slot, shared by every cell: cells differ only in
  // how many writers drain them and across how many stripes.
  const AliasSampler& sampler = SharedSampler();
  const int max_writers =
      *std::max_element(writer_counts.begin(), writer_counts.end());
  std::vector<std::vector<int64_t>> streams;
  streams.reserve(static_cast<size_t>(max_writers));
  for (int w = 0; w < max_writers; ++w) {
    Rng rng(0x57a1bed0 + static_cast<uint64_t>(w));
    streams.push_back(sampler.SampleMany(
        static_cast<size_t>(samples_per_writer), &rng));
  }

  struct Cell {
    int writers = 0;
    int stripes = 0;
  };
  std::vector<Cell> cells;
  for (const int stripes : stripe_counts) {
    for (const int writers : writer_counts) {
      // A stripe stays claimed for a writer's lifetime, so a cell needs at
      // least as many stripes as writers.
      if (writers > stripes) continue;
      cells.push_back({writers, stripes});
    }
  }

  // Min-of-R with the reps interleaved and rotated across cells (the
  // bench_micro pattern): every cell's reps are spread over the whole
  // wall-clock window, so a noisy stretch of the machine hurts all cells
  // alike instead of poisoning whichever cell owned it.  Pass -1 is an
  // uncounted warm-up.
  std::vector<double> best_ms(cells.size(), 0.0);
  std::vector<ShardSnapshot> last_snapshot(cells.size());
  for (int rep = -1; rep < reps; ++rep) {
    for (size_t j = 0; j < cells.size(); ++j) {
      const size_t ci = (static_cast<size_t>(rep + 1) + j) % cells.size();
      const Cell& cell = cells[ci];
      WallTimer timer;
      ShardSnapshot snapshot =
          RunStripedCellOnce(cell.writers, cell.stripes, streams);
      const double ms = timer.ElapsedMillis();
      if (rep >= 0 && (best_ms[ci] == 0.0 || ms < best_ms[ci])) {
        best_ms[ci] = ms;
      }
      last_snapshot[ci] = std::move(snapshot);
    }
  }

  // Correctness gate (outside the timed region): exact count and unit mass
  // on every cell's final export.
  for (size_t ci = 0; ci < cells.size(); ++ci) {
    const int64_t expected =
        static_cast<int64_t>(cells[ci].writers) * samples_per_writer;
    if (last_snapshot[ci].num_samples != expected) {
      std::fprintf(stderr, "bench_service: cell w%d_s%d counted %lld != %lld\n",
                   cells[ci].writers, cells[ci].stripes,
                   static_cast<long long>(last_snapshot[ci].num_samples),
                   static_cast<long long>(expected));
      return 2;
    }
    auto decoded = DecodeHistogram(last_snapshot[ci].encoded_histogram);
    if (!decoded.ok()) Die("DecodeHistogram", decoded.status());
    if (std::abs(decoded->TotalMass() - 1.0) > 1e-6) {
      std::fprintf(stderr, "bench_service: striped mass drifted to %.9f\n",
                   decoded->TotalMass());
      return 2;
    }
  }

  TablePrinter table({"writers", "stripes", "thr eff", "ms",
                      "ingest Msamp/s", "speedup vs 1w"});
  for (size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& cell = cells[ci];
    // The single-writer cell at the same stripe count is the scaling
    // baseline (same reconcile fan-in, same per-stripe capacity).
    double one_writer_ms = best_ms[ci];
    for (size_t bj = 0; bj < cells.size(); ++bj) {
      if (cells[bj].writers == 1 && cells[bj].stripes == cell.stripes) {
        one_writer_ms = best_ms[bj];
      }
    }
    const double total_samples =
        static_cast<double>(cell.writers) *
        static_cast<double>(samples_per_writer);
    const double msamples_per_s = total_samples / (best_ms[ci] * 1e3);
    // Throughput scaling: W writers push W x the samples, so the ratio of
    // throughputs is W * ms_1writer / ms.
    const double speedup =
        best_ms[ci] > 0.0
            ? static_cast<double>(cell.writers) * one_writer_ms / best_ms[ci]
            : 0.0;
    const int threads_effective = EffectiveParallelism(cell.writers);
    const std::string name = "striped_w" + std::to_string(cell.writers) +
                             "_s" + std::to_string(cell.stripes);
    writer.Add(name,
               {{"writers", static_cast<double>(cell.writers)},
                {"stripes", static_cast<double>(cell.stripes)},
                {"threads_effective", static_cast<double>(threads_effective)},
                {"samples_per_writer",
                 static_cast<double>(samples_per_writer)},
                {"reps", static_cast<double>(reps)},
                {"ms", best_ms[ci]},
                {"ingest_msamples_per_s", msamples_per_s},
                {"speedup_vs_1writer", speedup},
                {"error_levels",
                 static_cast<double>(last_snapshot[ci].error_levels)}});
    table.AddRow({TablePrinter::FormatInt(cell.writers),
                  TablePrinter::FormatInt(cell.stripes),
                  TablePrinter::FormatInt(threads_effective),
                  TablePrinter::FormatDouble(best_ms[ci], 3),
                  TablePrinter::FormatDouble(msamples_per_s, 2),
                  TablePrinter::FormatDouble(speedup, 2)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) {
  using fasthist::bench_util::FlagValue;
  using fasthist::bench_util::HasFlag;

  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool grid_flag = HasFlag(argc, argv, "--grid");
  const bool striped_flag = HasFlag(argc, argv, "--striped-grid");
  const char* out = FlagValue(argc, argv, "--out=");
  const std::string out_path = out != nullptr ? out : "BENCH_service.json";

  // Min-of-R rep count: --reps=N, floored at 3 (below that a minimum is
  // just a sample).
  int reps = smoke ? 3 : 9;
  if (const char* reps_flag = FlagValue(argc, argv, "--reps=")) {
    reps = std::atoi(reps_flag);
    if (reps < 3) {
      std::fprintf(stderr, "bench_service: --reps floored to 3\n");
      reps = 3;
    }
  }

  // With neither grid flag, run both into the same trajectory file.
  const bool run_grid = grid_flag || !striped_flag;
  const bool run_striped = striped_flag || !grid_flag;

  fasthist::bench_util::JsonBenchWriter writer("service");
  writer.AddContext("domain", static_cast<double>(fasthist::kDomain));
  writer.AddContext("k", static_cast<double>(fasthist::kK));
  writer.AddContext("buffer_capacity",
                    static_cast<double>(fasthist::kBufferCapacity));
  writer.AddContext("hardware_threads",
                    static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddContext("hardware_parallelism",
                    static_cast<double>(fasthist::HardwareParallelism()));
  writer.AddContext("smoke", smoke ? 1.0 : 0.0);
  writer.AddContext("reps", static_cast<double>(reps));

  int rc = 0;
  if (run_grid) rc = fasthist::RunGrid(smoke, reps, writer);
  if (rc == 0 && run_striped) {
    rc = fasthist::RunStripedGrid(smoke, reps, writer);
  }
  if (rc != 0) return rc;

  if (!writer.WriteFile(out_path)) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
