// End-to-end throughput of the service layer over a shards x samples grid:
// per-shard ingest (StreamingHistogramBuilder::AddMany), snapshot export +
// wire encoding, merge-tree reduction at fan-in 2/4/8, and quantile-query
// latency on the aggregate.  Writes the machine-readable perf trajectory to
// BENCH_service.json (same schema as BENCH_merge.json).
//
//   bench_service --grid [--smoke] [--out=PATH]
//
// --smoke shrinks the grid for CI; the binary exits non-zero if any
// service call fails or the aggregate loses mass, so the smoke run doubles
// as an end-to-end correctness check.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "service/aggregator.h"
#include "service/merge_tree.h"
#include "service/shard.h"
#include "util/random.h"
#include "util/table.h"

namespace fasthist {
namespace {

constexpr int64_t kDomain = 4096;
constexpr int64_t kK = 16;
constexpr size_t kBufferCapacity = 2048;
constexpr int kNumQuantileQueries = 1024;

struct GridPoint {
  int64_t shards = 0;
  int64_t samples_per_shard = 0;
};

[[noreturn]] void Die(const char* where, const Status& status) {
  std::fprintf(stderr, "bench_service: %s: %s\n", where,
               status.message().c_str());
  std::exit(2);
}

std::vector<std::vector<int64_t>> MakeShardStreams(const AliasSampler& sampler,
                                                   int64_t shards,
                                                   int64_t samples_per_shard) {
  std::vector<std::vector<int64_t>> streams;
  streams.reserve(static_cast<size_t>(shards));
  for (int64_t shard = 0; shard < shards; ++shard) {
    Rng rng(0xbe9c0000 + static_cast<uint64_t>(shard));
    streams.push_back(
        sampler.SampleMany(static_cast<size_t>(samples_per_shard), &rng));
  }
  return streams;
}

std::vector<ShardSnapshot> IngestAndExport(
    const std::vector<std::vector<int64_t>>& streams) {
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(streams.size());
  for (size_t shard = 0; shard < streams.size(); ++shard) {
    auto ingestor = ShardIngestor::Create(static_cast<uint64_t>(shard),
                                          kDomain, kK, kBufferCapacity);
    if (!ingestor.ok()) Die("ShardIngestor::Create", ingestor.status());
    if (Status s = ingestor->Ingest(streams[shard]); !s.ok()) {
      Die("Ingest", s);
    }
    auto snapshot = ingestor->ExportSnapshot();
    if (!snapshot.ok()) Die("ExportSnapshot", snapshot.status());
    snapshots.push_back(std::move(snapshot).value());
  }
  return snapshots;
}

int RunGrid(bool smoke, const std::string& out_path) {
  const std::vector<int64_t> shard_counts =
      smoke ? std::vector<int64_t>{1, 4} : std::vector<int64_t>{1, 4, 16, 64};
  const std::vector<int64_t> sample_counts =
      smoke ? std::vector<int64_t>{4096}
            : std::vector<int64_t>{16384, 131072};
  const double min_ms = smoke ? 5.0 : 30.0;
  const int max_reps = smoke ? 5 : 200;

  auto p = NormalizeToDistribution(MakeHistDataset({kDomain, 19980607, 10,
                                                    20.0, 100.0, 1.0}));
  if (!p.ok()) Die("NormalizeToDistribution", p.status());
  auto sampler = AliasSampler::Create(*p);
  if (!sampler.ok()) Die("AliasSampler::Create", sampler.status());

  bench_util::JsonBenchWriter writer("service");
  writer.AddContext("domain", static_cast<double>(kDomain));
  writer.AddContext("k", static_cast<double>(kK));
  writer.AddContext("buffer_capacity", static_cast<double>(kBufferCapacity));
  writer.AddContext("hardware_threads",
                    static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddContext("smoke", smoke ? 1.0 : 0.0);

  TablePrinter table({"shards", "samples/shard", "ingest Msamp/s",
                      "snap bytes/shard", "reduce ms f2", "reduce ms f4",
                      "reduce ms f8", "depth f2", "query us", "pieces"});

  for (const int64_t shards : shard_counts) {
    for (const int64_t samples_per_shard : sample_counts) {
      const auto streams = MakeShardStreams(*sampler, shards,
                                            samples_per_shard);

      // Ingest throughput: shard creation + AddMany + snapshot export, the
      // full per-shard pipeline a server would run.
      const double ingest_ms = bench_util::TimeMillis(
          [&] { IngestAndExport(streams); }, min_ms, max_reps);
      const double total_samples =
          static_cast<double>(shards * samples_per_shard);
      const double ingest_msamples_per_s = total_samples / (ingest_ms * 1e3);

      const std::vector<ShardSnapshot> snapshots = IngestAndExport(streams);
      double snapshot_bytes = 0.0;
      for (const ShardSnapshot& snapshot : snapshots) {
        snapshot_bytes +=
            static_cast<double>(snapshot.encoded_histogram.size());
      }
      snapshot_bytes /= static_cast<double>(shards);

      // Reduction time per fan-in (ReduceSnapshots includes the decode, the
      // canonical sort, and every MergeHistograms of the tree).
      double reduce_ms[3] = {0.0, 0.0, 0.0};
      int depth_fan2 = 0;
      MergeTreeResult reduced_fan2;
      const int fan_ins[3] = {2, 4, 8};
      for (int i = 0; i < 3; ++i) {
        MergeTreeOptions options;
        options.fan_in = fan_ins[i];
        reduce_ms[i] = bench_util::TimeMillis(
            [&] {
              auto reduced = ReduceSnapshots(snapshots, kK, options);
              if (!reduced.ok()) Die("ReduceSnapshots", reduced.status());
            },
            min_ms, max_reps);
        auto reduced = ReduceSnapshots(snapshots, kK, options);
        if (!reduced.ok()) Die("ReduceSnapshots", reduced.status());
        if (std::abs(reduced->aggregate.TotalMass() - 1.0) > 1e-6) {
          std::fprintf(stderr,
                       "bench_service: aggregate mass drifted to %.9f\n",
                       reduced->aggregate.TotalMass());
          return 2;
        }
        if (fan_ins[i] == 2) {
          depth_fan2 = reduced->depth;
          reduced_fan2 = std::move(reduced).value();
        }
      }

      // Query latency on the fan-in-2 aggregate.
      auto aggregator = Aggregator::Create(reduced_fan2.aggregate);
      if (!aggregator.ok()) Die("Aggregator::Create", aggregator.status());
      const double query_ms = bench_util::TimeMillis(
          [&] {
            double sink = 0.0;
            for (int i = 0; i < kNumQuantileQueries; ++i) {
              const double q = (static_cast<double>(i) + 0.5) /
                               static_cast<double>(kNumQuantileQueries);
              sink += static_cast<double>(aggregator->Quantile(q));
            }
            if (sink < 0.0) std::abort();  // keep the loop observable
          },
          min_ms, max_reps);
      const double query_us =
          query_ms * 1e3 / static_cast<double>(kNumQuantileQueries);

      const std::string name = "shards" + std::to_string(shards) +
                               "_samples" + std::to_string(samples_per_shard);
      writer.Add(name,
                 {{"shards", static_cast<double>(shards)},
                  {"samples_per_shard",
                   static_cast<double>(samples_per_shard)},
                  {"ingest_ms", ingest_ms},
                  {"ingest_msamples_per_s", ingest_msamples_per_s},
                  {"snapshot_bytes_per_shard", snapshot_bytes},
                  {"reduce_ms_fan2", reduce_ms[0]},
                  {"reduce_ms_fan4", reduce_ms[1]},
                  {"reduce_ms_fan8", reduce_ms[2]},
                  {"depth_fan2", static_cast<double>(depth_fan2)},
                  {"query_us_per_quantile", query_us},
                  {"aggregate_pieces",
                   static_cast<double>(reduced_fan2.aggregate.num_pieces())}});
      table.AddRow({TablePrinter::FormatInt(shards),
                    TablePrinter::FormatInt(samples_per_shard),
                    TablePrinter::FormatDouble(ingest_msamples_per_s, 2),
                    TablePrinter::FormatDouble(snapshot_bytes, 0),
                    TablePrinter::FormatDouble(reduce_ms[0], 3),
                    TablePrinter::FormatDouble(reduce_ms[1], 3),
                    TablePrinter::FormatDouble(reduce_ms[2], 3),
                    TablePrinter::FormatInt(depth_fan2),
                    TablePrinter::FormatDouble(query_us, 3),
                    TablePrinter::FormatInt(
                        reduced_fan2.aggregate.num_pieces())});
    }
  }

  table.Print(std::cout);
  if (!writer.WriteFile(out_path)) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) {
  const bool smoke = fasthist::bench_util::HasFlag(argc, argv, "--smoke");
  const char* out = fasthist::bench_util::FlagValue(argc, argv, "--out=");
  // --grid is the only mode; accept (and ignore) its absence so plain runs
  // behave the same.
  return fasthist::RunGrid(smoke, out != nullptr ? out : "BENCH_service.json");
}
