// End-to-end throughput of the service layer.  Two grids, both written to
// the same machine-readable perf trajectory (BENCH_service.json, same
// schema as BENCH_merge.json):
//
//   --grid          shards x samples: per-shard ingest
//                   (StreamingHistogramBuilder::AddMany), snapshot export +
//                   wire encoding, merge-tree reduction at fan-in 2/4/8,
//                   and quantile-query latency on the aggregate.
//   --striped-grid  writer-threads x stripes: N real std::threads appending
//                   concurrently into one StripedShardIngestor, timed end
//                   to end (create + append + reconcile export).  Reps are
//                   interleaved and rotated across the writer-count axis so
//                   no cell owns a quiet (or noisy) stretch of the machine.
//   --net-grid      loops x connections x batch x offered load, over real
//                   loopback sockets: an in-process ShardedIngestServer
//                   (net/sharded_ingest_server.h) with `loops` worker event
//                   loops (= key-hash partitions) driven closed-loop by N
//                   blocking clients on their own threads, written to its
//                   own trajectory file (BENCH_net.json, --net-out=PATH).
//                   Each row reports the saturation (or paced) throughput,
//                   speedup_vs_1loop against the matched single-loop row,
//                   the overload accounting (accepted / shed / rejected
//                   samples, per-partition max queue depth and shed), and
//                   the server's own self-measured ingest P50/P99/P99.5
//                   merged across all loops' recorders and pulled over the
//                   wire via a kStats frame.  Overload cells run
//                   deliberately past saturation against tiny watermarks to
//                   demonstrate the per-partition two-tier policy; every
//                   cell replays its accepted (per-partition
//                   ACK-reconstructed) samples into an offline store and
//                   exits 2 unless the drained server summaries are
//                   bit-identical to the replay.  --require-scaling
//                   additionally exits 2 unless some matched (connections,
//                   batch) pair shows a >= 2.5x l4/l1 saturation ratio —
//                   the multi-core CI gate (meaningless on a 1-core box).
//   --store-grid    keys x samples/key x batch: batched keyed ingest into a
//                   SummaryStore (store/summary_store.h), written to its own
//                   trajectory file (BENCH_store.json, --store-out=PATH).
//                   Each row records the store's own byte accounting
//                   (bytes_per_key_overhead, payload_bytes_per_key), the
//                   process VmRSS after the build, and the ingest slowdown
//                   vs a single-histogram ShardIngestor fed the identical
//                   value stream.  Two budgets are enforced, not just
//                   reported: overhead <= 150 bytes/key on every cell with
//                   >= 65536 keys, and VmRSS < 2 GB always — a violation
//                   exits 2, so the committed trajectory cannot drift past
//                   the multi-tenancy budget silently.
//
// With neither flag the shard and striped grids run (the store grid is
// opt-in: it is a different binary contract with its own output file).
// Every JSON row records threads_effective (what the machine actually ran,
// so a 1-core container cannot masquerade as a scaling result) and the
// min-of-R rep count (--reps=N, floor 3).
//
//   bench_service [--grid] [--striped-grid] [--store-grid] [--net-grid]
//                 [--require-scaling] [--smoke] [--reps=N] [--out=PATH]
//                 [--store-out=PATH] [--net-out=PATH]
//
// --smoke shrinks the grids for CI; the binary exits non-zero if any
// service call fails or an aggregate loses mass, so the smoke run doubles
// as an end-to-end correctness check.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#if defined(FASTHIST_HAVE_NET)
#include <chrono>

#include "net/client.h"
#include "net/frame.h"
#include "net/ingest_server.h"
#include "net/sharded_ingest_server.h"
#endif
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "service/aggregator.h"
#include "service/merge_tree.h"
#include "service/shard.h"
#include "service/striped_ingestor.h"
#include "service/wire_format.h"
#include "store/summary_store.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/table.h"
#include "util/timer.h"

namespace fasthist {
namespace {

constexpr int64_t kDomain = 4096;
constexpr int64_t kK = 16;
constexpr size_t kBufferCapacity = 2048;
constexpr int kNumQuantileQueries = 1024;

struct GridPoint {
  int64_t shards = 0;
  int64_t samples_per_shard = 0;
};

[[noreturn]] void Die(const char* where, const Status& status) {
  std::fprintf(stderr, "bench_service: %s: %s\n", where,
               status.message().c_str());
  std::exit(2);
}

std::vector<std::vector<int64_t>> MakeShardStreams(const AliasSampler& sampler,
                                                   int64_t shards,
                                                   int64_t samples_per_shard) {
  std::vector<std::vector<int64_t>> streams;
  streams.reserve(static_cast<size_t>(shards));
  for (int64_t shard = 0; shard < shards; ++shard) {
    Rng rng(0xbe9c0000 + static_cast<uint64_t>(shard));
    streams.push_back(
        sampler.SampleMany(static_cast<size_t>(samples_per_shard), &rng));
  }
  return streams;
}

std::vector<ShardSnapshot> IngestAndExport(
    const std::vector<std::vector<int64_t>>& streams) {
  std::vector<ShardSnapshot> snapshots;
  snapshots.reserve(streams.size());
  for (size_t shard = 0; shard < streams.size(); ++shard) {
    auto ingestor = ShardIngestor::Create(static_cast<uint64_t>(shard),
                                          kDomain, kK, kBufferCapacity);
    if (!ingestor.ok()) Die("ShardIngestor::Create", ingestor.status());
    if (Status s = ingestor->Ingest(streams[shard]); !s.ok()) {
      Die("Ingest", s);
    }
    auto snapshot = ingestor->ExportSnapshot();
    if (!snapshot.ok()) Die("ExportSnapshot", snapshot.status());
    snapshots.push_back(std::move(snapshot).value());
  }
  return snapshots;
}

const AliasSampler& SharedSampler() {
  static const AliasSampler* sampler = [] {
    auto p = NormalizeToDistribution(MakeHistDataset({kDomain, 19980607, 10,
                                                      20.0, 100.0, 1.0}));
    if (!p.ok()) Die("NormalizeToDistribution", p.status());
    auto s = AliasSampler::Create(*p);
    if (!s.ok()) Die("AliasSampler::Create", s.status());
    return new AliasSampler(std::move(s).value());
  }();
  return *sampler;
}

int RunGrid(bool smoke, int reps, bench_util::JsonBenchWriter& writer) {
  const std::vector<int64_t> shard_counts =
      smoke ? std::vector<int64_t>{1, 4} : std::vector<int64_t>{1, 4, 16, 64};
  const std::vector<int64_t> sample_counts =
      smoke ? std::vector<int64_t>{4096}
            : std::vector<int64_t>{16384, 131072};
  const AliasSampler& sampler = SharedSampler();
  // This grid's pipeline is single-threaded end to end, so every row's
  // threads_effective is 1 regardless of the machine.
  const double threads_effective = 1.0;

  TablePrinter table({"shards", "samples/shard", "ingest Msamp/s",
                      "snap bytes/shard", "reduce ms f2", "reduce ms f4",
                      "reduce ms f8", "depth f2", "query us", "pieces"});

  for (const int64_t shards : shard_counts) {
    for (const int64_t samples_per_shard : sample_counts) {
      const auto streams = MakeShardStreams(sampler, shards,
                                            samples_per_shard);

      // Ingest throughput: shard creation + AddMany + snapshot export, the
      // full per-shard pipeline a server would run.
      const double ingest_ms = bench_util::MinMillis(
          [&] { IngestAndExport(streams); }, reps);
      const double total_samples =
          static_cast<double>(shards * samples_per_shard);
      const double ingest_msamples_per_s = total_samples / (ingest_ms * 1e3);

      const std::vector<ShardSnapshot> snapshots = IngestAndExport(streams);
      double snapshot_bytes = 0.0;
      for (const ShardSnapshot& snapshot : snapshots) {
        snapshot_bytes +=
            static_cast<double>(snapshot.encoded_histogram.size());
      }
      snapshot_bytes /= static_cast<double>(shards);

      // Reduction time per fan-in (ReduceSnapshots includes the decode, the
      // canonical sort, and every MergeHistograms of the tree).
      double reduce_ms[3] = {0.0, 0.0, 0.0};
      int depth_fan2 = 0;
      MergeTreeResult reduced_fan2;
      const int fan_ins[3] = {2, 4, 8};
      for (int i = 0; i < 3; ++i) {
        MergeTreeOptions options;
        options.fan_in = fan_ins[i];
        reduce_ms[i] = bench_util::MinMillis(
            [&] {
              auto reduced = ReduceSnapshots(snapshots, kK, options);
              if (!reduced.ok()) Die("ReduceSnapshots", reduced.status());
            },
            reps);
        auto reduced = ReduceSnapshots(snapshots, kK, options);
        if (!reduced.ok()) Die("ReduceSnapshots", reduced.status());
        if (std::abs(reduced->aggregate.TotalMass() - 1.0) > 1e-6) {
          std::fprintf(stderr,
                       "bench_service: aggregate mass drifted to %.9f\n",
                       reduced->aggregate.TotalMass());
          return 2;
        }
        if (fan_ins[i] == 2) {
          depth_fan2 = reduced->depth;
          reduced_fan2 = std::move(reduced).value();
        }
      }

      // Query latency on the fan-in-2 aggregate (the MergeTreeResult
      // overload, so a zero-weight aggregate would abort the bench).
      auto aggregator = Aggregator::Create(reduced_fan2);
      if (!aggregator.ok()) Die("Aggregator::Create", aggregator.status());
      const double query_ms = bench_util::MinMillis(
          [&] {
            double sink = 0.0;
            for (int i = 0; i < kNumQuantileQueries; ++i) {
              const double q = (static_cast<double>(i) + 0.5) /
                               static_cast<double>(kNumQuantileQueries);
              sink += static_cast<double>(aggregator->Quantile(q));
            }
            if (sink < 0.0) std::abort();  // keep the loop observable
          },
          reps);
      const double query_us =
          query_ms * 1e3 / static_cast<double>(kNumQuantileQueries);

      const std::string name = "shards" + std::to_string(shards) +
                               "_samples" + std::to_string(samples_per_shard);
      writer.Add(name,
                 {{"shards", static_cast<double>(shards)},
                  {"samples_per_shard",
                   static_cast<double>(samples_per_shard)},
                  {"threads_effective", threads_effective},
                  {"stripes", 1.0},
                  {"reps", static_cast<double>(reps)},
                  {"ingest_ms", ingest_ms},
                  {"ingest_msamples_per_s", ingest_msamples_per_s},
                  {"snapshot_bytes_per_shard", snapshot_bytes},
                  {"reduce_ms_fan2", reduce_ms[0]},
                  {"reduce_ms_fan4", reduce_ms[1]},
                  {"reduce_ms_fan8", reduce_ms[2]},
                  {"depth_fan2", static_cast<double>(depth_fan2)},
                  {"error_levels",
                   static_cast<double>(reduced_fan2.error_levels)},
                  {"query_us_per_quantile", query_us},
                  {"aggregate_pieces",
                   static_cast<double>(reduced_fan2.aggregate.num_pieces())}});
      table.AddRow({TablePrinter::FormatInt(shards),
                    TablePrinter::FormatInt(samples_per_shard),
                    TablePrinter::FormatDouble(ingest_msamples_per_s, 2),
                    TablePrinter::FormatDouble(snapshot_bytes, 0),
                    TablePrinter::FormatDouble(reduce_ms[0], 3),
                    TablePrinter::FormatDouble(reduce_ms[1], 3),
                    TablePrinter::FormatDouble(reduce_ms[2], 3),
                    TablePrinter::FormatInt(depth_fan2),
                    TablePrinter::FormatDouble(query_us, 3),
                    TablePrinter::FormatInt(
                        reduced_fan2.aggregate.num_pieces())});
    }
  }

  table.Print(std::cout);
  return 0;
}

// --- striped grid -----------------------------------------------------------

constexpr size_t kStripedBatch = 1024;

// One full multi-writer pipeline: create a StripedShardIngestor, claim
// `writers` stripes, append each writer's pre-generated stream from its own
// std::thread in kStripedBatch-sample batches, join, and export the
// reconciled snapshot.  Returns the snapshot so the caller can verify it
// outside the timed region; any service failure dies (a benchmark that
// silently times broken runs is worse than one that aborts).
ShardSnapshot RunStripedCellOnce(
    int writers, int stripes,
    const std::vector<std::vector<int64_t>>& streams) {
  auto ingestor = StripedShardIngestor::Create(
      /*shard_id=*/0, kDomain, kK, kBufferCapacity, MergingOptions(), stripes);
  if (!ingestor.ok()) Die("StripedShardIngestor::Create", ingestor.status());
  std::vector<StripedShardIngestor::Writer> handles;
  handles.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    auto handle = (*ingestor)->RegisterWriter();
    if (!handle.ok()) Die("RegisterWriter", handle.status());
    handles.push_back(std::move(handle).value());
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      const std::vector<int64_t>& stream = streams[static_cast<size_t>(w)];
      for (size_t off = 0; off < stream.size(); off += kStripedBatch) {
        const size_t len = std::min(kStripedBatch, stream.size() - off);
        if (!handles[static_cast<size_t>(w)]
                 .Append(Span<const int64_t>(stream.data() + off, len))
                 .ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (failed.load(std::memory_order_relaxed)) {
    Die("Writer::Append", Status::Invalid("append failed mid-stream"));
  }
  auto snapshot = (*ingestor)->ExportSnapshot();
  if (!snapshot.ok()) Die("ExportSnapshot", snapshot.status());
  return std::move(snapshot).value();
}

int RunStripedGrid(bool smoke, int reps, bench_util::JsonBenchWriter& writer) {
  const std::vector<int> writer_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
  const std::vector<int> stripe_counts =
      smoke ? std::vector<int>{4} : std::vector<int>{4, 8, 16};
  const int64_t samples_per_writer = smoke ? 8192 : 65536;

  // One stream per writer slot, shared by every cell: cells differ only in
  // how many writers drain them and across how many stripes.
  const AliasSampler& sampler = SharedSampler();
  const int max_writers =
      *std::max_element(writer_counts.begin(), writer_counts.end());
  std::vector<std::vector<int64_t>> streams;
  streams.reserve(static_cast<size_t>(max_writers));
  for (int w = 0; w < max_writers; ++w) {
    Rng rng(0x57a1bed0 + static_cast<uint64_t>(w));
    streams.push_back(sampler.SampleMany(
        static_cast<size_t>(samples_per_writer), &rng));
  }

  struct Cell {
    int writers = 0;
    int stripes = 0;
  };
  std::vector<Cell> cells;
  for (const int stripes : stripe_counts) {
    for (const int writers : writer_counts) {
      // A stripe stays claimed for a writer's lifetime, so a cell needs at
      // least as many stripes as writers.
      if (writers > stripes) continue;
      cells.push_back({writers, stripes});
    }
  }

  // Min-of-R with the reps interleaved and rotated across cells (the
  // bench_micro pattern): every cell's reps are spread over the whole
  // wall-clock window, so a noisy stretch of the machine hurts all cells
  // alike instead of poisoning whichever cell owned it.  Pass -1 is an
  // uncounted warm-up.
  std::vector<double> best_ms(cells.size(), 0.0);
  std::vector<ShardSnapshot> last_snapshot(cells.size());
  for (int rep = -1; rep < reps; ++rep) {
    for (size_t j = 0; j < cells.size(); ++j) {
      const size_t ci = (static_cast<size_t>(rep + 1) + j) % cells.size();
      const Cell& cell = cells[ci];
      WallTimer timer;
      ShardSnapshot snapshot =
          RunStripedCellOnce(cell.writers, cell.stripes, streams);
      const double ms = timer.ElapsedMillis();
      if (rep >= 0 && (best_ms[ci] == 0.0 || ms < best_ms[ci])) {
        best_ms[ci] = ms;
      }
      last_snapshot[ci] = std::move(snapshot);
    }
  }

  // Correctness gate (outside the timed region): exact count and unit mass
  // on every cell's final export.
  for (size_t ci = 0; ci < cells.size(); ++ci) {
    const int64_t expected =
        static_cast<int64_t>(cells[ci].writers) * samples_per_writer;
    if (last_snapshot[ci].num_samples != expected) {
      std::fprintf(stderr, "bench_service: cell w%d_s%d counted %lld != %lld\n",
                   cells[ci].writers, cells[ci].stripes,
                   static_cast<long long>(last_snapshot[ci].num_samples),
                   static_cast<long long>(expected));
      return 2;
    }
    auto decoded = DecodeHistogram(last_snapshot[ci].encoded_histogram);
    if (!decoded.ok()) Die("DecodeHistogram", decoded.status());
    if (std::abs(decoded->TotalMass() - 1.0) > 1e-6) {
      std::fprintf(stderr, "bench_service: striped mass drifted to %.9f\n",
                   decoded->TotalMass());
      return 2;
    }
  }

  TablePrinter table({"writers", "stripes", "thr eff", "ms",
                      "ingest Msamp/s", "speedup vs 1w"});
  for (size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& cell = cells[ci];
    // The single-writer cell at the same stripe count is the scaling
    // baseline (same reconcile fan-in, same per-stripe capacity).
    double one_writer_ms = best_ms[ci];
    for (size_t bj = 0; bj < cells.size(); ++bj) {
      if (cells[bj].writers == 1 && cells[bj].stripes == cell.stripes) {
        one_writer_ms = best_ms[bj];
      }
    }
    const double total_samples =
        static_cast<double>(cell.writers) *
        static_cast<double>(samples_per_writer);
    const double msamples_per_s = total_samples / (best_ms[ci] * 1e3);
    // Throughput scaling: W writers push W x the samples, so the ratio of
    // throughputs is W * ms_1writer / ms.
    const double speedup =
        best_ms[ci] > 0.0
            ? static_cast<double>(cell.writers) * one_writer_ms / best_ms[ci]
            : 0.0;
    const int threads_effective = EffectiveParallelism(cell.writers);
    const std::string name = "striped_w" + std::to_string(cell.writers) +
                             "_s" + std::to_string(cell.stripes);
    writer.Add(name,
               {{"writers", static_cast<double>(cell.writers)},
                {"stripes", static_cast<double>(cell.stripes)},
                {"threads_effective", static_cast<double>(threads_effective)},
                {"samples_per_writer",
                 static_cast<double>(samples_per_writer)},
                {"reps", static_cast<double>(reps)},
                {"ms", best_ms[ci]},
                {"ingest_msamples_per_s", msamples_per_s},
                {"speedup_vs_1writer", speedup},
                {"error_levels",
                 static_cast<double>(last_snapshot[ci].error_levels)}});
    table.AddRow({TablePrinter::FormatInt(cell.writers),
                  TablePrinter::FormatInt(cell.stripes),
                  TablePrinter::FormatInt(threads_effective),
                  TablePrinter::FormatDouble(best_ms[ci], 3),
                  TablePrinter::FormatDouble(msamples_per_s, 2),
                  TablePrinter::FormatDouble(speedup, 2)});
  }
  table.Print(std::cout);
  return 0;
}

// --- keyed store grid -------------------------------------------------------

// One summary shape for every cell: small domain and k, so the per-key
// payload is a few hundred bytes and a million keys fit the RSS budget the
// store promises (ROADMAP item 3).
constexpr int64_t kStoreDomain = 1024;
constexpr int64_t kStoreK = 8;
constexpr size_t kStoreWindow = 64;
constexpr double kStoreMaxOverheadBytesPerKey = 150.0;
constexpr double kStoreMaxRssMb = 2048.0;
constexpr int64_t kStoreOverheadGateMinKeys = 65536;

struct StoreCell {
  int64_t keys = 0;
  int64_t samples_per_key = 0;
  int64_t batch = 0;
};

// splitmix64: the sample generator for the keyed grid.  Two multiplies per
// sample keeps generation cheap enough to run *inside* the timed region —
// which it must, because pre-materializing the 1M-key cell's stream would
// cost a gigabyte and poison the very RSS number this grid gates on.  The
// store and the ShardIngestor baseline both pay it, so the slowdown ratio
// is apples-to-apples and the absolute throughput is (slightly)
// conservative.
uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Key ids are well-spread 64-bit values (tenants do not hand out dense
// ids); sample s of a cell goes to key slot s % keys, so arrivals
// interleave round-robin across every key — for cells where keys exceed
// the batch size, every batch is all-distinct keys, the worst grouping
// case AddBatch can see.
uint64_t StoreKeyOf(int64_t slot) {
  return SplitMix(static_cast<uint64_t>(slot));
}

int64_t StoreValueOf(int64_t s) {
  return static_cast<int64_t>(
      SplitMix(static_cast<uint64_t>(s) ^ 0xc0ffee0ddba11ull) %
      static_cast<uint64_t>(kStoreDomain));
}

void FillKeyedBatch(int64_t keys, int64_t start, int64_t len,
                    std::vector<KeyedSample>* out) {
  out->clear();
  for (int64_t s = start; s < start + len; ++s) {
    out->push_back({StoreKeyOf(s % keys), StoreValueOf(s)});
  }
}

// Builds a store and runs a cell's full batched ingest through it.  Timed
// by the caller; also the memory-pass body (same code path measures bytes
// and throughput, so the committed numbers describe one artifact).
SummaryStore BuildStoreOnce(const StoreCell& cell,
                            std::vector<KeyedSample>& scratch) {
  ArchetypeConfig config;
  config.domain_size = kStoreDomain;
  config.k = kStoreK;
  config.window_capacity = kStoreWindow;
  auto store = SummaryStore::Create(config);
  if (!store.ok()) Die("SummaryStore::Create", store.status());
  if (Status s = store->ReserveKeys(static_cast<size_t>(cell.keys));
      !s.ok()) {
    Die("ReserveKeys", s);
  }
  const int64_t total = cell.keys * cell.samples_per_key;
  for (int64_t off = 0; off < total; off += cell.batch) {
    const int64_t len = std::min(cell.batch, total - off);
    FillKeyedBatch(cell.keys, off, len, &scratch);
    if (Status s = store->AddBatch(scratch); !s.ok()) Die("AddBatch", s);
  }
  return std::move(store).value();
}

// VmRSS from /proc/self/status, in MB (0 when unreadable, e.g. non-Linux —
// the RSS gate is skipped then, the store's own byte accounting still
// gates).
double ReadRssMb() {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0.0;
  char line[256];
  double kb = 0.0;
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atof(line + 6);
      break;
    }
  }
  std::fclose(file);
  return kb / 1024.0;
}

int RunStoreGrid(bool smoke, int reps, bench_util::JsonBenchWriter& writer) {
  // Cells ascend in key count so the million-key build runs last: arena
  // fragments the smaller cells leave behind cannot inflate its VmRSS
  // reading, and a budget violation there fails after the cheap cells have
  // already reported.
  const std::vector<StoreCell> cells =
      smoke ? std::vector<StoreCell>{{1024, 64, 1024},
                                     {1024, 64, 65536},
                                     {1024, 1024, 65536}}
            : std::vector<StoreCell>{{1024, 64, 1024},
                                     {1024, 64, 65536},
                                     {1024, 1024, 65536},
                                     {65536, 64, 65536},
                                     {65536, 256, 65536},
                                     {1048576, 64, 65536}};
  const double threads_effective = 1.0;  // serial end to end, like --grid

  TablePrinter table({"keys", "samples/key", "batch", "ingest Msamp/s",
                      "vs shard", "payload B/key", "slack B/key",
                      "overhead B/key", "rss MB", "err lvls"});

  std::vector<KeyedSample> keyed_scratch;
  std::vector<int64_t> value_scratch;
  for (const StoreCell& cell : cells) {
    keyed_scratch.reserve(static_cast<size_t>(cell.batch));
    value_scratch.reserve(static_cast<size_t>(cell.batch));
    const int64_t total = cell.keys * cell.samples_per_key;

    // Memory + correctness pass (untimed): one build, then the store's own
    // byte accounting, the process RSS while the store is live, and
    // spot-checks that the keyed pipeline actually ran — exact per-key
    // counts at both ends of the key range and unit mass on a summary.
    double overhead_per_key = 0.0;
    double payload_per_key = 0.0;
    double slack_per_key = 0.0;
    double rss_mb = 0.0;
    int error_levels = 0;
    {
      SummaryStore store = BuildStoreOnce(cell, keyed_scratch);
      const StoreMemoryStats stats = store.memory();
      if (stats.num_keys != static_cast<size_t>(cell.keys)) {
        std::fprintf(stderr, "bench_service: store holds %zu keys != %lld\n",
                     stats.num_keys, static_cast<long long>(cell.keys));
        return 2;
      }
      overhead_per_key = stats.overhead_bytes_per_key();
      payload_per_key = static_cast<double>(stats.payload_bytes) /
                        static_cast<double>(stats.num_keys);
      slack_per_key = static_cast<double>(stats.ladder_slack_bytes) /
                      static_cast<double>(stats.num_keys);
      rss_mb = ReadRssMb();
      for (const int64_t slot : {int64_t{0}, cell.keys - 1}) {
        auto count = store.NumSamples(StoreKeyOf(slot));
        if (!count.ok()) Die("NumSamples", count.status());
        if (*count != cell.samples_per_key) {
          std::fprintf(stderr,
                       "bench_service: key slot %lld counted %lld != %lld\n",
                       static_cast<long long>(slot),
                       static_cast<long long>(*count),
                       static_cast<long long>(cell.samples_per_key));
          return 2;
        }
      }
      auto summary = store.Query(StoreKeyOf(0));
      if (!summary.ok()) Die("Query", summary.status());
      if (std::abs(summary->TotalMass() - 1.0) > 1e-6) {
        std::fprintf(stderr, "bench_service: keyed mass drifted to %.9f\n",
                     summary->TotalMass());
        return 2;
      }
      auto levels = store.ErrorLevels(StoreKeyOf(0));
      if (!levels.ok()) Die("ErrorLevels", levels.status());
      error_levels = *levels;
    }

    // Budget gates.  The overhead budget applies where amortization is
    // meant to have kicked in (small-key cells are dominated by fixed
    // chunk bookkeeping and would gate nothing real).
    if (cell.keys >= kStoreOverheadGateMinKeys &&
        overhead_per_key > kStoreMaxOverheadBytesPerKey) {
      std::fprintf(stderr,
                   "bench_service: %.1f overhead bytes/key at %lld keys "
                   "busts the %.0f-byte budget\n",
                   overhead_per_key, static_cast<long long>(cell.keys),
                   kStoreMaxOverheadBytesPerKey);
      return 2;
    }
    if (rss_mb > kStoreMaxRssMb) {
      std::fprintf(stderr,
                   "bench_service: %.0f MB RSS at %lld keys busts the "
                   "%.0f MB budget\n",
                   rss_mb, static_cast<long long>(cell.keys), kStoreMaxRssMb);
      return 2;
    }

    // Timed pass: the full keyed pipeline (store create + reserve +
    // generate + AddBatch everything), min-of-R.
    const double store_ms = bench_util::MinMillis(
        [&] { BuildStoreOnce(cell, keyed_scratch); }, reps);
    const double msamples_per_s =
        static_cast<double>(total) / (store_ms * 1e3);

    // Baseline: one ShardIngestor swallowing the identical value stream
    // (same generator, same batch rhythm, no keys) with its buffer sized
    // to the store's per-key window — the same condensation cadence, so
    // the ratio prices multi-tenancy itself (grouping, index probes, slab
    // scatter), not a different summarization schedule.  (A 2048-sample
    // buffer baseline is ~2.7x faster per sample but produces a different
    // summary: fewer, larger condensations.)
    const double baseline_ms = bench_util::MinMillis(
        [&] {
          auto ingestor = ShardIngestor::Create(/*shard_id=*/0, kStoreDomain,
                                                kStoreK, kStoreWindow);
          if (!ingestor.ok()) Die("ShardIngestor::Create", ingestor.status());
          for (int64_t off = 0; off < total; off += cell.batch) {
            const int64_t len = std::min(cell.batch, total - off);
            value_scratch.clear();
            for (int64_t s = off; s < off + len; ++s) {
              value_scratch.push_back(StoreValueOf(s));
            }
            if (Status s = ingestor->Ingest(value_scratch); !s.ok()) {
              Die("Ingest", s);
            }
          }
        },
        reps);
    const double slowdown = baseline_ms > 0.0 ? store_ms / baseline_ms : 0.0;

    const std::string name = "store_keys" + std::to_string(cell.keys) +
                             "_spk" + std::to_string(cell.samples_per_key) +
                             "_batch" + std::to_string(cell.batch);
    writer.Add(name,
               {{"keys", static_cast<double>(cell.keys)},
                {"samples_per_key",
                 static_cast<double>(cell.samples_per_key)},
                {"batch", static_cast<double>(cell.batch)},
                {"threads_effective", threads_effective},
                {"reps", static_cast<double>(reps)},
                {"ms", store_ms},
                {"ingest_msamples_per_s", msamples_per_s},
                {"slowdown_vs_shard_ingestor", slowdown},
                {"payload_bytes_per_key", payload_per_key},
                {"ladder_slack_bytes_per_key", slack_per_key},
                {"bytes_per_key_overhead", overhead_per_key},
                {"rss_mb", rss_mb},
                {"error_levels", static_cast<double>(error_levels)}});
    table.AddRow({TablePrinter::FormatInt(cell.keys),
                  TablePrinter::FormatInt(cell.samples_per_key),
                  TablePrinter::FormatInt(cell.batch),
                  TablePrinter::FormatDouble(msamples_per_s, 2),
                  TablePrinter::FormatDouble(slowdown, 2),
                  TablePrinter::FormatDouble(payload_per_key, 1),
                  TablePrinter::FormatDouble(slack_per_key, 1),
                  TablePrinter::FormatDouble(overhead_per_key, 1),
                  TablePrinter::FormatDouble(rss_mb, 0),
                  TablePrinter::FormatInt(error_levels)});
  }

  table.Print(std::cout);
  return 0;
}

// --- net grid ---------------------------------------------------------------

#if defined(FASTHIST_HAVE_NET)

// One cell of the socket-front-end sweep.  loops is the number of worker
// event loops (= key-hash partitions) in the ShardedIngestServer; 1
// degenerates to the single-loop topology, and matched (connections, batch)
// pairs at loops 1 and 4 give the speedup_vs_1loop column a like-for-like
// denominator.  offered_load is samples/second across all connections (0 =
// closed-loop as fast as the server ACKs, the saturation measurement);
// overload cells shrink the server's watermarks and disable size/deadline
// flushing so the bounded per-partition depths actually fill, tripping
// degrade-to-sampling and then per-partition rejection.
struct NetCell {
  int loops = 1;
  int connections = 1;
  int64_t batch = 0;
  int64_t batches_per_client = 0;
  double offered_load = 0.0;
  bool overload = false;
};

// Each connection owns kNetKeysPerClient keys and sprays every batch across
// all of them round-robin, so with loops > 1 every single batch is
// stable-partitioned into several per-partition slices — the cross-loop
// ring hand-off is on the hot path of every cell, not just of lucky key
// hashes.  Keys stay disjoint across (cell, connection): per-key store
// state depends only on that key's subsequence, so the offline replay below
// is exact regardless of how the loops' flushes interleave live.
constexpr int kNetKeysPerClient = 16;

uint64_t NetKeyOf(size_t cell_index, int client, int slot) {
  return 0x9000 +
         (cell_index * 64 + static_cast<uint64_t>(client)) *
             kNetKeysPerClient +
         static_cast<uint64_t>(slot);
}

// Runs one cell once: server up with cell.loops worker loops, N client
// threads closed-loop (or paced), stats probed over the wire, graceful
// shutdown, then the bit-identical replay gate — every drained partition
// summary must match an offline store fed exactly the accepted
// (per-partition ACK-reconstructed) samples.  Returns false on a
// replay/accounting violation (the caller exits 2); infrastructure
// failures die immediately.
bool RunNetCellOnce(const NetCell& cell, size_t cell_index, bool smoke,
                    double* out_ms, ServerStats* out_stats) {
  ShardedIngestServerOptions options;
  options.base.shard_id = 42;
  options.num_loops = cell.loops;
  if (cell.overload) {
    options.base.soft_watermark = smoke ? 128 : 512;
    options.base.hard_watermark = smoke ? 512 : 2048;
    options.base.flush_batch = size_t{1} << 20;
    options.base.flush_deadline_us = uint64_t{60} * 1000 * 1000;
  }
  auto server = ShardedIngestServer::Create(options);
  if (!server.ok()) Die("ShardedIngestServer::Create", server.status());
  if (Status s = (*server)->Start(); !s.ok()) {
    Die("ShardedIngestServer::Start", s);
  }
  const int64_t domain = options.base.archetype.domain_size;
  const uint32_t num_partitions = static_cast<uint32_t>(cell.loops);

  std::vector<IngestClient> clients;
  clients.reserve(static_cast<size_t>(cell.connections));
  for (int c = 0; c < cell.connections; ++c) {
    auto client = IngestClient::Connect("127.0.0.1", (*server)->port());
    if (!client.ok()) Die("IngestClient::Connect", client.status());
    clients.push_back(std::move(client).value());
  }

  std::vector<std::vector<KeyedSample>> replay(clients.size());
  std::atomic<bool> failed{false};
  const double per_conn_rate =
      cell.offered_load > 0.0
          ? cell.offered_load / static_cast<double>(cell.connections)
          : 0.0;

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(clients.size());
  for (int c = 0; c < cell.connections; ++c) {
    threads.emplace_back([&, c, domain] {
      IngestClient& client = clients[static_cast<size_t>(c)];
      std::vector<KeyedSample>& kept = replay[static_cast<size_t>(c)];
      Rng rng(0xd00d + cell_index * 131 + static_cast<uint64_t>(c));
      std::vector<KeyedSample> batch(static_cast<size_t>(cell.batch));
      const auto start = std::chrono::steady_clock::now();
      for (int64_t b = 0; b < cell.batches_per_client; ++b) {
        for (size_t i = 0; i < batch.size(); ++i) {
          batch[i].key = NetKeyOf(cell_index, c,
                                  static_cast<int>(i % kNetKeysPerClient));
          batch[i].value = rng.UniformInt(domain);
        }
        auto result = client.Ingest(batch);
        if (!result.ok()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        if (!result->rejected) {
          // Reconstruct the accepted subsequence from the ACK's recorded
          // per-partition dispositions — the replay gate's input, and the
          // client's weight correction.
          std::vector<KeyedSample> kept_now =
              ReconstructAccepted(batch, result->ack, num_partitions);
          kept.insert(kept.end(), kept_now.begin(), kept_now.end());
        }
        if (per_conn_rate > 0.0) {
          const double target_s =
              static_cast<double>((b + 1) * cell.batch) / per_conn_rate;
          std::this_thread::sleep_until(
              start + std::chrono::microseconds(
                          static_cast<int64_t>(target_s * 1e6)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double ms = timer.ElapsedMillis();
  if (failed.load(std::memory_order_relaxed)) {
    Die("net ingest", Status::Invalid("a client failed mid-stream"));
  }

  // The server reports its own latency SLOs over the wire (dogfood: these
  // quantiles come from the library's streaming histograms).
  auto probe = IngestClient::Connect("127.0.0.1", (*server)->port());
  if (!probe.ok()) Die("IngestClient::Connect(probe)", probe.status());
  auto stats = probe->Stats();
  if (!stats.ok()) Die("Stats", stats.status());

  for (IngestClient& client : clients) client.Close();
  if (Status s = (*server)->Shutdown(); !s.ok()) Die("Shutdown", s);

  // Accounting gate: the server's accepted count must equal what the ACKs
  // told the clients they kept.
  uint64_t replayed = 0;
  for (const auto& kept : replay) replayed += kept.size();
  if (stats->samples_accepted != replayed) {
    std::fprintf(stderr,
                 "bench_service: server accepted %llu != ACK-reconstructed "
                 "%llu\n",
                 static_cast<unsigned long long>(stats->samples_accepted),
                 static_cast<unsigned long long>(replayed));
    return false;
  }
  const uint64_t shed_total = stats->samples_shed;
  const uint64_t rejected_total =
      stats->samples_offered - stats->samples_accepted - stats->samples_shed;
  if (cell.overload &&
      (shed_total == 0 ||
       (stats->batches_rejected == 0 && rejected_total == 0))) {
    std::fprintf(stderr,
                 "bench_service: overload cell shed %llu / rejected %llu "
                 "samples — the per-partition watermarks never tripped\n",
                 static_cast<unsigned long long>(shed_total),
                 static_cast<unsigned long long>(rejected_total));
    return false;
  }
  // Per-partition bounded-queue gate: a partition's accepted-but-unflushed
  // depth never exceeds the hard watermark plus one in-flight batch per
  // producer loop (every producer can race one push past its last depth
  // read; round-robin puts connections on min(connections, loops) loops).
  const uint64_t producers =
      static_cast<uint64_t>(std::min(cell.connections, cell.loops));
  const uint64_t depth_bound =
      options.base.hard_watermark +
      producers * static_cast<uint64_t>(cell.batch);
  if (stats->partitions.size() != static_cast<size_t>(cell.loops)) {
    std::fprintf(stderr,
                 "bench_service: kStats reported %zu partitions, want %d\n",
                 stats->partitions.size(), cell.loops);
    return false;
  }
  for (const PartitionStats& part : stats->partitions) {
    if (part.max_queue_depth >= depth_bound) {
      std::fprintf(
          stderr,
          "bench_service: partition %u depth %llu busts the bound %llu\n",
          part.partition,
          static_cast<unsigned long long>(part.max_queue_depth),
          static_cast<unsigned long long>(depth_bound));
      return false;
    }
  }

  // The replay gate itself: bit-identical per-key summaries across every
  // partition of the drained store.
  auto offline = SummaryStore::Create(options.base.archetype);
  if (!offline.ok()) Die("SummaryStore::Create", offline.status());
  for (const auto& kept : replay) {
    if (kept.empty()) continue;
    if (Status s = offline->AddBatch(kept); !s.ok()) Die("AddBatch", s);
  }
  for (int c = 0; c < cell.connections; ++c) {
    for (int slot = 0; slot < kNetKeysPerClient; ++slot) {
      const uint64_t key = NetKeyOf(cell_index, c, slot);
      const bool offline_has = offline->Contains(key);
      const bool drained_has = (*server)->store().Contains(key);
      if (offline_has != drained_has) {
        std::fprintf(stderr,
                     "bench_service: key %llu present offline=%d drained=%d\n",
                     static_cast<unsigned long long>(key),
                     offline_has ? 1 : 0, drained_has ? 1 : 0);
        return false;
      }
      if (!offline_has) continue;
      auto drained = (*server)->ExportKeyedSnapshot(key);
      if (!drained.ok()) Die("ExportKeyedSnapshot", drained.status());
      auto expected = offline->ExportKeyedSnapshot(key, options.base.shard_id);
      if (!expected.ok()) Die("ExportKeyedSnapshot", expected.status());
      if (EncodeShardSnapshot(*drained) != EncodeShardSnapshot(*expected)) {
        std::fprintf(stderr,
                     "bench_service: key %llu drained partition summary != "
                     "offline replay of ACK-reconstructed samples\n",
                     static_cast<unsigned long long>(key));
        return false;
      }
    }
  }

  *out_ms = ms;
  *out_stats = *stats;
  return true;
}

int RunNetGrid(bool smoke, int reps, bool require_scaling,
               bench_util::JsonBenchWriter& writer) {
  // The saturation sweep over the loops axis — matched (connections, batch)
  // pairs at 1 and 4 worker loops, so speedup_vs_1loop divides
  // like-for-like — plus one paced cell below saturation and overload cells
  // deliberately past it.  Cell order matters only in that every l1 row
  // precedes its l4 twin (the twin lookup below is a backward reference).
  const std::vector<NetCell> cells =
      smoke ? std::vector<NetCell>{{1, 1, 64, 24, 0.0, false},
                                   {1, 2, 64, 20, 0.0, false},
                                   {4, 2, 64, 20, 0.0, false},
                                   {4, 2, 64, 60, 0.0, true}}
            : std::vector<NetCell>{{1, 1, 64, 800, 0.0, false},
                                   {1, 1, 512, 120, 0.0, false},
                                   {1, 2, 64, 400, 0.0, false},
                                   {1, 2, 512, 60, 0.0, false},
                                   {1, 4, 64, 200, 0.0, false},
                                   {1, 4, 512, 30, 0.0, false},
                                   {1, 2, 256, 120, 250000.0, false},
                                   {1, 2, 256, 200, 0.0, true},
                                   {4, 2, 64, 400, 0.0, false},
                                   {4, 2, 512, 60, 0.0, false},
                                   {4, 4, 64, 200, 0.0, false},
                                   {4, 4, 512, 30, 0.0, false},
                                   {4, 8, 512, 24, 0.0, false},
                                   {4, 4, 256, 200, 0.0, true}};

  TablePrinter table({"loops", "conns", "batch", "offered/s", "Msamp/s",
                      "vs l1", "accepted", "shed", "rejected", "p50 us",
                      "p99 us", "max part q"});

  std::map<std::string, double> msamples_by_name;
  double best_scaling = 0.0;
  bool have_scaling_pair = false;
  for (size_t ci = 0; ci < cells.size(); ++ci) {
    const NetCell& cell = cells[ci];
    double best_ms = 0.0;
    ServerStats stats;
    for (int rep = 0; rep < reps; ++rep) {
      double ms = 0.0;
      ServerStats rep_stats;
      if (!RunNetCellOnce(cell, ci, smoke, &ms, &rep_stats)) return 2;
      if (best_ms == 0.0 || ms < best_ms) best_ms = ms;
      stats = rep_stats;  // deterministic counters; latencies from last rep
    }

    const double accepted = static_cast<double>(stats.samples_accepted);
    const double shed = static_cast<double>(stats.samples_shed);
    const double rejected = static_cast<double>(
        stats.samples_offered - stats.samples_accepted - stats.samples_shed);
    const double msamples_per_s = accepted / (best_ms * 1e3);
    // Clients + every worker event-loop thread all want a core; this is
    // what keeps a 1-core container from masquerading as a scaling result.
    const int threads_effective =
        EffectiveParallelism(cell.connections + cell.loops);

    uint64_t part_depth_max = 0;
    uint64_t part_shed_max = 0;
    for (const PartitionStats& part : stats.partitions) {
      part_depth_max = std::max(part_depth_max, part.max_queue_depth);
      part_shed_max = std::max(part_shed_max, part.samples_shed);
    }

    std::string suffix;
    if (cell.overload) {
      suffix = "overload";
    } else if (cell.offered_load > 0.0) {
      suffix = "load" + std::to_string(static_cast<int64_t>(
                            cell.offered_load));
    } else {
      suffix = "sat";
    }
    const std::string stem = "net_c" + std::to_string(cell.connections) +
                             "_b" + std::to_string(cell.batch);
    const std::string name =
        stem + "_l" + std::to_string(cell.loops) + "_" + suffix;
    msamples_by_name[name] = msamples_per_s;

    // speedup_vs_1loop: this row's throughput over its single-loop twin's
    // (same connections, batch, and load shape).  1 for l1 rows by
    // definition; 0 marks "no twin in this grid".
    double speedup = cell.loops == 1 ? 1.0 : 0.0;
    if (cell.loops > 1) {
      auto twin = msamples_by_name.find(stem + "_l1_" + suffix);
      if (twin != msamples_by_name.end() && twin->second > 0.0) {
        speedup = msamples_per_s / twin->second;
        if (suffix == "sat") {
          have_scaling_pair = true;
          best_scaling = std::max(best_scaling, speedup);
        }
      }
    }

    writer.Add(name,
               {{"loops", static_cast<double>(cell.loops)},
                {"partitions", static_cast<double>(cell.loops)},
                {"connections", static_cast<double>(cell.connections)},
                {"batch", static_cast<double>(cell.batch)},
                {"offered_load", cell.offered_load},
                {"overload_cell", cell.overload ? 1.0 : 0.0},
                {"threads_effective", static_cast<double>(threads_effective)},
                {"reps", static_cast<double>(reps)},
                {"ms", best_ms},
                {"offered", static_cast<double>(stats.samples_offered)},
                {"accepted", accepted},
                {"shed", shed},
                {"rejected", rejected},
                {"batches_rejected",
                 static_cast<double>(stats.batches_rejected)},
                {"max_queue_depth",
                 static_cast<double>(stats.max_queue_depth)},
                {"partition_max_depth", static_cast<double>(part_depth_max)},
                {"partition_shed_max", static_cast<double>(part_shed_max)},
                {"flushes_size", static_cast<double>(stats.flushes_size)},
                {"flushes_deadline",
                 static_cast<double>(stats.flushes_deadline)},
                {"msamples_per_s", msamples_per_s},
                {"speedup_vs_1loop", speedup},
                {"p50_us", stats.ingest_p50_us},
                {"p99_us", stats.ingest_p99_us},
                {"p995_us", stats.ingest_p995_us}});
    table.AddRow({TablePrinter::FormatInt(cell.loops),
                  TablePrinter::FormatInt(cell.connections),
                  TablePrinter::FormatInt(cell.batch),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(cell.offered_load)),
                  TablePrinter::FormatDouble(msamples_per_s, 2),
                  TablePrinter::FormatDouble(speedup, 2),
                  TablePrinter::FormatDouble(accepted, 0),
                  TablePrinter::FormatDouble(shed, 0),
                  TablePrinter::FormatDouble(rejected, 0),
                  TablePrinter::FormatDouble(stats.ingest_p50_us, 1),
                  TablePrinter::FormatDouble(stats.ingest_p99_us, 1),
                  TablePrinter::FormatInt(
                      static_cast<int64_t>(part_depth_max))});
  }

  table.Print(std::cout);

  // The multi-core CI gate: on a runner with real cores, 4 loops must beat
  // 1 loop by >= 2.5x on some matched saturation pair.  Never pass this on
  // a 1-core box — threads_effective pins every row at 1 there and the
  // ratio is honest noise.
  if (require_scaling) {
    if (!have_scaling_pair || best_scaling < 2.5) {
      std::fprintf(stderr,
                   "bench_service: --require-scaling: best l4/l1 saturation "
                   "speedup %.2fx < 2.50x (pair found: %s)\n",
                   best_scaling, have_scaling_pair ? "yes" : "no");
      return 2;
    }
    std::printf("--require-scaling: best l4/l1 saturation speedup %.2fx\n",
                best_scaling);
  }
  return 0;
}

#endif  // FASTHIST_HAVE_NET

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) {
  using fasthist::bench_util::FlagValue;
  using fasthist::bench_util::HasFlag;

  const bool smoke = HasFlag(argc, argv, "--smoke");
  const bool grid_flag = HasFlag(argc, argv, "--grid");
  const bool striped_flag = HasFlag(argc, argv, "--striped-grid");
  const bool store_flag = HasFlag(argc, argv, "--store-grid");
  const bool net_flag = HasFlag(argc, argv, "--net-grid");
  const bool require_scaling = HasFlag(argc, argv, "--require-scaling");
  const char* out = FlagValue(argc, argv, "--out=");
  const std::string out_path = out != nullptr ? out : "BENCH_service.json";
  const char* store_out = FlagValue(argc, argv, "--store-out=");
  const std::string store_out_path =
      store_out != nullptr ? store_out : "BENCH_store.json";
  const char* net_out = FlagValue(argc, argv, "--net-out=");
  const std::string net_out_path =
      net_out != nullptr ? net_out : "BENCH_net.json";

  // Min-of-R rep count: --reps=N, floored at 3 (below that a minimum is
  // just a sample).
  int reps = smoke ? 3 : 9;
  if (const char* reps_flag = FlagValue(argc, argv, "--reps=")) {
    reps = std::atoi(reps_flag);
    if (reps < 3) {
      std::fprintf(stderr, "bench_service: --reps floored to 3\n");
      reps = 3;
    }
  }

  // With no shard-level flag, run both shard grids into the same trajectory
  // file.  The keyed store and net grids are opt-in only and write their own
  // files.
  const bool run_grid = grid_flag || (!striped_flag && !store_flag && !net_flag);
  const bool run_striped =
      striped_flag || (!grid_flag && !store_flag && !net_flag);

  fasthist::bench_util::JsonBenchWriter writer("service");
  writer.AddContext("domain", static_cast<double>(fasthist::kDomain));
  writer.AddContext("k", static_cast<double>(fasthist::kK));
  writer.AddContext("buffer_capacity",
                    static_cast<double>(fasthist::kBufferCapacity));
  writer.AddContext("hardware_threads",
                    static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddContext("hardware_parallelism",
                    static_cast<double>(fasthist::HardwareParallelism()));
  writer.AddContext("smoke", smoke ? 1.0 : 0.0);
  writer.AddContext("reps", static_cast<double>(reps));

  int rc = 0;
  if (run_grid) rc = fasthist::RunGrid(smoke, reps, writer);
  if (rc == 0 && run_striped) {
    rc = fasthist::RunStripedGrid(smoke, reps, writer);
  }
  if (rc != 0) return rc;

  // Only a run that produced shard-grid records may touch the service
  // trajectory file — a store-only invocation from the repo root must not
  // clobber the committed BENCH_service.json with an empty record set.
  if (run_grid || run_striped) {
    if (!writer.WriteFile(out_path)) {
      std::fprintf(stderr, "bench_service: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", out_path.c_str());
  }

  if (store_flag) {
    fasthist::bench_util::JsonBenchWriter store_writer("store");
    store_writer.AddContext("domain",
                            static_cast<double>(fasthist::kStoreDomain));
    store_writer.AddContext("k", static_cast<double>(fasthist::kStoreK));
    store_writer.AddContext("window_capacity",
                            static_cast<double>(fasthist::kStoreWindow));
    store_writer.AddContext(
        "baseline_buffer_capacity",
        static_cast<double>(fasthist::kStoreWindow));
    store_writer.AddContext("smoke", smoke ? 1.0 : 0.0);
    store_writer.AddContext("reps", static_cast<double>(reps));
    rc = fasthist::RunStoreGrid(smoke, reps, store_writer);
    if (rc != 0) return rc;
    if (!store_writer.WriteFile(store_out_path)) {
      std::fprintf(stderr, "bench_service: cannot write %s\n",
                   store_out_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", store_out_path.c_str());
  }

  if (net_flag) {
#if defined(FASTHIST_HAVE_NET)
    fasthist::bench_util::JsonBenchWriter net_writer("net");
    net_writer.AddContext("hardware_threads",
                          static_cast<double>(
                              std::thread::hardware_concurrency()));
    net_writer.AddContext("smoke", smoke ? 1.0 : 0.0);
    net_writer.AddContext("reps", static_cast<double>(reps));
    rc = fasthist::RunNetGrid(smoke, reps, require_scaling, net_writer);
    if (rc != 0) return rc;
    if (!net_writer.WriteFile(net_out_path)) {
      std::fprintf(stderr, "bench_service: cannot write %s\n",
                   net_out_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", net_out_path.c_str());
#else
    std::fprintf(stderr,
                 "bench_service: --net-grid requires the POSIX net/ layer, "
                 "which this build does not include\n");
    return 2;
#endif
  }
  return 0;
}
