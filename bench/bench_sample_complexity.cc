// Lemma 3.1 / Theorem 3.2: the sampling stage.  Empirically verifies that
// ||p_hat_m - p||_2 behaves like 1/sqrt(m) *independently of the domain
// size n* — the property that makes the two-stage learner's sample
// complexity O(1/eps^2) with no n dependence — and prints the
// RequiredSampleSize schedule.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "dist/l2.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace fasthist {
namespace {

Distribution MakeZipfish(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> weights(static_cast<size_t>(n));
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1) +
                 0.1 * rng.UniformDouble();
  }
  return Distribution::FromWeights(weights).value();
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "=== Lemma 3.1: ||p_hat - p||_2 vs m, across n ===\n\n";

  const int trials = 10;
  Rng rng(314159);
  TablePrinter table({"n", "m", "mean l2 err", "std", "1/sqrt(m)"});
  for (int64_t n : {100, 1000, 10000, 100000}) {
    Distribution p = MakeZipfish(n, static_cast<uint64_t>(n));
    auto sampler = AliasSampler::Create(p);
    for (size_t m : {1000, 10000, 100000}) {
      RunningStats stats;
      for (int t = 0; t < trials; ++t) {
        auto empirical =
            EmpiricalDistribution(n, sampler->SampleMany(m, &rng));
        stats.Add(std::sqrt(L2DistanceSquared(*empirical, p.pmf())));
      }
      table.AddRow({TablePrinter::FormatInt(n),
                    TablePrinter::FormatInt(static_cast<long long>(m)),
                    TablePrinter::FormatDouble(stats.Mean(), 5),
                    TablePrinter::FormatDouble(stats.StdDev(), 5),
                    TablePrinter::FormatDouble(
                        1.0 / std::sqrt(static_cast<double>(m)), 5)});
    }
  }
  table.Print(std::cout);
  std::cout << "\n(the error column tracks 1/sqrt(m) and is flat in n, "
               "matching E||p_hat - p||_2^2 < 1/m)\n";

  std::cout << "\nRequiredSampleSize(eps, fail_prob) schedule "
               "(m = O(1/eps^2 log(1/delta))):\n";
  TablePrinter schedule({"eps", "fail_prob", "m"});
  for (double eps : {0.1, 0.05, 0.01}) {
    for (double delta : {0.1, 0.01}) {
      auto m = RequiredSampleSize(eps, delta);
      schedule.AddRow({TablePrinter::FormatDouble(eps, 3),
                       TablePrinter::FormatDouble(delta, 3),
                       TablePrinter::FormatInt(static_cast<long long>(*m))});
    }
  }
  schedule.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
