// Section 5.1 GKS06 comparison: the paper quotes AHIST-L-Δ at ratio ~1.003
// and > 1 s on dow (n=16384, k=50), i.e. >1000x slower than merging.  Our
// `ahist` stand-in (same guarantee class) lets that comparison run as real
// code: ratio near 1, running time orders of magnitude above the merging
// family.

#include <cmath>
#include <iostream>
#include <vector>

#include "baseline/ahist.h"
#include "baseline/exact_dp.h"
#include "bench/bench_util.h"
#include "core/fast_merging.h"
#include "core/merging.h"
#include "data/dow.h"
#include "data/generators.h"
#include "util/table.h"
#include "util/timer.h"

namespace fasthist {
namespace {

void RunDataset(const std::string& name, const std::vector<double>& data,
                int64_t k, bool with_exact) {
  const SparseFunction q = SparseFunction::FromDense(data);
  const MergingOptions paper_options{1000.0, 1.0};

  std::cout << "--- " << name << " (n=" << data.size() << ", k=" << k
            << ") ---\n";
  TablePrinter table(
      {"algorithm", "pieces", "error(l2)", "error(rel)", "time(ms)"});

  double err_base = 0.0;
  if (with_exact) {
    WallTimer timer;
    auto exact = VOptimalHistogram(data, k);
    const double millis = timer.ElapsedMillis();
    err_base = std::sqrt(exact->err_squared);
    table.AddRow({"exactdp",
                  TablePrinter::FormatInt(
                      static_cast<long long>(exact->histogram.num_pieces())),
                  TablePrinter::FormatDouble(err_base, 2), "1.000",
                  TablePrinter::FormatDouble(millis, 3)});
  }

  struct AhistRun {
    const char* label;
    double delta;
  };
  for (const AhistRun& run :
       {AhistRun{"ahist(delta=2)", 2.0}, AhistRun{"ahist(delta=0.5)", 0.5}}) {
    WallTimer timer;
    auto ahist = ApproxVOptimalHistogram(data, k, AhistOptions{run.delta});
    const double millis = timer.ElapsedMillis();
    const double err = std::sqrt(ahist->err_squared);
    if (!with_exact && err_base == 0.0) err_base = err;
    table.AddRow(
        {run.label,
         TablePrinter::FormatInt(
             static_cast<long long>(ahist->histogram.num_pieces())),
         TablePrinter::FormatDouble(err, 2),
         TablePrinter::FormatDouble(err_base > 0 ? err / err_base : 1.0, 3),
         TablePrinter::FormatDouble(millis, 3)});
  }

  {
    auto merging = ConstructHistogram(q, k, paper_options);
    const double millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogram(q, k, paper_options); });
    const double err = std::sqrt(merging->err_squared);
    table.AddRow(
        {"merging",
         TablePrinter::FormatInt(
             static_cast<long long>(merging->histogram.num_pieces())),
         TablePrinter::FormatDouble(err, 2),
         TablePrinter::FormatDouble(err_base > 0 ? err / err_base : 1.0, 3),
         TablePrinter::FormatDouble(millis, 3)});
  }
  {
    auto fast = ConstructHistogramFast(q, k, paper_options);
    const double millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogramFast(q, k, paper_options); });
    const double err = std::sqrt(fast->err_squared);
    table.AddRow(
        {"fastmerging",
         TablePrinter::FormatInt(
             static_cast<long long>(fast->histogram.num_pieces())),
         TablePrinter::FormatDouble(err, 2),
         TablePrinter::FormatDouble(err_base > 0 ? err / err_base : 1.0, 3),
         TablePrinter::FormatDouble(millis, 3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "=== GKS06-style (1+delta)-approximate DP vs merging ===\n\n";
  // hist with exactdp for a full ratio column; dow without (quadratic DP
  // cost is bench_table1's story).
  RunDataset("hist", MakeHistDataset(), 10, /*with_exact=*/true);
  RunDataset("dow", MakeDowDataset(), 50, /*with_exact=*/false);
  std::cout << "(dow error(rel) baseline = ahist(delta=2); the paper quotes "
               "AHIST-L-D at ratio ~1.003, >1s on dow)\n";
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
