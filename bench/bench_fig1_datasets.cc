// Figure 1 reproduction: generates the three offline data sets and prints
// their summary statistics (and, with --dump, the full series as CSV for
// plotting).  The paper's panels: hist (10-piece noisy histogram, n=1000),
// poly (noisy degree-5 polynomial, n=4000), dow (DJIA-like series,
// n=16384; simulated — see DESIGN.md §3).

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "baseline/exact_dp.h"
#include "bench/bench_util.h"
#include "data/dow.h"
#include "data/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace fasthist {
namespace {

void Describe(const std::string& name, const std::vector<double>& data,
              int64_t k, TablePrinter* table) {
  RunningStats stats;
  for (double x : data) stats.Add(x);
  // opt_k context for the smaller sets; skip for dow (quadratic DP).
  std::string opt = "-";
  if (data.size() <= 4096) {
    auto opt_k = OptK(data, k);
    if (opt_k.ok()) opt = TablePrinter::FormatDouble(*opt_k, 2);
  }
  table->AddRow({name, TablePrinter::FormatInt(static_cast<long long>(data.size())),
                 TablePrinter::FormatInt(k),
                 TablePrinter::FormatDouble(stats.Min(), 2),
                 TablePrinter::FormatDouble(stats.Max(), 2),
                 TablePrinter::FormatDouble(stats.Mean(), 2),
                 TablePrinter::FormatDouble(stats.StdDev(), 2), opt});
}

void Dump(const std::string& name, const std::vector<double>& data) {
  std::printf("# %s\n", name.c_str());
  std::printf("index,value\n");
  for (size_t i = 0; i < data.size(); ++i) {
    std::printf("%zu,%.6f\n", i, data[i]);
  }
}

int Main(int argc, char** argv) {
  const std::vector<double> hist = MakeHistDataset();
  const std::vector<double> poly = MakePolyDataset();
  const std::vector<double> dow = MakeDowDataset();

  if (bench_util::HasFlag(argc, argv, "--dump")) {
    Dump("hist", hist);
    Dump("poly", poly);
    Dump("dow", dow);
    return 0;
  }

  std::cout << "=== Figure 1: offline data sets ===\n";
  TablePrinter table(
      {"dataset", "n", "k", "min", "max", "mean", "stddev", "opt_k"});
  Describe("hist", hist, 10, &table);
  Describe("poly", poly, 10, &table);
  Describe("dow", dow, 50, &table);
  table.Print(std::cout);
  std::cout << "\n(--dump prints the full series as CSV; dow opt_k skipped: "
               "quadratic DP at n=16384)\n";
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
