// Google-benchmark microbenchmarks of the library's kernels: merging at
// several input sizes (sample-linear time, Theorem 3.4), the hierarchical
// builder, Gram evaluation (O(d) per point), the projection oracle, alias
// sampling (O(1)), empirical-distribution construction, selection, and the
// exact DP for context.

#include <benchmark/benchmark.h>

#include <vector>

#include "baseline/equi.h"
#include "baseline/exact_dp.h"
#include "baseline/wavelet.h"
#include "core/fast_merging.h"
#include "core/streaming.h"
#include "core/hierarchical.h"
#include "core/merging.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "poly/fit_poly.h"
#include "poly/gram.h"
#include "util/random.h"
#include "util/selection.h"

namespace fasthist {
namespace {

std::vector<double> Signal(int64_t n) {
  PolyDatasetOptions options;
  options.domain_size = n;
  return MakePolyDataset(options);
}

void BM_ConstructHistogram(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(state.range(0)));
  for (auto _ : state) {
    auto result = ConstructHistogram(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConstructHistogram)->Range(1 << 10, 1 << 18)->Complexity();

void BM_ConstructHistogramFast(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(state.range(0)));
  for (auto _ : state) {
    auto result = ConstructHistogramFast(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConstructHistogramFast)->Range(1 << 10, 1 << 18)->Complexity();

void BM_Hierarchical(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(state.range(0)));
  for (auto _ : state) {
    auto result = HierarchicalHistogram::Build(q);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Hierarchical)->Range(1 << 10, 1 << 16)->Complexity();

void BM_ExactDp(benchmark::State& state) {
  const std::vector<double> q = Signal(state.range(0));
  for (auto _ : state) {
    auto result = VOptimalHistogram(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactDp)->Range(1 << 8, 1 << 11)->Complexity();

void BM_EvaluateGram(benchmark::State& state) {
  GramBasis basis = GramBasis::Create(4096, static_cast<int>(state.range(0)))
                        .value();
  std::vector<double> out;
  double x = 0.0;
  for (auto _ : state) {
    basis.EvaluateAt(x, &out);
    benchmark::DoNotOptimize(out);
    x += 1.0;
    if (x >= 4096.0) x = 0.0;
  }
}
BENCHMARK(BM_EvaluateGram)->DenseRange(0, 8, 2);

void BM_FitPoly(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(4096));
  const Interval interval{0, 4096};
  const int degree = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = FitPoly(q, interval, degree);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FitPoly)->DenseRange(0, 8, 2);

void BM_AliasSample(benchmark::State& state) {
  auto p = NormalizeToDistribution(Signal(state.range(0))).value();
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_AliasSample)->Range(1 << 10, 1 << 16);

void BM_EmpiricalDistribution(benchmark::State& state) {
  auto p = NormalizeToDistribution(Signal(4000)).value();
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(2);
  const auto samples =
      sampler.SampleMany(static_cast<size_t>(state.range(0)), &rng);
  for (auto _ : state) {
    auto result = EmpiricalDistribution(4000, samples);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EmpiricalDistribution)->Range(1 << 10, 1 << 17);

void BM_EquiDepth(benchmark::State& state) {
  std::vector<double> q = Signal(state.range(0));
  for (double& x : q) x = x > 0.0 ? x : 0.0;
  for (auto _ : state) {
    auto result = EquiDepthHistogram(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EquiDepth)->Range(1 << 10, 1 << 16)->Complexity();

void BM_WaveletTopB(benchmark::State& state) {
  const std::vector<double> q = Signal(state.range(0));
  for (auto _ : state) {
    auto result = TopBWaveletSynopsis(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WaveletTopB)->Range(1 << 10, 1 << 16)->Complexity();

void BM_MergeHistograms(benchmark::State& state) {
  const SparseFunction q1 = SparseFunction::FromDense(Signal(8192));
  PolyDatasetOptions alt;
  alt.domain_size = 8192;
  alt.seed = 99;
  const SparseFunction q2 =
      SparseFunction::FromDense(MakePolyDataset(alt));
  const Histogram h1 = ConstructHistogram(q1, state.range(0))->histogram;
  const Histogram h2 = ConstructHistogram(q2, state.range(0))->histogram;
  for (auto _ : state) {
    auto merged = MergeHistograms(h1, 1.0, h2, 1.0, state.range(0));
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_MergeHistograms)->Range(4, 256);

void BM_StreamingIngest(benchmark::State& state) {
  auto p = NormalizeToDistribution(Signal(4000)).value();
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(5);
  const auto samples = sampler.SampleMany(1 << 16, &rng);
  for (auto _ : state) {
    auto builder = StreamingHistogramBuilder::Create(
                       4000, 10, static_cast<size_t>(state.range(0)))
                       .value();
    benchmark::DoNotOptimize(builder.AddMany(samples));
    benchmark::DoNotOptimize(builder.Snapshot());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_StreamingIngest)->Arg(512)->Arg(4096)->Arg(32768);

void BM_SelectKth(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectKth(v, v.size() / 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectKth)->Range(1 << 10, 1 << 18)->Complexity();

void BM_SelectKthMedianOfMedians(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectKthMedianOfMedians(v, v.size() / 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectKthMedianOfMedians)->Range(1 << 10, 1 << 18)->Complexity();

}  // namespace
}  // namespace fasthist

BENCHMARK_MAIN();
