// Google-benchmark microbenchmarks of the library's kernels: merging at
// several input sizes (sample-linear time, Theorem 3.4), the hierarchical
// builder, Gram evaluation (O(d) per point), the projection oracle, alias
// sampling (O(1)), empirical-distribution construction, selection, and the
// exact DP for context.
//
// Invoked with --merge-grid the binary instead runs the thread/size scaling
// grid of the SoA merge engine (2^20 .. 2^26 domains x 1/2/4/8 threads) and
// writes the machine-readable perf trajectory to BENCH_merge.json — plus an
// allocation sanity check asserting the engine's round-persistent buffers
// really keep the per-construction allocation count independent of the
// round count.  Every cell is timed min-of-R (R >= 3, --reps=<R> to raise
// it) with repetitions interleaved across thread counts, so a single noisy
// run can never enter the committed trajectory and machine-state drift
// (huge-page promotion, frequency) cannot bias one cell against another.
// --smoke shrinks the grid for CI; --out=<path> redirects the JSON.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "baseline/equi.h"
#include "baseline/exact_dp.h"
#include "baseline/wavelet.h"
#include "bench/bench_util.h"
#include "core/fast_merging.h"
#include "core/streaming.h"
#include "core/hierarchical.h"
#include "core/merging.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "poly/fit_poly.h"
#include "poly/gram.h"
#include "poly/poly_merging.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/selection.h"
#include "util/simd.h"
#include "util/timer.h"

// ---------------------------------------------------------------------------
// Global allocation counter for the grid's sanity check.  Counting every
// operator new in the binary is crude but exactly what we need: a
// construction on an already-warm engine should allocate O(1) vectors plus
// O(1) per round (the ParallelFor closure), never O(support).
// ---------------------------------------------------------------------------

namespace {
std::atomic<long long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fasthist {
namespace {

std::vector<double> Signal(int64_t n) {
  PolyDatasetOptions options;
  options.domain_size = n;
  return MakePolyDataset(options);
}

void BM_ConstructHistogram(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(state.range(0)));
  for (auto _ : state) {
    auto result = ConstructHistogram(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConstructHistogram)->Range(1 << 10, 1 << 18)->Complexity();

void BM_ConstructHistogramFast(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(state.range(0)));
  for (auto _ : state) {
    auto result = ConstructHistogramFast(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConstructHistogramFast)->Range(1 << 10, 1 << 18)->Complexity();

void BM_ConstructHistogramFastThreaded(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(state.range(0)));
  MergingOptions options;
  options.num_threads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto result = ConstructHistogramFast(q, 64, options);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ConstructHistogramFastThreaded)
    ->ArgsProduct({{1 << 18, 1 << 20}, {1, 2, 4, 8}});

void BM_Hierarchical(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(state.range(0)));
  for (auto _ : state) {
    auto result = HierarchicalHistogram::Build(q);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Hierarchical)->Range(1 << 10, 1 << 16)->Complexity();

void BM_ExactDp(benchmark::State& state) {
  const std::vector<double> q = Signal(state.range(0));
  for (auto _ : state) {
    auto result = VOptimalHistogram(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ExactDp)->Range(1 << 8, 1 << 11)->Complexity();

void BM_EvaluateGram(benchmark::State& state) {
  GramBasis basis = GramBasis::Create(4096, static_cast<int>(state.range(0)))
                        .value();
  std::vector<double> out;
  double x = 0.0;
  for (auto _ : state) {
    basis.EvaluateAt(x, &out);
    benchmark::DoNotOptimize(out);
    x += 1.0;
    if (x >= 4096.0) x = 0.0;
  }
}
BENCHMARK(BM_EvaluateGram)->DenseRange(0, 8, 2);

void BM_FitPoly(benchmark::State& state) {
  const SparseFunction q = SparseFunction::FromDense(Signal(4096));
  const Interval interval{0, 4096};
  const int degree = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = FitPoly(q, interval, degree);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_FitPoly)->DenseRange(0, 8, 2);

void BM_AliasSample(benchmark::State& state) {
  auto p = NormalizeToDistribution(Signal(state.range(0))).value();
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(&rng));
  }
}
BENCHMARK(BM_AliasSample)->Range(1 << 10, 1 << 16);

void BM_EmpiricalDistribution(benchmark::State& state) {
  auto p = NormalizeToDistribution(Signal(4000)).value();
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(2);
  const auto samples =
      sampler.SampleMany(static_cast<size_t>(state.range(0)), &rng);
  for (auto _ : state) {
    auto result = EmpiricalDistribution(4000, samples);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EmpiricalDistribution)->Range(1 << 10, 1 << 17);

void BM_EquiDepth(benchmark::State& state) {
  std::vector<double> q = Signal(state.range(0));
  for (double& x : q) x = x > 0.0 ? x : 0.0;
  for (auto _ : state) {
    auto result = EquiDepthHistogram(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EquiDepth)->Range(1 << 10, 1 << 16)->Complexity();

void BM_WaveletTopB(benchmark::State& state) {
  const std::vector<double> q = Signal(state.range(0));
  for (auto _ : state) {
    auto result = TopBWaveletSynopsis(q, 10);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_WaveletTopB)->Range(1 << 10, 1 << 16)->Complexity();

void BM_MergeHistograms(benchmark::State& state) {
  const SparseFunction q1 = SparseFunction::FromDense(Signal(8192));
  PolyDatasetOptions alt;
  alt.domain_size = 8192;
  alt.seed = 99;
  const SparseFunction q2 =
      SparseFunction::FromDense(MakePolyDataset(alt));
  const Histogram h1 = ConstructHistogram(q1, state.range(0))->histogram;
  const Histogram h2 = ConstructHistogram(q2, state.range(0))->histogram;
  for (auto _ : state) {
    auto merged = MergeHistograms(h1, 1.0, h2, 1.0, state.range(0));
    benchmark::DoNotOptimize(merged);
  }
}
BENCHMARK(BM_MergeHistograms)->Range(4, 256);

void BM_StreamingIngest(benchmark::State& state) {
  auto p = NormalizeToDistribution(Signal(4000)).value();
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(5);
  const auto samples = sampler.SampleMany(1 << 16, &rng);
  for (auto _ : state) {
    auto builder = StreamingHistogramBuilder::Create(
                       4000, 10, static_cast<size_t>(state.range(0)))
                       .value();
    benchmark::DoNotOptimize(builder.AddMany(samples));
    benchmark::DoNotOptimize(builder.Snapshot());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16));
}
BENCHMARK(BM_StreamingIngest)->Arg(512)->Arg(4096)->Arg(32768);

void BM_SelectKth(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectKth(v, v.size() / 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectKth)->Range(1 << 10, 1 << 18)->Complexity();

void BM_SelectKthMedianOfMedians(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> v(static_cast<size_t>(state.range(0)));
  for (double& x : v) x = rng.Gaussian();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectKthMedianOfMedians(v, v.size() / 2));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SelectKthMedianOfMedians)->Range(1 << 10, 1 << 18)->Complexity();

// ---------------------------------------------------------------------------
// The thread/size scaling grid (--merge-grid): the perf trajectory of the
// SoA engine.  One warm histogram construction per (domain size, threads)
// cell plus a degree-2 piecewise-polynomial row, written as
// BENCH_merge.json via bench_util::JsonBenchWriter.
// ---------------------------------------------------------------------------

// Min-of-R per thread count with thread-count-interleaved, rotated
// repetitions: every rep times each thread count once (so machine-state
// drift — page faulting, huge-page promotion, frequency — hits all cells
// alike), the starting cell rotates each rep (so any within-pass position
// bias is sampled by every cell), and the per-cell minimum discards what
// noise remains.  The first pass is an untimed warm-up.
std::vector<double> MinOfInterleavedReps(
    const std::vector<int>& threads, int reps,
    const std::function<void(const MergingOptions&)>& run_cell) {
  std::vector<double> best(threads.size(), 0.0);
  std::vector<bool> timed(threads.size(), false);
  for (int rep = -1; rep < reps; ++rep) {
    for (size_t j = 0; j < threads.size(); ++j) {
      const size_t ti = (static_cast<size_t>(rep + 1) + j) % threads.size();
      MergingOptions options;
      options.num_threads = threads[ti];
      WallTimer timer;
      run_cell(options);
      const double ms = timer.ElapsedMillis();
      if (rep < 0) continue;
      if (!timed[ti] || ms < best[ti]) best[ti] = ms;
      timed[ti] = true;
    }
  }
  return best;
}

int RunMergeScalingGrid(int argc, char** argv) {
  const bool smoke = bench_util::HasFlag(argc, argv, "--smoke");
  const char* out_flag = bench_util::FlagValue(argc, argv, "--out=");
  const std::string out_path = out_flag != nullptr ? out_flag : "BENCH_merge.json";
  const char* reps_flag = bench_util::FlagValue(argc, argv, "--reps=");
  const int requested_reps = reps_flag != nullptr ? std::atoi(reps_flag) : 3;
  const int reps = std::max(3, requested_reps);
  if (requested_reps < 3) {
    std::fprintf(stderr,
                 "note: --reps=%d below the floor, using min-of-%d (a lone "
                 "timed run is how noise gets committed)\n",
                 requested_reps, reps);
  }
  const int64_t k = 64;

  std::vector<int64_t> sizes = smoke
      ? std::vector<int64_t>{1 << 14, 1 << 16}
      : std::vector<int64_t>{1 << 20, 1 << 22, 1 << 24, 1 << 26};
  std::vector<int> threads = smoke ? std::vector<int>{1, 2}
                                   : std::vector<int>{1, 2, 4, 8};

  bench_util::JsonBenchWriter writer("merge_scaling");
  writer.AddContext("k", static_cast<double>(k));
  // hardware_threads is what the oversubscription clamp sees: on a 1-core
  // container every threads > 1 row degrades to the serial path by design
  // (threads_effective = 1 in the records), so flat rows there are the
  // clamp working, not missing parallelism.
  writer.AddContext("hardware_threads",
                    static_cast<double>(std::thread::hardware_concurrency()));
  writer.AddContext("timing_min_of_reps", static_cast<double>(reps));
  writer.AddContext("simd_avx2", FASTHIST_SIMD_AVX2);
  bool allocation_check_ok = true;

  for (const int64_t n : sizes) {
    PolyDatasetOptions data_options;
    data_options.domain_size = n;
    const SparseFunction q =
        SparseFunction::FromDense(MakePolyDataset(data_options));

    // Allocation sanity check (serial, warm): the SoA engine's buffers are
    // round-persistent, so a construction allocates a constant number of
    // vectors plus O(1) per round — if allocations scaled with the support
    // size the SoA refactor regressed.
    MergingOptions serial;
    auto warm = ConstructHistogramFast(q, k, serial);
    const long long rounds = warm->num_rounds;
    const long long before = g_allocations.load(std::memory_order_relaxed);
    auto probe = ConstructHistogramFast(q, k, serial);
    const long long allocs =
        g_allocations.load(std::memory_order_relaxed) - before;
    const long long alloc_budget = 64 + 8 * rounds;
    if (allocs > alloc_budget) {
      std::fprintf(stderr,
                   "ALLOCATION CHECK FAILED: n=%lld: %lld allocations for "
                   "%lld rounds (budget %lld) — per-round buffers are being "
                   "reallocated\n",
                   static_cast<long long>(n), allocs, rounds, alloc_budget);
      allocation_check_ok = false;
    }

    const std::vector<double> best = MinOfInterleavedReps(
        threads, reps, [&](const MergingOptions& options) {
          auto result = ConstructHistogramFast(q, k, options);
          benchmark::DoNotOptimize(result);
        });
    const double serial_ms = best[0];  // threads vector starts at 1
    for (size_t ti = 0; ti < threads.size(); ++ti) {
      const int num_threads = threads[ti];
      const double ms = best[ti];
      writer.Add("hist_fast",
                 {{"n", static_cast<double>(n)},
                  {"threads", static_cast<double>(num_threads)},
                  {"threads_effective",
                   static_cast<double>(EffectiveParallelism(num_threads))},
                  {"ms", ms},
                  {"reps", static_cast<double>(reps)},
                  {"speedup_vs_serial", ms > 0.0 ? serial_ms / ms : 1.0},
                  {"rounds", static_cast<double>(probe->num_rounds)},
                  {"pieces",
                   static_cast<double>(probe->histogram.num_pieces())},
                  {"allocs", static_cast<double>(allocs)}});
      std::printf("hist_fast n=%lld threads=%d: %.2f ms (%.2fx)\n",
                  static_cast<long long>(n), num_threads, ms,
                  ms > 0.0 ? serial_ms / ms : 1.0);
      std::fflush(stdout);
    }
  }

  // One polynomial row: the refit pass is the compute-bound face of the
  // same engine, so it scales where the histogram kernel is memory-bound.
  {
    const int64_t n = smoke ? (1 << 13) : (1 << 20);
    const int degree = 2;
    PolyDatasetOptions data_options;
    data_options.domain_size = n;
    const SparseFunction q =
        SparseFunction::FromDense(MakePolyDataset(data_options));
    const std::vector<double> best = MinOfInterleavedReps(
        threads, reps, [&](const MergingOptions& options) {
          auto result = ConstructPiecewisePolynomialFast(q, k, degree, options);
          benchmark::DoNotOptimize(result);
        });
    const double serial_ms = best[0];
    for (size_t ti = 0; ti < threads.size(); ++ti) {
      const int num_threads = threads[ti];
      const double ms = best[ti];
      writer.Add("poly_fast",
                 {{"n", static_cast<double>(n)},
                  {"degree", static_cast<double>(degree)},
                  {"threads", static_cast<double>(num_threads)},
                  {"threads_effective",
                   static_cast<double>(EffectiveParallelism(num_threads))},
                  {"ms", ms},
                  {"reps", static_cast<double>(reps)},
                  {"speedup_vs_serial", ms > 0.0 ? serial_ms / ms : 1.0}});
      std::printf("poly_fast n=%lld degree=%d threads=%d: %.2f ms (%.2fx)\n",
                  static_cast<long long>(n), degree, num_threads, ms,
                  ms > 0.0 ? serial_ms / ms : 1.0);
      std::fflush(stdout);
    }
  }

  if (!writer.WriteFile(out_path)) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return allocation_check_ok ? 0 : 1;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) {
  if (fasthist::bench_util::HasFlag(argc, argv, "--merge-grid")) {
    return fasthist::RunMergeScalingGrid(argc, argv);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
