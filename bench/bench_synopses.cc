// Synopsis family shoot-out (our extension): at an equal storage budget,
// compare every synopsis this repository implements — merging histograms
// (this paper), the exact V-optimal DP, equi-width/equi-depth (classic DB
// practice), and top-B Haar wavelets — plus the streaming mergeable
// summary against its batch equivalent.

#include <cmath>
#include <iostream>
#include <vector>

#include "baseline/equi.h"
#include "baseline/exact_dp.h"
#include "baseline/wavelet.h"
#include "bench/bench_util.h"
#include "core/merging.h"
#include "core/streaming.h"
#include "data/dow.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "dist/l2.h"
#include "util/random.h"
#include "util/table.h"

namespace fasthist {
namespace {

void RunDataset(const std::string& name, const std::vector<double>& data,
                int64_t k, bool with_exact) {
  // Storage accounting: a k-piece histogram needs k boundaries + k values
  // ~ 2k numbers; a B-term wavelet needs B (index, coeff) pairs ~ 2B.
  // So k pieces vs B = k terms is the fair fight.
  SparseFunction q = SparseFunction::FromDense(data);
  std::vector<double> nonneg = data;
  for (double& x : nonneg) x = x > 0.0 ? x : 0.0;

  std::cout << "--- " << name << " (n=" << data.size() << ", budget k=B="
            << k << ") ---\n";
  TablePrinter table({"synopsis", "error(l2)", "time(ms)"});

  if (with_exact) {
    WallTimer timer;
    auto exact = VOptimalHistogram(data, k);
    const double ms = timer.ElapsedMillis();
    table.AddRow({"v-optimal (exact DP)",
                  TablePrinter::FormatDouble(std::sqrt(exact->err_squared), 2),
                  TablePrinter::FormatDouble(ms, 3)});
  }
  {
    auto merging = ConstructHistogram(q, (k + 1) / 2);  // ~k+1 pieces
    const double ms = bench_util::TimeMillis(
        [&] { (void)ConstructHistogram(q, (k + 1) / 2); });
    table.AddRow({"merging (this paper)",
                  TablePrinter::FormatDouble(
                      std::sqrt(merging->err_squared), 2),
                  TablePrinter::FormatDouble(ms, 3)});
  }
  {
    auto width = EquiWidthHistogram(data, k);
    const double ms =
        bench_util::TimeMillis([&] { (void)EquiWidthHistogram(data, k); });
    table.AddRow({"equi-width",
                  TablePrinter::FormatDouble(
                      std::sqrt(width->L2DistanceSquaredTo(q)), 2),
                  TablePrinter::FormatDouble(ms, 3)});
  }
  {
    auto depth = EquiDepthHistogram(nonneg, k);
    const double ms =
        bench_util::TimeMillis([&] { (void)EquiDepthHistogram(nonneg, k); });
    table.AddRow({"equi-depth",
                  TablePrinter::FormatDouble(
                      std::sqrt(depth->L2DistanceSquaredTo(q)), 2),
                  TablePrinter::FormatDouble(ms, 3)});
  }
  {
    auto wavelet = TopBWaveletSynopsis(data, k);
    const double ms =
        bench_util::TimeMillis([&] { (void)TopBWaveletSynopsis(data, k); });
    table.AddRow({"top-B Haar wavelet",
                  TablePrinter::FormatDouble(
                      std::sqrt(wavelet->err_squared), 2),
                  TablePrinter::FormatDouble(ms, 3)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

void RunStreamingComparison() {
  std::cout << "--- streaming mergeable summary vs batch (hist-shaped "
               "distribution, k=10) ---\n";
  HistDatasetOptions options;
  options.domain_size = 2000;
  auto p = NormalizeToDistribution(MakeHistDataset(options)).value();
  auto sampler = AliasSampler::Create(p).value();
  Rng rng(515151);
  const std::vector<int64_t> samples = sampler.SampleMany(100000, &rng);

  TablePrinter table(
      {"strategy", "buffer", "err vs truth", "time(ms)"});
  for (size_t buffer : {512u, 4096u, 100000u}) {
    auto builder =
        StreamingHistogramBuilder::Create(2000, 10, buffer).value();
    WallTimer timer;
    (void)builder.AddMany(samples);
    auto snapshot = builder.Snapshot();
    const double ms = timer.ElapsedMillis();
    table.AddRow({buffer == 100000u ? "single flush" : "streaming",
                  TablePrinter::FormatInt(static_cast<long long>(buffer)),
                  TablePrinter::FormatDouble(p.L2DistanceTo(*snapshot), 5),
                  TablePrinter::FormatDouble(ms, 3)});
  }
  {
    WallTimer timer;
    auto empirical = EmpiricalDistribution(2000, samples);
    auto batch = ConstructHistogram(*empirical, 10);
    const double ms = timer.ElapsedMillis();
    table.AddRow({"batch (all samples in memory)", "-",
                  TablePrinter::FormatDouble(
                      p.L2DistanceTo(batch->histogram), 5),
                  TablePrinter::FormatDouble(ms, 3)});
  }
  table.Print(std::cout);
  std::cout << "(streaming keeps O(buffer + k) memory; batch keeps all "
               "100k samples)\n";
}

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "=== Synopsis comparison at equal storage budgets ===\n\n";
  RunDataset("hist", MakeHistDataset(), 10, /*with_exact=*/true);
  RunDataset("poly", MakePolyDataset(), 10, /*with_exact=*/true);
  RunDataset("dow", MakeDowDataset(), 50, /*with_exact=*/false);
  RunStreamingComparison();
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
