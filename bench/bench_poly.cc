// Theorem 2.3 / Corollary 4.1: piecewise polynomial approximation.  On the
// poly data set (a noisy degree-5 polynomial) we sweep the degree d and
// report pieces / error / time for both engine speeds, showing (i)
// polynomials beat histograms at equal piece budgets on smooth data,
// (ii) the fitting time grows mildly with d (our oracle is O(d) per point;
// the paper's bound is O(d^2)), and (iii) the selection-based fast path
// returns the sort-based reference's output identically while shaving the
// per-round sort.  A final table checks the sqrt(1 + delta) guarantee
// against the exact degree-d DP on a small prefix.

#include <cmath>
#include <iostream>
#include <vector>

#include "baseline/exact_poly_dp.h"
#include "bench/bench_util.h"
#include "core/merging.h"
#include "data/generators.h"
#include "poly/poly_merging.h"
#include "util/table.h"

namespace fasthist {
namespace {

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "=== Theorem 2.3: piecewise polynomial approximation ===\n\n";

  const std::vector<double> data = MakePolyDataset();
  const SparseFunction q = SparseFunction::FromDense(data);
  const MergingOptions options{1000.0, 1.0};
  const int64_t k = 10;

  std::cout << "poly data set (n=" << data.size() << ", k=" << k
            << ", degree sweep; sort = reference, select = fast path):\n";
  TablePrinter table({"degree", "pieces", "error(l2)", "sort(ms)",
                      "select(ms)"});
  for (int d = 0; d <= 8; ++d) {
    auto slow = ConstructPiecewisePolynomial(q, k, d, options);
    auto fast = ConstructPiecewisePolynomialFast(q, k, d, options);
    if (slow->function.num_pieces() != fast->function.num_pieces() ||
        slow->err_squared != fast->err_squared) {
      std::cout << "FATAL: fast/slow outputs diverge at degree " << d << "\n";
      return 1;
    }
    const double sort_ms = bench_util::TimeMillis(
        [&] { (void)ConstructPiecewisePolynomial(q, k, d, options); },
        /*min_total_ms=*/30.0, /*max_reps=*/200);
    const double select_ms = bench_util::TimeMillis(
        [&] { (void)ConstructPiecewisePolynomialFast(q, k, d, options); },
        /*min_total_ms=*/30.0, /*max_reps=*/200);
    table.AddRow(
        {TablePrinter::FormatInt(d),
         TablePrinter::FormatInt(
             static_cast<long long>(slow->function.num_pieces())),
         TablePrinter::FormatDouble(std::sqrt(slow->err_squared), 2),
         TablePrinter::FormatDouble(sort_ms, 3),
         TablePrinter::FormatDouble(select_ms, 3)});
  }
  table.Print(std::cout);

  // Space-fair comparison: a (k, d) piecewise polynomial costs ~k(d+1)
  // numbers; compare against histograms with the same budget.
  std::cout << "\nEqual-space comparison (budget = pieces * (d+1) numbers):\n";
  TablePrinter fair({"representation", "params", "error(l2)"});
  for (int d : {0, 1, 2, 5}) {
    const int64_t pieces_budget = 60 / (d + 1);
    auto poly = ConstructPiecewisePolynomial(q, pieces_budget, d, options);
    long long params = static_cast<long long>(poly->function.num_pieces()) *
                       (d + 1);
    fair.AddRow({"piecewise degree-" + std::to_string(d) + " (k=" +
                     std::to_string(pieces_budget) + ")",
                 TablePrinter::FormatInt(params),
                 TablePrinter::FormatDouble(std::sqrt(poly->err_squared), 2)});
  }
  fair.Print(std::cout);

  // Guarantee check against the exact degree-d DP (O(n^3), so a small
  // prefix): merging error / opt must stay below sqrt(1 + delta).
  const std::vector<double> prefix(data.begin(), data.begin() + 192);
  const SparseFunction qp = SparseFunction::FromDense(prefix);
  const double delta = 2.0;
  std::cout << "\nvs exact DP (n=" << prefix.size() << ", k=5, delta="
            << delta << ", bound sqrt(1+delta)="
            << std::sqrt(1.0 + delta) << "):\n";
  TablePrinter guarantee({"degree", "merging(l2)", "opt(l2)", "ratio"});
  for (int d = 0; d <= 3; ++d) {
    auto merged =
        ConstructPiecewisePolynomialFast(qp, 5, d, MergingOptions{delta, 1.0});
    auto opt = PolyOptK(prefix, 5, d);
    const double merged_err = std::sqrt(merged->err_squared);
    if (merged_err > std::sqrt(1.0 + delta) * (*opt) + 1e-6) {
      std::cout << "FATAL: sqrt(1+delta) guarantee violated at degree " << d
                << ": " << merged_err << " > " << std::sqrt(1.0 + delta)
                << " * " << *opt << "\n";
      return 1;
    }
    guarantee.AddRow(
        {TablePrinter::FormatInt(d), TablePrinter::FormatDouble(merged_err, 3),
         TablePrinter::FormatDouble(*opt, 3),
         TablePrinter::FormatDouble(*opt > 0.0 ? merged_err / *opt : 1.0, 3)});
  }
  guarantee.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
