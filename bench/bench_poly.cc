// Theorem 2.3 / Corollary 4.1: piecewise polynomial approximation.  On the
// poly data set (a noisy degree-5 polynomial) we sweep the degree d and
// report pieces / error / time, showing (i) polynomials beat histograms at
// equal piece budgets on smooth data and (ii) the fitting time grows mildly
// with d (our oracle is O(d) per point; the paper's bound is O(d^2)).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "core/merging.h"
#include "data/generators.h"
#include "poly/poly_merging.h"
#include "util/table.h"

namespace fasthist {
namespace {

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "=== Theorem 2.3: piecewise polynomial approximation ===\n\n";

  const std::vector<double> data = MakePolyDataset();
  const SparseFunction q = SparseFunction::FromDense(data);
  const MergingOptions options{1000.0, 1.0};
  const int64_t k = 10;

  std::cout << "poly data set (n=" << data.size() << ", k=" << k
            << ", degree sweep):\n";
  TablePrinter table({"degree", "pieces", "error(l2)", "time(ms)"});
  for (int d = 0; d <= 8; ++d) {
    auto result = ConstructPiecewisePolynomial(q, k, d, options);
    const double millis = bench_util::TimeMillis(
        [&] { (void)ConstructPiecewisePolynomial(q, k, d, options); },
        /*min_total_ms=*/30.0, /*max_reps=*/200);
    table.AddRow(
        {TablePrinter::FormatInt(d),
         TablePrinter::FormatInt(
             static_cast<long long>(result->function.num_pieces())),
         TablePrinter::FormatDouble(std::sqrt(result->err_squared), 2),
         TablePrinter::FormatDouble(millis, 3)});
  }
  table.Print(std::cout);

  // Space-fair comparison: a (k, d) piecewise polynomial costs ~k(d+1)
  // numbers; compare against histograms with the same budget.
  std::cout << "\nEqual-space comparison (budget = pieces * (d+1) numbers):\n";
  TablePrinter fair({"representation", "params", "error(l2)"});
  for (int d : {0, 1, 2, 5}) {
    const int64_t pieces_budget = 60 / (d + 1);
    auto poly = ConstructPiecewisePolynomial(q, pieces_budget, d, options);
    long long params = static_cast<long long>(poly->function.num_pieces()) *
                       (d + 1);
    fair.AddRow({"piecewise degree-" + std::to_string(d) + " (k=" +
                     std::to_string(pieces_budget) + ")",
                 TablePrinter::FormatInt(params),
                 TablePrinter::FormatDouble(std::sqrt(poly->err_squared), 2)});
  }
  fair.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
