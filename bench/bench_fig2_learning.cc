// Figure 2 reproduction: histogram learning from samples.  The three data
// sets are normalized to probability distributions (hist', poly', dow' —
// poly and dow subsampled by 4x / 16x to support ~1000, Section 5.2).
// For each sample count m we report the mean and standard deviation of the
// l2 error to the true distribution over 20 trials, for exactdp / merging /
// merging2, together with the opt_k floor.

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "baseline/exact_dp.h"
#include "bench/bench_util.h"
#include "core/merging.h"
#include "data/dow.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace fasthist {
namespace {

struct LearnSpec {
  std::string name;
  Distribution distribution;
  int64_t k;
};

void RunDataset(const LearnSpec& spec, int trials,
                const std::vector<size_t>& sample_sizes) {
  auto opt = OptK(spec.distribution.pmf(), spec.k);
  std::cout << "--- " << spec.name << " (support=" <<
      spec.distribution.domain_size() << ", k=" << spec.k
            << ", opt_k=" << TablePrinter::FormatDouble(*opt, 4) << ") ---\n";

  auto sampler = AliasSampler::Create(spec.distribution);
  const MergingOptions paper_options{1000.0, 1.0};

  TablePrinter table({"m", "exactdp(mean)", "exactdp(std)", "merging(mean)",
                      "merging(std)", "merging2(mean)", "merging2(std)"});
  Rng rng(20150531);
  for (size_t m : sample_sizes) {
    RunningStats exact_stats;
    RunningStats merging_stats;
    RunningStats merging2_stats;
    for (int trial = 0; trial < trials; ++trial) {
      auto empirical = EmpiricalDistribution(
          spec.distribution.domain_size(), sampler->SampleMany(m, &rng));
      const std::vector<double> empirical_dense = empirical->ToDense();

      auto exact = VOptimalHistogram(empirical_dense, spec.k);
      exact_stats.Add(spec.distribution.L2DistanceTo(exact->histogram));

      auto merging = ConstructHistogram(*empirical, spec.k, paper_options);
      merging_stats.Add(spec.distribution.L2DistanceTo(merging->histogram));

      auto merging2 =
          ConstructHistogram(*empirical, (spec.k + 1) / 2, paper_options);
      merging2_stats.Add(spec.distribution.L2DistanceTo(merging2->histogram));
    }
    table.AddRow({TablePrinter::FormatInt(static_cast<long long>(m)),
                  TablePrinter::FormatDouble(exact_stats.Mean(), 4),
                  TablePrinter::FormatDouble(exact_stats.StdDev(), 4),
                  TablePrinter::FormatDouble(merging_stats.Mean(), 4),
                  TablePrinter::FormatDouble(merging_stats.StdDev(), 4),
                  TablePrinter::FormatDouble(merging2_stats.Mean(), 4),
                  TablePrinter::FormatDouble(merging2_stats.StdDev(), 4)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  const bool fast = bench_util::HasFlag(argc, argv, "--fast");
  const int trials = fast ? 5 : 20;
  const std::vector<size_t> sample_sizes{1000, 2500, 5000, 7500, 10000};

  std::cout << "=== Figure 2: histogram learning from samples ("
            << trials << " trials) ===\n\n";

  auto hist = NormalizeToDistribution(MakeHistDataset());
  RunDataset({"hist'", std::move(hist).value(), 10}, trials, sample_sizes);

  auto poly_sub = SubsampleUniform(MakePolyDataset(), 4);
  auto poly = NormalizeToDistribution(*poly_sub);
  RunDataset({"poly'", std::move(poly).value(), 10}, trials, sample_sizes);

  auto dow_sub = SubsampleUniform(MakeDowDataset(), 16);
  auto dow = NormalizeToDistribution(*dow_sub);
  RunDataset({"dow'", std::move(dow).value(), 50}, trials, sample_sizes);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
