// Table 1 reproduction: offline histogram approximation on the three data
// sets of Figure 1.  For each algorithm we report the l2 error, the error
// relative to exactdp, the running time in milliseconds, and the time
// relative to fastmerging2 — the same four rows per data set as the paper.
//
//   exactdp       O(n^2 k) V-optimal DP [JKM+98]
//   merging       Algorithm 1, delta=1000, gamma=1  (2k+1 pieces)
//   merging2      Algorithm 1 with k' = k/2         (k+1 pieces)
//   fastmerging   aggressive group merging          (2k+1 pieces)
//   fastmerging2  fastmerging with k' = k/2         (k+1 pieces)
//   dual          [JKM+98] dual greedy + binary search over the budget
//
// --fast skips the exactdp cell on dow (the 73-second row of the paper);
// relative errors are then reported against the best remaining algorithm.

#include <cmath>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "baseline/dual_greedy.h"
#include "baseline/exact_dp.h"
#include "bench/bench_util.h"
#include "core/fast_merging.h"
#include "core/merging.h"
#include "data/dow.h"
#include "data/generators.h"
#include "util/table.h"
#include "util/timer.h"

namespace fasthist {
namespace {

struct Row {
  std::string name;
  double err = 0.0;
  double millis = 0.0;
};

struct DatasetSpec {
  std::string name;
  std::vector<double> data;
  int64_t k;
  bool skip_exact;
};

void RunDataset(const DatasetSpec& spec) {
  const SparseFunction q = SparseFunction::FromDense(spec.data);
  const int64_t k = spec.k;
  const int64_t k_half = (k + 1) / 2;
  const MergingOptions paper_options{1000.0, 1.0};
  std::vector<Row> rows;

  if (!spec.skip_exact) {
    Row row{"exactdp", 0.0, 0.0};
    WallTimer timer;
    auto result = VOptimalHistogram(spec.data, k);
    row.millis = timer.ElapsedMillis();
    row.err = std::sqrt(result->err_squared);
    rows.push_back(row);
  }

  {
    Row row{"merging", 0.0, 0.0};
    auto result = ConstructHistogram(q, k, paper_options);
    row.err = std::sqrt(result->err_squared);
    row.millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogram(q, k, paper_options); });
    rows.push_back(row);
  }
  {
    Row row{"merging2", 0.0, 0.0};
    auto result = ConstructHistogram(q, k_half, paper_options);
    row.err = std::sqrt(result->err_squared);
    row.millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogram(q, k_half, paper_options); });
    rows.push_back(row);
  }
  {
    Row row{"fastmerging", 0.0, 0.0};
    auto result = ConstructHistogramFast(q, k, paper_options);
    row.err = std::sqrt(result->err_squared);
    row.millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogramFast(q, k, paper_options); });
    rows.push_back(row);
  }
  {
    Row row{"fastmerging2", 0.0, 0.0};
    auto result = ConstructHistogramFast(q, k_half, paper_options);
    row.err = std::sqrt(result->err_squared);
    row.millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogramFast(q, k_half, paper_options); });
    rows.push_back(row);
  }
  {
    Row row{"dual", 0.0, 0.0};
    auto result = DualPrimal(spec.data, k + 1);
    row.err = std::sqrt(result->err_squared);
    row.millis =
        bench_util::TimeMillis([&] { (void)DualPrimal(spec.data, k + 1); });
    rows.push_back(row);
  }

  // Relative baselines: error vs exactdp (or best available), time vs
  // fastmerging2 — as in Table 1.
  double err_base = rows.front().err;
  for (const Row& row : rows) {
    if (row.name == "exactdp") err_base = row.err;
  }
  if (spec.skip_exact) {
    err_base = rows.front().err;
    for (const Row& row : rows) err_base = std::min(err_base, row.err);
  }
  double time_base = 1.0;
  for (const Row& row : rows) {
    if (row.name == "fastmerging2") time_base = row.millis;
  }

  std::cout << "--- " << spec.name << " (n=" << spec.data.size()
            << ", k=" << k << ") ---\n";
  TablePrinter table({"algorithm", "error(l2)", "error(rel)", "time(ms)",
                      "time(rel)"});
  for (const Row& row : rows) {
    table.AddRow({row.name, TablePrinter::FormatDouble(row.err, 2),
                  TablePrinter::FormatDouble(row.err / err_base, 3),
                  TablePrinter::FormatDouble(row.millis, 3),
                  TablePrinter::FormatDouble(row.millis / time_base, 1)});
  }
  table.Print(std::cout);
  if (spec.skip_exact) {
    std::cout << "(exactdp skipped via --fast; error(rel) baseline = best "
                 "remaining error)\n";
  }
  std::cout << "\n";
}

int Main(int argc, char** argv) {
  const bool fast = bench_util::HasFlag(argc, argv, "--fast");
  std::cout << "=== Table 1: offline histogram approximation ===\n\n";
  RunDataset({"hist", MakeHistDataset(), 10, false});
  RunDataset({"poly", MakePolyDataset(), 10, false});
  RunDataset({"dow", MakeDowDataset(), 50, fast});
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
