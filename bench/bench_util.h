#ifndef FASTHIST_BENCH_BENCH_UTIL_H_
#define FASTHIST_BENCH_BENCH_UTIL_H_

#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "util/timer.h"

namespace fasthist {
namespace bench_util {

/// Wall-clock milliseconds of `fn`, averaged over adaptive repetitions.
///
/// Contract: the first `min_reps` runs are warm-up only (caches, branch
/// predictors, lazy allocations) — the timer is restarted after them and
/// they never enter the average.  Measurement then re-runs `fn` until
/// `min_total_ms` of measured time or `max_reps` additional repetitions
/// accumulate, and returns measured-time / measured-reps (the paper
/// averages over >= 10 and up to 1e4 trials depending on speed).
inline double TimeMillis(const std::function<void()>& fn,
                         double min_total_ms = 50.0, int max_reps = 10000,
                         int min_reps = 3) {
  for (int warmup = 0; warmup < min_reps; ++warmup) fn();
  WallTimer timer;
  int reps = 0;
  while (reps < 1 ||
         (timer.ElapsedMillis() < min_total_ms && reps < max_reps)) {
    fn();
    ++reps;
  }
  return timer.ElapsedMillis() / static_cast<double>(reps);
}

/// True if `flag` (e.g. "--fast") appears among the arguments.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

}  // namespace bench_util
}  // namespace fasthist

#endif  // FASTHIST_BENCH_BENCH_UTIL_H_
