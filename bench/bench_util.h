#ifndef FASTHIST_BENCH_BENCH_UTIL_H_
#define FASTHIST_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace fasthist {
namespace bench_util {

/// Wall-clock milliseconds of `fn`, averaged over adaptive repetitions.
///
/// Contract: the first `min_reps` runs are warm-up only (caches, branch
/// predictors, lazy allocations) — the timer is restarted after them and
/// they never enter the average.  Measurement then re-runs `fn` until
/// `min_total_ms` of measured time or `max_reps` additional repetitions
/// accumulate, and returns measured-time / measured-reps (the paper
/// averages over >= 10 and up to 1e4 trials depending on speed).
inline double TimeMillis(const std::function<void()>& fn,
                         double min_total_ms = 50.0, int max_reps = 10000,
                         int min_reps = 3) {
  for (int warmup = 0; warmup < min_reps; ++warmup) fn();
  WallTimer timer;
  int reps = 0;
  while (reps < 1 ||
         (timer.ElapsedMillis() < min_total_ms && reps < max_reps)) {
    fn();
    ++reps;
  }
  return timer.ElapsedMillis() / static_cast<double>(reps);
}

/// Minimum wall-clock milliseconds of `fn` over `reps` measured runs, after
/// one uncounted warm-up run.  Min-of-R is the noise-robust summary for
/// committed trajectories (a minimum is immune to the scheduler hiccups an
/// average smears in); rows recording it should also record `reps` so a
/// reader knows how hard the minimum was shopped.
inline double MinMillis(const std::function<void()>& fn, int reps) {
  fn();  // warm-up: caches, branch predictors, lazy allocations
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer timer;
    fn();
    const double ms = timer.ElapsedMillis();
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

/// True if `flag` (e.g. "--fast") appears among the arguments.
inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Value of a `--key=value` argument (the part after `prefix`), or nullptr.
inline const char* FlagValue(int argc, char** argv, const char* prefix) {
  const size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) return argv[i] + len;
  }
  return nullptr;
}

/// Accumulates flat numeric benchmark records and serializes them as a
/// machine-readable perf trajectory file (e.g. BENCH_merge.json):
///
///   {"schema": 1, "bench": "<name>",
///    "context": {"<key>": <num>, ...},
///    "records": [{"name": "<record>", "<key>": <num>, ...}, ...]}
///
/// Keys and names must be plain identifiers (no JSON escaping is done);
/// values are doubles, printed as integers when they are integral so the
/// files diff cleanly across runs.
class JsonBenchWriter {
 public:
  explicit JsonBenchWriter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void AddContext(const std::string& key, double value) {
    context_.emplace_back(key, value);
  }

  void Add(const std::string& name,
           std::vector<std::pair<std::string, double>> fields) {
    records_.push_back({name, std::move(fields)});
  }

  std::string ToJson() const {
    std::string out = "{\"schema\": 1, \"bench\": \"" + bench_ + "\",\n";
    out += " \"context\": {";
    for (size_t i = 0; i < context_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + context_[i].first + "\": " + FormatNumber(context_[i].second);
    }
    out += "},\n \"records\": [\n";
    for (size_t r = 0; r < records_.size(); ++r) {
      out += "  {\"name\": \"" + records_[r].name + "\"";
      for (const auto& field : records_[r].fields) {
        out += ", \"" + field.first + "\": " + FormatNumber(field.second);
      }
      out += r + 1 < records_.size() ? "},\n" : "}\n";
    }
    out += " ]}\n";
    return out;
  }

  bool WriteFile(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
    const std::string json = ToJson();
    const bool wrote =
        std::fwrite(json.data(), 1, json.size(), file) == json.size();
    return std::fclose(file) == 0 && wrote;
  }

 private:
  struct Record {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };

  static std::string FormatNumber(double value) {
    char buffer[40];
    if (std::abs(value) < 1e15 &&
        value == static_cast<double>(static_cast<long long>(value))) {
      std::snprintf(buffer, sizeof(buffer), "%lld",
                    static_cast<long long>(value));
    } else {
      std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    }
    return buffer;
  }

  std::string bench_;
  std::vector<std::pair<std::string, double>> context_;
  std::vector<Record> records_;
};

}  // namespace bench_util
}  // namespace fasthist

#endif  // FASTHIST_BENCH_BENCH_UTIL_H_
