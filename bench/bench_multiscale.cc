// Theorem 2.2 / Algorithm 2: multi-scale histogram construction.  One O(s)
// run of ConstructHierarchicalHistogram serves every k simultaneously; we
// trace the (pieces, error) Pareto curve and compare each SelectForK level
// against fixed-k merging and the exact optimum.

#include <cmath>
#include <iostream>
#include <vector>

#include "baseline/exact_dp.h"
#include "bench/bench_util.h"
#include "core/hierarchical.h"
#include "core/merging.h"
#include "data/dow.h"
#include "data/generators.h"
#include "util/table.h"
#include "util/timer.h"

namespace fasthist {
namespace {

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  std::cout << "=== Theorem 2.2: multi-scale histograms (Algorithm 2) ===\n\n";

  const std::vector<double> data = MakeHistDataset();
  const SparseFunction q = SparseFunction::FromDense(data);

  auto hierarchy = HierarchicalHistogram::Build(q);
  const double build_millis =
      bench_util::TimeMillis([&] { (void)HierarchicalHistogram::Build(q); });
  std::cout << "hist (n=" << data.size() << "): one build = "
            << TablePrinter::FormatDouble(build_millis, 3) << " ms, "
            << hierarchy->num_levels() << " levels\n\n";

  std::cout << "Pareto curve (every 3rd level):\n";
  TablePrinter pareto({"level", "pieces", "error(l2)"});
  auto curve = hierarchy->ParetoCurve();
  for (size_t i = 0; i < curve.size(); i += 3) {
    pareto.AddRow({TablePrinter::FormatInt(static_cast<long long>(curve[i].level)),
                   TablePrinter::FormatInt(
                       static_cast<long long>(curve[i].num_pieces)),
                   TablePrinter::FormatDouble(curve[i].err, 3)});
  }
  pareto.Print(std::cout);

  std::cout << "\nSelectForK vs fixed-k merging vs opt_k "
               "(Theorem 2.2: pieces <= 8k, err <= 2 opt_k):\n";
  TablePrinter table({"k", "ms.pieces", "ms.err", "ms.err/opt", "merging.err",
                      "opt_k"});
  for (int64_t k : {1, 2, 5, 10, 20, 50}) {
    auto selection = hierarchy->SelectForK(k);
    auto fixed = ConstructHistogram(q, k, MergingOptions{1000.0, 1.0});
    auto opt = OptK(data, k);
    const double opt_k = *opt;
    table.AddRow(
        {TablePrinter::FormatInt(k),
         TablePrinter::FormatInt(
             static_cast<long long>(selection->num_pieces)),
         TablePrinter::FormatDouble(selection->error_estimate, 3),
         opt_k > 0.0
             ? TablePrinter::FormatDouble(selection->error_estimate / opt_k, 3)
             : "-",
         TablePrinter::FormatDouble(std::sqrt(fixed->err_squared), 3),
         TablePrinter::FormatDouble(opt_k, 3)});
  }
  table.Print(std::cout);

  // Scaling: a single multi-scale build vs one merging run per k.
  std::cout << "\nBuild-once vs merge-per-k (dow, n=16384):\n";
  const std::vector<double> dow = MakeDowDataset();
  const SparseFunction dow_q = SparseFunction::FromDense(dow);
  const double hier_millis = bench_util::TimeMillis(
      [&] { (void)HierarchicalHistogram::Build(dow_q); });
  WallTimer timer;
  for (int64_t k = 1; k <= 64; k *= 2) {
    (void)ConstructHistogram(dow_q, k, MergingOptions{1000.0, 1.0});
  }
  const double per_k_millis = timer.ElapsedMillis();
  TablePrinter scale({"strategy", "time(ms)"});
  scale.AddRow({"hierarchical (all k at once)",
                TablePrinter::FormatDouble(hier_millis, 3)});
  scale.AddRow({"merging for k=1,2,...,64 (7 runs)",
                TablePrinter::FormatDouble(per_k_millis, 3)});
  scale.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
