// Ablations of Algorithm 1's two knobs (DESIGN.md §4):
//   delta — approximation ratio vs output pieces (Theorem 3.3)
//   gamma — running time vs output pieces (Theorem 3.4 / Corollary 3.1)
// plus the pair-merging vs group-merging (fastmerging) round count.

#include <cmath>
#include <iostream>
#include <vector>

#include "baseline/exact_dp.h"
#include "bench/bench_util.h"
#include "core/fast_merging.h"
#include "core/merging.h"
#include "data/generators.h"
#include "util/table.h"

namespace fasthist {
namespace {

int Main(int argc, char** argv) {
  (void)argc;
  (void)argv;
  const std::vector<double> data = MakePolyDataset();
  const SparseFunction q = SparseFunction::FromDense(data);
  const int64_t k = 10;
  auto opt = OptK(data, k);

  std::cout << "=== Ablation: Algorithm 1 parameters (poly, n="
            << data.size() << ", k=" << k
            << ", opt_k=" << TablePrinter::FormatDouble(*opt, 2)
            << ") ===\n\n";

  std::cout << "delta sweep (gamma=1): pieces vs measured ratio vs "
               "sqrt(1+delta) worst case:\n";
  TablePrinter delta_table({"delta", "pieces", "error(l2)", "ratio",
                            "worst-case ratio", "rounds", "time(ms)"});
  for (double delta : {0.1, 0.5, 1.0, 4.0, 20.0, 1000.0}) {
    const MergingOptions options{delta, 1.0};
    auto result = ConstructHistogram(q, k, options);
    const double millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogram(q, k, options); });
    delta_table.AddRow(
        {TablePrinter::FormatDouble(delta, 1),
         TablePrinter::FormatInt(
             static_cast<long long>(result->histogram.num_pieces())),
         TablePrinter::FormatDouble(std::sqrt(result->err_squared), 2),
         TablePrinter::FormatDouble(std::sqrt(result->err_squared) / *opt, 3),
         TablePrinter::FormatDouble(std::sqrt(1.0 + delta), 2),
         TablePrinter::FormatInt(result->num_rounds),
         TablePrinter::FormatDouble(millis, 3)});
  }
  delta_table.Print(std::cout);

  std::cout << "\ngamma sweep (delta=1000): Corollary 3.1's time/pieces "
               "trade-off:\n";
  TablePrinter gamma_table({"gamma", "pieces", "error(l2)", "rounds",
                            "time(ms)"});
  for (double gamma : {1.0, 10.0, 20.0, 40.0, 80.0}) {
    const MergingOptions options{1000.0, gamma};
    auto result = ConstructHistogram(q, k, options);
    const double millis = bench_util::TimeMillis(
        [&] { (void)ConstructHistogram(q, k, options); });
    gamma_table.AddRow(
        {TablePrinter::FormatDouble(gamma, 0),
         TablePrinter::FormatInt(
             static_cast<long long>(result->histogram.num_pieces())),
         TablePrinter::FormatDouble(std::sqrt(result->err_squared), 2),
         TablePrinter::FormatInt(result->num_rounds),
         TablePrinter::FormatDouble(millis, 3)});
  }
  gamma_table.Print(std::cout);

  std::cout << "\npair merging vs group merging (rounds, footnote 3):\n";
  TablePrinter rounds_table({"n", "merging rounds", "fastmerging rounds",
                             "merging ms", "fastmerging ms"});
  for (int64_t n : {1000, 4000, 16000, 64000}) {
    PolyDatasetOptions options;
    options.domain_size = n;
    const std::vector<double> big = MakePolyDataset(options);
    const SparseFunction big_q = SparseFunction::FromDense(big);
    auto slow = ConstructHistogram(big_q, k);
    auto fast = ConstructHistogramFast(big_q, k);
    const double slow_ms =
        bench_util::TimeMillis([&] { (void)ConstructHistogram(big_q, k); });
    const double fast_ms = bench_util::TimeMillis(
        [&] { (void)ConstructHistogramFast(big_q, k); });
    rounds_table.AddRow({TablePrinter::FormatInt(n),
                         TablePrinter::FormatInt(slow->num_rounds),
                         TablePrinter::FormatInt(fast->num_rounds),
                         TablePrinter::FormatDouble(slow_ms, 3),
                         TablePrinter::FormatDouble(fast_ms, 3)});
  }
  rounds_table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Main(argc, argv); }
