#ifndef FASTHIST_UTIL_TIMER_H_
#define FASTHIST_UTIL_TIMER_H_

#include <chrono>

namespace fasthist {

// Monotonic wall-clock timer.  Starts at construction; `Restart` rewinds it.
// Backed by std::chrono::steady_clock so it is immune to system clock
// adjustments (same contract as the CLOCK_MONOTONIC idiom in PHAST's timer).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMillis() * 1e-3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fasthist

#endif  // FASTHIST_UTIL_TIMER_H_
