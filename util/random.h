#ifndef FASTHIST_UTIL_RANDOM_H_
#define FASTHIST_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace fasthist {

// Seedable pseudo-random generator used across the library.  The variate
// transforms (uniform doubles via the top 53 bits, Gaussians via Marsaglia's
// polar method) are implemented by hand so that a fixed seed reproduces the
// same stream on every platform/standard library.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  uint64_t NextUint64() { return engine_(); }

  // Uniform in [0, 1).
  double UniformDouble() {
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  // Uniform in [0, n); n must be positive.  Unbiased via rejection.
  int64_t UniformInt(int64_t n) {
    const uint64_t un = static_cast<uint64_t>(n);
    const uint64_t limit = ~uint64_t{0} - ~uint64_t{0} % un;
    uint64_t x;
    do {
      x = engine_();
    } while (x >= limit);
    return static_cast<int64_t>(x % un);
  }

  // Standard normal N(0, 1).
  double Gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * UniformDouble() - 1.0;
      v = 2.0 * UniformDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

 private:
  std::mt19937_64 engine_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace fasthist

#endif  // FASTHIST_UTIL_RANDOM_H_
