#ifndef FASTHIST_UTIL_STATS_H_
#define FASTHIST_UTIL_STATS_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace fasthist {

// Single-pass summary statistics (Welford's update, numerically stable).
// StdDev is the sample standard deviation (n - 1 denominator), matching how
// the benches report spread over repeated trials.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  int64_t Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  double StdDev() const {
    if (count_ < 2) return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
  }
  double Min() const { return count_ > 0 ? min_ : 0.0; }
  double Max() const { return count_ > 0 ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

inline double Mean(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.Mean();
}

inline double StdDev(const std::vector<double>& values) {
  RunningStats stats;
  for (double v : values) stats.Add(v);
  return stats.StdDev();
}

}  // namespace fasthist

#endif  // FASTHIST_UTIL_STATS_H_
