#ifndef FASTHIST_UTIL_SPAN_H_
#define FASTHIST_UTIL_SPAN_H_

#include <cstddef>
#include <type_traits>
#include <vector>

namespace fasthist {

// A non-owning pointer+length view over a contiguous range — the C++17
// stand-in for std::span<const T>.  Ingest-style APIs take Span<const
// int64_t> so callers can feed samples straight out of network buffers,
// memory-mapped files, or slices of larger arrays without copying into a
// std::vector first; a std::vector argument still converts implicitly, so
// existing call sites read the same.  A Span never outlives the memory it
// views; like any view, the caller keeps the backing storage alive.
template <typename T>
class Span {
 public:
  constexpr Span() = default;
  constexpr Span(T* data, size_t size) : data_(data), size_(size) {}

  // A vector of the element type converts implicitly (the common caller).
  Span(const std::vector<std::remove_const_t<T>>& v)
      : data_(v.data()), size_(v.size()) {}

  // Brace-list literals convert too, but only to Span<const T> — the view
  // is valid exactly for the full-expression the list lives in, which is
  // the usual "call a function with inline samples" pattern.  (That
  // deliberate lifetime contract is what -Winit-list-lifetime warns about.)
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  template <typename U = T,
            typename = std::enable_if_t<std::is_const_v<U>>>
  Span(std::initializer_list<std::remove_const_t<T>> list)
      : data_(list.begin()), size_(list.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  template <size_t N>
  constexpr Span(T (&array)[N]) : data_(array), size_(N) {}

  constexpr T* data() const { return data_; }
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr T& operator[](size_t i) const { return data_[i]; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }

  // The subview [offset, offset + count); count is clamped to what remains.
  constexpr Span subspan(size_t offset, size_t count) const {
    if (offset > size_) offset = size_;
    if (count > size_ - offset) count = size_ - offset;
    return Span(data_ + offset, count);
  }

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace fasthist

#endif  // FASTHIST_UTIL_SPAN_H_
