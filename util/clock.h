#ifndef FASTHIST_UTIL_CLOCK_H_
#define FASTHIST_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace fasthist {

// Monotonic nanoseconds since an arbitrary epoch (steady_clock, the same
// CLOCK_MONOTONIC contract as WallTimer in util/timer.h).  This is the
// timestamp every request-path measurement in net/ is taken with: two reads
// subtract to an interval that is immune to system clock adjustments, and a
// uint64_t of nanoseconds holds ~584 years, so differences never wrap in
// practice.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The tail-latency readout every self-measuring component reports (PHAST's
// harness convention: P50/P99/P99.5 per op class).  The values are extracted
// from a latency histogram built with this library's own
// StreamingHistogramBuilder and queried through Aggregator::Quantile — the
// extraction lives in net/latency_recorder.h, above the service layer, so
// this header stays at the bottom of the dependency order; here is only the
// plain-data result those quantile queries fill in.
struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p995_us = 0.0;
  int64_t count = 0;
};

}  // namespace fasthist

#endif  // FASTHIST_UTIL_CLOCK_H_
