#ifndef FASTHIST_UTIL_SIMD_H_
#define FASTHIST_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

// Portable SIMD shim for the merge engine's streaming kernels.  The AVX2
// path compiles when the target enables it (__AVX2__, e.g. via the
// FASTHIST_NATIVE CMake option, which adds -march=native); everything else
// gets plain scalar loops that modern compilers auto-vectorize.
//
// Determinism contract: every kernel computes each output element with the
// same single-rounded double operations in the same order as the scalar
// loop (the AVX2 variants are pure elementwise add/mul/div/sub/max — no
// reassociated reductions, no FMA contraction), so the SIMD, scalar,
// serial, and threaded paths all produce bit-identical results.
#if defined(__AVX2__)
#include <immintrin.h>
#define FASTHIST_SIMD_AVX2 1
#else
#define FASTHIST_SIMD_AVX2 0
#endif

namespace fasthist {
namespace simd {

// dst[i] = src[2*i] + src[2*i + 1] for i in [0, n): the pairwise merge of
// adjacent sufficient statistics (sum and sumsq planes) in one stream.
inline void PairwiseSum(const double* src, size_t n, double* dst) {
  size_t i = 0;
#if FASTHIST_SIMD_AVX2
  for (; i + 4 <= n; i += 4) {
    const __m256d lo = _mm256_loadu_pd(src + 2 * i);      // a0 a1 a2 a3
    const __m256d hi = _mm256_loadu_pd(src + 2 * i + 4);  // a4 a5 a6 a7
    // hadd gives (a0+a1, a4+a5, a2+a3, a6+a7); permute restores pair order.
    const __m256d sums = _mm256_permute4x64_pd(_mm256_hadd_pd(lo, hi),
                                               _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(dst + i, sums);
  }
#endif
  for (; i < n; ++i) dst[i] = src[2 * i] + src[2 * i + 1];
}

// dst[i] = double(end[2*i + 1] - begin[2*i]) for i in [0, n): the span of
// the merged pair (i's two adjacent intervals) as a double, ready to be the
// `len` input of ResidualError.  The cast is exact for spans up to 2^53
// (the merge engine rejects larger domains up front).  Scalar only: AVX2
// has no int64 -> double convert (that is AVX-512's vcvtqq2pd), and the
// magic-constant trick is only exact below 2^52 — a plain loop matches the
// cast's rounding everywhere and auto-vectorizes where the hardware allows.
inline void PairwiseSpan(const int64_t* begin, const int64_t* end, size_t n,
                         double* dst) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<double>(end[2 * i + 1] - begin[2 * i]);
  }
}

// err[i] = max(0, sumsq[i] - sum[i]^2 / len[i]): the best-flat-fit squared
// residual of a merged interval from its moments, clamped against the tiny
// negatives floating-point cancellation can produce.
inline void ResidualError(const double* sum, const double* sumsq,
                          const double* len, size_t n, double* err) {
  size_t i = 0;
#if FASTHIST_SIMD_AVX2
  const __m256d zero = _mm256_setzero_pd();
  for (; i + 4 <= n; i += 4) {
    const __m256d s = _mm256_loadu_pd(sum + i);
    const __m256d ss = _mm256_loadu_pd(sumsq + i);
    const __m256d l = _mm256_loadu_pd(len + i);
    const __m256d r =
        _mm256_sub_pd(ss, _mm256_div_pd(_mm256_mul_pd(s, s), l));
    _mm256_storeu_pd(err + i, _mm256_max_pd(zero, r));
  }
#endif
  for (; i < n; ++i) {
    const double r = sumsq[i] - sum[i] * sum[i] / len[i];
    err[i] = r > 0.0 ? r : 0.0;
  }
}

}  // namespace simd
}  // namespace fasthist

#endif  // FASTHIST_UTIL_SIMD_H_
