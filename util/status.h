#ifndef FASTHIST_UTIL_STATUS_H_
#define FASTHIST_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace fasthist {

// Minimal absl-style Status / StatusOr, kept dependency-free.  Every layer
// of the library reports recoverable errors through these types; accessing
// `value()` on an error aborts with the message (the bench drivers treat
// setup errors as fatal, and tests use CHECK_OK to surface them).
class Status {
 public:
  Status() = default;
  static Status Ok() { return Status(); }
  static Status Invalid(std::string message) {
    return Status(std::move(message));
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message)
      : ok_(false), message_(std::move(message)) {}

  bool ok_ = true;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    if (status_.ok()) Fail("StatusOr constructed from an OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& {
    EnsureOk();
    return *value_;
  }
  T& operator*() & {
    EnsureOk();
    return *value_;
  }
  const T* operator->() const {
    EnsureOk();
    return &*value_;
  }
  T* operator->() {
    EnsureOk();
    return &*value_;
  }

 private:
  void EnsureOk() const {
    if (!status_.ok()) Fail(status_.message().c_str());
  }
  [[noreturn]] static void Fail(const char* message) {
    std::fprintf(stderr, "fasthist: StatusOr access failed: %s\n", message);
    std::abort();
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace fasthist

#endif  // FASTHIST_UTIL_STATUS_H_
