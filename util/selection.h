#ifndef FASTHIST_UTIL_SELECTION_H_
#define FASTHIST_UTIL_SELECTION_H_

#include <cstddef>
#include <vector>

namespace fasthist {

// Order statistics.  Both functions return the k-th smallest element
// (0-indexed, i.e. the element that would sit at `values[k]` after sorting)
// and take the vector by value because selection permutes it.
//
// SelectKth uses std::nth_element (introselect, expected O(n)).
// SelectKthMedianOfMedians is the deterministic worst-case O(n) algorithm
// (groups of 5); it is the selection primitive Theorem 3.4's sample-linear
// merging variant relies on, and the test suite cross-checks the two.
double SelectKth(std::vector<double> values, size_t k);
double SelectKthMedianOfMedians(std::vector<double> values, size_t k);

}  // namespace fasthist

#endif  // FASTHIST_UTIL_SELECTION_H_
