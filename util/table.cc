#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fasthist {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    std::fprintf(stderr, "fasthist: TablePrinter row has %zu cells, table %zu columns\n",
                 cells.size(), headers_.size());
    std::abort();
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string TablePrinter::FormatInt(long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", value);
  return buffer;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };

  print_row(headers_);
  os << '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::Dump(std::ostream& os) const {
  auto dump_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  dump_row(headers_);
  for (const auto& row : rows_) dump_row(row);
}

}  // namespace fasthist
