#ifndef FASTHIST_UTIL_PADDED_H_
#define FASTHIST_UTIL_PADDED_H_

#include <atomic>
#include <cstddef>

namespace fasthist {

// Cache-line padding helpers for per-thread hot state (the striped
// ingestor's per-stripe counters).  Two writer threads bumping adjacent
// atomics in the same cache line ping-pong the line between cores on every
// store even though the data is logically disjoint (false sharing); giving
// each writer-owned field its own line keeps the wait-free append path at
// true per-core cost.
//
// 64 bytes is the destructive-interference size on every mainstream CPU
// this library targets (x86-64, Apple/ARM server cores report 64 or 128;
// 128 only costs memory, 64-crossing costs throughput, so 64 is the floor
// worth guaranteeing).  std::hardware_destructive_interference_size would
// say the same but is still missing from common libstdc++ deployments.
inline constexpr size_t kCacheLineBytes = 64;

// An atomic on its own cache line: the over-alignment both starts the
// struct on a line boundary and (because sizeof is always a multiple of
// alignof) rounds its size up to whole lines, so neighbors in an array or
// an enclosing struct can never share a line with it.
template <typename T>
struct alignas(kCacheLineBytes) PaddedAtomic {
  std::atomic<T> value;
};

static_assert(sizeof(PaddedAtomic<long long>) == kCacheLineBytes,
              "a padded atomic must occupy exactly one cache line");

}  // namespace fasthist

#endif  // FASTHIST_UTIL_PADDED_H_
