#ifndef FASTHIST_UTIL_PARALLEL_H_
#define FASTHIST_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fasthist {

// A small reusable thread pool with one data-parallel primitive,
// ParallelFor.  Partitioning is static and deterministic: the range is cut
// into contiguous chunks whose boundaries depend only on
// (begin, end, grain, align, num_threads), and there is no work stealing —
// so which thread runs which chunk never affects which elements a chunk
// contains.  Callers that write disjoint outputs per index therefore get
// results that are bit-identical to the serial loop, which is the contract
// the merge engine's serial == threaded guarantee rests on (see
// core/internal/merge_engine.cc and README "Engine architecture").
//
// Scheduling rules (the adaptive part):
//   * minimum work per task: every chunk is at least `grain` elements, so
//     the chunk count is min(num_threads, range / grain) — a range shorter
//     than two grains never dispatches, it runs serial on the caller;
//   * boundary alignment: interior chunk boundaries are rounded down to a
//     multiple of `align` elements (relative to `begin`), so writers of
//     adjacent chunks do not share a cache line at the seam when align is
//     chosen as a cache line's worth of elements (8 for doubles);
//   * oversubscription guard: EffectiveParallelism clamps a requested
//     thread count to the hardware before a pool is ever chosen, so asking
//     for 8 threads on a 1-core container degrades to the serial path
//     instead of 8 workers time-slicing one core.
//
// The calling thread participates: a pool constructed with num_threads = t
// spawns t - 1 workers and runs the first chunk on the caller, so
// ThreadPool(1) degrades to a plain serial loop with no synchronization.

// The interior boundary of chunk `c` out of `chunks` over [begin,
// begin + range), rounded down to a multiple of `align` relative to
// `begin`.  Pure in its arguments — this is the single source of truth for
// the pool's static partitioning, shared with callers (the merge engine's
// fused kernel) that plan the same chunks to precompute per-chunk prefix
// state.  With range >= chunks * grain and align <= grain every chunk is
// non-empty.
inline int64_t ChunkBoundary(int64_t begin, int64_t range, int64_t chunks,
                             int64_t c, int64_t align) {
  if (c <= 0) return begin;
  if (c >= chunks) return begin + range;
  const int64_t raw = range * c / chunks;
  return begin + raw / align * align;
}

// The deterministic chunk count for a range: at most `tasks`, with every
// chunk at least `grain` long.  0 tasks/grain are clamped to 1.
inline int64_t ChunkCount(int64_t range, int64_t grain, int64_t tasks) {
  grain = std::max<int64_t>(grain, 1);
  return std::max<int64_t>(
      1, std::min<int64_t>(std::max<int64_t>(tasks, 1), range / grain));
}

// min(requested, hardware concurrency, cgroup CPU quota), at least 1.  The
// clamp every pool call site goes through: a thread count above what the
// machine (or the container's CPU limit — hardware_concurrency reports the
// *host's* cores under a quota) can actually run only adds context
// switching, never speed, so it is treated as "all cores".  When both are
// unknown the request is trusted as-is.
int EffectiveParallelism(int requested);

// The machine's usable parallelism as EffectiveParallelism sees it —
// hardware concurrency clamped by any cgroup CPU quota, and by the test
// override when set.  0 when the hardware is unknown (EffectiveParallelism
// then trusts requests as-is).
int HardwareParallelism();

// Test-only override of the hardware concurrency EffectiveParallelism
// sees (0 restores the real value).  Lets tests on small containers force
// the genuinely-threaded code paths (and CI on big machines pin them
// down); never used outside tests.
void SetHardwareParallelismForTesting(int value);

// Default stripe count for a striped multi-writer structure
// (service/striped_ingestor.h): the next power of two at or above
// max(writers_hint, the machine's usable parallelism per
// EffectiveParallelism — hardware cores clamped by any cgroup CPU quota),
// floored at 4 and capped at 256.  Power-of-two so a hashed or
// round-robin writer->stripe assignment spreads evenly; the floor keeps a
// little headroom for writer churn (a stripe stays claimed until its
// handle is released) even on 1-core containers; the cap bounds the
// per-stripe memory of pathological hints.  A positive `writers_hint` is
// the caller's expected peak concurrent writer count; 0 means "size for
// this machine".
int DefaultStripeCount(int writers_hint = 0);

class ThreadPool {
 public:
  // Spawns num_threads - 1 worker threads (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes body(chunk_begin, chunk_end) over disjoint chunks covering
  // [begin, end), each at least `grain` long, with interior boundaries
  // rounded down to `align` (clamped into [1, grain]), and blocks until
  // every chunk has finished.  A range shorter than two grains runs inline
  // on the caller.  Safe to call from multiple threads; concurrent calls
  // serialize against each other.  Reentrant calls from inside `body` run
  // inline (serial).  Exception-safe: never returns (or unwinds) while a
  // worker still runs a chunk; a throw from a worker chunk is captured and
  // the first one is rethrown on the calling thread after the barrier, a
  // throw from the caller's own chunk propagates after the barrier.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body,
                   int64_t align = 1);

  // Process-wide pool registry: one lazily-created pool per distinct thread
  // count, so repeated merge calls reuse threads instead of respawning them.
  // Pools live for the duration of the process.
  static ThreadPool& Shared(int num_threads);

 private:
  struct Chunk {
    int64_t begin = 0;
    int64_t end = 0;
  };

  void WorkerLoop(int worker_index);

  std::mutex dispatch_mu_;  // one ParallelFor at a time per pool

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int64_t, int64_t)>* body_ = nullptr;
  std::vector<Chunk> chunks_;  // chunk 0 runs on the caller, chunk i on
                               // worker i-1; sized per dispatch
  uint64_t epoch_ = 0;         // bumped once per dispatch
  int pending_ = 0;            // worker chunks not yet finished
  std::exception_ptr worker_exception_;  // first throw from a worker chunk
  bool shutting_down_ = false;

  std::vector<std::thread> workers_;
};

// Serial-or-parallel helper: with a null pool (or a range shorter than two
// grains) runs `body` inline over the whole range, otherwise dispatches to
// the pool.  This is the form the engine calls — `pool` is null exactly
// when the effective thread count is 1.
inline void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                        int64_t grain,
                        const std::function<void(int64_t, int64_t)>& body,
                        int64_t align = 1) {
  if (end <= begin) return;
  if (pool == nullptr || end - begin < 2 * std::max<int64_t>(grain, 1)) {
    body(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, grain, body, align);
}

}  // namespace fasthist

#endif  // FASTHIST_UTIL_PARALLEL_H_
