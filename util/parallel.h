#ifndef FASTHIST_UTIL_PARALLEL_H_
#define FASTHIST_UTIL_PARALLEL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fasthist {

// A small reusable thread pool with one data-parallel primitive,
// ParallelFor.  Partitioning is static and deterministic: the range is cut
// into at most num_threads() contiguous chunks of at least `grain` elements,
// chunk boundaries depend only on (begin, end, grain, num_threads), and
// there is no work stealing — so which thread runs which chunk never affects
// which elements a chunk contains.  Callers that write disjoint outputs per
// index therefore get results that are bit-identical to the serial loop,
// which is the contract the merge engine's serial == threaded guarantee
// rests on (see core/internal/merge_engine.cc and README "Engine
// architecture").
//
// The calling thread participates: a pool constructed with num_threads = t
// spawns t - 1 workers and runs the first chunk on the caller, so
// ThreadPool(1) degrades to a plain serial loop with no synchronization.
class ThreadPool {
 public:
  // Spawns num_threads - 1 worker threads (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes body(chunk_begin, chunk_end) over disjoint chunks covering
  // [begin, end), each at least `grain` long (except possibly when the whole
  // range is shorter), and blocks until every chunk has finished.  Safe to
  // call from multiple threads; concurrent calls serialize against each
  // other.  Reentrant calls from inside `body` run inline (serial).
  // Exception-safe: never returns (or unwinds) while a worker still runs a
  // chunk; a throw from a worker chunk is captured and the first one is
  // rethrown on the calling thread after the barrier, a throw from the
  // caller's own chunk propagates after the barrier.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& body);

  // Process-wide pool registry: one lazily-created pool per distinct thread
  // count, so repeated merge calls reuse threads instead of respawning them.
  // Pools live for the duration of the process.
  static ThreadPool& Shared(int num_threads);

 private:
  struct Chunk {
    int64_t begin = 0;
    int64_t end = 0;
  };

  void WorkerLoop(int worker_index);

  std::mutex dispatch_mu_;  // one ParallelFor at a time per pool

  std::mutex mu_;  // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int64_t, int64_t)>* body_ = nullptr;
  std::vector<Chunk> chunks_;  // chunk 0 runs on the caller, chunk i on
                               // worker i-1; sized per dispatch
  uint64_t epoch_ = 0;         // bumped once per dispatch
  int pending_ = 0;            // worker chunks not yet finished
  std::exception_ptr worker_exception_;  // first throw from a worker chunk
  bool shutting_down_ = false;

  std::vector<std::thread> workers_;
};

// Serial-or-parallel helper: with a null pool (or a range no longer than one
// grain) runs `body` inline over the whole range, otherwise dispatches to
// the pool.  This is the form the engine calls — `pool` is null exactly when
// MergingOptions::num_threads <= 1.
inline void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                        int64_t grain,
                        const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  if (pool == nullptr || end - begin <= grain) {
    body(begin, end);
    return;
  }
  pool->ParallelFor(begin, end, grain, body);
}

}  // namespace fasthist

#endif  // FASTHIST_UTIL_PARALLEL_H_
