#ifndef FASTHIST_UTIL_TABLE_H_
#define FASTHIST_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace fasthist {

// Fixed-width text table used by every bench driver to reproduce the paper's
// tables.  Rows are added as pre-formatted cells; `Print` renders an aligned
// ASCII table and `Dump` emits the same data as CSV (for plotting).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Missing trailing cells are rendered empty; extra cells are an error and
  // abort (a malformed bench table is a programming bug, not runtime input).
  void AddRow(std::vector<std::string> cells);

  static std::string FormatDouble(double value, int digits);
  static std::string FormatInt(long long value);

  void Print(std::ostream& os) const;
  void Dump(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fasthist

#endif  // FASTHIST_UTIL_TABLE_H_
