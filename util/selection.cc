#include "util/selection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace fasthist {
namespace {

// Sorts [lo, hi) of at most 5 elements and returns the index of its median.
size_t MedianOfFive(std::vector<double>* v, size_t lo, size_t hi) {
  std::sort(v->begin() + static_cast<ptrdiff_t>(lo),
            v->begin() + static_cast<ptrdiff_t>(hi));
  return lo + (hi - lo - 1) / 2;
}

// Deterministic select on [lo, hi): returns the value of rank k within the
// subrange (k is 0-indexed relative to lo).
double MomSelect(std::vector<double>* v, size_t lo, size_t hi, size_t k) {
  while (true) {
    const size_t n = hi - lo;
    if (n <= 5) {
      std::sort(v->begin() + static_cast<ptrdiff_t>(lo),
                v->begin() + static_cast<ptrdiff_t>(hi));
      return (*v)[lo + k];
    }

    // Gather the median of each group of 5 at the front of the range, then
    // recurse to find the median of those medians as the pivot.
    size_t num_medians = 0;
    for (size_t i = lo; i < hi; i += 5) {
      const size_t group_hi = std::min(i + 5, hi);
      const size_t median_index = MedianOfFive(v, i, group_hi);
      std::swap((*v)[lo + num_medians], (*v)[median_index]);
      ++num_medians;
    }
    const double pivot =
        MomSelect(v, lo, lo + num_medians, (num_medians - 1) / 2);

    // Three-way partition around the pivot value.
    size_t lt = lo, i = lo, gt = hi;
    while (i < gt) {
      if ((*v)[i] < pivot) {
        std::swap((*v)[lt++], (*v)[i++]);
      } else if ((*v)[i] > pivot) {
        std::swap((*v)[i], (*v)[--gt]);
      } else {
        ++i;
      }
    }
    const size_t num_less = lt - lo;
    const size_t num_equal = gt - lt;
    if (k < num_less) {
      hi = lt;
    } else if (k < num_less + num_equal) {
      return pivot;
    } else {
      k -= num_less + num_equal;
      lo = gt;
    }
  }
}

[[noreturn]] void FailOutOfRange(const char* fn) {
  std::fprintf(stderr, "fasthist: %s: rank out of range\n", fn);
  std::abort();
}

}  // namespace

double SelectKth(std::vector<double> values, size_t k) {
  if (k >= values.size()) FailOutOfRange("SelectKth");
  std::nth_element(values.begin(), values.begin() + static_cast<ptrdiff_t>(k),
                   values.end());
  return values[k];
}

double SelectKthMedianOfMedians(std::vector<double> values, size_t k) {
  if (k >= values.size()) FailOutOfRange("SelectKthMedianOfMedians");
  return MomSelect(&values, 0, values.size(), k);
}

}  // namespace fasthist
