#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

namespace fasthist {
namespace {

// Set while a thread is executing a chunk body; a ParallelFor issued from
// inside one (directly or through a nested engine call) runs inline instead
// of deadlocking on the pool's dispatch lock.
thread_local bool inside_parallel_region = false;

// Test-only override of the hardware concurrency (0 = use the real value).
std::atomic<int> hardware_parallelism_override{0};

// Best-effort cgroup CPU quota (Linux): in a quota-limited container (e.g.
// a Kubernetes cpu limit of 1.5 on a 16-core node) hardware_concurrency()
// still reports the host's 16 logical cores, but the quota is the real
// bound on useful parallelism — more workers than quota time-slice the
// allowance, the exact oversubscription EffectiveParallelism exists to
// prevent.  Returns ceil(quota / period), or 0 when no quota applies (no
// cgroup, "max", or a non-Linux host where the files don't exist).
int CgroupCpuQuota() {
  // cgroup v2: /sys/fs/cgroup/cpu.max holds "<quota-us|max> <period-us>".
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu.max", "r")) {
    char quota_text[32];
    long long period = 0;
    const int fields = std::fscanf(f, "%31s %lld", quota_text, &period);
    std::fclose(f);
    if (fields == 2 && std::strcmp(quota_text, "max") != 0 && period > 0) {
      const long long quota = std::atoll(quota_text);
      if (quota > 0) {
        return static_cast<int>((quota + period - 1) / period);
      }
    }
  }
  // cgroup v1: cpu.cfs_quota_us (-1 = unlimited) over cpu.cfs_period_us.
  long long quota = -1, period = 0;
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_quota_us", "r")) {
    if (std::fscanf(f, "%lld", &quota) != 1) quota = -1;
    std::fclose(f);
  }
  if (std::FILE* f = std::fopen("/sys/fs/cgroup/cpu/cpu.cfs_period_us", "r")) {
    if (std::fscanf(f, "%lld", &period) != 1) period = 0;
    std::fclose(f);
  }
  if (quota > 0 && period > 0) {
    return static_cast<int>((quota + period - 1) / period);
  }
  return 0;
}

}  // namespace

int HardwareParallelism() {
  const int override_value =
      hardware_parallelism_override.load(std::memory_order_relaxed);
  if (override_value > 0) return override_value;
  // The quota is read once: it cannot change for a running process without
  // the whole cgroup being reconfigured, and this sits on every pool-
  // selection path.
  static const int hardware = [] {
    int cores = static_cast<int>(std::thread::hardware_concurrency());
    const int quota = CgroupCpuQuota();
    if (quota > 0 && (cores <= 0 || quota < cores)) cores = quota;
    return std::max(cores, 0);
  }();
  return hardware;
}

int EffectiveParallelism(int requested) {
  requested = std::max(requested, 1);
  const int hardware = HardwareParallelism();
  if (hardware <= 0) return requested;  // unknown hardware: trust the caller
  return std::min(requested, hardware);
}

void SetHardwareParallelismForTesting(int value) {
  hardware_parallelism_override.store(value, std::memory_order_relaxed);
}

int DefaultStripeCount(int writers_hint) {
  int target = std::max(writers_hint, HardwareParallelism());
  target = std::max(target, 4);
  target = std::min(target, 256);
  int stripes = 4;
  while (stripes < target) stripes *= 2;
  return stripes;
}

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(num_threads, 1) - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  while (true) {
    Chunk chunk;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutting_down_ || epoch_ != seen_epoch;
      });
      if (shutting_down_) return;
      seen_epoch = epoch_;
      // Worker i owns chunk i + 1 of this dispatch (chunk 0 is the
      // caller's); a dispatch with fewer chunks leaves the tail workers
      // idle for the round.
      const size_t mine = static_cast<size_t>(worker_index) + 1;
      if (mine < chunks_.size()) {
        chunk = chunks_[mine];
        body = body_;
      }
    }
    if (body != nullptr) {
      inside_parallel_region = true;
      std::exception_ptr thrown;
      try {
        (*body)(chunk.begin, chunk.end);
      } catch (...) {
        thrown = std::current_exception();
      }
      inside_parallel_region = false;
      std::lock_guard<std::mutex> lock(mu_);
      if (thrown != nullptr && worker_exception_ == nullptr) {
        worker_exception_ = thrown;
      }
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body, int64_t align) {
  if (end <= begin) return;
  grain = std::max<int64_t>(grain, 1);
  align = std::min(std::max<int64_t>(align, 1), grain);
  const int64_t range = end - begin;
  // Deterministic static partition: chunk count depends only on the range,
  // the grain, and the pool size — never on runtime scheduling.  Every
  // chunk is at least one full grain (minimum work per task), so a range
  // shorter than two grains stays serial.
  const int64_t max_chunks = ChunkCount(range, grain, num_threads());
  if (max_chunks <= 1 || inside_parallel_region) {
    body(begin, end);
    return;
  }

  std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.resize(static_cast<size_t>(max_chunks));
    for (int64_t c = 0; c < max_chunks; ++c) {
      chunks_[static_cast<size_t>(c)] = {
          ChunkBoundary(begin, range, max_chunks, c, align),
          ChunkBoundary(begin, range, max_chunks, c + 1, align)};
    }
    body_ = &body;
    pending_ = static_cast<int>(max_chunks) - 1;
    worker_exception_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();

  // The barrier below must be reached even if the caller's own chunk
  // throws: workers still hold a pointer to `body`, which dies with this
  // frame, so unwinding before pending_ == 0 would be a use-after-free.
  inside_parallel_region = true;
  std::exception_ptr caller_thrown;
  try {
    body(chunks_[0].begin, chunks_[0].end);
  } catch (...) {
    caller_thrown = std::current_exception();
  }
  inside_parallel_region = false;

  std::exception_ptr worker_thrown;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
    worker_thrown = worker_exception_;
    worker_exception_ = nullptr;
  }
  if (caller_thrown != nullptr) std::rethrow_exception(caller_thrown);
  if (worker_thrown != nullptr) std::rethrow_exception(worker_thrown);
}

ThreadPool& ThreadPool::Shared(int num_threads) {
  num_threads = std::max(num_threads, 1);
  static std::mutex registry_mu;
  static std::map<int, std::unique_ptr<ThreadPool>> registry;
  std::lock_guard<std::mutex> lock(registry_mu);
  std::unique_ptr<ThreadPool>& pool = registry[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return *pool;
}

}  // namespace fasthist
