#include "util/parallel.h"

#include <algorithm>
#include <map>
#include <memory>

namespace fasthist {
namespace {

// Set while a thread is executing a chunk body; a ParallelFor issued from
// inside one (directly or through a nested engine call) runs inline instead
// of deadlocking on the pool's dispatch lock.
thread_local bool inside_parallel_region = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int workers = std::max(num_threads, 1) - 1;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  while (true) {
    Chunk chunk;
    const std::function<void(int64_t, int64_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutting_down_ || epoch_ != seen_epoch;
      });
      if (shutting_down_) return;
      seen_epoch = epoch_;
      // Worker i owns chunk i + 1 of this dispatch (chunk 0 is the
      // caller's); a dispatch with fewer chunks leaves the tail workers
      // idle for the round.
      const size_t mine = static_cast<size_t>(worker_index) + 1;
      if (mine < chunks_.size()) {
        chunk = chunks_[mine];
        body = body_;
      }
    }
    if (body != nullptr) {
      inside_parallel_region = true;
      std::exception_ptr thrown;
      try {
        (*body)(chunk.begin, chunk.end);
      } catch (...) {
        thrown = std::current_exception();
      }
      inside_parallel_region = false;
      std::lock_guard<std::mutex> lock(mu_);
      if (thrown != nullptr && worker_exception_ == nullptr) {
        worker_exception_ = thrown;
      }
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t grain,
    const std::function<void(int64_t, int64_t)>& body) {
  if (end <= begin) return;
  grain = std::max<int64_t>(grain, 1);
  const int64_t range = end - begin;
  // Deterministic static partition: chunk count depends only on the range,
  // the grain, and the pool size — never on runtime scheduling.
  const int64_t max_chunks =
      std::min<int64_t>(num_threads(), (range + grain - 1) / grain);
  if (max_chunks <= 1 || inside_parallel_region) {
    body(begin, end);
    return;
  }

  std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    chunks_.resize(static_cast<size_t>(max_chunks));
    for (int64_t c = 0; c < max_chunks; ++c) {
      chunks_[static_cast<size_t>(c)] = {begin + range * c / max_chunks,
                                         begin + range * (c + 1) / max_chunks};
    }
    body_ = &body;
    pending_ = static_cast<int>(max_chunks) - 1;
    worker_exception_ = nullptr;
    ++epoch_;
  }
  work_cv_.notify_all();

  // The barrier below must be reached even if the caller's own chunk
  // throws: workers still hold a pointer to `body`, which dies with this
  // frame, so unwinding before pending_ == 0 would be a use-after-free.
  inside_parallel_region = true;
  std::exception_ptr caller_thrown;
  try {
    body(chunks_[0].begin, chunks_[0].end);
  } catch (...) {
    caller_thrown = std::current_exception();
  }
  inside_parallel_region = false;

  std::exception_ptr worker_thrown;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    body_ = nullptr;
    worker_thrown = worker_exception_;
    worker_exception_ = nullptr;
  }
  if (caller_thrown != nullptr) std::rethrow_exception(caller_thrown);
  if (worker_thrown != nullptr) std::rethrow_exception(worker_thrown);
}

ThreadPool& ThreadPool::Shared(int num_threads) {
  num_threads = std::max(num_threads, 1);
  static std::mutex registry_mu;
  static std::map<int, std::unique_ptr<ThreadPool>> registry;
  std::lock_guard<std::mutex> lock(registry_mu);
  std::unique_ptr<ThreadPool>& pool = registry[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return *pool;
}

}  // namespace fasthist
