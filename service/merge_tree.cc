#include "service/merge_tree.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "util/parallel.h"

namespace fasthist {

StatusOr<MergeTreeResult> ReduceSummaries(std::vector<ShardSummary> summaries,
                                          int64_t k,
                                          const MergeTreeOptions& options) {
  if (summaries.empty()) {
    return Status::Invalid("ReduceSummaries: need at least one summary");
  }
  if (options.fan_in < 2) {
    return Status::Invalid("ReduceSummaries: fan_in must be >= 2");
  }
  if (options.num_threads < 1) {
    return Status::Invalid("ReduceSummaries: num_threads must be >= 1");
  }
  if (k < 1) {
    return Status::Invalid("ReduceSummaries: k must be >= 1");
  }
  const int64_t domain_size = summaries.front().histogram.domain_size();
  int max_input_levels = 1;
  for (const ShardSummary& summary : summaries) {
    if (summary.histogram.domain_size() != domain_size) {
      return Status::Invalid("ReduceSummaries: summaries must share a domain");
    }
    if (!(summary.weight > 0.0)) {
      return Status::Invalid("ReduceSummaries: weights must be positive");
    }
    max_input_levels = std::max(max_input_levels, summary.error_levels);
  }

  // Same oversubscription guard as the merge engine: more threads than
  // cores never helps, and the tree shape (hence the output) does not
  // depend on the pool size.
  const int effective_threads = EffectiveParallelism(options.num_threads);
  ThreadPool* pool =
      effective_threads > 1 ? &ThreadPool::Shared(effective_threads) : nullptr;
  MergeTreeResult result;
  std::vector<ShardSummary> current = std::move(summaries);
  while (current.size() > 1) {
    const size_t fan_in = static_cast<size_t>(options.fan_in);
    const size_t num_groups = (current.size() + fan_in - 1) / fan_in;
    std::vector<ShardSummary> next(num_groups);
    std::vector<Status> group_status(num_groups);
    // Each group folds serially left-to-right and writes only its own slot,
    // so the partitioning of groups over threads cannot affect any value.
    ParallelFor(pool, 0, static_cast<int64_t>(num_groups), 1,
                [&](int64_t group_begin, int64_t group_end) {
                  for (int64_t g = group_begin; g < group_end; ++g) {
                    const size_t first = static_cast<size_t>(g) * fan_in;
                    const size_t last =
                        std::min(first + fan_in, current.size());
                    ShardSummary acc = std::move(current[first]);
                    for (size_t i = first + 1; i < last; ++i) {
                      auto merged = MergeHistograms(
                          acc.histogram, acc.weight, current[i].histogram,
                          current[i].weight, k, options.merging);
                      if (!merged.ok()) {
                        group_status[static_cast<size_t>(g)] = merged.status();
                        break;
                      }
                      acc.histogram = std::move(merged).value();
                      acc.weight += current[i].weight;
                    }
                    next[static_cast<size_t>(g)] = std::move(acc);
                  }
                });
    for (const Status& status : group_status) {
      if (!status.ok()) return status;
    }
    result.num_merges +=
        static_cast<int64_t>(current.size()) -
        static_cast<int64_t>(num_groups);
    current = std::move(next);
    ++result.depth;
  }

  result.aggregate = std::move(current.front().histogram);
  result.total_weight = current.front().weight;
  // Tree levels on top of the deepest upstream chain: each input already
  // accounts for its own condenses (floored at 1 for legacy one-condense
  // summaries), and every tree level adds one more lossy merge.
  result.error_levels = result.depth + max_input_levels;
  return result;
}

StatusOr<MergeTreeResult> ReduceSnapshots(std::vector<ShardSnapshot> snapshots,
                                          int64_t k,
                                          const MergeTreeOptions& options) {
  if (snapshots.empty()) {
    return Status::Invalid("ReduceSnapshots: need at least one snapshot");
  }
  // Validate the configuration up front so degenerate inputs (e.g. all
  // shards empty) still reject a bad fan_in instead of short-circuiting.
  if (options.fan_in < 2) {
    return Status::Invalid("ReduceSnapshots: fan_in must be >= 2");
  }
  if (options.num_threads < 1) {
    return Status::Invalid("ReduceSnapshots: num_threads must be >= 1");
  }
  if (k < 1) {
    return Status::Invalid("ReduceSnapshots: k must be >= 1");
  }
  // Canonical leaf order: the reduction must not depend on which shard's
  // snapshot happened to arrive first.  num_samples, error_levels, and the
  // raw bytes break ties so duplicate shard ids sort adjacently and
  // deterministically.
  std::sort(snapshots.begin(), snapshots.end(),
            [](const ShardSnapshot& a, const ShardSnapshot& b) {
              return std::tie(a.shard_id, a.keyed, a.key_id, a.num_samples,
                              a.error_levels, a.encoded_histogram) <
                     std::tie(b.shard_id, b.keyed, b.key_id, b.num_samples,
                              b.error_levels, b.encoded_histogram);
            });
  // Idempotent delivery: a retransmitted snapshot (same identity, same
  // bytes) must not double-count, and two *different* snapshots claiming
  // the same identity is an upstream bug — there is no correct way to merge
  // both.  Identity is (shard_id, keyed, key_id): two v3 snapshots for
  // different keys of one shard are distinct leaves (that is how a keyed
  // store's per-key exports roll up through the same tree), while a keyed
  // and an un-keyed snapshot never collide.  After the sort duplicates are
  // adjacent, so one linear pass settles it.
  const auto same_identity = [](const ShardSnapshot& a,
                                const ShardSnapshot& b) {
    return a.shard_id == b.shard_id && a.keyed == b.keyed &&
           a.key_id == b.key_id;
  };
  size_t kept = 0;
  for (size_t i = 0; i < snapshots.size(); ++i) {
    if (kept > 0 && same_identity(snapshots[kept - 1], snapshots[i])) {
      if (snapshots[kept - 1].num_samples == snapshots[i].num_samples &&
          snapshots[kept - 1].error_levels == snapshots[i].error_levels &&
          snapshots[kept - 1].encoded_histogram ==
              snapshots[i].encoded_histogram) {
        continue;  // byte-identical retransmit: drop the extra copy
      }
      return Status::Invalid(
          "ReduceSnapshots: conflicting snapshots for one identity");
    }
    if (kept != i) snapshots[kept] = std::move(snapshots[i]);
    ++kept;
  }
  snapshots.resize(kept);

  // Empty shards carry no mass, so their snapshots are skipped *before*
  // decoding — a fleet where most shards are idle pays only for the shards
  // that contributed samples, instead of decoding every envelope just to
  // drop it.  (Consequence: a corrupt payload inside a zero-sample snapshot
  // goes unnoticed unless the whole fleet is empty and it is first in
  // canonical order — the bytes are dead weight either way.)
  std::vector<ShardSummary> summaries;
  summaries.reserve(snapshots.size());
  const ShardSnapshot* first_empty = nullptr;
  for (const ShardSnapshot& snapshot : snapshots) {
    if (snapshot.num_samples < 0) {
      return Status::Invalid("ReduceSnapshots: negative sample count");
    }
    if (snapshot.num_samples == 0) {
      if (first_empty == nullptr) first_empty = &snapshot;
      continue;
    }
    auto histogram = DecodeHistogram(snapshot.encoded_histogram);
    if (!histogram.ok()) return histogram.status();
    // Floor at 1: a pre-ladder (or hand-built) snapshot that never set the
    // field still condensed its samples at least once.
    summaries.push_back(ShardSummary{std::move(histogram).value(),
                                     static_cast<double>(snapshot.num_samples),
                                     std::max(1, snapshot.error_levels)});
  }
  if (summaries.empty()) {
    // Every shard was empty: the aggregate is the shards' common empty-state
    // summary (the uniform distribution) with no weight behind it — the one
    // case an empty snapshot is decoded.
    auto histogram = DecodeHistogram(first_empty->encoded_histogram);
    if (!histogram.ok()) return histogram.status();
    MergeTreeResult result;
    result.aggregate = std::move(histogram).value();
    result.total_weight = 0.0;
    result.depth = 0;
    result.num_merges = 0;
    result.error_levels = 1;
    return result;
  }
  return ReduceSummaries(std::move(summaries), k, options);
}

}  // namespace fasthist
