#include "service/wire_format.h"

#include <cmath>
#include <cstring>
#include <utility>

namespace fasthist {
namespace {

// "FHh1" / "FHs1" as they appear on the wire (little-endian u32).
constexpr uint32_t kHistogramMagic = 0x31684846;
constexpr uint32_t kSnapshotMagic = 0x31734846;
constexpr uint32_t kHistogramVersion = 1;
constexpr uint32_t kSnapshotVersion = 2;       // v2 added error_levels
constexpr uint32_t kSnapshotVersionKeyed = 3;  // v3 added key_id (keyed)
constexpr size_t kBytesPerPiece = 16;  // one int64 end + one double value

// Any honest error_levels is tiny (ladder depth + reconcile + tree depth);
// a huge value is a corrupt or hostile envelope, not a deep pipeline.
constexpr int64_t kMaxErrorLevels = 1 << 20;

void AppendU32(std::vector<uint8_t>* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void AppendU64(std::vector<uint8_t>* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>(value >> shift));
  }
}

void AppendI64(std::vector<uint8_t>* out, int64_t value) {
  AppendU64(out, static_cast<uint64_t>(value));
}

void AppendDouble(std::vector<uint8_t>* out, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU64(out, bits);
}

// Cursor over an untrusted buffer: every read is bounds-checked, so a
// truncated or hostile input can only produce a `false` return, never an
// out-of-bounds access.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  bool ReadU32(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    if (remaining() < 8) return false;
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *out = value;
    return true;
  }

  bool ReadI64(int64_t* out) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    *out = static_cast<int64_t>(bits);
    return true;
  }

  bool ReadDouble(double* out) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(out, &bits, sizeof(bits));
    return true;
  }

  bool ReadBytes(size_t count, std::vector<uint8_t>* out) {
    if (remaining() < count) return false;
    out->assign(data_ + pos_, data_ + pos_ + count);
    pos_ += count;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::vector<uint8_t> EncodeHistogram(const Histogram& histogram) {
  const size_t num_pieces = histogram.pieces().size();
  std::vector<uint8_t> out;
  out.reserve(24 + kBytesPerPiece * num_pieces);
  AppendU32(&out, kHistogramMagic);
  AppendU32(&out, kHistogramVersion);
  AppendI64(&out, histogram.domain_size());
  AppendI64(&out, static_cast<int64_t>(num_pieces));
  for (const HistogramPiece& piece : histogram.pieces()) {
    AppendI64(&out, piece.interval.end);
  }
  for (const HistogramPiece& piece : histogram.pieces()) {
    AppendDouble(&out, piece.value);
  }
  return out;
}

StatusOr<Histogram> DecodeHistogram(const uint8_t* data, size_t size) {
  if (data == nullptr && size > 0) {
    return Status::Invalid("DecodeHistogram: null buffer");
  }
  WireReader reader(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  int64_t domain_size = 0;
  int64_t num_pieces = 0;
  if (!reader.ReadU32(&magic)) {
    return Status::Invalid("DecodeHistogram: truncated header");
  }
  if (magic != kHistogramMagic) {
    return Status::Invalid("DecodeHistogram: bad magic");
  }
  if (!reader.ReadU32(&version)) {
    return Status::Invalid("DecodeHistogram: truncated header");
  }
  if (version != kHistogramVersion) {
    return Status::Invalid("DecodeHistogram: unsupported version");
  }
  if (!reader.ReadI64(&domain_size) || !reader.ReadI64(&num_pieces)) {
    return Status::Invalid("DecodeHistogram: truncated header");
  }
  if (domain_size <= 0) {
    return Status::Invalid("DecodeHistogram: domain_size must be positive");
  }
  if (num_pieces <= 0 || num_pieces > domain_size) {
    return Status::Invalid("DecodeHistogram: piece count out of range");
  }
  // Overflow-safe payload sizing: compare the count against the bytes that
  // are actually present before ever multiplying it.
  if (static_cast<uint64_t>(num_pieces) > reader.remaining() / kBytesPerPiece) {
    return Status::Invalid("DecodeHistogram: truncated piece planes");
  }
  if (reader.remaining() !=
      static_cast<size_t>(num_pieces) * kBytesPerPiece) {
    return Status::Invalid("DecodeHistogram: trailing bytes");
  }

  std::vector<HistogramPiece> pieces(static_cast<size_t>(num_pieces));
  int64_t begin = 0;
  for (HistogramPiece& piece : pieces) {
    int64_t end = 0;
    if (!reader.ReadI64(&end)) {
      return Status::Invalid("DecodeHistogram: truncated piece planes");
    }
    if (end <= begin || end > domain_size) {
      return Status::Invalid("DecodeHistogram: piece ends must be increasing");
    }
    piece.interval = {begin, end};
    begin = end;
  }
  if (begin != domain_size) {
    return Status::Invalid("DecodeHistogram: pieces must cover the domain");
  }
  for (HistogramPiece& piece : pieces) {
    if (!reader.ReadDouble(&piece.value)) {
      return Status::Invalid("DecodeHistogram: truncated piece planes");
    }
    // Value-plane validation: densities are finite and non-negative by
    // construction, so NaN/Inf/negative here is corruption (or hostility),
    // caught at the trust boundary instead of deep inside a later merge.
    if (!std::isfinite(piece.value) || piece.value < 0.0) {
      return Status::Invalid(
          "DecodeHistogram: piece values must be finite and non-negative");
    }
  }
  return Histogram::Create(domain_size, std::move(pieces));
}

std::vector<uint8_t> EncodeShardSnapshot(const ShardSnapshot& snapshot) {
  std::vector<uint8_t> out;
  out.reserve(48 + snapshot.encoded_histogram.size());
  AppendU32(&out, kSnapshotMagic);
  // Version is a pure function of `keyed`: an un-keyed snapshot produces
  // the exact v2 byte stream it always has (regression-tested), a keyed
  // one inserts key_id after shard_id under version 3.
  AppendU32(&out, snapshot.keyed ? kSnapshotVersionKeyed : kSnapshotVersion);
  AppendU64(&out, snapshot.shard_id);
  if (snapshot.keyed) AppendU64(&out, snapshot.key_id);
  AppendI64(&out, snapshot.num_samples);
  AppendI64(&out, static_cast<int64_t>(snapshot.error_levels));
  AppendU64(&out, static_cast<uint64_t>(snapshot.encoded_histogram.size()));
  out.insert(out.end(), snapshot.encoded_histogram.begin(),
             snapshot.encoded_histogram.end());
  return out;
}

StatusOr<ShardSnapshot> DecodeShardSnapshot(const uint8_t* data, size_t size) {
  if (data == nullptr && size > 0) {
    return Status::Invalid("DecodeShardSnapshot: null buffer");
  }
  WireReader reader(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  ShardSnapshot snapshot;
  uint64_t blob_size = 0;
  if (!reader.ReadU32(&magic)) {
    return Status::Invalid("DecodeShardSnapshot: truncated header");
  }
  if (magic != kSnapshotMagic) {
    return Status::Invalid("DecodeShardSnapshot: bad magic");
  }
  if (!reader.ReadU32(&version)) {
    return Status::Invalid("DecodeShardSnapshot: truncated header");
  }
  if (version != kSnapshotVersion && version != kSnapshotVersionKeyed) {
    return Status::Invalid("DecodeShardSnapshot: unsupported version");
  }
  snapshot.keyed = version == kSnapshotVersionKeyed;
  int64_t error_levels = 0;
  if (!reader.ReadU64(&snapshot.shard_id) ||
      (snapshot.keyed && !reader.ReadU64(&snapshot.key_id)) ||
      !reader.ReadI64(&snapshot.num_samples) ||
      !reader.ReadI64(&error_levels) || !reader.ReadU64(&blob_size)) {
    return Status::Invalid("DecodeShardSnapshot: truncated header");
  }
  if (snapshot.num_samples < 0) {
    return Status::Invalid("DecodeShardSnapshot: negative sample count");
  }
  if (error_levels < 0 || error_levels > kMaxErrorLevels) {
    return Status::Invalid("DecodeShardSnapshot: error_levels out of range");
  }
  snapshot.error_levels = static_cast<int>(error_levels);
  if (blob_size != reader.remaining()) {
    return Status::Invalid("DecodeShardSnapshot: blob size mismatch");
  }
  if (!reader.ReadBytes(static_cast<size_t>(blob_size),
                        &snapshot.encoded_histogram)) {
    return Status::Invalid("DecodeShardSnapshot: truncated blob");
  }
  // The embedded histogram must itself decode — an envelope around garbage
  // is corrupt, and catching it here keeps the reduction layer's error
  // handling trivial.
  if (auto histogram = DecodeHistogram(snapshot.encoded_histogram);
      !histogram.ok()) {
    return histogram.status();
  }
  return snapshot;
}

}  // namespace fasthist
