#include "service/shard.h"

#include <utility>

namespace fasthist {

StatusOr<ShardIngestor> ShardIngestor::Create(uint64_t shard_id,
                                              int64_t domain_size, int64_t k,
                                              size_t buffer_capacity,
                                              const MergingOptions& options) {
  auto builder = StreamingHistogramBuilder::Create(domain_size, k,
                                                   buffer_capacity, options);
  if (!builder.ok()) return builder.status();
  return ShardIngestor(shard_id, domain_size, std::move(builder).value());
}

Status ShardIngestor::Ingest(Span<const int64_t> samples) {
  return builder_.AddMany(samples);
}

StatusOr<ShardSnapshot> ShardIngestor::ExportSnapshot() const {
  auto summary = builder_.Peek();
  if (!summary.ok()) return summary.status();
  ShardSnapshot snapshot;
  snapshot.shard_id = shard_id_;
  snapshot.num_samples = builder_.num_samples();
  // The ladder accounting for exactly the summary Peek just folded: 0 when
  // idle, O(log flushes) + 1 read-fold level otherwise.
  snapshot.error_levels = builder_.error_levels();
  snapshot.encoded_histogram = EncodeHistogram(*summary);
  return snapshot;
}

}  // namespace fasthist
