#ifndef FASTHIST_SERVICE_STRIPED_INGESTOR_H_
#define FASTHIST_SERVICE_STRIPED_INGESTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/streaming.h"
#include "service/wire_format.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// The multi-writer ingest front-end: one shard's traffic fanned across S
// per-thread builder stripes, so the write path scales across writer
// threads without locks while exports stay consistent and deterministic.
// This is the concurrent sibling of ShardIngestor (service/shard.h) —
// same snapshot wire format, same merge-tree downstream, but Append and
// ExportSnapshot may run concurrently from any number of threads.
//
// Design (stripe diagram and protocol walk-through in README.md,
// "Concurrent ingest"):
//
//   * Stripes.  Each stripe owns a StreamingHistogramBuilder plus a
//     fixed-capacity sample window and a published summary, all in
//     cache-line-padded, separately-allocated state — no shared mutable
//     state between stripes on the append path.
//
//   * Wait-free writes.  A writer claims a stripe once (RegisterWriter:
//     lowest free stripe by id, one atomic CAS) and thereafter appends
//     with plain relaxed stores into the stripe's window plus one release
//     store of the per-stripe sample counter per batch — no locks, no
//     read-modify-writes, no waiting on readers or other writers, ever.
//     When the window fills, the owning writer condenses it through the
//     stripe's builder (the same fold a serial StreamingHistogramBuilder
//     runs) and republishes the stripe summary.
//
//   * Epoch-tagged reads (seqlock).  Each stripe carries an even/odd
//     generation counter bumped around its condense: odd while the
//     builder folds and the summary planes are republished, even when
//     stable.  ExportSnapshot reads each stripe optimistically — epoch,
//     summary planes, window prefix, epoch again — and retries only the
//     stripes whose epoch moved mid-read (i.e. that condensed under it).
//     Readers never block writers; writers never wait for readers.
//
//   * Deterministic reconciliation.  The export folds the per-stripe
//     summaries in stripe-id order through the service's reduction layer
//     (ReduceSummaries with fan_in = S: a single level, stripes folded
//     left-to-right with the weighted MergeHistograms), so for a given
//     assignment of samples to stripes the exported aggregate is
//     bit-identical to a serial replay of the per-stripe streams — no
//     matter how writer threads interleaved or how many exports ran
//     concurrently.  The reconcile costs exactly one extra merge level of
//     error on top of each stripe's own levels, accounted the same way as
//     merge-tree levels (MergeTreeResult::error_levels).  Each stripe's
//     own count is its builder's dyadic-ladder accounting — O(log flushes)
//     rather than one level per flush, see StreamingHistogramBuilder::
//     error_levels — and the exported snapshot carries the end-to-end
//     total in ShardSnapshot::error_levels.
class StripedShardIngestor {
 public:
  // A claimed stripe: the handle through which exactly one thread appends.
  // Move-only; releases its stripe on destruction (the stripe's summary
  // state survives — a later claimant continues where it left off).  A
  // handle must not be used from two threads at once: the whole point is
  // that the append path is single-writer per stripe.
  class Writer {
   public:
    Writer() = default;
    Writer(Writer&& other) noexcept;
    Writer& operator=(Writer&& other) noexcept;
    ~Writer();

    Writer(const Writer&) = delete;
    Writer& operator=(const Writer&) = delete;

    // Appends a batch into the claimed stripe: per sample one relaxed
    // store, per batch one release store of the stripe counter, one
    // condense per filled window.  Samples must lie in [0, domain_size);
    // like AddMany, the valid prefix of a bad batch is still ingested.
    Status Append(Span<const int64_t> samples);

    bool valid() const { return owner_ != nullptr; }
    int stripe() const { return stripe_; }

    // Releases the claim early (destruction does the same).
    void Release();

   private:
    friend class StripedShardIngestor;
    Writer(StripedShardIngestor* owner, int stripe)
        : owner_(owner), stripe_(stripe) {}

    StripedShardIngestor* owner_ = nullptr;
    int stripe_ = -1;
  };

  // `num_stripes` is the peak number of concurrent writers the shard must
  // support (each live Writer holds one stripe); 0 picks
  // util/parallel.h's DefaultStripeCount for this machine.  More stripes
  // cost memory (a window + summary planes each) and one extra summary in
  // the reconcile fold; they never cost append-path synchronization.
  // Returns unique_ptr because stripes hold atomics: the ingestor is
  // address-stable, neither copyable nor movable.
  static StatusOr<std::unique_ptr<StripedShardIngestor>> Create(
      uint64_t shard_id, int64_t domain_size, int64_t k,
      size_t buffer_capacity, const MergingOptions& options = MergingOptions(),
      int num_stripes = 0);

  ~StripedShardIngestor();

  StripedShardIngestor(const StripedShardIngestor&) = delete;
  StripedShardIngestor& operator=(const StripedShardIngestor&) = delete;

  uint64_t shard_id() const { return shard_id_; }
  int64_t domain_size() const { return domain_size_; }
  int num_stripes() const { return static_cast<int>(stripes_.size()); }

  // Claims the lowest free stripe.  Fails (without blocking) when all
  // stripes are claimed — create the ingestor with num_stripes >= the peak
  // concurrent writer count.  Thread-safe.
  StatusOr<Writer> RegisterWriter();

  // Convenience single-call ingest: claims a stripe, appends, releases.
  // Sequential callers keep landing on stripe 0 (lowest-free claiming), so
  // a single-threaded user gets plain ShardIngestor behavior; concurrent
  // callers pay the claim CAS per call — threads that ingest repeatedly
  // should hold a Writer instead.
  Status Ingest(Span<const int64_t> samples);

  // Wire-encoded summary of a consistent cut of every stripe: safe to call
  // from any thread at any time, never blocks or delays writers, retries
  // only stripes that condensed mid-read.  The cut is per-stripe prefix-
  // consistent: everything each stripe had published at its read point,
  // reconciled deterministically in stripe-id order.
  StatusOr<ShardSnapshot> ExportSnapshot() const;

  // Samples appended so far (published summaries + windows).  Exact once
  // writers are quiescent; during concurrent appends it is a moment-in-time
  // sum of per-stripe monotone counters.
  int64_t num_samples() const;

  // The reconcile's error accounting: folding S stripe summaries through
  // one ReduceSummaries level costs one extra merge level on top of each
  // stripe's own ladder levels — the caller adds this to its per-stripe
  // error budget exactly like one merge-tree level.  (ExportSnapshot does
  // the addition itself: snapshot.error_levels = max over contributing
  // stripes' ladder accounting, plus this when more than one contributed.)
  static constexpr int kReconcileErrorLevels = 1;

 private:
  struct Stripe;  // defined in striped_ingestor.cc

  StripedShardIngestor(uint64_t shard_id, int64_t domain_size, int64_t k,
                       size_t buffer_capacity, const MergingOptions& options);

  // Writer-side append path for a claimed stripe (see Writer::Append).
  Status AppendToStripe(Stripe& stripe, Span<const int64_t> samples);

  // Writer-side: stage the full window through the stripe's builder and
  // republish the stripe summary inside an odd epoch window.
  Status CondenseStripe(Stripe& stripe);

  void ReleaseStripe(int stripe);

  uint64_t shard_id_;
  int64_t domain_size_;
  int64_t k_;
  size_t buffer_capacity_;
  MergingOptions options_;
  int64_t plane_capacity_ = 0;  // max pieces a stripe summary can have
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace fasthist

#endif  // FASTHIST_SERVICE_STRIPED_INGESTOR_H_
