#ifndef FASTHIST_SERVICE_MERGE_TREE_H_
#define FASTHIST_SERVICE_MERGE_TREE_H_

#include <cstdint>
#include <vector>

#include "core/merging.h"
#include "dist/histogram.h"
#include "service/wire_format.h"
#include "util/status.h"

namespace fasthist {

// The reduction layer of the service: folds N per-shard summaries into one
// aggregate with weighted MergeHistograms (Lemma 4.2 — the merge is
// weighted and associative up to re-approximation, which is exactly what
// lets shards be reduced in a tree instead of a chain).
//
// Determinism is the load-bearing contract.  The tree shape is a pure
// function of (N, fan_in): level by level, consecutive groups of `fan_in`
// summaries fold serially left-to-right into one node, until one summary
// remains.  Groups at a level are independent, so they run on
// util/parallel.h's statically-partitioned pool — and because the merge
// engine itself is thread-invariant, the aggregate is bit-identical at any
// `num_threads`.  ReduceSnapshots additionally canonicalizes input order
// (by shard id), so the aggregate is bit-identical regardless of the order
// snapshots arrived in.  Different `fan_in` values produce different (all
// valid) tree shapes and therefore different — but equally accurate, see
// `error_levels` — aggregates.

// A decoded shard summary: the histogram plus its merge weight (the
// number of samples it condenses) and the Lemma-4.2 error levels already
// spent producing it (condenses + merges upstream of the reducer; 1 for a
// plain one-condense summary).
struct ShardSummary {
  Histogram histogram;
  double weight = 0.0;
  int error_levels = 1;
};

struct MergeTreeOptions {
  // Children folded into each internal node; >= 2.  Larger fan-in means a
  // shallower tree (fewer lossy condensations, see error_levels) but less
  // available parallelism per level.
  int fan_in = 2;
  // Tree-level parallelism: independent groups of one level reduce
  // concurrently on the shared pool.  Output is bit-identical at any value.
  int num_threads = 1;
  // Knobs (delta/gamma/num_threads) for every internal MergeHistograms.
  MergingOptions merging;
};

struct MergeTreeResult {
  Histogram aggregate;
  double total_weight = 0.0;
  // Number of reduction levels the tree ran (= ceil(log_fan_in(N)) for N
  // non-empty shards; 0 when a single summary passes through untouched).
  int depth = 0;
  // Total pairwise MergeHistograms calls across all levels.
  int64_t num_merges = 0;
  // Additive error accounting (Lemma 4.2): the L2 error of `aggregate`
  // against the pooled empirical distribution is bounded by the weighted
  // mean of the per-shard summary errors plus one k-piece condensation
  // error per tree level — `error_levels = depth + max(input error_levels)`
  // additive terms in total, where each input's own count covers its
  // upstream condenses (a plain one-condense summary reports 1; a
  // long-running shard reports its dyadic-ladder depth, see
  // StreamingHistogramBuilder::error_levels, so the end-to-end count stays
  // O(log stream length + log shards)).  Deeper trees spend more of the
  // error budget; this field is the number a caller multiplies its
  // per-condense bound by (Aggregator::Create's per-level overload does
  // exactly that).
  int error_levels = 0;
};

// Reduces `summaries` (all sharing one domain, all with positive weight)
// to a single aggregate.  The input order is the tree's leaf order;
// callers who need arrival-order invariance should go through
// ReduceSnapshots, which canonicalizes it.
StatusOr<MergeTreeResult> ReduceSummaries(
    std::vector<ShardSummary> summaries, int64_t k,
    const MergeTreeOptions& options = MergeTreeOptions());

// Decodes wire snapshots and reduces them.  Snapshots are first sorted by
// (shard_id, num_samples, error_levels, bytes) — a canonical leaf order,
// so the result is bit-identical regardless of arrival order.  Snapshots
// sharing a shard_id are then deduplicated: byte-identical duplicates are
// retransmits and all but one copy is dropped (idempotent delivery — a
// retried push cannot double-count a shard), while same-id snapshots with
// differing payloads are rejected as Invalid (two distinct claims about
// one shard means an upstream bug; silently merging both would
// double-count).  Shards with zero samples carry no mass and are skipped
// before their payload is even decoded (an idle fleet costs nothing per
// empty shard); if every shard is empty the aggregate is the first empty
// shard's decoded (uniform) summary with total_weight 0 — a caller must
// check total_weight (or use Aggregator::Create's MergeTreeResult
// overload, which rejects it) before serving quantiles from it.
StatusOr<MergeTreeResult> ReduceSnapshots(
    std::vector<ShardSnapshot> snapshots, int64_t k,
    const MergeTreeOptions& options = MergeTreeOptions());

}  // namespace fasthist

#endif  // FASTHIST_SERVICE_MERGE_TREE_H_
