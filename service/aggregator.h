#ifndef FASTHIST_SERVICE_AGGREGATOR_H_
#define FASTHIST_SERVICE_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "service/merge_tree.h"
#include "util/status.h"

namespace fasthist {

// The serving surface of the service layer: wraps an aggregate summary
// (typically MergeTreeResult::aggregate) and answers the distribution
// queries a frontend would actually issue — CDF, quantile, range mass —
// in O(log pieces) each, from precomputed prefix masses.
//
// Error bars: a histogram summary is exact at piece granularity only.
// RangeMassQuery therefore reports, alongside the point estimate, a bound
// made of (a) the mass the summary cannot attribute within the boundary
// pieces a query cuts through, and (b) the caller-provided `error_budget`
// (e.g. the merge tree's accumulated condensation error, see
// MergeTreeResult::error_levels).  Piece-aligned queries pay only (b).
class Aggregator {
 public:
  // `summary` must be non-empty with finite, non-negative piece values and
  // positive total mass (the shape of any distribution summary; rejecting
  // everything else keeps the prefix masses monotone, which the query
  // binary searches rely on).  Queries normalize by the total, so any
  // positively-scaled summary works.  `error_budget` (>= 0) is an additive
  // mass-error term echoed into every error bar.
  static StatusOr<Aggregator> Create(Histogram summary,
                                     double error_budget = 0.0);

  // The serving constructor: wraps a reduction result, rejecting aggregates
  // that summarize zero samples.  An all-idle fleet reduces to a fabricated
  // uniform summary with total_weight == 0 (see ReduceSnapshots) — it is a
  // valid histogram, so the raw overload above would happily serve
  // Quantile(0.99) from data that does not exist.  `per_level_error` (>= 0)
  // is the caller's per-condensation error bound; the budget echoed into
  // every error bar is per_level_error * reduction.error_levels, the
  // Lemma-4.2 end-to-end accounting.
  static StatusOr<Aggregator> Create(const MergeTreeResult& reduction,
                                     double per_level_error = 0.0);

  // Per-key serving: wraps a single snapshot envelope (typically a keyed v3
  // export from a summary store, but any snapshot works) without running a
  // reduction first.  Rejects empty snapshots for the same reason the
  // reduction overload rejects zero-weight aggregates.  The echoed budget is
  // per_level_error * max(1, error_levels) — the floor matches
  // ReduceSnapshots' treatment of legacy envelopes that never set the field.
  static StatusOr<Aggregator> CreateForSnapshot(const ShardSnapshot& snapshot,
                                                double per_level_error = 0.0);

  const Histogram& histogram() const { return summary_; }
  double error_budget() const { return error_budget_; }

  // P[X <= x] under the normalized summary; 0 below the domain, 1 at and
  // above the top.  Non-decreasing in x.
  double Cdf(int64_t x) const;

  // Smallest x with Cdf(x) >= q (q clamped to [0, 1]).  Inverse of Cdf up
  // to piece resolution: Quantile(Cdf(x)) lands in x's piece.
  int64_t Quantile(double q) const;

  struct RangeMass {
    double mass = 0.0;         // summary mass of [begin, end), normalized
    double error_bound = 0.0;  // boundary-piece slack + error_budget
  };
  // Mass of the half-open range [begin, end) (clamped to the domain).
  RangeMass RangeMassQuery(int64_t begin, int64_t end) const;

 private:
  Aggregator(Histogram summary, double error_budget,
             std::vector<double> prefix_mass)
      : summary_(std::move(summary)),
        error_budget_(error_budget),
        prefix_mass_(std::move(prefix_mass)),
        total_mass_(prefix_mass_.back()) {}

  // Index of the piece containing x (x must be inside the domain).
  size_t PieceIndexOf(int64_t x) const;
  // Summary mass of [0, x), un-normalized; x clamped to [0, domain].
  double MassBelow(int64_t x) const;

  Histogram summary_;
  double error_budget_;
  std::vector<double> prefix_mass_;  // prefix_mass_[i] = mass of pieces < i
  double total_mass_;
};

}  // namespace fasthist

#endif  // FASTHIST_SERVICE_AGGREGATOR_H_
