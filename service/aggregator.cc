#include "service/aggregator.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace fasthist {

StatusOr<Aggregator> Aggregator::Create(Histogram summary,
                                        double error_budget) {
  if (summary.num_pieces() == 0) {
    return Status::Invalid("Aggregator: summary must be non-empty");
  }
  if (!(error_budget >= 0.0)) {
    return Status::Invalid("Aggregator: error_budget must be >= 0");
  }
  std::vector<double> prefix_mass;
  prefix_mass.reserve(static_cast<size_t>(summary.num_pieces()) + 1);
  prefix_mass.push_back(0.0);
  for (const HistogramPiece& piece : summary.pieces()) {
    // A distribution summary must be non-negative and finite; anything else
    // would make prefix_mass_ non-monotone and break every query's binary
    // search.  (DecodeHistogram now rejects hostile value planes at the
    // codec boundary too; this check keeps locally-constructed summaries
    // honest as well.)
    if (!(std::isfinite(piece.value) && piece.value >= 0.0)) {
      return Status::Invalid(
          "Aggregator: piece values must be finite and non-negative");
    }
    prefix_mass.push_back(prefix_mass.back() +
                          piece.value *
                              static_cast<double>(piece.interval.length()));
  }
  if (!(prefix_mass.back() > 0.0)) {
    return Status::Invalid("Aggregator: summary must carry positive mass");
  }
  return Aggregator(std::move(summary), error_budget, std::move(prefix_mass));
}

StatusOr<Aggregator> Aggregator::Create(const MergeTreeResult& reduction,
                                        double per_level_error) {
  if (!(reduction.total_weight > 0.0)) {
    return Status::Invalid(
        "Aggregator: aggregate summarizes zero samples — an idle fleet has "
        "no distribution to serve");
  }
  if (!(per_level_error >= 0.0)) {
    return Status::Invalid("Aggregator: per_level_error must be >= 0");
  }
  return Create(reduction.aggregate,
                per_level_error * static_cast<double>(reduction.error_levels));
}

StatusOr<Aggregator> Aggregator::CreateForSnapshot(const ShardSnapshot& snapshot,
                                                   double per_level_error) {
  if (snapshot.num_samples <= 0) {
    return Status::Invalid(
        "Aggregator: snapshot summarizes zero samples — nothing to serve");
  }
  if (!(per_level_error >= 0.0)) {
    return Status::Invalid("Aggregator: per_level_error must be >= 0");
  }
  auto histogram = DecodeHistogram(snapshot.encoded_histogram);
  if (!histogram.ok()) return histogram.status();
  return Create(std::move(histogram).value(),
                per_level_error *
                    static_cast<double>(std::max(1, snapshot.error_levels)));
}

size_t Aggregator::PieceIndexOf(int64_t x) const {
  const auto& pieces = summary_.pieces();
  const auto it = std::upper_bound(
      pieces.begin(), pieces.end(), x,
      [](int64_t value, const HistogramPiece& piece) {
        return value < piece.interval.begin;
      });
  return static_cast<size_t>(it - pieces.begin()) - 1;
}

double Aggregator::MassBelow(int64_t x) const {
  if (x <= 0) return 0.0;
  if (x >= summary_.domain_size()) return total_mass_;
  const size_t index = PieceIndexOf(x);
  const HistogramPiece& piece = summary_.pieces()[index];
  return prefix_mass_[index] +
         piece.value * static_cast<double>(x - piece.interval.begin);
}

double Aggregator::Cdf(int64_t x) const {
  if (x < 0) return 0.0;
  if (x >= summary_.domain_size() - 1) return 1.0;
  return std::clamp(MassBelow(x + 1) / total_mass_, 0.0, 1.0);
}

int64_t Aggregator::Quantile(double q) const {
  // Explicit clamp so NaN lands at 0 instead of flowing through std::clamp
  // (which passes NaN along) into a UB double->int64 cast below.
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * total_mass_;
  // First piece whose inclusive cumulative mass reaches the target (Create
  // guarantees prefix_mass_ is non-decreasing).  Zero-mass pieces are
  // naturally skipped: their cumulative equals their predecessor's, so
  // lower_bound lands on the earliest piece that reaches the target.
  const auto it =
      std::lower_bound(prefix_mass_.begin() + 1, prefix_mass_.end(), target);
  if (it == prefix_mass_.end()) return summary_.domain_size() - 1;
  const size_t index = static_cast<size_t>(it - prefix_mass_.begin()) - 1;
  const HistogramPiece& piece = summary_.pieces()[index];
  if (!(piece.value > 0.0)) return piece.interval.begin;
  const double need = target - prefix_mass_[index];
  // Smallest t >= 1 with piece.value * t >= need; x covers t points of the
  // piece when x = begin + t - 1.
  const int64_t steps = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(need / piece.value)), 1,
      piece.interval.length());
  return piece.interval.begin + steps - 1;
}

Aggregator::RangeMass Aggregator::RangeMassQuery(int64_t begin,
                                                 int64_t end) const {
  begin = std::clamp<int64_t>(begin, 0, summary_.domain_size());
  end = std::clamp<int64_t>(end, 0, summary_.domain_size());
  RangeMass result;
  result.error_bound = error_budget_;
  if (end <= begin) return result;
  result.mass = (MassBelow(end) - MassBelow(begin)) / total_mass_;

  // Resolution slack: for each piece the query cuts (rather than covers or
  // skips), the summary asserts only the piece's total mass, not where it
  // sits inside the piece.  The true covered share lies in [0, piece mass]
  // against our flat-split estimate, so the worst case is the larger of the
  // estimated-in and estimated-out parts.
  const auto piece_slack = [&](size_t index) {
    const HistogramPiece& piece = summary_.pieces()[index];
    const int64_t covered_begin = std::max(begin, piece.interval.begin);
    const int64_t covered_end = std::min(end, piece.interval.end);
    if (covered_begin <= piece.interval.begin &&
        covered_end >= piece.interval.end) {
      return 0.0;  // fully covered: no within-piece attribution needed
    }
    const double piece_mass =
        piece.value * static_cast<double>(piece.interval.length());
    const double covered =
        piece.value * static_cast<double>(covered_end - covered_begin);
    return std::max(covered, piece_mass - covered);
  };
  const size_t first = PieceIndexOf(begin);  // begin < end <= domain here
  const size_t last = PieceIndexOf(end - 1);
  result.error_bound += piece_slack(first) / total_mass_;
  if (last != first) result.error_bound += piece_slack(last) / total_mass_;
  return result;
}

}  // namespace fasthist
