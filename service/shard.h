#ifndef FASTHIST_SERVICE_SHARD_H_
#define FASTHIST_SERVICE_SHARD_H_

#include <cstdint>

#include "core/streaming.h"
#include "service/wire_format.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// The ingest front-end of the service layer: one ShardIngestor per shard of
// the incoming stream.  Each instance owns a StreamingHistogramBuilder (so
// memory stays O(buffer + k) per shard no matter how much it ingests) and
// exports wire-encoded snapshots for the reduction layer
// (service/merge_tree.h).  Instances are fully independent — a fleet of
// them scales ingest linearly across threads or machines; only the small
// encoded snapshots ever travel between shards.
class ShardIngestor {
 public:
  // `shard_id` is the shard's stable identity; the merge tree canonicalizes
  // snapshot order by it, which is what makes reduction arrival-order
  // invariant.  The remaining arguments are forwarded to
  // StreamingHistogramBuilder::Create.
  static StatusOr<ShardIngestor> Create(
      uint64_t shard_id, int64_t domain_size, int64_t k,
      size_t buffer_capacity, const MergingOptions& options = MergingOptions());

  uint64_t shard_id() const { return shard_id_; }
  int64_t domain_size() const { return domain_size_; }
  int64_t num_samples() const { return builder_.num_samples(); }

  // Batched ingest (bulk buffer appends, one condense+merge per full
  // buffer).  Samples must lie in [0, domain_size).  Takes a
  // pointer+length view (vectors convert implicitly), so a server can
  // ingest straight out of a network or decode buffer without copying.
  Status Ingest(Span<const int64_t> samples);

  // Wire-encoded summary of everything ingested so far.  Const: built on
  // StreamingHistogramBuilder::Peek, so exporting never flushes the buffer
  // or perturbs the summaries later ingest will produce.  Callers must
  // serialize exports against concurrent Ingest calls on the same shard —
  // this class is the simple single-writer front-end.  When many threads
  // feed one shard, or exports must run while writers keep appending, use
  // StripedShardIngestor (service/striped_ingestor.h): same snapshot
  // format, wait-free concurrent appends, and exports that never block
  // writers.
  StatusOr<ShardSnapshot> ExportSnapshot() const;

 private:
  ShardIngestor(uint64_t shard_id, int64_t domain_size,
                StreamingHistogramBuilder builder)
      : shard_id_(shard_id),
        domain_size_(domain_size),
        builder_(std::move(builder)) {}

  uint64_t shard_id_;
  int64_t domain_size_;
  StreamingHistogramBuilder builder_;
};

}  // namespace fasthist

#endif  // FASTHIST_SERVICE_SHARD_H_
