#include "service/striped_ingestor.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <utility>

#include "core/internal/merge_engine.h"
#include "service/merge_tree.h"
#include "util/padded.h"
#include "util/parallel.h"

namespace fasthist {
namespace {

// The seqlock memory-order recipe, shared by the condense (writer) and the
// cut readers below.  Every reader-visible field is an atomic, so even a
// torn read is a well-defined read of stale data that the epoch check then
// discards — there is no non-atomic data under this lock-free protocol.
//
//   writer condense:  epoch -> odd, seq_cst fence,
//                     mutate planes/window_count (relaxed stores),
//                     seq_cst fence, epoch -> even, seq_cst fence
//   reader cut:       epoch (acquire, must be even),
//                     copy planes/window (relaxed loads, count via acquire),
//                     seq_cst fence, epoch again (relaxed, must match)
//
// The fences carry the proof: a reader that observed any store the writer
// issued after one of the condense fences synchronizes with that fence
// (release-fence before the store, acquire-fence after the load), so its
// trailing epoch load is guaranteed to see the bumped epoch and retry.  The
// trailing fence after the even store extends the same argument to the
// writer's post-condense appends, which rewrite window slots outside any
// odd window.  Condenses are rare (one per buffer_capacity samples), so
// seq_cst here costs nothing measurable; the appends themselves stay
// relaxed + one release.
constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

inline uint64_t BeginStripeMutation(std::atomic<uint64_t>& epoch) {
  const uint64_t e = epoch.load(kRelaxed);  // only the owning writer bumps
  epoch.store(e + 1, kRelaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  return e;
}

inline void EndStripeMutation(std::atomic<uint64_t>& epoch, uint64_t e) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  epoch.store(e + 2, kRelaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

StatusOr<Histogram> UniformHistogram(int64_t domain_size) {
  return Histogram::Create(
      domain_size,
      {{{0, domain_size}, 1.0 / static_cast<double>(domain_size)}});
}

// One seqlock-consistent view of a stripe: the published summary pieces
// plus the buffered window prefix, as of some instant between two condenses.
struct StripeCut {
  std::vector<HistogramPiece> pieces;
  int64_t published = 0;
  std::vector<int64_t> window;
  // The builder's ladder accounting as of the same cut (see
  // StreamingHistogramBuilder::ladder_depth/ladder_slots).
  int ladder_depth = 0;
  int ladder_slots = 0;
};

// StreamingHistogramBuilder::error_levels, recomputed from a cut: the
// published planes hold the folded ladder (depth/slots describe how it was
// built), and the window copy plays the buffered remainder's role.
int CutErrorLevels(const StripeCut& cut) {
  const int sources = cut.ladder_slots + (cut.window.empty() ? 0 : 1);
  if (sources == 0) return 0;
  const int deepest = std::max(cut.ladder_depth, cut.window.empty() ? 0 : 1);
  return deepest + (sources > 1 ? 1 : 0);
}

}  // namespace

// All reader-visible state is atomic and fixed-capacity (allocated once at
// Create): the sample window, the published summary planes (piece ends as
// int64, piece values as IEEE-754 bit patterns — bits, not doubles, so
// republication is exact and the reconcile stays bit-identical), and the
// counters.  Histogram itself holds a std::vector, which must never be
// mutated under a reader — hence planes instead of a shared Histogram.
// The builder and scratch are writer-owned: only the claiming thread
// touches them, and claim hand-off (release store / CAS acquire) orders
// them across successive owners.
struct alignas(kCacheLineBytes) StripedShardIngestor::Stripe {
  Stripe(StreamingHistogramBuilder b, size_t window_capacity,
         int64_t plane_capacity)
      : builder(std::move(b)),
        window(new std::atomic<int64_t>[window_capacity]()),
        plane_ends(new std::atomic<int64_t>[plane_capacity]()),
        plane_values(new std::atomic<uint64_t>[plane_capacity]()) {
    scratch.reserve(window_capacity);
  }

  // Reader-side seqlock loop: retries until a full copy of the published
  // planes and the window prefix lands between two identical even epochs.
  StripeCut ReadCut(size_t window_capacity, int64_t plane_capacity) const;

  // --- Writer-owned (claiming thread only; handed off via claim CAS) ---
  StreamingHistogramBuilder builder;
  std::vector<int64_t> scratch;  // plain copy of the window for condense

  // --- Shared (atomic, seqlock-protected where noted) -------------------
  std::atomic<bool> claimed{false};
  std::atomic<bool> poisoned{false};  // a condense failed; stripe is dead

  // Seqlock epoch: even = stable, odd = condense republishing.  Equals
  // 2 * builder.generation() whenever stable.
  PaddedAtomic<uint64_t> epoch{};
  // Samples currently in the window; release-published per append batch.
  PaddedAtomic<int64_t> window_count{};
  // Samples folded into the published planes (builder.summarized_count()).
  PaddedAtomic<int64_t> published_count{};
  // Pieces in the published planes; 0 until the first condense.
  std::atomic<int64_t> plane_pieces{0};
  // Ladder accounting of the builder state the planes were folded from
  // (seqlock-protected like the planes; republished per condense).
  std::atomic<int32_t> ladder_depth{0};
  std::atomic<int32_t> ladder_slots{0};

  std::unique_ptr<std::atomic<int64_t>[]> window;
  std::unique_ptr<std::atomic<int64_t>[]> plane_ends;
  std::unique_ptr<std::atomic<uint64_t>[]> plane_values;
};

StripeCut StripedShardIngestor::Stripe::ReadCut(size_t window_capacity,
                                                int64_t plane_capacity) const {
  StripeCut cut;
  for (int attempt = 0;; ++attempt) {
    const uint64_t e1 = epoch.value.load(std::memory_order_acquire);
    if ((e1 & 1) == 0) {
      cut.published = published_count.value.load(kRelaxed);
      // Clamps keep even an inconsistent (soon-discarded) read in bounds.
      int64_t pieces = plane_pieces.load(kRelaxed);
      if (pieces > plane_capacity) pieces = plane_capacity;
      cut.pieces.clear();
      cut.pieces.reserve(static_cast<size_t>(pieces));
      int64_t begin = 0;
      for (int64_t p = 0; p < pieces; ++p) {
        const int64_t end = plane_ends[p].load(kRelaxed);
        const uint64_t bits = plane_values[p].load(kRelaxed);
        double value;
        std::memcpy(&value, &bits, sizeof(value));
        cut.pieces.push_back({{begin, end}, value});
        begin = end;
      }
      cut.ladder_depth = static_cast<int>(ladder_depth.load(kRelaxed));
      cut.ladder_slots = static_cast<int>(ladder_slots.load(kRelaxed));
      int64_t count = window_count.value.load(std::memory_order_acquire);
      if (count > static_cast<int64_t>(window_capacity)) {
        count = static_cast<int64_t>(window_capacity);
      }
      cut.window.clear();
      cut.window.reserve(static_cast<size_t>(count));
      for (int64_t j = 0; j < count; ++j) {
        cut.window.push_back(window[j].load(kRelaxed));
      }
      std::atomic_thread_fence(std::memory_order_seq_cst);
      const uint64_t e2 = epoch.value.load(kRelaxed);
      if (e1 == e2) return cut;  // no condense ran under us
    }
    // The stripe condensed (or was mid-condense) — rare, so be polite
    // rather than burning the writer's core.
    if (attempt >= 8) std::this_thread::yield();
  }
}

// --- Writer handle ---------------------------------------------------------

StripedShardIngestor::Writer::Writer(Writer&& other) noexcept
    : owner_(other.owner_), stripe_(other.stripe_) {
  other.owner_ = nullptr;
  other.stripe_ = -1;
}

StripedShardIngestor::Writer& StripedShardIngestor::Writer::operator=(
    Writer&& other) noexcept {
  if (this != &other) {
    Release();
    owner_ = other.owner_;
    stripe_ = other.stripe_;
    other.owner_ = nullptr;
    other.stripe_ = -1;
  }
  return *this;
}

StripedShardIngestor::Writer::~Writer() { Release(); }

void StripedShardIngestor::Writer::Release() {
  if (owner_ == nullptr) return;
  owner_->ReleaseStripe(stripe_);
  owner_ = nullptr;
  stripe_ = -1;
}

Status StripedShardIngestor::Writer::Append(Span<const int64_t> samples) {
  if (owner_ == nullptr) {
    return Status::Invalid("StripedShardIngestor: Append on a released Writer");
  }
  return owner_->AppendToStripe(*owner_->stripes_[static_cast<size_t>(stripe_)],
                                samples);
}

// --- Ingestor --------------------------------------------------------------

StripedShardIngestor::StripedShardIngestor(uint64_t shard_id,
                                           int64_t domain_size, int64_t k,
                                           size_t buffer_capacity,
                                           const MergingOptions& options)
    : shard_id_(shard_id),
      domain_size_(domain_size),
      k_(k),
      buffer_capacity_(buffer_capacity),
      options_(options) {}

StripedShardIngestor::~StripedShardIngestor() = default;

StatusOr<std::unique_ptr<StripedShardIngestor>> StripedShardIngestor::Create(
    uint64_t shard_id, int64_t domain_size, int64_t k, size_t buffer_capacity,
    const MergingOptions& options, int num_stripes) {
  if (num_stripes < 0) {
    return Status::Invalid("StripedShardIngestor: num_stripes must be >= 0");
  }
  const int stripes = num_stripes == 0 ? DefaultStripeCount() : num_stripes;
  if (stripes > 65536) {
    return Status::Invalid("StripedShardIngestor: num_stripes too large");
  }
  std::unique_ptr<StripedShardIngestor> ingestor(new StripedShardIngestor(
      shard_id, domain_size, k, buffer_capacity, options));
  ingestor->stripes_.reserve(static_cast<size_t>(stripes));
  for (int i = 0; i < stripes; ++i) {
    auto builder = StreamingHistogramBuilder::Create(domain_size, k,
                                                     buffer_capacity, options);
    if (!builder.ok()) return builder.status();
    if (i == 0) {
      // Valid knobs (the first builder vouches for them) — the engine's
      // piece bound is now well-defined and sizes every stripe's planes.
      ingestor->plane_capacity_ =
          std::min(internal::MaxSurvivingPieces(k, options), domain_size);
    }
    ingestor->stripes_.push_back(std::make_unique<Stripe>(
        std::move(builder).value(), buffer_capacity,
        ingestor->plane_capacity_));
  }
  return ingestor;
}

StatusOr<StripedShardIngestor::Writer> StripedShardIngestor::RegisterWriter() {
  for (size_t i = 0; i < stripes_.size(); ++i) {
    bool expected = false;
    if (stripes_[i]->claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel,
            std::memory_order_relaxed)) {
      return Writer(this, static_cast<int>(i));
    }
  }
  return Status::Invalid(
      "StripedShardIngestor: all stripes claimed — create with num_stripes >= "
      "the peak concurrent writer count");
}

void StripedShardIngestor::ReleaseStripe(int stripe) {
  // Release so the next claimant's CAS-acquire sees this writer's
  // builder/scratch state.
  stripes_[static_cast<size_t>(stripe)]->claimed.store(
      false, std::memory_order_release);
}

Status StripedShardIngestor::Ingest(Span<const int64_t> samples) {
  auto writer = RegisterWriter();
  if (!writer.ok()) return writer.status();
  return writer->Append(samples);  // handle releases its stripe on return
}

Status StripedShardIngestor::AppendToStripe(Stripe& stripe,
                                            Span<const int64_t> samples) {
  if (stripe.poisoned.load(kRelaxed)) {
    return Status::Invalid(
        "StripedShardIngestor: stripe poisoned by a failed condense");
  }
  const int64_t capacity = static_cast<int64_t>(buffer_capacity_);
  // Single writer per stripe: this thread's own stores are the only ones,
  // so the relaxed load is the authoritative count.
  int64_t count = stripe.window_count.value.load(kRelaxed);
  size_t i = 0;
  while (i < samples.size()) {
    const size_t space = static_cast<size_t>(capacity - count);
    const size_t take = std::min(space, samples.size() - i);
    // Store the valid prefix, then publish it with one release store — the
    // same prefix-on-error contract as StreamingHistogramBuilder::AddMany.
    size_t valid = 0;
    while (valid < take) {
      const int64_t sample = samples[i + valid];
      if (sample < 0 || sample >= domain_size_) break;
      stripe.window[static_cast<size_t>(count) + valid].store(sample, kRelaxed);
      ++valid;
    }
    count += static_cast<int64_t>(valid);
    stripe.window_count.value.store(count, std::memory_order_release);
    if (valid < take) {
      return Status::Invalid("StripedShardIngestor: sample out of domain");
    }
    i += take;
    if (count == capacity) {
      if (Status s = CondenseStripe(stripe); !s.ok()) return s;
      count = 0;
    }
  }
  return Status::Ok();
}

Status StripedShardIngestor::CondenseStripe(Stripe& stripe) {
  const uint64_t e = BeginStripeMutation(stripe.epoch.value);

  // Stage the full window through the stripe's own builder: AddMany of
  // exactly buffer_capacity in-domain samples into an empty-buffered
  // builder runs exactly one Flush, so the builder state after this line
  // is definitionally the state a serial replay of this stripe's stream
  // would have — that equality is the determinism contract's foundation.
  stripe.scratch.clear();
  for (size_t j = 0; j < buffer_capacity_; ++j) {
    stripe.scratch.push_back(stripe.window[j].load(kRelaxed));
  }
  if (Status s = stripe.builder.AddMany(stripe.scratch); !s.ok()) {
    // The builder may hold partial state now; replaying the window would
    // double-ingest.  Kill the stripe rather than guess.
    stripe.poisoned.store(true, kRelaxed);
    EndStripeMutation(stripe.epoch.value, e);
    return s;
  }

  // Publish the *folded* ladder: readers get one histogram regardless of
  // how many slots are live, so the planes stay fixed-capacity
  // (MaxSurvivingPieces bounds any MergeHistograms output) and the export's
  // FoldBufferIntoSummary over it reproduces Peek's chain bit-identically.
  auto summary = stripe.builder.CommittedSummary();
  if (!summary.ok()) {
    stripe.poisoned.store(true, kRelaxed);
    EndStripeMutation(stripe.epoch.value, e);
    return summary.status();
  }
  const auto& pieces = summary->pieces();
  for (size_t p = 0; p < pieces.size(); ++p) {
    stripe.plane_ends[p].store(pieces[p].interval.end, kRelaxed);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double), "double must be 64-bit");
    std::memcpy(&bits, &pieces[p].value, sizeof(bits));
    stripe.plane_values[p].store(bits, kRelaxed);
  }
  stripe.plane_pieces.store(summary->num_pieces(), kRelaxed);
  stripe.ladder_depth.store(stripe.builder.ladder_depth(), kRelaxed);
  stripe.ladder_slots.store(stripe.builder.ladder_slots(), kRelaxed);
  stripe.published_count.value.store(stripe.builder.summarized_count(),
                                     kRelaxed);
  stripe.window_count.value.store(0, kRelaxed);

  EndStripeMutation(stripe.epoch.value, e);
  return Status::Ok();
}

StatusOr<ShardSnapshot> StripedShardIngestor::ExportSnapshot() const {
  // Stripe-id order: the leaf order of the reconcile fold, so the result
  // depends only on the per-stripe cuts, never on thread interleaving.
  std::vector<ShardSummary> summaries;
  int64_t total = 0;
  for (const auto& stripe : stripes_) {
    StripeCut cut = stripe->ReadCut(buffer_capacity_, plane_capacity_);
    const int64_t count =
        cut.published + static_cast<int64_t>(cut.window.size());
    if (count == 0) continue;  // stripe never wrote; contributes nothing
    Histogram summary;
    if (cut.published > 0) {
      auto rebuilt = Histogram::Create(domain_size_, std::move(cut.pieces));
      if (!rebuilt.ok()) return rebuilt.status();
      summary = std::move(rebuilt).value();
    }
    if (!cut.window.empty()) {
      // The same fold Peek() runs, on our consistent copy of the stripe.
      auto folded = StreamingHistogramBuilder::FoldBufferIntoSummary(
          cut.published > 0 ? &summary : nullptr, cut.published, cut.window,
          domain_size_, k_, options_);
      if (!folded.ok()) return folded.status();
      summary = std::move(folded).value();
    }
    total += count;
    summaries.push_back(
        {std::move(summary), static_cast<double>(count), CutErrorLevels(cut)});
  }

  ShardSnapshot snapshot;
  snapshot.shard_id = shard_id_;
  snapshot.num_samples = total;
  if (summaries.empty()) {
    auto uniform = UniformHistogram(domain_size_);  // same as an empty Peek
    if (!uniform.ok()) return uniform.status();
    snapshot.error_levels = 0;  // fabricated, not condensed from samples
    snapshot.encoded_histogram = EncodeHistogram(*uniform);
    return snapshot;
  }
  // fan_in = S folds every stripe in one level, left-to-right in stripe-id
  // order: one extra merge level (kReconcileErrorLevels) and a
  // deterministic aggregate for a given sample->stripe assignment.
  MergeTreeOptions reconcile;
  reconcile.fan_in = std::max(2, static_cast<int>(summaries.size()));
  reconcile.num_threads = 1;
  reconcile.merging = options_;
  auto reduced = ReduceSummaries(std::move(summaries), k_, reconcile);
  if (!reduced.ok()) return reduced.status();
  // depth (0 or kReconcileErrorLevels) + the deepest stripe's own ladder
  // accounting — the end-to-end Lemma-4.2 count for this snapshot.
  snapshot.error_levels = reduced->error_levels;
  snapshot.encoded_histogram = EncodeHistogram(reduced->aggregate);
  return snapshot;
}

int64_t StripedShardIngestor::num_samples() const {
  int64_t total = 0;
  for (const auto& stripe : stripes_) {
    const Stripe& s = *stripe;
    for (int attempt = 0;; ++attempt) {
      const uint64_t e1 = s.epoch.value.load(std::memory_order_acquire);
      if ((e1 & 1) == 0) {
        const int64_t published = s.published_count.value.load(kRelaxed);
        const int64_t buffered = s.window_count.value.load(kRelaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        if (s.epoch.value.load(kRelaxed) == e1) {
          // Epoch-stable pair: no condense moved samples between the two
          // counters under us, so the sum never double-counts a window.
          total += published + buffered;
          break;
        }
      }
      if (attempt >= 8) std::this_thread::yield();
    }
  }
  return total;
}

}  // namespace fasthist
