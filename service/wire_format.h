#ifndef FASTHIST_SERVICE_WIRE_FORMAT_H_
#define FASTHIST_SERVICE_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dist/histogram.h"
#include "util/status.h"

namespace fasthist {

// Versioned little-endian binary codec for Histogram, plus the shard
// snapshot envelope the reduction layer consumes.  This is the service
// layer's interchange format: every byte layout is explicit (no struct
// dumping), so encodings are identical across platforms and compilers.
//
// Encoded histogram layout (version 1):
//
//   | offset | size | field                                               |
//   |--------|------|-----------------------------------------------------|
//   | 0      | 4    | magic "FHh1"                                        |
//   | 4      | 4    | version (= 1)                                       |
//   | 8      | 8    | domain_size (int64, > 0)                            |
//   | 16     | 8    | num_pieces P (int64, 1 <= P <= domain_size)         |
//   | 24     | 8*P  | piece end offsets (int64, strictly increasing,      |
//   |        |      | last == domain_size; piece i begins at end[i-1],    |
//   |        |      | piece 0 at 0, so contiguity is structural)          |
//   | 24+8P  | 8*P  | piece values (IEEE-754 double bits)                 |
//
// Encoding is total: every valid Histogram encodes.  Decoding is
// bounds-checked end to end and reports corruption — truncation, bad
// magic/version, piece-count overflow, non-monotone ends, trailing bytes,
// and non-finite or negative piece values (a hostile value plane would
// otherwise poison every merge and query downstream; densities are
// non-negative by construction, so the codec boundary rejects them) — as a
// non-OK Status, never UB or a crash.  Round-trips are exact for every
// histogram the library produces: DecodeHistogram(EncodeHistogram(h))
// reproduces the intervals and the value bits identically.

std::vector<uint8_t> EncodeHistogram(const Histogram& histogram);

StatusOr<Histogram> DecodeHistogram(const uint8_t* data, size_t size);
inline StatusOr<Histogram> DecodeHistogram(const std::vector<uint8_t>& bytes) {
  return DecodeHistogram(bytes.data(), bytes.size());
}

// One shard's exported summary: identity, merge weight, and the encoded
// histogram.  This is what travels from a ShardIngestor to the merge tree
// (service/merge_tree.h); `encoded_histogram` stays opaque bytes until the
// reducer decodes it, so snapshots can be shipped, stored, or replayed
// without the receiver trusting the sender's memory layout.
struct ShardSnapshot {
  uint64_t shard_id = 0;
  int64_t num_samples = 0;  // merge weight of this summary
  // Lemma-4.2 error levels already spent producing `encoded_histogram`
  // (condenses + merges on the shard: the builder's dyadic ladder depth
  // plus the striped reconcile, see StreamingHistogramBuilder::
  // error_levels).  The reducer adds its own tree depth on top, so
  // MergeTreeResult::error_levels stays an honest end-to-end count.
  // 0 only for a no-data snapshot (num_samples == 0).
  int error_levels = 0;
  std::vector<uint8_t> encoded_histogram;
  // Multi-tenant identity (wire version 3): when `keyed` is set the
  // snapshot summarizes one key of a keyed summary store (user / metric /
  // time bucket — see store/summary_store.h) rather than a whole shard,
  // and `key_id` names it.  Un-keyed snapshots (the only kind before v3)
  // encode as version 2 byte-identically, so every pre-store producer and
  // consumer keeps its exact bytes.  Declared last so pre-v3 aggregate
  // initializers keep their field order.
  bool keyed = false;
  uint64_t key_id = 0;
};

// Envelope layout (version 2): magic "FHs1", version (= 2), shard_id (u64),
// num_samples (int64, >= 0), error_levels (int64, >= 0), histogram blob
// size (u64), blob.  Version 3 (keyed): identical except a key_id (u64)
// field between shard_id and num_samples.  Encoding picks the version from
// `keyed` — false encodes exact v2 bytes, true v3 — and decoding accepts
// both.  Decoding validates the envelope and the embedded histogram;
// version-1 envelopes (no error_levels field) are rejected as unsupported —
// a silent default would under-report the error budget.
std::vector<uint8_t> EncodeShardSnapshot(const ShardSnapshot& snapshot);

StatusOr<ShardSnapshot> DecodeShardSnapshot(const uint8_t* data, size_t size);
inline StatusOr<ShardSnapshot> DecodeShardSnapshot(
    const std::vector<uint8_t>& bytes) {
  return DecodeShardSnapshot(bytes.data(), bytes.size());
}

}  // namespace fasthist

#endif  // FASTHIST_SERVICE_WIRE_FORMAT_H_
