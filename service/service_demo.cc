// End-to-end demo of the service layer: shard a synthetic stream over M
// ShardIngestors, export wire-encoded snapshots, reduce them in a
// deterministic merge tree, and answer quantile queries against the pooled
// ground truth.
//
//   service_demo [--shards=M] [--samples=PER_SHARD] [--fan-in=F]
//
// Exits non-zero on any service-layer error, so CI can use it as a smoke
// test of the whole shard -> merge-tree -> query dataflow.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "dist/alias_sampler.h"
#include "dist/empirical.h"
#include "service/aggregator.h"
#include "service/merge_tree.h"
#include "service/shard.h"
#include "util/random.h"
#include "util/table.h"

namespace fasthist {
namespace {

constexpr int64_t kDomain = 2000;
constexpr int64_t kK = 12;
constexpr size_t kBufferCapacity = 2048;

int64_t ParseInt(const char* text, int64_t fallback) {
  if (text == nullptr) return fallback;
  const int64_t value = std::atoll(text);
  return value > 0 ? value : fallback;
}

int Run(int argc, char** argv) {
  const int64_t num_shards =
      ParseInt(bench_util::FlagValue(argc, argv, "--shards="), 8);
  const int64_t samples_per_shard =
      ParseInt(bench_util::FlagValue(argc, argv, "--samples="), 50000);
  const int fan_in = static_cast<int>(
      ParseInt(bench_util::FlagValue(argc, argv, "--fan-in="), 4));

  auto p = NormalizeToDistribution(MakeHistDataset({kDomain, 19980607, 10,
                                                    20.0, 100.0, 1.0}));
  if (!p.ok()) {
    std::fprintf(stderr, "%s\n", p.status().message().c_str());
    return 1;
  }
  auto sampler = AliasSampler::Create(*p);
  if (!sampler.ok()) return 1;

  std::printf("service_demo: %" PRId64 " shards x %" PRId64
              " samples on [%" PRId64 "], k=%" PRId64 ", fan-in %d\n\n",
              num_shards, samples_per_shard, kDomain, kK, fan_in);

  // Ingest: one independent ShardIngestor per shard of the stream.
  std::vector<ShardSnapshot> snapshots;
  std::vector<int64_t> pooled;
  pooled.reserve(static_cast<size_t>(num_shards * samples_per_shard));
  size_t encoded_bytes = 0;
  for (int64_t shard = 0; shard < num_shards; ++shard) {
    auto ingestor = ShardIngestor::Create(static_cast<uint64_t>(shard),
                                          kDomain, kK, kBufferCapacity);
    if (!ingestor.ok()) return 1;
    Rng rng(0x5eed0000 + static_cast<uint64_t>(shard));
    const std::vector<int64_t> samples =
        sampler->SampleMany(static_cast<size_t>(samples_per_shard), &rng);
    if (!ingestor->Ingest(samples).ok()) return 1;
    pooled.insert(pooled.end(), samples.begin(), samples.end());
    auto snapshot = ingestor->ExportSnapshot();
    if (!snapshot.ok()) return 1;
    encoded_bytes += snapshot->encoded_histogram.size();
    snapshots.push_back(std::move(snapshot).value());
  }
  std::printf("ingested %zu samples; %zu snapshot bytes total (%.1f per "
              "shard)\n",
              pooled.size(), encoded_bytes,
              static_cast<double>(encoded_bytes) /
                  static_cast<double>(num_shards));

  // Reduce: deterministic fan-in tree over the snapshots.
  MergeTreeOptions tree_options;
  tree_options.fan_in = fan_in;
  auto reduced = ReduceSnapshots(snapshots, kK, tree_options);
  if (!reduced.ok()) {
    std::fprintf(stderr, "reduce: %s\n", reduced.status().message().c_str());
    return 1;
  }
  std::printf("reduced in a depth-%d tree (%" PRId64
              " merges, %d error levels): %" PRId64
              " pieces, weight %.0f\n\n",
              reduced->depth, reduced->num_merges, reduced->error_levels,
              reduced->aggregate.num_pieces(), reduced->total_weight);

  // Query: quantiles from the aggregate vs the exact pooled-sample answer.
  // The MergeTreeResult overload rejects a zero-sample aggregate, so an
  // all-idle fleet fails loudly here instead of serving fabricated numbers.
  auto aggregator = Aggregator::Create(*reduced);
  if (!aggregator.ok()) return 1;
  std::sort(pooled.begin(), pooled.end());
  TablePrinter table({"q", "served", "exact", "|diff|"});
  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    const int64_t served = aggregator->Quantile(q);
    const size_t rank = std::min(
        pooled.size() - 1,
        static_cast<size_t>(q * static_cast<double>(pooled.size())));
    const int64_t exact = pooled[rank];
    table.AddRow({TablePrinter::FormatDouble(q, 2),
                  TablePrinter::FormatInt(served),
                  TablePrinter::FormatInt(exact),
                  TablePrinter::FormatInt(std::abs(served - exact))});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace fasthist

int main(int argc, char** argv) { return fasthist::Run(argc, argv); }
