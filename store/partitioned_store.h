#ifndef FASTHIST_STORE_PARTITIONED_STORE_H_
#define FASTHIST_STORE_PARTITIONED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "service/merge_tree.h"
#include "store/summary_store.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// The key -> partition map shared by the sharded ingest server, its
// clients, and the offline replay checker: a splitmix64 finalizer over the
// key, masked down to the (power-of-two) partition count.  The finalizer
// avalanche means adjacent tenant ids spread across partitions instead of
// clustering, and the function is a pure deterministic map — which is what
// lets a client reconstruct per-partition accepted subsequences from an ACK
// without the server telling it which partition each sample went to.
inline uint32_t PartitionOfKey(uint64_t key, uint32_t num_partitions) {
  uint64_t x = key + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x & (num_partitions - 1));
}

// N independent SummaryStores behind a keyed facade: every key lives in
// exactly one partition (PartitionOfKey), so N single-threaded writers —
// one per partition — ingest with zero hot-path synchronization while the
// per-key bit-identity contract of SummaryStore carries over unchanged
// (partitioning changes which store holds a key, never the computation on
// its samples).  This is the storage side of the sharded ingest server:
// each worker loop owns partition(i) exclusively; cross-partition reads
// (MergeAllMatching) fan in through the deterministic merge tree, which is
// the paper's mergeability doing the horizontal-scaling work.
//
// The facade itself adds no locking — the caller owns the
// one-writer-per-partition discipline (the sharded server enforces it by
// construction: partition i is only touched from worker loop i).
class PartitionedSummaryStore {
 public:
  // `num_partitions` must be a power of two >= 1.
  static StatusOr<PartitionedSummaryStore> Create(
      const ArchetypeConfig& default_config, uint32_t num_partitions);

  uint32_t num_partitions() const {
    return static_cast<uint32_t>(partitions_.size());
  }
  uint32_t partition_of(uint64_t key) const {
    return PartitionOfKey(key, num_partitions());
  }

  // Direct partition access — the sharded server's worker loops go through
  // these so each partition store is touched from exactly one thread.
  SummaryStore& partition(uint32_t p) { return partitions_[p]; }
  const SummaryStore& partition(uint32_t p) const { return partitions_[p]; }

  // Serial convenience ingest: routes each sample to its partition,
  // preserving per-key arrival order (stable within each partition because
  // the split is a stable partition of the span).  The sharded server does
  // this routing itself across threads; this entry point exists for tests
  // and offline replay, where one thread plays both roles.
  Status AddBatch(Span<const KeyedSample> samples, int archetype = 0);

  Status EnsureKeys(Span<const uint64_t> keys, int archetype = 0);

  bool Contains(uint64_t key) const {
    return partitions_[partition_of(key)].Contains(key);
  }
  StatusOr<Histogram> Query(uint64_t key) const {
    return partitions_[partition_of(key)].Query(key);
  }
  StatusOr<int64_t> NumSamples(uint64_t key) const {
    return partitions_[partition_of(key)].NumSamples(key);
  }
  StatusOr<Aggregator> QueryAggregator(uint64_t key,
                                       double per_level_error = 0.0) const {
    return partitions_[partition_of(key)].QueryAggregator(key,
                                                          per_level_error);
  }
  StatusOr<ShardSnapshot> ExportKeyedSnapshot(uint64_t key,
                                              uint64_t shard_id) const {
    return partitions_[partition_of(key)].ExportKeyedSnapshot(key, shard_id);
  }

  size_t num_keys() const;
  StoreMemoryStats memory() const;

  // Cross-partition reduction: each partition reduces its matching keys
  // locally (SummaryStore::MergeAllMatching — canonical key order), then
  // the per-partition aggregates fold through ReduceSummaries in
  // partition-id order.  Both levels are deterministic trees, so the result
  // is a pure function of the store contents — bit-identical regardless of
  // which worker ingested what when.  Partitions where no matching key has
  // samples drop out (they carry no mass); if that is every partition, the
  // call is Invalid like the single-store version.
  StatusOr<MergeTreeResult> MergeAllMatching(
      const std::function<bool(uint64_t)>& pred, int64_t k,
      const MergeTreeOptions& options = MergeTreeOptions()) const;

 private:
  explicit PartitionedSummaryStore(std::vector<SummaryStore> partitions)
      : partitions_(std::move(partitions)) {}

  std::vector<SummaryStore> partitions_;
};

}  // namespace fasthist

#endif  // FASTHIST_STORE_PARTITIONED_STORE_H_
