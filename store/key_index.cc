#include "store/key_index.h"

#include <utility>

namespace fasthist {

KeyIndex::KeyIndex() : stripes_(kNumStripes) {}

// splitmix64 finalizer: full-avalanche, so sequential tenant ids (the
// common key shape) spread over stripes and probe positions alike.
uint64_t KeyIndex::Mix(uint64_t key) {
  uint64_t x = key + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

size_t KeyIndex::Probe(const Stripe& stripe, uint64_t key, uint64_t hash,
                       bool* found) {
  const size_t mask = stripe.entries.size() - 1;
  size_t index = static_cast<size_t>(hash) & mask;
  size_t first_tombstone = stripe.entries.size();  // "none seen"
  for (;;) {
    const Entry& entry = stripe.entries[index];
    if (entry.tagged == kEmptyTag) {
      *found = false;
      return first_tombstone < stripe.entries.size() ? first_tombstone : index;
    }
    if (entry.tagged == kTombstoneTag) {
      if (first_tombstone == stripe.entries.size()) first_tombstone = index;
    } else if (entry.key == key) {
      *found = true;
      return index;
    }
    index = (index + 1) & mask;
  }
}

void KeyIndex::Grow(Stripe* stripe, size_t min_live_capacity) {
  // Size for <= 2/3 live occupancy after the rehash (the probe-length /
  // bytes-per-key sweet spot for the store's 16-byte entries); tombstones
  // are dropped, so deletes never ratchet the table size upward.
  size_t capacity = kMinStripeCapacity;
  while (2 * capacity < 3 * min_live_capacity) capacity *= 2;
  std::vector<Entry> old = std::move(stripe->entries);
  stripe->entries.assign(capacity, Entry{});
  stripe->used = stripe->live;
  const size_t mask = capacity - 1;
  for (const Entry& entry : old) {
    if (entry.tagged < kPresentBit) continue;
    size_t index = static_cast<size_t>(Mix(entry.key)) & mask;
    while (stripe->entries[index].tagged != kEmptyTag) {
      index = (index + 1) & mask;
    }
    stripe->entries[index] = entry;
  }
}

uint64_t KeyIndex::Find(uint64_t key) const {
  const uint64_t hash = Mix(key);
  const Stripe& stripe = StripeOf(hash);
  if (stripe.entries.empty()) return kNotFound;
  bool found = false;
  const size_t index = Probe(stripe, key, hash, &found);
  if (!found) return kNotFound;
  return stripe.entries[index].tagged - kPresentBit;
}

bool KeyIndex::Insert(uint64_t key, uint64_t value) {
  const uint64_t hash = Mix(key);
  Stripe& stripe = StripeOf(hash);
  // Grow at 3/4 *used* (live + tombstones): the probe loop's termination
  // and speed both depend on empty slots existing.
  if (stripe.entries.empty() ||
      4 * (stripe.used + 1) > 3 * stripe.entries.size()) {
    Grow(&stripe, stripe.live + 1);
  }
  bool found = false;
  const size_t index = Probe(stripe, key, hash, &found);
  if (found) return false;
  if (stripe.entries[index].tagged == kEmptyTag) ++stripe.used;
  stripe.entries[index] = Entry{key, value | kPresentBit};
  ++stripe.live;
  ++num_live_;
  return true;
}

bool KeyIndex::Assign(uint64_t key, uint64_t value) {
  const uint64_t hash = Mix(key);
  Stripe& stripe = StripeOf(hash);
  if (stripe.entries.empty()) return false;
  bool found = false;
  const size_t index = Probe(stripe, key, hash, &found);
  if (!found) return false;
  stripe.entries[index].tagged = value | kPresentBit;
  return true;
}

bool KeyIndex::Erase(uint64_t key) {
  const uint64_t hash = Mix(key);
  Stripe& stripe = StripeOf(hash);
  if (stripe.entries.empty()) return false;
  bool found = false;
  const size_t index = Probe(stripe, key, hash, &found);
  if (!found) return false;
  stripe.entries[index].tagged = kTombstoneTag;
  --stripe.live;
  --num_live_;
  return true;
}

void KeyIndex::Reserve(size_t num_keys) {
  // Even split plus slack: the splitmix64 spread over 64 stripes is close
  // enough to uniform that +1/8 headroom keeps every stripe under its grow
  // threshold at the target size.
  const size_t per_stripe =
      num_keys / kNumStripes + num_keys / (8 * kNumStripes) + 1;
  for (Stripe& stripe : stripes_) {
    if (2 * stripe.entries.size() < 3 * per_stripe) Grow(&stripe, per_stripe);
  }
}

size_t KeyIndex::memory_bytes() const {
  size_t bytes = stripes_.capacity() * sizeof(Stripe);
  for (const Stripe& stripe : stripes_) {
    bytes += stripe.entries.capacity() * sizeof(Entry);
  }
  return bytes;
}

}  // namespace fasthist
