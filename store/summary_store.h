#ifndef FASTHIST_STORE_SUMMARY_STORE_H_
#define FASTHIST_STORE_SUMMARY_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "dist/histogram.h"
#include "service/aggregator.h"
#include "service/merge_tree.h"
#include "service/wire_format.h"
#include "store/archetype_pool.h"
#include "store/key_index.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// One keyed observation: `value` joins the streaming summary of `key`.
struct KeyedSample {
  uint64_t key = 0;
  int64_t value = 0;
};

// What the store's memory goes to, measured from its own bookkeeping (heap
// bytes of every plane, table, and vector it owns — resident pages are the
// bench's job to compare against).
struct StoreMemoryStats {
  size_t total_bytes = 0;
  size_t payload_bytes = 0;  // windows + occupied ladder slices (live keys)
  // Vacant carry slices of live keys' allocated ladder planes — the dyadic
  // ladder's between-carries emptiness (ArchetypePool::MemoryStats).  Scales
  // with ladder depth, not key count, so it is reported apart from the
  // per-key overhead the multi-tenancy budget gates.
  size_t ladder_slack_bytes = 0;
  size_t index_bytes = 0;     // key -> slot table
  size_t metadata_bytes = 0;  // everything else: per-slot planes, freelists
  size_t num_keys = 0;

  // The multi-tenancy budget (<= 150 at a million keys, bench-gated):
  // bytes per live key beyond the summary payload and its ladder slack —
  // i.e. what the *store* charges a key (index entry, slot bookkeeping,
  // amortized chunk headers, freelist capacity).
  double overhead_bytes_per_key() const {
    if (num_keys == 0) return 0.0;
    return static_cast<double>(total_bytes - payload_bytes -
                               ladder_slack_bytes) /
           static_cast<double>(num_keys);
  }
};

// Millions of keyed streaming summaries behind one map: tenant/metric keys
// index into archetype pools (store/archetype_pool.h) whose SoA slabs hold
// every per-key ladder with no per-key heap objects at all.  Each key's
// summary is bit-identical to a standalone StreamingHistogramBuilder fed
// that key's subsequence — the store changes the *layout* of the
// computation, never the computation (property-tested, serial and
// threaded).
//
// Ingest is batched: AddBatch groups a span of (key, value) pairs by key
// (preserving per-key arrival order) and pays one index probe and one slab
// touch per distinct key, not per sample.  Bulk read-side ops — merge all
// keys matching a predicate, group-by rollups, top-k — sweep the slabs
// chunk-major and reduce through the deterministic merge tree, so their
// outputs are bit-identical regardless of insertion history (canonical key
// order) and thread count.
//
// Concurrency: mutating entry points are serial by default, with one
// carve-out for ingest — concurrent AddBatch calls are safe iff their key
// sets are disjoint and every key already exists (created beforehand via
// EnsureKeys, Add, or an earlier batch).  In that regime no index or slot
// mutation happens; writers touch disjoint plane slices only (the pool's
// carve-out), which TSan-backed tests exercise.  Reads (Query and friends)
// require no concurrent writer of the same key.
class SummaryStore {
 public:
  // `default_config` becomes archetype 0, the one Add/AddBatch use unless
  // told otherwise.
  static StatusOr<SummaryStore> Create(const ArchetypeConfig& default_config);

  // Registers (or finds, see SameArchetype) a summary shape; returns its
  // archetype id.  Keys of different archetypes coexist in one store and
  // one index — only their slabs are segregated.
  StatusOr<int> RegisterArchetype(const ArchetypeConfig& config);
  const ArchetypeConfig& archetype_config(int archetype) const {
    return pools_[static_cast<size_t>(archetype)].config();
  }

  // Batched keyed ingest.  Samples of one key are appended in span order;
  // keys not yet present are created in `archetype`'s pool.  A key that
  // exists under a different archetype, or an out-of-domain value, fails
  // the batch — samples of earlier groups (and the failing key's valid
  // prefix) stay ingested, mirroring AddMany's valid-prefix contract.
  Status AddBatch(Span<const KeyedSample> samples, int archetype = 0);

  // Single-sample convenience (same semantics as a one-element batch).
  Status Add(uint64_t key, int64_t value, int archetype = 0);

  // Creates any missing keys (empty summaries) in `archetype`'s pool — the
  // serial set-up step that makes subsequent disjoint-key AddBatch calls
  // safe to run concurrently.
  Status EnsureKeys(Span<const uint64_t> keys, int archetype = 0);

  // Drops the key and recycles its slab slot (LIFO, so churn reuses warm
  // slots instead of growing the slabs — stress-tested).
  Status Erase(uint64_t key);

  bool Contains(uint64_t key) const {
    return index_.Find(key) != KeyIndex::kNotFound;
  }
  size_t num_keys() const { return index_.size(); }

  // Per-key reads: the key's current summary (the StreamingHistogramBuilder
  // Peek fold — uniform when the key exists but has no samples), its sample
  // count, and the Lemma-4.2 error levels of that summary.
  StatusOr<Histogram> Query(uint64_t key) const;
  StatusOr<int64_t> NumSamples(uint64_t key) const;
  StatusOr<int> ErrorLevels(uint64_t key) const;

  // Per-key serving: an Aggregator over the key's summary with error budget
  // per_level_error * error_levels (rejects keys with no samples, like
  // Aggregator::CreateForSnapshot).
  StatusOr<Aggregator> QueryAggregator(uint64_t key,
                                       double per_level_error = 0.0) const;

  // Per-key export: a keyed (wire v3) snapshot envelope, `key` as key_id.
  // Feeds the same merge trees and aggregators as whole-shard snapshots.
  StatusOr<ShardSnapshot> ExportKeyedSnapshot(uint64_t key,
                                              uint64_t shard_id) const;

  // --- Bulk cross-key operations ------------------------------------------
  //
  // All three sweep the slabs chunk-major, order keys canonically, skip
  // keys with zero samples, and (for the reductions) require every
  // participating key to share one domain.  `k` is the output summary's
  // pieces knob; `options` shapes the reduction tree.

  // Reduces every key with pred(key) true into one aggregate.
  StatusOr<MergeTreeResult> MergeAllMatching(
      const std::function<bool(uint64_t)>& pred, int64_t k,
      const MergeTreeOptions& options = MergeTreeOptions()) const;

  // Reduces keys sharing group_of(key) into one aggregate per group;
  // results are ordered by group id.
  StatusOr<std::vector<std::pair<uint64_t, MergeTreeResult>>> GroupByRollup(
      const std::function<uint64_t(uint64_t)>& group_of, int64_t k,
      const MergeTreeOptions& options = MergeTreeOptions()) const;

  // The n keys with the most samples, heaviest first (ties: smaller key
  // first, so the answer is insertion-order invariant).
  std::vector<std::pair<uint64_t, int64_t>> TopKHeaviest(size_t n) const;

  // Pre-sizes the index and archetype-0 slabs so a bulk load of `n` keys
  // never rehashes or chunk-allocates mid-ingest.
  Status ReserveKeys(size_t n);

  StoreMemoryStats memory() const;

 private:
  explicit SummaryStore(ArchetypePool default_pool);

  // Index values pack (archetype, pool ref): archetype in bits [48, 63),
  // the pool's (chunk, slot) ref below.
  static uint64_t PackValue(int archetype, uint64_t pool_ref) {
    return (static_cast<uint64_t>(archetype) << 48) | pool_ref;
  }
  static int ArchetypeOf(uint64_t value) {
    return static_cast<int>(value >> 48);
  }
  static uint64_t PoolRefOf(uint64_t value) {
    return value & ((uint64_t{1} << 48) - 1);
  }

  // (archetype, ref) of an existing key, or Invalid.
  StatusOr<uint64_t> FindValue(uint64_t key) const;
  // Finds or creates the key in `archetype`'s pool.
  StatusOr<uint64_t> FindOrCreateValue(uint64_t key, int archetype);

  // Canonically-ordered (key, summary) sweep of keys passing `pred`.
  Status CollectSummaries(
      const std::function<bool(uint64_t)>& pred,
      std::vector<std::pair<uint64_t, ShardSummary>>* out) const;

  KeyIndex index_;
  std::vector<ArchetypePool> pools_;  // index = archetype id
};

}  // namespace fasthist

#endif  // FASTHIST_STORE_SUMMARY_STORE_H_
