#include "store/summary_store.h"

#include <algorithm>
#include <numeric>

namespace fasthist {

StatusOr<SummaryStore> SummaryStore::Create(
    const ArchetypeConfig& default_config) {
  auto pool = ArchetypePool::Create(default_config);
  if (!pool.ok()) return pool.status();
  return SummaryStore(std::move(pool).value());
}

SummaryStore::SummaryStore(ArchetypePool default_pool) {
  pools_.push_back(std::move(default_pool));
}

StatusOr<int> SummaryStore::RegisterArchetype(const ArchetypeConfig& config) {
  for (size_t i = 0; i < pools_.size(); ++i) {
    if (SameArchetype(pools_[i].config(), config)) return static_cast<int>(i);
  }
  // 15 bits of archetype in the packed index value; a store with 32k
  // distinct summary shapes has lost the plot anyway.
  if (pools_.size() >= (size_t{1} << 15)) {
    return Status::Invalid("SummaryStore: too many archetypes");
  }
  auto pool = ArchetypePool::Create(config);
  if (!pool.ok()) return pool.status();
  pools_.push_back(std::move(pool).value());
  return static_cast<int>(pools_.size() - 1);
}

StatusOr<uint64_t> SummaryStore::FindValue(uint64_t key) const {
  const uint64_t value = index_.Find(key);
  if (value == KeyIndex::kNotFound) {
    return Status::Invalid("SummaryStore: key not present");
  }
  return value;
}

StatusOr<uint64_t> SummaryStore::FindOrCreateValue(uint64_t key,
                                                   int archetype) {
  if (archetype < 0 || static_cast<size_t>(archetype) >= pools_.size()) {
    return Status::Invalid("SummaryStore: unknown archetype");
  }
  const uint64_t existing = index_.Find(key);
  if (existing != KeyIndex::kNotFound) {
    if (ArchetypeOf(existing) != archetype) {
      return Status::Invalid(
          "SummaryStore: key exists under a different archetype");
    }
    return existing;
  }
  auto ref = pools_[static_cast<size_t>(archetype)].AllocateSlot(key);
  if (!ref.ok()) return ref.status();
  const uint64_t value = PackValue(archetype, *ref);
  index_.Insert(key, value);
  return value;
}

Status SummaryStore::AddBatch(Span<const KeyedSample> samples, int archetype) {
  if (samples.empty()) return Status::Ok();
  // Group by key with a stable sort of indices: one index probe and one
  // Append per distinct key, with each key's samples kept in span order —
  // the bit-identity contract (the summary must match a per-sample replay).
  std::vector<uint32_t> order(samples.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&samples](uint32_t a, uint32_t b) {
                     return samples[a].key < samples[b].key;
                   });
  std::vector<int64_t> scratch;
  size_t group_begin = 0;
  while (group_begin < order.size()) {
    const uint64_t key = samples[order[group_begin]].key;
    size_t group_end = group_begin + 1;
    while (group_end < order.size() &&
           samples[order[group_end]].key == key) {
      ++group_end;
    }
    scratch.clear();
    scratch.reserve(group_end - group_begin);
    for (size_t i = group_begin; i < group_end; ++i) {
      scratch.push_back(samples[order[i]].value);
    }
    auto value = FindOrCreateValue(key, archetype);
    if (!value.ok()) return value.status();
    if (Status s = pools_[static_cast<size_t>(ArchetypeOf(*value))].Append(
            PoolRefOf(*value), scratch);
        !s.ok()) {
      return s;
    }
    group_begin = group_end;
  }
  return Status::Ok();
}

Status SummaryStore::Add(uint64_t key, int64_t value, int archetype) {
  auto packed = FindOrCreateValue(key, archetype);
  if (!packed.ok()) return packed.status();
  const int64_t sample[] = {value};
  return pools_[static_cast<size_t>(ArchetypeOf(*packed))].Append(
      PoolRefOf(*packed), sample);
}

Status SummaryStore::EnsureKeys(Span<const uint64_t> keys, int archetype) {
  for (size_t i = 0; i < keys.size(); ++i) {
    if (auto value = FindOrCreateValue(keys[i], archetype); !value.ok()) {
      return value.status();
    }
  }
  return Status::Ok();
}

Status SummaryStore::Erase(uint64_t key) {
  auto value = FindValue(key);
  if (!value.ok()) return value.status();
  if (Status s = pools_[static_cast<size_t>(ArchetypeOf(*value))].ReleaseSlot(
          PoolRefOf(*value));
      !s.ok()) {
    return s;
  }
  index_.Erase(key);
  return Status::Ok();
}

StatusOr<Histogram> SummaryStore::Query(uint64_t key) const {
  auto value = FindValue(key);
  if (!value.ok()) return value.status();
  return pools_[static_cast<size_t>(ArchetypeOf(*value))].Query(
      PoolRefOf(*value));
}

StatusOr<int64_t> SummaryStore::NumSamples(uint64_t key) const {
  auto value = FindValue(key);
  if (!value.ok()) return value.status();
  return pools_[static_cast<size_t>(ArchetypeOf(*value))].NumSamples(
      PoolRefOf(*value));
}

StatusOr<int> SummaryStore::ErrorLevels(uint64_t key) const {
  auto value = FindValue(key);
  if (!value.ok()) return value.status();
  return pools_[static_cast<size_t>(ArchetypeOf(*value))].ErrorLevels(
      PoolRefOf(*value));
}

StatusOr<Aggregator> SummaryStore::QueryAggregator(
    uint64_t key, double per_level_error) const {
  auto value = FindValue(key);
  if (!value.ok()) return value.status();
  const ArchetypePool& pool = pools_[static_cast<size_t>(ArchetypeOf(*value))];
  const uint64_t ref = PoolRefOf(*value);
  if (pool.NumSamples(ref) <= 0) {
    return Status::Invalid(
        "SummaryStore: key has no samples — nothing to serve");
  }
  if (!(per_level_error >= 0.0)) {
    return Status::Invalid("SummaryStore: per_level_error must be >= 0");
  }
  auto histogram = pool.Query(ref);
  if (!histogram.ok()) return histogram.status();
  return Aggregator::Create(
      std::move(histogram).value(),
      per_level_error * static_cast<double>(std::max(1, pool.ErrorLevels(ref))));
}

StatusOr<ShardSnapshot> SummaryStore::ExportKeyedSnapshot(
    uint64_t key, uint64_t shard_id) const {
  auto value = FindValue(key);
  if (!value.ok()) return value.status();
  const ArchetypePool& pool = pools_[static_cast<size_t>(ArchetypeOf(*value))];
  const uint64_t ref = PoolRefOf(*value);
  auto histogram = pool.Query(ref);
  if (!histogram.ok()) return histogram.status();
  ShardSnapshot snapshot;
  snapshot.shard_id = shard_id;
  snapshot.keyed = true;
  snapshot.key_id = key;
  snapshot.num_samples = pool.NumSamples(ref);
  snapshot.error_levels = pool.ErrorLevels(ref);
  snapshot.encoded_histogram = EncodeHistogram(*histogram);
  return snapshot;
}

Status SummaryStore::CollectSummaries(
    const std::function<bool(uint64_t)>& pred,
    std::vector<std::pair<uint64_t, ShardSummary>>* out) const {
  Status status = Status::Ok();
  for (const ArchetypePool& pool : pools_) {
    pool.ForEachLiveSlot([&](uint64_t ref, uint64_t key) {
      if (!status.ok() || !pred(key)) return;
      const int64_t num_samples = pool.NumSamples(ref);
      if (num_samples == 0) return;  // empty summaries carry no mass
      auto histogram = pool.Query(ref);
      if (!histogram.ok()) {
        status = histogram.status();
        return;
      }
      out->emplace_back(
          key, ShardSummary{std::move(histogram).value(),
                            static_cast<double>(num_samples),
                            std::max(1, pool.ErrorLevels(ref))});
    });
    if (!status.ok()) return status;
  }
  // Canonical leaf order: the reduction must not depend on slab placement
  // (allocation history), only on the key set.
  std::sort(out->begin(), out->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return status;
}

StatusOr<MergeTreeResult> SummaryStore::MergeAllMatching(
    const std::function<bool(uint64_t)>& pred, int64_t k,
    const MergeTreeOptions& options) const {
  std::vector<std::pair<uint64_t, ShardSummary>> matched;
  if (Status s = CollectSummaries(pred, &matched); !s.ok()) return s;
  if (matched.empty()) {
    return Status::Invalid("SummaryStore: no matching key has samples");
  }
  std::vector<ShardSummary> summaries;
  summaries.reserve(matched.size());
  for (auto& entry : matched) summaries.push_back(std::move(entry.second));
  return ReduceSummaries(std::move(summaries), k, options);
}

StatusOr<std::vector<std::pair<uint64_t, MergeTreeResult>>>
SummaryStore::GroupByRollup(const std::function<uint64_t(uint64_t)>& group_of,
                            int64_t k, const MergeTreeOptions& options) const {
  std::vector<std::pair<uint64_t, ShardSummary>> all;
  if (Status s = CollectSummaries([](uint64_t) { return true; }, &all);
      !s.ok()) {
    return s;
  }
  // Stable re-sort by (group, key): groups become contiguous runs and the
  // leaf order within each run stays canonical.
  std::vector<std::pair<uint64_t, size_t>> grouped(all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    grouped[i] = {group_of(all[i].first), i};
  }
  std::stable_sort(grouped.begin(), grouped.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::pair<uint64_t, MergeTreeResult>> results;
  size_t run_begin = 0;
  while (run_begin < grouped.size()) {
    const uint64_t group = grouped[run_begin].first;
    size_t run_end = run_begin + 1;
    while (run_end < grouped.size() && grouped[run_end].first == group) {
      ++run_end;
    }
    std::vector<ShardSummary> summaries;
    summaries.reserve(run_end - run_begin);
    for (size_t i = run_begin; i < run_end; ++i) {
      summaries.push_back(std::move(all[grouped[i].second].second));
    }
    auto reduced = ReduceSummaries(std::move(summaries), k, options);
    if (!reduced.ok()) return reduced.status();
    results.emplace_back(group, std::move(reduced).value());
    run_begin = run_end;
  }
  return results;
}

std::vector<std::pair<uint64_t, int64_t>> SummaryStore::TopKHeaviest(
    size_t n) const {
  std::vector<std::pair<uint64_t, int64_t>> weights;
  for (const ArchetypePool& pool : pools_) {
    pool.ForEachLiveSlot([&](uint64_t ref, uint64_t key) {
      const int64_t num_samples = pool.NumSamples(ref);
      if (num_samples > 0) weights.emplace_back(key, num_samples);
    });
  }
  const auto heavier = [](const std::pair<uint64_t, int64_t>& a,
                          const std::pair<uint64_t, int64_t>& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  };
  if (weights.size() > n) {
    std::nth_element(weights.begin(),
                     weights.begin() + static_cast<ptrdiff_t>(n),
                     weights.end(), heavier);
    weights.resize(n);
  }
  std::sort(weights.begin(), weights.end(), heavier);
  return weights;
}

Status SummaryStore::ReserveKeys(size_t n) {
  index_.Reserve(n);
  return pools_[0].ReserveSlots(n);
}

StoreMemoryStats SummaryStore::memory() const {
  StoreMemoryStats stats;
  stats.num_keys = index_.size();
  stats.index_bytes = index_.memory_bytes();
  size_t pool_total = 0;
  for (const ArchetypePool& pool : pools_) {
    const ArchetypePool::MemoryStats pool_stats = pool.memory();
    pool_total += pool_stats.total_bytes;
    stats.payload_bytes += pool_stats.payload_bytes;
    stats.ladder_slack_bytes += pool_stats.slack_bytes;
  }
  stats.total_bytes = stats.index_bytes + pool_total +
                      pools_.capacity() * sizeof(ArchetypePool);
  stats.metadata_bytes = stats.total_bytes - stats.index_bytes -
                         stats.payload_bytes - stats.ladder_slack_bytes;
  return stats;
}

}  // namespace fasthist
