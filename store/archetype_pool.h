#ifndef FASTHIST_STORE_ARCHETYPE_POOL_H_
#define FASTHIST_STORE_ARCHETYPE_POOL_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/merging.h"
#include "dist/histogram.h"
#include "util/span.h"
#include "util/status.h"

namespace fasthist {

// The shape shared by every summary in one pool: all per-slot plane sizes
// are functions of these fields, which is what lets thousands of keyed
// ladders share slabs with zero per-key headers.
struct ArchetypeConfig {
  int64_t domain_size = 1024;
  // Pieces knob of every condense and merge (summaries have ~2k+1 pieces).
  int64_t k = 8;
  // Piecewise-polynomial degree, reserved for the poly/ layer: only 0
  // (flat histogram summaries) is implemented; the field exists so configs
  // written today stay forward-compatible with a poly-backed pool.
  int degree = 0;
  // Per-key buffer: samples accumulate here and are condensed into the
  // slot's dyadic ladder one full window at a time (the
  // StreamingHistogramBuilder buffer_capacity, per key).
  size_t window_capacity = 64;
  // delta/gamma/num_threads applied to every condense and merge.
  MergingOptions options;
};

// Archetype identity: two configs that produce bit-identical summaries from
// the same samples are the same archetype.  num_threads is deliberately
// ignored — the engine is thread-invariant, so it is a run knob, not an
// identity bit.
bool SameArchetype(const ArchetypeConfig& a, const ArchetypeConfig& b);

// A pool of fixed-shape summary slots for one archetype, laid out as
// structure-of-arrays slabs (ECS style): a chunk owns kSlotsPerChunk slots,
// and each logical field of "a streaming builder" lives in its own
// contiguous plane — sample windows, window lengths, summarized counts,
// liveness, and one (ends, values, piece_count, count) plane set per ladder
// level, allocated lazily the first time any slot in the chunk carries that
// deep.  Per-key state is therefore pure array slices: no Histogram, no
// std::vector, no heap object per key — the entire per-key overhead beyond
// the payload planes is one index entry plus this pool's amortized chunk
// bookkeeping.
//
// Every slot runs the *same* ladder computation as a standalone
// StreamingHistogramBuilder — Append mirrors AddMany (valid-prefix
// semantics included), the commit/fold steps are the shared
// streaming_ladder hooks — so a slot's Query is bit-identical to a builder
// fed the same per-key subsequence (property-tested).
//
// Concurrency: structurally serial, with one carve-out the summary store's
// batched ingest contract relies on — concurrent Append/Query on *distinct
// slots* is safe provided no slot is concurrently allocated or released.
// Distinct slots touch disjoint plane slices, and the only shared mutation,
// growing a chunk's lazy ladder by one level plane, is published by
// compare-and-swap so concurrent deepeners agree on one plane.
class ArchetypePool {
 public:
  static constexpr size_t kSlotsPerChunk = 256;
  // A level ladder this deep summarizes 2^40 windows; the fixed array is an
  // address-stability requirement (concurrent readers hold plane pointers),
  // not a memory cost — vacant levels are null.
  static constexpr int kMaxLadderLevels = 40;

  static StatusOr<ArchetypePool> Create(const ArchetypeConfig& config);

  ArchetypePool(ArchetypePool&&) = default;
  ArchetypePool& operator=(ArchetypePool&&) = default;

  const ArchetypeConfig& config() const { return config_; }
  // Pieces capacity of one ladder-slot slice: every engine output fits
  // (internal::MaxSurvivingPieces, clamped by the domain).
  int64_t piece_capacity() const { return piece_capacity_; }

  // Slot lifecycle (serial contexts only).  AllocateSlot reuses the
  // youngest released slot first (LIFO keeps the hot end of the freelist
  // cache-resident), else bump-allocates, growing by one chunk when full.
  // The returned ref packs (chunk, slot); `key` is stamped into the slot's
  // key plane for reverse lookup during sweeps.
  StatusOr<uint64_t> AllocateSlot(uint64_t key);
  // Vacates the slot (window, ladder occupancy, counters) and recycles it.
  // The planes stay allocated — a workload that churns keys reuses slabs
  // instead of growing them (stress-tested).
  Status ReleaseSlot(uint64_t ref);

  // Appends samples to the slot's window, condensing into its ladder one
  // full window at a time.  Same semantics as
  // StreamingHistogramBuilder::AddMany, per slot.
  Status Append(uint64_t ref, Span<const int64_t> values);

  // The slot's current summary — the same read-side fold as
  // StreamingHistogramBuilder::Peek (uniform when empty).
  StatusOr<Histogram> Query(uint64_t ref) const;

  int64_t NumSamples(uint64_t ref) const;
  // Lemma-4.2 error levels of the summary Query returns now (the
  // streaming_ladder::ErrorLevels convention).
  int ErrorLevels(uint64_t ref) const;
  uint64_t KeyOf(uint64_t ref) const;

  size_t num_live_slots() const { return num_live_; }

  // Pre-allocates chunks for `num_slots` total slots.
  Status ReserveSlots(size_t num_slots);

  struct MemoryStats {
    size_t total_bytes = 0;    // all plane + bookkeeping heap bytes
    size_t payload_bytes = 0;  // live slots' window + occupied ladder slices
    // Vacant carry slices of live slots: levels a slot's ladder has grown
    // past but holds no pieces in right now (16 windows = binary 10000
    // occupies level 4 only, levels 0-3 sit empty between carries).  A
    // structural cost of the dyadic ladder itself — it scales with depth,
    // not with key count — so it is accounted apart from both the payload
    // and the per-key store tax.
    size_t slack_bytes = 0;
  };
  MemoryStats memory() const;

  // Enumerates live slots as (ref, key), chunk-major (= allocation order).
  template <typename Fn>
  void ForEachLiveSlot(Fn&& fn) const {
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const Chunk& chunk = *chunks_[c];
      for (size_t s = 0; s < kSlotsPerChunk; ++s) {
        if (chunk.live[s]) fn(PackRef(c, s), chunk.key[s]);
      }
    }
  }

 private:
  // One ladder level's planes for a whole chunk: slot s owns
  // [s * piece_capacity, (s+1) * piece_capacity) of ends/values and entry s
  // of piece_count/count.  count == 0 means vacant (matching the
  // streaming_ladder Storage concept).
  struct LevelPlane {
    std::vector<int64_t> ends;
    std::vector<double> values;
    std::vector<int32_t> piece_count;
    std::vector<int64_t> count;
  };

  struct Chunk {
    std::vector<int64_t> window;      // kSlotsPerChunk * window_capacity
    std::vector<int32_t> window_len;  // per slot
    std::vector<int64_t> summarized;  // per slot
    std::vector<uint64_t> key;        // per slot
    std::vector<uint8_t> live;        // per slot
    // Lazily-deepened ladder: levels[L] is null until some slot commits at
    // depth L.  Publication is CAS on the pointer, then a release bump of
    // num_levels; readers acquire num_levels and only then dereference.
    std::array<std::atomic<LevelPlane*>, kMaxLadderLevels> levels{};
    std::atomic<int> num_levels{0};

    ~Chunk() {
      for (auto& level : levels) delete level.load(std::memory_order_relaxed);
    }
  };

  struct SlotLadder;  // streaming_ladder Storage adapter, in the .cc

  explicit ArchetypePool(const ArchetypeConfig& config);

  static uint64_t PackRef(size_t chunk, size_t slot) {
    return (static_cast<uint64_t>(chunk) << 16) | static_cast<uint64_t>(slot);
  }
  static size_t ChunkOf(uint64_t ref) { return static_cast<size_t>(ref >> 16); }
  static size_t SlotOf(uint64_t ref) {
    return static_cast<size_t>(ref & 0xffff);
  }

  Status AddChunk();
  Status FlushWindow(Chunk& chunk, size_t slot);

  ArchetypeConfig config_;
  int64_t piece_capacity_ = 0;
  // unique_ptr per chunk: plane addresses must survive chunks_ growing
  // (concurrent Appends to older chunks hold slices into them).
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<uint64_t> free_slots_;  // packed refs, LIFO
  size_t next_unused_ = 0;            // bump cursor: slots never yet handed out
  size_t num_live_ = 0;
};

}  // namespace fasthist

#endif  // FASTHIST_STORE_ARCHETYPE_POOL_H_
