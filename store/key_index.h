#ifndef FASTHIST_STORE_KEY_INDEX_H_
#define FASTHIST_STORE_KEY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fasthist {

// Two-level open-addressing map from a 64-bit key to a 63-bit slot
// reference, tuned for the summary store's "millions of keys, 16 bytes of
// index overhead each" budget.  Level one is a fixed fan-out of 64 stripes
// selected by the top hash bits; level two is linear probing inside the
// stripe's own power-of-two table.  Striping keeps every rehash local —
// growing one stripe moves 1/64th of the keys, so insert latency stays flat
// while the store fills — and gives concurrent *readers* of disjoint keys
// unrelated cache lines to walk.
//
// Concurrency contract (the store's, restated): Find is const and safe to
// call from many threads only while no thread mutates; Insert/Erase/Reserve
// require external serialization.  Entries are plain 16-byte structs — no
// per-entry atomics, because the store's concurrent phase never mutates the
// index (keys are created serially up front, see SummaryStore::AddBatch).
class KeyIndex {
 public:
  // Returned by Find when the key is absent.  Valid stored values are
  // < 2^63 (the top bit is the internal presence tag), which the packed
  // (archetype, chunk, slot) refs satisfy by construction.
  static constexpr uint64_t kNotFound = ~0ull;

  KeyIndex();

  // The stored value for `key`, or kNotFound.
  uint64_t Find(uint64_t key) const;

  // Inserts key -> value.  Returns false (and stores nothing) if the key is
  // already present; `value` must be < 2^63.
  bool Insert(uint64_t key, uint64_t value);

  // Replaces the value of an existing key; returns false if absent.
  bool Assign(uint64_t key, uint64_t value);

  // Tombstones the key.  Returns false if absent.
  bool Erase(uint64_t key);

  size_t size() const { return num_live_; }

  // Pre-sizes every stripe for `num_keys` total keys so the fill phase
  // never rehashes.
  void Reserve(size_t num_keys);

  // Heap bytes held by the stripe tables (the index's whole footprint).
  size_t memory_bytes() const;

  // Enumerates live (key, value) pairs in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Stripe& stripe : stripes_) {
      for (const Entry& entry : stripe.entries) {
        if (entry.tagged >= kPresentBit) fn(entry.key, entry.tagged - kPresentBit);
      }
    }
  }

 private:
  // 16 bytes flat: the key plus the value with the entry state folded into
  // `tagged` — 0 empty, 1 tombstone, bit 63 set means present and the low
  // 63 bits are the stored value (hence the < 2^63 value contract).
  static constexpr uint64_t kEmptyTag = 0;
  static constexpr uint64_t kTombstoneTag = 1;
  static constexpr uint64_t kPresentBit = uint64_t{1} << 63;

  struct Entry {
    uint64_t key = 0;
    uint64_t tagged = kEmptyTag;
  };

  struct Stripe {
    std::vector<Entry> entries;  // power-of-two size (or empty)
    size_t live = 0;             // kPresent entries
    size_t used = 0;             // kPresent + kTombstone entries
  };

  static constexpr int kStripeBits = 6;
  static constexpr size_t kNumStripes = size_t{1} << kStripeBits;
  static constexpr size_t kMinStripeCapacity = 16;

  static uint64_t Mix(uint64_t key);
  Stripe& StripeOf(uint64_t hash) {
    return stripes_[hash >> (64 - kStripeBits)];
  }
  const Stripe& StripeOf(uint64_t hash) const {
    return stripes_[hash >> (64 - kStripeBits)];
  }
  // Index of the key's entry, or of the slot an insert should take
  // (first tombstone on the probe path, else the empty that ended it).
  static size_t Probe(const Stripe& stripe, uint64_t key, uint64_t hash,
                      bool* found);
  static void Grow(Stripe* stripe, size_t min_live_capacity);

  std::vector<Stripe> stripes_;
  size_t num_live_ = 0;
};

}  // namespace fasthist

#endif  // FASTHIST_STORE_KEY_INDEX_H_
