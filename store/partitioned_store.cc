#include "store/partitioned_store.h"

#include <utility>

namespace fasthist {

StatusOr<PartitionedSummaryStore> PartitionedSummaryStore::Create(
    const ArchetypeConfig& default_config, uint32_t num_partitions) {
  if (num_partitions == 0 ||
      (num_partitions & (num_partitions - 1)) != 0) {
    return Status::Invalid(
        "PartitionedSummaryStore: num_partitions must be a power of two");
  }
  std::vector<SummaryStore> partitions;
  partitions.reserve(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    StatusOr<SummaryStore> store = SummaryStore::Create(default_config);
    if (!store.ok()) return store.status();
    partitions.push_back(std::move(store).value());
  }
  return PartitionedSummaryStore(std::move(partitions));
}

Status PartitionedSummaryStore::AddBatch(Span<const KeyedSample> samples,
                                         int archetype) {
  // Stable partition of the span: each partition's subsequence keeps span
  // order, so a key's samples arrive at its store in original order — the
  // invariant the per-key bit-identity contract rides on.
  std::vector<std::vector<KeyedSample>> buckets(partitions_.size());
  for (const KeyedSample& sample : samples) {
    buckets[partition_of(sample.key)].push_back(sample);
  }
  for (uint32_t p = 0; p < num_partitions(); ++p) {
    if (buckets[p].empty()) continue;
    if (Status s = partitions_[p].AddBatch(
            Span<const KeyedSample>(buckets[p].data(), buckets[p].size()),
            archetype);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

Status PartitionedSummaryStore::EnsureKeys(Span<const uint64_t> keys,
                                           int archetype) {
  std::vector<std::vector<uint64_t>> buckets(partitions_.size());
  for (const uint64_t key : keys) {
    buckets[partition_of(key)].push_back(key);
  }
  for (uint32_t p = 0; p < num_partitions(); ++p) {
    if (buckets[p].empty()) continue;
    if (Status s = partitions_[p].EnsureKeys(
            Span<const uint64_t>(buckets[p].data(), buckets[p].size()),
            archetype);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

size_t PartitionedSummaryStore::num_keys() const {
  size_t total = 0;
  for (const SummaryStore& store : partitions_) total += store.num_keys();
  return total;
}

StoreMemoryStats PartitionedSummaryStore::memory() const {
  StoreMemoryStats total;
  for (const SummaryStore& store : partitions_) {
    const StoreMemoryStats stats = store.memory();
    total.total_bytes += stats.total_bytes;
    total.payload_bytes += stats.payload_bytes;
    total.ladder_slack_bytes += stats.ladder_slack_bytes;
    total.index_bytes += stats.index_bytes;
    total.metadata_bytes += stats.metadata_bytes;
    total.num_keys += stats.num_keys;
  }
  return total;
}

StatusOr<MergeTreeResult> PartitionedSummaryStore::MergeAllMatching(
    const std::function<bool(uint64_t)>& pred, int64_t k,
    const MergeTreeOptions& options) const {
  std::vector<ShardSummary> per_partition;
  per_partition.reserve(partitions_.size());
  for (const SummaryStore& store : partitions_) {
    StatusOr<MergeTreeResult> local = store.MergeAllMatching(pred, k, options);
    if (!local.ok()) {
      // An empty partition carries no mass — it drops out of the rollup the
      // way empty shards drop out of ReduceSnapshots.  Any other failure is
      // a real error and propagates.
      if (local.status().message() ==
          "SummaryStore: no matching key has samples") {
        continue;
      }
      return local.status();
    }
    MergeTreeResult result = std::move(local).value();
    per_partition.push_back(ShardSummary{std::move(result.aggregate),
                                         result.total_weight,
                                         result.error_levels});
  }
  if (per_partition.empty()) {
    return Status::Invalid(
        "PartitionedSummaryStore: no matching key has samples");
  }
  return ReduceSummaries(std::move(per_partition), k, options);
}

}  // namespace fasthist
