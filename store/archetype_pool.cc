#include "store/archetype_pool.h"

#include <algorithm>
#include <utility>

#include "core/internal/merge_engine.h"
#include "core/streaming.h"
#include "core/streaming_ladder.h"

namespace fasthist {

bool SameArchetype(const ArchetypeConfig& a, const ArchetypeConfig& b) {
  return a.domain_size == b.domain_size && a.k == b.k && a.degree == b.degree &&
         a.window_capacity == b.window_capacity &&
         a.options.delta == b.options.delta && a.options.gamma == b.options.gamma;
}

// The streaming_ladder Storage adapter over one slot's plane slices.  All
// slot state lives at fixed offsets inside the chunk's planes; the adapter
// is just the arithmetic.  Mutating calls are only reached via non-const
// pool entry points, and distinct slots touch disjoint slices — the
// concurrency carve-out in the class comment.
struct ArchetypePool::SlotLadder {
  Chunk* chunk;
  size_t slot;
  int64_t domain_size;
  int64_t piece_capacity;

  LevelPlane* plane(int level) const {
    // The acquire in levels() ordered this pointer's publication.
    return chunk->levels[static_cast<size_t>(level)].load(
        std::memory_order_relaxed);
  }

  // Chunk-wide, not per-slot: a slot sees every level its chunk ever grew.
  // Vacant slots (count == 0) make Commit and Fold skip them, so the extra
  // levels are invisible to the computation — only to the loop bounds.
  int levels() const { return chunk->num_levels.load(std::memory_order_acquire); }

  int64_t count(int level) const { return plane(level)->count[slot]; }

  StatusOr<Histogram> Load(int level) const {
    const LevelPlane& p = *plane(level);
    const size_t base = slot * static_cast<size_t>(piece_capacity);
    const auto num_pieces = static_cast<size_t>(p.piece_count[slot]);
    std::vector<HistogramPiece> pieces(num_pieces);
    int64_t begin = 0;
    for (size_t i = 0; i < num_pieces; ++i) {
      pieces[i].interval = {begin, p.ends[base + i]};
      pieces[i].value = p.values[base + i];
      begin = p.ends[base + i];
    }
    return Histogram::Create(domain_size, std::move(pieces));
  }

  Status Store(int level, Histogram histogram, int64_t sample_count) {
    const auto num_pieces = static_cast<size_t>(histogram.num_pieces());
    if (num_pieces > static_cast<size_t>(piece_capacity)) {
      // Unreachable by construction (piece_capacity bounds every engine
      // output); checked so a future knob change fails loudly, not by
      // writing into a neighbor slot's slice.
      return Status::Invalid("ArchetypePool: summary exceeds piece capacity");
    }
    LevelPlane& p = *plane(level);
    const size_t base = slot * static_cast<size_t>(piece_capacity);
    for (size_t i = 0; i < num_pieces; ++i) {
      p.ends[base + i] = histogram.pieces()[i].interval.end;
      p.values[base + i] = histogram.pieces()[i].value;
    }
    p.piece_count[slot] = static_cast<int32_t>(num_pieces);
    p.count[slot] = sample_count;
    return Status::Ok();
  }

  void Clear(int level) { plane(level)->count[slot] = 0; }

  Status PushLevel() {
    const int target = levels();
    if (target >= kMaxLadderLevels) {
      return Status::Invalid("ArchetypePool: ladder depth limit reached");
    }
    auto& pointer = chunk->levels[static_cast<size_t>(target)];
    if (pointer.load(std::memory_order_acquire) == nullptr) {
      auto* fresh = new LevelPlane;
      const size_t plane_pieces =
          kSlotsPerChunk * static_cast<size_t>(piece_capacity);
      fresh->ends.assign(plane_pieces, 0);
      fresh->values.assign(plane_pieces, 0.0);
      fresh->piece_count.assign(kSlotsPerChunk, 0);
      fresh->count.assign(kSlotsPerChunk, 0);
      LevelPlane* expected = nullptr;
      // Concurrent deepeners (disjoint slots, same chunk) race to publish;
      // the loser frees its copy and uses the winner's.
      if (!pointer.compare_exchange_strong(expected, fresh,
                                           std::memory_order_release,
                                           std::memory_order_acquire)) {
        delete fresh;
      }
    }
    int expected_levels = target;
    chunk->num_levels.compare_exchange_strong(expected_levels, target + 1,
                                              std::memory_order_release,
                                              std::memory_order_relaxed);
    return Status::Ok();
  }
};

StatusOr<ArchetypePool> ArchetypePool::Create(const ArchetypeConfig& config) {
  if (config.domain_size <= 0) {
    return Status::Invalid("ArchetypePool: domain must be positive");
  }
  if (config.k < 1) {
    return Status::Invalid("ArchetypePool: k must be >= 1");
  }
  if (config.window_capacity == 0) {
    return Status::Invalid("ArchetypePool: window must be >= 1");
  }
  if (config.degree != 0) {
    return Status::Invalid(
        "ArchetypePool: only degree-0 (histogram) archetypes are implemented");
  }
  return ArchetypePool(config);
}

ArchetypePool::ArchetypePool(const ArchetypeConfig& config)
    : config_(config),
      piece_capacity_(std::min(
          internal::MaxSurvivingPieces(config.k, config.options),
          config.domain_size)) {}

Status ArchetypePool::AddChunk() {
  auto chunk = std::make_unique<Chunk>();
  chunk->window.assign(kSlotsPerChunk * config_.window_capacity, 0);
  chunk->window_len.assign(kSlotsPerChunk, 0);
  chunk->summarized.assign(kSlotsPerChunk, 0);
  chunk->key.assign(kSlotsPerChunk, 0);
  chunk->live.assign(kSlotsPerChunk, 0);
  chunks_.push_back(std::move(chunk));
  // The freelist can never hold more than every slot; reserving it here
  // makes the pool's heap bytes a pure function of the chunk count, so
  // key churn (erase/reinsert) provably allocates nothing (stress-tested).
  free_slots_.reserve(chunks_.size() * kSlotsPerChunk);
  return Status::Ok();
}

StatusOr<uint64_t> ArchetypePool::AllocateSlot(uint64_t key) {
  uint64_t ref;
  if (!free_slots_.empty()) {
    ref = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (next_unused_ == chunks_.size() * kSlotsPerChunk) {
      if (Status s = AddChunk(); !s.ok()) return s;
    }
    ref = PackRef(next_unused_ / kSlotsPerChunk, next_unused_ % kSlotsPerChunk);
    ++next_unused_;
  }
  Chunk& chunk = *chunks_[ChunkOf(ref)];
  const size_t slot = SlotOf(ref);
  chunk.live[slot] = 1;
  chunk.key[slot] = key;
  chunk.window_len[slot] = 0;
  chunk.summarized[slot] = 0;
  ++num_live_;
  return ref;
}

Status ArchetypePool::ReleaseSlot(uint64_t ref) {
  if (ChunkOf(ref) >= chunks_.size() || !chunks_[ChunkOf(ref)]->live[SlotOf(ref)]) {
    return Status::Invalid("ArchetypePool: release of a slot not live");
  }
  Chunk& chunk = *chunks_[ChunkOf(ref)];
  const size_t slot = SlotOf(ref);
  chunk.live[slot] = 0;
  chunk.window_len[slot] = 0;
  chunk.summarized[slot] = 0;
  // Vacate the slot's ladder slice in every level the chunk has grown;
  // the planes themselves stay for the next occupant.
  const int levels = chunk.num_levels.load(std::memory_order_acquire);
  for (int level = 0; level < levels; ++level) {
    chunk.levels[static_cast<size_t>(level)]
        .load(std::memory_order_relaxed)
        ->count[slot] = 0;
  }
  free_slots_.push_back(ref);
  --num_live_;
  return Status::Ok();
}

Status ArchetypePool::FlushWindow(Chunk& chunk, size_t slot) {
  const auto len = static_cast<size_t>(chunk.window_len[slot]);
  if (len == 0) return Status::Ok();
  const int64_t* window = chunk.window.data() + slot * config_.window_capacity;
  // Condense the window to a level-0 summary, then dyadic-carry it — the
  // exact Flush path of StreamingHistogramBuilder, over plane storage.
  auto condensed = StreamingHistogramBuilder::FoldBufferIntoSummary(
      nullptr, 0, Span<const int64_t>(window, len), config_.domain_size,
      config_.k, config_.options);
  if (!condensed.ok()) return condensed.status();
  SlotLadder ladder{&chunk, slot, config_.domain_size, piece_capacity_};
  if (Status s = streaming_ladder::Commit(ladder, std::move(condensed).value(),
                                          static_cast<int64_t>(len), config_.k,
                                          config_.options);
      !s.ok()) {
    return s;
  }
  chunk.summarized[slot] += static_cast<int64_t>(len);
  chunk.window_len[slot] = 0;
  return Status::Ok();
}

Status ArchetypePool::Append(uint64_t ref, Span<const int64_t> values) {
  if (ChunkOf(ref) >= chunks_.size() || !chunks_[ChunkOf(ref)]->live[SlotOf(ref)]) {
    return Status::Invalid("ArchetypePool: append to a slot not live");
  }
  Chunk& chunk = *chunks_[ChunkOf(ref)];
  const size_t slot = SlotOf(ref);
  int64_t* window = chunk.window.data() + slot * config_.window_capacity;
  size_t i = 0;
  while (i < values.size()) {
    auto len = static_cast<size_t>(chunk.window_len[slot]);
    const size_t space = config_.window_capacity - len;
    const size_t take = std::min(space, values.size() - i);
    // AddMany's valid-prefix contract: on an out-of-domain sample the valid
    // prefix is still appended, so slot state matches a per-sample loop.
    size_t valid = 0;
    while (valid < take) {
      const int64_t sample = values[i + valid];
      if (sample < 0 || sample >= config_.domain_size) break;
      window[len + valid] = sample;
      ++valid;
    }
    chunk.window_len[slot] = static_cast<int32_t>(len + valid);
    if (valid < take) {
      return Status::Invalid("ArchetypePool: sample out of domain");
    }
    i += take;
    if (static_cast<size_t>(chunk.window_len[slot]) >= config_.window_capacity) {
      if (Status s = FlushWindow(chunk, slot); !s.ok()) return s;
    }
  }
  return Status::Ok();
}

StatusOr<Histogram> ArchetypePool::Query(uint64_t ref) const {
  if (ChunkOf(ref) >= chunks_.size() || !chunks_[ChunkOf(ref)]->live[SlotOf(ref)]) {
    return Status::Invalid("ArchetypePool: query of a slot not live");
  }
  // Sound for the same reason as StreamingHistogramBuilder's const views:
  // the read-side fold only calls the adapter's const operations.
  auto& chunk = const_cast<Chunk&>(*chunks_[ChunkOf(ref)]);
  const size_t slot = SlotOf(ref);
  const auto len = static_cast<size_t>(chunk.window_len[slot]);
  const int64_t summarized = chunk.summarized[slot];
  const Span<const int64_t> window(
      chunk.window.data() + slot * config_.window_capacity, len);
  if (summarized == 0 && len == 0) {
    return Histogram::Create(config_.domain_size,
                             {{{0, config_.domain_size},
                               1.0 / static_cast<double>(config_.domain_size)}});
  }
  if (summarized == 0) {
    return StreamingHistogramBuilder::FoldBufferIntoSummary(
        nullptr, 0, window, config_.domain_size, config_.k, config_.options);
  }
  SlotLadder ladder{&chunk, slot, config_.domain_size, piece_capacity_};
  auto committed = streaming_ladder::Fold(ladder, config_.k, config_.options);
  if (!committed.ok()) return committed.status();
  if (len == 0) return committed;
  return StreamingHistogramBuilder::FoldBufferIntoSummary(
      &*committed, summarized, window, config_.domain_size, config_.k,
      config_.options);
}

int64_t ArchetypePool::NumSamples(uint64_t ref) const {
  if (ChunkOf(ref) >= chunks_.size()) return 0;
  const Chunk& chunk = *chunks_[ChunkOf(ref)];
  const size_t slot = SlotOf(ref);
  if (!chunk.live[slot]) return 0;
  return chunk.summarized[slot] + chunk.window_len[slot];
}

int ArchetypePool::ErrorLevels(uint64_t ref) const {
  if (ChunkOf(ref) >= chunks_.size()) return 0;
  auto& chunk = const_cast<Chunk&>(*chunks_[ChunkOf(ref)]);
  const size_t slot = SlotOf(ref);
  if (!chunk.live[slot]) return 0;
  SlotLadder ladder{&chunk, slot, config_.domain_size, piece_capacity_};
  return streaming_ladder::ErrorLevels(streaming_ladder::Depth(ladder),
                                       streaming_ladder::Slots(ladder),
                                       chunk.window_len[slot] > 0);
}

uint64_t ArchetypePool::KeyOf(uint64_t ref) const {
  if (ChunkOf(ref) >= chunks_.size()) return 0;
  return chunks_[ChunkOf(ref)]->key[SlotOf(ref)];
}

Status ArchetypePool::ReserveSlots(size_t num_slots) {
  while (chunks_.size() * kSlotsPerChunk < num_slots) {
    if (Status s = AddChunk(); !s.ok()) return s;
  }
  return Status::Ok();
}

ArchetypePool::MemoryStats ArchetypePool::memory() const {
  MemoryStats stats;
  stats.total_bytes += chunks_.capacity() * sizeof(chunks_[0]) +
                       free_slots_.capacity() * sizeof(uint64_t);
  const size_t bytes_per_slice =
      static_cast<size_t>(piece_capacity_) * (sizeof(int64_t) + sizeof(double));
  for (const auto& chunk_ptr : chunks_) {
    const Chunk& chunk = *chunk_ptr;
    stats.total_bytes += sizeof(Chunk) +
                         chunk.window.capacity() * sizeof(int64_t) +
                         chunk.window_len.capacity() * sizeof(int32_t) +
                         chunk.summarized.capacity() * sizeof(int64_t) +
                         chunk.key.capacity() * sizeof(uint64_t) +
                         chunk.live.capacity() * sizeof(uint8_t);
    const int levels = chunk.num_levels.load(std::memory_order_acquire);
    for (int level = 0; level < levels; ++level) {
      const LevelPlane& plane =
          *chunk.levels[static_cast<size_t>(level)].load(
              std::memory_order_relaxed);
      stats.total_bytes += sizeof(LevelPlane) +
                           plane.ends.capacity() * sizeof(int64_t) +
                           plane.values.capacity() * sizeof(double) +
                           plane.piece_count.capacity() * sizeof(int32_t) +
                           plane.count.capacity() * sizeof(int64_t);
    }
    // Payload: what a key's summary inherently costs — its sample window
    // plus its occupied ladder slices at capacity.  A live slot's vacant
    // slices of allocated planes are slack (carry-vacancy of the dyadic
    // ladder, see MemoryStats).  Everything else — index, per-slot
    // bookkeeping, dead slots' plane capacity — is the overhead the
    // <= 150 bytes/key budget measures.
    for (size_t slot = 0; slot < kSlotsPerChunk; ++slot) {
      if (!chunk.live[slot]) continue;
      stats.payload_bytes += config_.window_capacity * sizeof(int64_t);
      for (int level = 0; level < levels; ++level) {
        if (chunk.levels[static_cast<size_t>(level)]
                .load(std::memory_order_relaxed)
                ->count[slot] > 0) {
          stats.payload_bytes += bytes_per_slice;
        } else {
          stats.slack_bytes += bytes_per_slice;
        }
      }
    }
  }
  return stats;
}

}  // namespace fasthist
